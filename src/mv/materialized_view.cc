#include "mv/materialized_view.h"

#include "common/str_util.h"

namespace softdb {

MaterializedView::MaterializedView(std::string name, std::string base_table,
                                   ExprPtr predicate, Schema schema,
                                   bool information_only)
    : name_(std::move(name)), base_table_(std::move(base_table)),
      predicate_(std::move(predicate)), information_only_(information_only) {
  if (!information_only_) {
    table_ = std::make_unique<Table>(name_, std::move(schema));
  }
}

Status MaterializedView::Refresh(const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * base, catalog.GetTable(base_table_));
  if (!information_only_) {
    // Rebuild contents from scratch.
    table_ = std::make_unique<Table>(name_, base->schema());
  }
  stat_rows_ = 0;
  for (RowId r = 0; r < base->NumSlots(); ++r) {
    if (!base->IsLive(r)) continue;
    std::vector<Value> row = base->GetRow(r);
    SOFTDB_ASSIGN_OR_RETURN(Value v, predicate_->Eval(row));
    if (v.is_null() || !v.AsBool()) continue;
    ++stat_rows_;
    if (!information_only_) {
      SOFTDB_RETURN_IF_ERROR(table_->Append(row).status());
    }
  }
  if (!information_only_) {
    stats_ = AnalyzeTable(*table_);
  } else {
    // Information AST: runstats only. Compute them from the qualifying
    // subset without materializing it by building a scratch table.
    Table scratch(name_, base->schema());
    for (RowId r = 0; r < base->NumSlots(); ++r) {
      if (!base->IsLive(r)) continue;
      std::vector<Value> row = base->GetRow(r);
      SOFTDB_ASSIGN_OR_RETURN(Value v, predicate_->Eval(row));
      if (v.is_null() || !v.AsBool()) continue;
      SOFTDB_RETURN_IF_ERROR(scratch.Append(row).status());
    }
    stats_ = AnalyzeTable(scratch);
  }
  return Status::OK();
}

Status MaterializedView::OnBaseInsert(const std::vector<Value>& row) {
  SOFTDB_ASSIGN_OR_RETURN(Value v, predicate_->Eval(row));
  if (v.is_null() || !v.AsBool()) return Status::OK();
  ++stat_rows_;
  if (!information_only_) {
    SOFTDB_RETURN_IF_ERROR(table_->Append(row).status());
  }
  return Status::OK();
}

Status MaterializedView::OnBaseDelete(const std::vector<Value>& row) {
  SOFTDB_ASSIGN_OR_RETURN(Value v, predicate_->Eval(row));
  if (v.is_null() || !v.AsBool()) return Status::OK();
  if (stat_rows_ > 0) --stat_rows_;
  if (information_only_ || table_ == nullptr) return Status::OK();
  for (RowId r = 0; r < table_->NumSlots(); ++r) {
    if (!table_->IsLive(r)) continue;
    std::vector<Value> candidate = table_->GetRow(r);
    bool equal = candidate.size() == row.size();
    for (std::size_t i = 0; equal && i < row.size(); ++i) {
      equal = candidate[i].GroupEquals(row[i]) ||
              (candidate[i].is_null() && row[i].is_null());
    }
    if (equal) {
      return table_->Delete(r);
    }
  }
  return Status::OK();
}

std::string MaterializedView::Describe() const {
  return StrFormat("AST %s = SELECT * FROM %s WHERE %s (%llu rows)%s",
                   name_.c_str(), base_table_.c_str(),
                   predicate_->ToString().c_str(),
                   static_cast<unsigned long long>(NumRows()),
                   information_only_ ? " [information only]" : "");
}

Result<MaterializedView*> MvRegistry::Define(const std::string& name,
                                             const std::string& base_table,
                                             ExprPtr bound_predicate,
                                             const Catalog& catalog,
                                             bool information_only) {
  if (Find(name) != nullptr) {
    return Status::AlreadyExists("AST exists: " + name);
  }
  SOFTDB_ASSIGN_OR_RETURN(Table * base, catalog.GetTable(base_table));
  auto view = std::make_unique<MaterializedView>(
      name, base->name(), std::move(bound_predicate), base->schema(),
      information_only);
  SOFTDB_RETURN_IF_ERROR(view->Refresh(catalog));
  MaterializedView* ptr = view.get();
  views_.push_back(std::move(view));
  return ptr;
}

MaterializedView* MvRegistry::Find(const std::string& name) const {
  for (const MvPtr& v : views_) {
    if (v->name() == name) return v.get();
  }
  return nullptr;
}

std::vector<MaterializedView*> MvRegistry::OnBase(
    const std::string& base_table) const {
  std::vector<MaterializedView*> out;
  for (const MvPtr& v : views_) {
    if (v->base_table() == base_table) out.push_back(v.get());
  }
  return out;
}

std::vector<MaterializedView*> MvRegistry::All() const {
  std::vector<MaterializedView*> out;
  out.reserve(views_.size());
  for (const MvPtr& v : views_) out.push_back(v.get());
  return out;
}

Status MvRegistry::DropView(const std::string& name) {
  for (auto it = views_.begin(); it != views_.end(); ++it) {
    if ((*it)->name() == name) {
      views_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no such AST: " + name);
}

Status MvRegistry::OnBaseInsert(const std::string& base_table,
                                const std::vector<Value>& row) {
  for (const MvPtr& v : views_) {
    if (v->base_table() == base_table) {
      SOFTDB_RETURN_IF_ERROR(v->OnBaseInsert(row));
    }
  }
  return Status::OK();
}

Status MvRegistry::OnBaseDelete(const std::string& base_table,
                                const std::vector<Value>& row) {
  for (const MvPtr& v : views_) {
    if (v->base_table() == base_table) {
      SOFTDB_RETURN_IF_ERROR(v->OnBaseDelete(row));
    }
  }
  return Status::OK();
}

Status MvRegistry::RefreshAll(const Catalog& catalog) {
  for (const MvPtr& v : views_) {
    SOFTDB_RETURN_IF_ERROR(v->Refresh(catalog));
  }
  return Status::OK();
}

}  // namespace softdb
