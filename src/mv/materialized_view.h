#ifndef SOFTDB_MV_MATERIALIZED_VIEW_H_
#define SOFTDB_MV_MATERIALIZED_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "plan/expr.h"
#include "stats/analyzer.h"
#include "storage/catalog.h"

namespace softdb {

/// An automated summary table (AST) in the DB2 v7 sense §4.4 describes: a
/// materialized view defined by a single-table SELECT without aggregation
/// (`SELECT * FROM base WHERE predicate`). Two flavors:
///
/// * materialized (routable): contents kept in sync; the optimizer may
///   route a query through the AST instead of the base table, and the
///   exception-table ASC pattern reads it in a UNION ALL branch;
/// * information AST: *not* materialized or routable, but runstats are kept
///   for it, purely to improve filter-factor estimation.
class MaterializedView {
 public:
  /// `predicate` must be bound against the base table's schema.
  MaterializedView(std::string name, std::string base_table, ExprPtr predicate,
                   Schema schema, bool information_only);

  const std::string& name() const { return name_; }
  const std::string& base_table() const { return base_table_; }
  const Expr& predicate() const { return *predicate_; }
  bool information_only() const { return information_only_; }

  /// Materialized contents; null for information ASTs.
  const Table* table() const { return table_.get(); }
  std::size_t NumRows() const { return table_ ? table_->NumRows() : stat_rows_; }

  /// Full rebuild from the base table (and runstats refresh).
  Status Refresh(const Catalog& catalog);

  /// Incremental maintenance: appends `row` when it satisfies the defining
  /// predicate (called by the engine after a base-table insert commits).
  Status OnBaseInsert(const std::vector<Value>& row);

  /// Incremental maintenance for deletes: removes one matching row from the
  /// view so exception-table rewrites never resurrect deleted rows.
  Status OnBaseDelete(const std::vector<Value>& row);

  /// Runstats over the view contents (information ASTs keep only these).
  const TableStats& stats() const { return stats_; }

  std::string Describe() const;

 private:
  std::string name_;
  std::string base_table_;
  ExprPtr predicate_;
  bool information_only_;
  std::unique_ptr<Table> table_;  // Null for information ASTs.
  TableStats stats_;
  std::uint64_t stat_rows_ = 0;  // Row count for information ASTs.
};

using MvPtr = std::unique_ptr<MaterializedView>;

/// Registry of ASTs, keyed by name, with per-base-table lookup for routing
/// and maintenance fan-out.
class MvRegistry {
 public:
  MvRegistry() = default;
  MvRegistry(const MvRegistry&) = delete;
  MvRegistry& operator=(const MvRegistry&) = delete;

  /// Defines and populates an AST over `base_table` with `predicate_sql`
  /// semantics (predicate already bound by the caller).
  Result<MaterializedView*> Define(const std::string& name,
                                   const std::string& base_table,
                                   ExprPtr bound_predicate,
                                   const Catalog& catalog,
                                   bool information_only = false);

  MaterializedView* Find(const std::string& name) const;
  std::vector<MaterializedView*> OnBase(const std::string& base_table) const;
  std::vector<MaterializedView*> All() const;
  Status DropView(const std::string& name);

  /// Maintenance fan-out for a committed base insert.
  Status OnBaseInsert(const std::string& base_table,
                      const std::vector<Value>& row);

  /// Maintenance fan-out for a committed base delete.
  Status OnBaseDelete(const std::string& base_table,
                      const std::vector<Value>& row);

  /// Refreshes every AST (batch window maintenance).
  Status RefreshAll(const Catalog& catalog);

  std::size_t size() const { return views_.size(); }

 private:
  std::vector<MvPtr> views_;
};

}  // namespace softdb

#endif  // SOFTDB_MV_MATERIALIZED_VIEW_H_
