#ifndef SOFTDB_OPTIMIZER_RANGE_ANALYSIS_H_
#define SOFTDB_OPTIMIZER_RANGE_ANALYSIS_H_

#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "plan/predicate.h"

namespace softdb {

/// Interval on one column accumulated from simple predicates. Bounds are
/// numeric (all non-string types reduce to doubles; strings are handled by
/// equality only).
struct ColumnRange {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_inclusive = true;
  bool hi_inclusive = true;
  /// Set when an equality pinned the column.
  std::optional<Value> equal;
  /// A contradiction was detected (e.g. x > 5 AND x < 3).
  bool empty = false;

  bool Bounded() const {
    return lo != -std::numeric_limits<double>::infinity() ||
           hi != std::numeric_limits<double>::infinity();
  }

  /// Narrows this range with one more predicate on the same column.
  void Apply(const SimplePredicate& pred);

  /// True when every value in this range also lies in `other` (this ⇒
  /// other). Used for union-all branch analysis and AST matching.
  bool ImpliedBy(const ColumnRange& outer) const;
};

/// Per-column conjunction of simple predicates over one relation.
struct RangeMap {
  std::map<ColumnIdx, ColumnRange> ranges;
  /// True when some conjunct is the literal FALSE or a range is empty.
  bool unsatisfiable = false;

  const ColumnRange* Find(ColumnIdx col) const {
    auto it = ranges.find(col);
    return it == ranges.end() ? nullptr : &it->second;
  }
};

/// Folds the *simple* conjuncts of `predicates` into per-column ranges.
/// Opaque (non-simple) predicates are skipped — the result is a sound
/// over-approximation of the predicate set. When `include_estimation_only`
/// is false, twinned predicates are ignored (the baseline estimator path).
RangeMap BuildRangeMap(const std::vector<Predicate>& predicates,
                       bool include_estimation_only);

/// True when the predicate set is provably unsatisfiable (a literal FALSE
/// conjunct or an empty column range) — the §5 branch knock-off test.
bool IsUnsatisfiable(const std::vector<Predicate>& predicates);

/// True when `inner` (e.g. an AST's defining ranges) is implied by `outer`
/// (a query's ranges): every column constrained by inner is at least as
/// constrained in outer.
bool Implies(const RangeMap& outer, const RangeMap& inner);

}  // namespace softdb

#endif  // SOFTDB_OPTIMIZER_RANGE_ANALYSIS_H_
