#include "optimizer/rewriter.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "analysis/certificate.h"
#include "analysis/implication.h"
#include "analysis/plan_verifier.h"
#include "common/str_util.h"
#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "constraints/fd_sc.h"
#include "constraints/inclusion_sc.h"
#include "constraints/join_hole_sc.h"
#include "constraints/linear_correlation_sc.h"
#include "constraints/predicate_sc.h"
#include "optimizer/range_analysis.h"

namespace softdb {

namespace {

/// Builds a bound `col <op> const` expression against `schema`, coercing
/// the constant to the column's type family.
ExprPtr MakeSimpleExpr(const Schema& schema, const SimplePredicate& sp) {
  const ColumnDef& def = schema.Column(sp.column);
  Value constant = sp.constant;
  if (IsNumericType(def.type) && !constant.is_null() &&
      constant.type() != def.type && constant.type() != TypeId::kString) {
    auto cast = constant.CastTo(def.type);
    if (cast.ok()) constant = *std::move(cast);
  }
  return MakeCompare(sp.op,
                     std::make_unique<ColumnRefExpr>(def.QualifiedName(),
                                                     sp.column, def.type),
                     MakeLiteral(std::move(constant)));
}

/// Combines several derived simple predicates into one Predicate entry so a
/// single SC contributes a single confidence factor.
Predicate MakeDerivedPredicate(const Schema& schema,
                               const std::vector<SimplePredicate>& simples,
                               bool estimation_only, double confidence,
                               const std::string& origin) {
  std::vector<ExprPtr> exprs;
  exprs.reserve(simples.size());
  for (const SimplePredicate& sp : simples) {
    exprs.push_back(MakeSimpleExpr(schema, sp));
  }
  return Predicate(MakeAnd(std::move(exprs)), estimation_only, confidence,
                   origin);
}

/// Certificate-premise builders for the direct (non-closure) rewrite
/// sites; the implication sites use AppendFactPremises instead.
CertificatePremise IntervalFactPremise(
    const ImplicationFacts::IntervalFact& fact, const ScRegistry* scs) {
  CertificatePremise p;
  p.kind = CertificatePremise::Kind::kIntervalFact;
  p.source = fact.source;
  p.column = fact.column;
  p.interval = fact.interval;
  AppendScEpochs(fact.source, scs, &p.sc_epochs);
  return p;
}

CertificatePremise DiffFactPremise(const ImplicationFacts::DiffFact& fact,
                                   const ScRegistry* scs) {
  CertificatePremise p;
  p.kind = CertificatePremise::Kind::kDiffFact;
  p.source = fact.source;
  p.x = fact.x;
  p.y = fact.y;
  p.interval = fact.range;
  AppendScEpochs(fact.source, scs, &p.sc_epochs);
  return p;
}

CertificatePremise BandFactPremise(const ImplicationFacts::BandFact& fact,
                                   const ScRegistry* scs) {
  CertificatePremise p;
  p.kind = CertificatePremise::Kind::kBandFact;
  p.source = fact.source;
  p.column = fact.a;
  p.x = fact.b;
  p.k = fact.k;
  p.c = fact.c;
  p.eps = fact.eps;
  AppendScEpochs(fact.source, scs, &p.sc_epochs);
  return p;
}

bool HasPredicateFromOrigin(const ScanNode& scan, const std::string& origin) {
  return std::any_of(scan.predicates().begin(), scan.predicates().end(),
                     [&](const Predicate& p) { return p.origin == origin; });
}

/// Resolves a column of `node`'s output schema to its originating base
/// table and column index. Mirrors the estimator's resolution but local to
/// the rewriter (keeps the modules decoupled).
bool ResolveToBase(const PlanNode& node, ColumnIdx col, std::string* table,
                   ColumnIdx* base_col) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      *table = scan.table_name();
      *base_col = col;
      return true;
    }
    case PlanKind::kFilter:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      return ResolveToBase(*node.children()[0], col, table, base_col);
    case PlanKind::kJoin: {
      const ColumnIdx la = static_cast<ColumnIdx>(
          node.children()[0]->output_schema().NumColumns());
      if (col < la) return ResolveToBase(*node.children()[0], col, table,
                                         base_col);
      return ResolveToBase(*node.children()[1], col - la, table, base_col);
    }
    default:
      return false;
  }
}

void CollectExprColumns(const Expr& expr, std::vector<ColumnIdx>* out) {
  expr.CollectColumns(out);
}

std::vector<ColumnIdx> Dedupe(std::vector<ColumnIdx> cols) {
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

/// The simple predicates on a scan (real only), with attr ranges folded.
RangeMap ScanRanges(const ScanNode& scan) {
  return BuildRangeMap(scan.predicates(), /*include_estimation_only=*/false);
}

/// Numeric query range for one column: from the scan's predicates when
/// constrained, else from catalog stats min/max, else fails.
bool QueryRangeFor(const ScanNode& scan, ColumnIdx col,
                   const StatsCatalog* stats, double* lo, double* hi) {
  const RangeMap map = ScanRanges(scan);
  const ColumnRange* range = map.Find(col);
  double min_v = -std::numeric_limits<double>::infinity();
  double max_v = std::numeric_limits<double>::infinity();
  if (stats != nullptr) {
    const TableStats* ts = stats->Get(scan.table_name());
    if (ts != nullptr && ts->HasColumn(col)) {
      const ColumnStats& cs = ts->columns[col];
      if (cs.min.has_value()) min_v = cs.min->NumericValue();
      if (cs.max.has_value()) max_v = cs.max->NumericValue();
    }
  }
  *lo = range != nullptr && range->Bounded() ? std::max(range->lo, min_v)
                                             : min_v;
  *hi = range != nullptr && range->Bounded() ? std::min(range->hi, max_v)
                                             : max_v;
  return std::isfinite(*lo) && std::isfinite(*hi);
}

}  // namespace

bool IsProvablyEmpty(const PlanNode& node) {
  switch (node.kind()) {
    case PlanKind::kScan:
      return BuildRangeMap(static_cast<const ScanNode&>(node).predicates(),
                           /*include_estimation_only=*/false)
          .unsatisfiable;
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      if (IsUnsatisfiable(filter.predicates())) return true;
      return IsProvablyEmpty(*node.children()[0]);
    }
    case PlanKind::kProject:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      return IsProvablyEmpty(*node.children()[0]);
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      if (agg.group_by().empty()) return false;  // Global agg emits a row.
      return IsProvablyEmpty(*node.children()[0]);
    }
    case PlanKind::kJoin:
      return IsProvablyEmpty(*node.children()[0]) ||
             IsProvablyEmpty(*node.children()[1]);
    case PlanKind::kUnionAll: {
      for (const PlanPtr& c : node.children()) {
        if (!IsProvablyEmpty(*c)) return false;
      }
      return true;
    }
  }
  return false;
}

Status Rewriter::RewriteScan(ScanNode* scan) {
  if (scan->external_table() != nullptr) return Status::OK();
  auto table_result = ctx_->catalog->GetTable(scan->table_name());
  if (!table_result.ok()) return Status::OK();
  const Table* table = *table_result;
  const Schema& schema = scan->output_schema();

  // ---- Domain rules: drop tautologies, detect contradictions. ----
  if (ctx_->enable_domain_rules && ctx_->scs != nullptr) {
    for (SoftConstraint* sc : ctx_->scs->On(scan->table_name())) {
      auto* domain = dynamic_cast<DomainSc*>(sc);
      if (domain == nullptr || !domain->IsAbsolute()) continue;
      auto& preds = scan->predicates();
      for (auto it = preds.begin(); it != preds.end();) {
        SimplePredicate sp;
        if (it->estimation_only || !MatchSimplePredicate(*it->expr, &sp)) {
          ++it;
          continue;
        }
        const DomainSc::Implication impl = domain->Classify(sp);
        // Dropping a tautological predicate is only sound on non-nullable
        // columns (a NULL fails the predicate but is inside the domain
        // vacuously).
        if (impl == DomainSc::Implication::kTautology &&
            !schema.Column(sp.column).nullable) {
          ctx_->RecordRule(StrFormat("domain-drop: %s [%s]",
                                     it->expr->ToString().c_str(),
                                     sc->name().c_str()));
          ctx_->RecordScUse(sc->name(), 1.0);
          RewriteCertificate cert;
          cert.kind = CertificateKind::kImplicationPrune;
          cert.rule = "domain-drop: " + sc->name();
          cert.table = scan->table_name();
          if (auto fact = DomainIntervalFact(*domain)) {
            cert.premises.push_back(IntervalFactPremise(*fact, ctx_->scs));
          }
          cert.conclusion_expr = it->expr->Clone();
          ctx_->RecordCertificate(std::move(cert));
          it = preds.erase(it);
          continue;
        }
        if (impl == DomainSc::Implication::kContradiction) {
          ctx_->RecordRule(StrFormat("domain-contradiction: %s [%s]",
                                     it->expr->ToString().c_str(),
                                     sc->name().c_str()));
          ctx_->RecordScUse(sc->name(), 10.0);
          RewriteCertificate cert;
          cert.kind = CertificateKind::kImplicationContradiction;
          cert.rule = "domain-contradiction: " + sc->name();
          cert.table = scan->table_name();
          if (auto fact = DomainIntervalFact(*domain)) {
            cert.premises.push_back(IntervalFactPremise(*fact, ctx_->scs));
          }
          cert.premise_exprs.push_back(it->expr->Clone());
          ctx_->RecordCertificate(std::move(cert));
          preds.push_back(Predicate(MakeLiteral(Value::Bool(false)), false,
                                    1.0, "sc:" + sc->name()));
          return Status::OK();
        }
        ++it;
      }
    }
  }

  // ---- Collect the real simple predicates once. ----
  std::vector<SimplePredicate> simples;
  for (const Predicate& p : scan->predicates()) {
    if (p.estimation_only) continue;
    std::vector<SimplePredicate> expanded;
    if (ExpandSimplePredicates(*p.expr, &expanded)) {
      for (SimplePredicate& sp : expanded) simples.push_back(std::move(sp));
    }
  }

  if (ctx_->scs != nullptr) {
    for (SoftConstraint* sc : ctx_->scs->On(scan->table_name())) {
      if (!sc->active()) continue;
      const std::string origin = "sc:" + sc->name();
      if (HasPredicateFromOrigin(*scan, origin)) continue;

      // ---- Column-offset SCs: introduction (ASC) or twinning (SSC). ----
      if (auto* offset = dynamic_cast<ColumnOffsetSc*>(sc)) {
        std::vector<SimplePredicate> derived;
        for (const SimplePredicate& sp : simples) {
          for (SimplePredicate& d : offset->DerivePredicates(sp)) {
            derived.push_back(std::move(d));
          }
        }
        if (derived.empty()) continue;
        // Introduction is only sound onto non-nullable columns: a row with
        // a NULL target satisfies the SC vacuously but fails the
        // introduced predicate ([6]'s safe-introduction restriction).
        const bool targets_non_null = std::all_of(
            derived.begin(), derived.end(), [&](const SimplePredicate& d) {
              return !schema.Column(d.column).nullable;
            });
        if (offset->IsAbsolute() && ctx_->enable_predicate_introduction &&
            targets_non_null) {
          Predicate intro = MakeDerivedPredicate(
              schema, derived, /*estimation_only=*/false, 1.0, origin);
          RewriteCertificate cert;
          cert.kind = CertificateKind::kPredicateIntroduction;
          cert.rule = "predicate-introduction: " + origin;
          cert.table = scan->table_name();
          cert.premises.push_back(
              DiffFactPremise(OffsetDiffFact(*offset), ctx_->scs));
          for (const SimplePredicate& sp : simples) {
            cert.premise_exprs.push_back(MakeSimpleExpr(schema, sp));
          }
          cert.conclusion_expr = intro.expr->Clone();
          ctx_->RecordCertificate(std::move(cert));
          scan->predicates().push_back(std::move(intro));
          ctx_->RecordRule("predicate-introduction: " + origin);
          ctx_->RecordScUse(sc->name(), 1.0);
        } else if (!offset->IsAbsolute() && ctx_->enable_twinning) {
          const double conf = offset->CurrencyAdjustedConfidence(*table);
          if (conf > 0.0) {
            // One twin per source predicate, each remembering the column it
            // substitutes for during estimation (§5.1).
            bool any = false;
            for (const SimplePredicate& sp : simples) {
              std::vector<SimplePredicate> per_source =
                  offset->DerivePredicates(sp);
              if (per_source.empty()) continue;
              Predicate twin = MakeDerivedPredicate(
                  schema, per_source, /*estimation_only=*/true, conf, origin);
              twin.source_column = sp.column;
              RewriteCertificate cert;
              cert.kind = CertificateKind::kTwinSubstitution;
              cert.rule = "twinning: " + origin;
              cert.table = scan->table_name();
              cert.estimation_only = true;
              cert.premises.push_back(
                  DiffFactPremise(OffsetDiffFact(*offset), ctx_->scs));
              cert.premise_exprs.push_back(MakeSimpleExpr(schema, sp));
              cert.conclusion_expr = twin.expr->Clone();
              ctx_->RecordCertificate(std::move(cert));
              scan->predicates().push_back(std::move(twin));
              any = true;
            }
            if (any) {
              ctx_->RecordRule(StrFormat("twinning: %s (conf %.3f)",
                                         origin.c_str(), conf));
              // Estimation-only: twins never filter rows, so a mid-query
              // overturn cannot make answers wrong (no degraded retry).
              ctx_->RecordScUse(sc->name(), 1.0, /*rewrite_consumed=*/false);
            }
          }
        }
        continue;
      }

      // ---- Linear-correlation SCs: A-range from the B-range. ----
      if (auto* linear = dynamic_cast<LinearCorrelationSc*>(sc)) {
        // Fold the B constraints into one range.
        ColumnRange b_range;
        bool b_constrained = false;
        std::vector<const SimplePredicate*> b_sources;
        for (const SimplePredicate& sp : simples) {
          if (sp.column != linear->col_b() || sp.op == CompareOp::kNe) {
            continue;
          }
          b_range.Apply(sp);
          b_sources.push_back(&sp);
          b_constrained = true;
        }
        if (!b_constrained || b_range.empty || !b_range.Bounded()) continue;
        if (!std::isfinite(b_range.lo) || !std::isfinite(b_range.hi)) {
          continue;  // Half-open B ranges give unbounded A ranges.
        }
        auto [a_lo, a_hi] = linear->ARangeForB(b_range.lo, b_range.hi);
        const ColumnDef& a_def = schema.Column(linear->col_a());
        std::vector<SimplePredicate> derived;
        // Integer-family columns get floor/ceil so the envelope stays sound.
        Value lo_v = a_def.type == TypeId::kDouble
                         ? Value::Double(a_lo)
                         : Value::Int64(static_cast<std::int64_t>(
                               std::floor(a_lo)));
        Value hi_v = a_def.type == TypeId::kDouble
                         ? Value::Double(a_hi)
                         : Value::Int64(static_cast<std::int64_t>(
                               std::ceil(a_hi)));
        derived.push_back({linear->col_a(), CompareOp::kGe, std::move(lo_v)});
        derived.push_back({linear->col_a(), CompareOp::kLe, std::move(hi_v)});
        const bool a_non_null = !schema.Column(linear->col_a()).nullable;
        auto make_linear_cert = [&](CertificateKind kind, bool est_only,
                                    const Expr& conclusion) {
          RewriteCertificate cert;
          cert.kind = kind;
          cert.rule = (kind == CertificateKind::kTwinSubstitution
                           ? "twinning: "
                           : "predicate-introduction: ") +
                      origin;
          cert.table = scan->table_name();
          cert.estimation_only = est_only;
          if (auto fact = LinearBandFact(*linear)) {
            cert.premises.push_back(BandFactPremise(*fact, ctx_->scs));
          }
          for (const SimplePredicate* sp : b_sources) {
            cert.premise_exprs.push_back(MakeSimpleExpr(schema, *sp));
          }
          cert.conclusion_expr = conclusion.Clone();
          return cert;
        };
        if (linear->IsAbsolute() && ctx_->enable_predicate_introduction &&
            a_non_null) {
          Predicate intro = MakeDerivedPredicate(
              schema, derived, /*estimation_only=*/false, 1.0, origin);
          ctx_->RecordCertificate(make_linear_cert(
              CertificateKind::kPredicateIntroduction, false, *intro.expr));
          scan->predicates().push_back(std::move(intro));
          ctx_->RecordRule("predicate-introduction: " + origin);
          ctx_->RecordScUse(sc->name(), 1.0);
        } else if (!linear->IsAbsolute() && ctx_->enable_twinning) {
          const double conf = linear->CurrencyAdjustedConfidence(*table);
          if (conf > 0.0) {
            Predicate twin = MakeDerivedPredicate(
                schema, derived, /*estimation_only=*/true, conf, origin);
            twin.source_column = linear->col_b();
            ctx_->RecordCertificate(make_linear_cert(
                CertificateKind::kTwinSubstitution, true, *twin.expr));
            scan->predicates().push_back(std::move(twin));
            ctx_->RecordRule(StrFormat("twinning: %s (conf %.3f)",
                                       origin.c_str(), conf));
            // Estimation-only, as above: no retry on overturn.
            ctx_->RecordScUse(sc->name(), 1.0, /*rewrite_consumed=*/false);
          }
        }
        continue;
      }
    }

    // ---- Implication engine (shared decision procedure): fold the scan
    // when its predicates contradict the absolute SC / CHECK fact base
    // (the union-all branch knock-off test of §5), then prune real
    // conjuncts the remaining premises already entail. Both rewrites are
    // semantics-preserving: the engine's kUnknown verdicts leave the plan
    // untouched. ----
    if (ctx_->enable_implication && !IsUnsatisfiable(scan->predicates())) {
      ImplicationFacts facts = BuildImplicationFacts(
          scan->table_name(), *ctx_->catalog, ctx_->ics, ctx_->scs,
          /*stats=*/nullptr, ImplicationFactsOptions{});
      ImplicationEngine engine(&schema, std::move(facts));
      auto record_sources = [&](const std::set<std::string>& sources,
                                double benefit) {
        for (const std::string& src : sources) {
          if (src.rfind("sc:", 0) == 0) {
            ctx_->RecordScUse(src.substr(3), benefit);
          }
        }
      };

      std::vector<const Expr*> conjuncts;
      for (const Predicate& p : scan->predicates()) {
        if (p.estimation_only) continue;  // Twins never become premises.
        ImplicationEngine::CollectConjuncts(*p.expr, &conjuncts);
      }
      std::set<std::string> used;
      if (ctx_->enable_unionall_pruning &&
          engine.Unsatisfiable(conjuncts, &used)) {
        ctx_->RecordRule("implication-contradiction: scan " +
                         scan->table_name());
        record_sources(used, 10.0);
        RewriteCertificate cert;
        cert.kind = CertificateKind::kImplicationContradiction;
        cert.rule = "implication-contradiction: scan " + scan->table_name();
        cert.table = scan->table_name();
        AppendFactPremises(engine.facts(), used, ctx_->scs, &cert.premises);
        for (const Predicate& p : scan->predicates()) {
          if (!p.estimation_only) {
            cert.premise_exprs.push_back(p.expr->Clone());
          }
        }
        ctx_->RecordCertificate(std::move(cert));
        scan->predicates().push_back(Predicate(
            MakeLiteral(Value::Bool(false)), false, 1.0, "contradiction"));
        return Status::OK();
      }

      // Redundancy pruning: drop a real conjunct when the other remaining
      // real predicates plus the fact base entail it. One erasure at a
      // time so a mutually-implying pair keeps one member. SC-introduced
      // predicates are exempt — the fact that derived them would prove
      // them redundant immediately, undoing the introduction.
      auto& preds = scan->predicates();
      for (auto it = preds.begin(); it != preds.end();) {
        if (it->estimation_only || it->origin.rfind("sc:", 0) == 0) {
          ++it;
          continue;
        }
        std::vector<const Expr*> premises;
        for (const Predicate& other : preds) {
          if (&other == &*it || other.estimation_only) continue;
          ImplicationEngine::CollectConjuncts(*other.expr, &premises);
        }
        std::set<std::string> prune_used;
        const SymbolicEnv env = engine.MakeEnv(premises);
        if (!env.unsat && engine.EnvEntails(env, *it->expr, &prune_used)) {
          ctx_->RecordRule(StrFormat("implication-prune: %s",
                                     it->expr->ToString().c_str()));
          record_sources(prune_used, 1.0);
          RewriteCertificate cert;
          cert.kind = CertificateKind::kImplicationPrune;
          cert.rule = StrFormat("implication-prune: %s",
                                it->expr->ToString().c_str());
          cert.table = scan->table_name();
          AppendFactPremises(engine.facts(), prune_used, ctx_->scs,
                             &cert.premises);
          for (const Predicate& other : preds) {
            if (&other == &*it || other.estimation_only) continue;
            cert.premise_exprs.push_back(other.expr->Clone());
          }
          cert.conclusion_expr = it->expr->Clone();
          ctx_->RecordCertificate(std::move(cert));
          it = preds.erase(it);
          continue;
        }
        ++it;
      }
    }
  }
  return Status::OK();
}

Result<PlanPtr> Rewriter::MaybeExceptionAstRewrite(PlanPtr node) {
  if (!ctx_->enable_exception_asts || ctx_->scs == nullptr ||
      ctx_->mvs == nullptr || node->kind() != PlanKind::kScan) {
    return node;
  }
  auto* scan = static_cast<ScanNode*>(node.get());
  if (scan->external_table() != nullptr) return node;

  std::vector<SimplePredicate> simples;
  for (const Predicate& p : scan->predicates()) {
    if (p.estimation_only || p.origin != "user") continue;
    std::vector<SimplePredicate> expanded;
    if (ExpandSimplePredicates(*p.expr, &expanded)) {
      for (SimplePredicate& sp : expanded) simples.push_back(std::move(sp));
    }
  }
  if (simples.empty()) return node;

  for (SoftConstraint* sc : ctx_->scs->On(scan->table_name())) {
    auto* offset = dynamic_cast<ColumnOffsetSc*>(sc);
    if (offset == nullptr || !sc->active() || sc->IsAbsolute()) continue;
    auto it = ctx_->exception_asts.find(sc->name());
    if (it == ctx_->exception_asts.end()) continue;
    MaterializedView* view = ctx_->mvs->Find(it->second);
    if (view == nullptr || view->table() == nullptr) continue;
    // Rows with a NULL in either column satisfy the SC vacuously and are
    // not in the exception table, so the UNION would lose them unless both
    // columns are non-nullable.
    if (scan->output_schema().Column(offset->col_x()).nullable ||
        scan->output_schema().Column(offset->col_y()).nullable) {
      continue;
    }

    std::vector<SimplePredicate> derived;
    for (const SimplePredicate& sp : simples) {
      for (SimplePredicate& d : offset->DerivePredicates(sp)) {
        derived.push_back(std::move(d));
      }
    }
    if (derived.empty()) continue;
    // Worth doing only when the derived column opens an index path.
    bool derived_indexed = false;
    for (const SimplePredicate& d : derived) {
      const std::string col_name =
          scan->output_schema().Column(d.column).name;
      if (ctx_->catalog->FindIndex(scan->table_name(), col_name) != nullptr) {
        derived_indexed = true;
      }
    }
    if (!derived_indexed) continue;

    const std::string origin = "ast:" + sc->name();
    // Branch 1: base scan plus the introduced (SC-implied) predicate —
    // captures all compliant rows.
    PlanPtr branch1 = scan->Clone();
    static_cast<ScanNode*>(branch1.get())
        ->predicates()
        .push_back(MakeDerivedPredicate(scan->output_schema(), derived,
                                        /*estimation_only=*/false, 1.0,
                                        origin));
    // Branch 2: the exception AST under the original predicates — captures
    // exactly the violating rows. UNION ALL is safe: the two branches are
    // disjoint by construction (§4.4).
    auto branch2 = std::make_unique<ScanNode>(view->name(),
                                              scan->output_schema());
    branch2->set_external_table(view->table());
    for (const Predicate& p : scan->predicates()) {
      if (p.estimation_only) continue;
      branch2->predicates().push_back(p.Clone());
    }
    ctx_->RecordRule("exception-ast: " + origin + " via " + view->name());
    ctx_->RecordScUse(sc->name(), 1.0);

    std::vector<PlanPtr> branches;
    branches.push_back(std::move(branch1));
    branches.push_back(std::move(branch2));
    return PlanPtr(std::make_unique<UnionAllNode>(
        std::move(branches), std::vector<std::optional<Predicate>>()));
  }
  return node;
}

Status Rewriter::ApplyJoinHoles(JoinNode* join) {
  if (!ctx_->enable_hole_trimming || ctx_->scs == nullptr) return Status::OK();
  if (join->children()[0]->kind() != PlanKind::kScan ||
      join->children()[1]->kind() != PlanKind::kScan) {
    return Status::OK();
  }
  auto* left = static_cast<ScanNode*>(join->mutable_children()[0].get());
  auto* right = static_cast<ScanNode*>(join->mutable_children()[1].get());

  for (SoftConstraint* sc : ctx_->scs->ByKind(ScKind::kJoinHole)) {
    auto* hole = static_cast<JoinHoleSc*>(sc);
    if (!hole->IsAbsolute() || hole->holes().empty()) continue;

    // Orient: hole left/right tables onto the join children.
    ScanNode* a_scan = nullptr;
    ScanNode* b_scan = nullptr;
    if (hole->left_table() == left->table_name() &&
        hole->right_table() == right->table_name()) {
      a_scan = left;
      b_scan = right;
    } else if (hole->left_table() == right->table_name() &&
               hole->right_table() == left->table_name()) {
      a_scan = right;
      b_scan = left;
    } else {
      continue;
    }
    // The join must be on the hole's join columns.
    bool key_match = false;
    for (const JoinNode::EquiKey& key : join->equi_keys()) {
      const ColumnIdx l = key.left;
      const ColumnIdx r = key.right;
      if (a_scan == left) {
        key_match = key_match || (l == hole->left_join_col() &&
                                  r == hole->right_join_col());
      } else {
        key_match = key_match || (l == hole->right_join_col() &&
                                  r == hole->left_join_col());
      }
    }
    if (!key_match) continue;

    // Hole reasoning ranges over the attr values; NULL attrs still join, so
    // adding attr predicates is only sound on non-nullable columns.
    if (a_scan->output_schema().Column(hole->attr_a()).nullable ||
        b_scan->output_schema().Column(hole->attr_b()).nullable) {
      continue;
    }
    double a_lo, a_hi, b_lo, b_hi;
    if (!QueryRangeFor(*a_scan, hole->attr_a(), ctx_->stats, &a_lo, &a_hi) ||
        !QueryRangeFor(*b_scan, hole->attr_b(), ctx_->stats, &b_lo, &b_hi)) {
      continue;
    }

    if (hole->CoversQuery(a_lo, a_hi, b_lo, b_hi)) {
      ctx_->RecordRule("join-hole-prune: sc:" + sc->name());
      ctx_->RecordScUse(sc->name(), 10.0);
      a_scan->predicates().push_back(Predicate(
          MakeLiteral(Value::Bool(false)), false, 1.0, "sc:" + sc->name()));
      continue;
    }

    double new_a_lo = a_lo, new_a_hi = a_hi;
    if (hole->TrimARange(&new_a_lo, &new_a_hi, b_lo, b_hi) &&
        !HasPredicateFromOrigin(*a_scan, "sc:" + sc->name())) {
      std::vector<SimplePredicate> trimmed;
      const TypeId a_type =
          a_scan->output_schema().Column(hole->attr_a()).type;
      auto as_value = [a_type](double v) {
        return a_type == TypeId::kDouble
                   ? Value::Double(v)
                   : Value::Int64(static_cast<std::int64_t>(v));
      };
      if (new_a_lo > a_lo) {
        trimmed.push_back({hole->attr_a(), CompareOp::kGe, as_value(new_a_lo)});
      }
      if (new_a_hi < a_hi) {
        trimmed.push_back({hole->attr_a(), CompareOp::kLe, as_value(new_a_hi)});
      }
      if (!trimmed.empty()) {
        a_scan->predicates().push_back(
            MakeDerivedPredicate(a_scan->output_schema(), trimmed, false, 1.0,
                                 "sc:" + sc->name()));
        ctx_->RecordRule("join-hole-trim-a: sc:" + sc->name());
        ctx_->RecordScUse(sc->name(), 2.0);
      }
    }
    double new_b_lo = b_lo, new_b_hi = b_hi;
    if (hole->TrimBRange(&new_b_lo, &new_b_hi, a_lo, a_hi) &&
        !HasPredicateFromOrigin(*b_scan, "sc:" + sc->name())) {
      std::vector<SimplePredicate> trimmed;
      const TypeId b_type =
          b_scan->output_schema().Column(hole->attr_b()).type;
      auto as_value = [b_type](double v) {
        return b_type == TypeId::kDouble
                   ? Value::Double(v)
                   : Value::Int64(static_cast<std::int64_t>(v));
      };
      if (new_b_lo > b_lo) {
        trimmed.push_back({hole->attr_b(), CompareOp::kGe, as_value(new_b_lo)});
      }
      if (new_b_hi < b_hi) {
        trimmed.push_back({hole->attr_b(), CompareOp::kLe, as_value(new_b_hi)});
      }
      if (!trimmed.empty()) {
        b_scan->predicates().push_back(
            MakeDerivedPredicate(b_scan->output_schema(), trimmed, false, 1.0,
                                 "sc:" + sc->name()));
        ctx_->RecordRule("join-hole-trim-b: sc:" + sc->name());
        ctx_->RecordScUse(sc->name(), 2.0);
      }
    }
  }
  return Status::OK();
}

Result<PlanPtr> Rewriter::EliminateJoins(
    PlanPtr node, const std::vector<ColumnIdx>& required_above) {
  switch (node->kind()) {
    case PlanKind::kScan:
      return node;
    case PlanKind::kProject: {
      auto* proj = static_cast<ProjectNode*>(node.get());
      std::vector<ColumnIdx> required;
      for (const ExprPtr& e : proj->exprs()) CollectExprColumns(*e, &required);
      SOFTDB_ASSIGN_OR_RETURN(
          node->mutable_children()[0],
          EliminateJoins(std::move(node->mutable_children()[0]),
                         Dedupe(std::move(required))));
      return node;
    }
    case PlanKind::kFilter: {
      auto* filter = static_cast<FilterNode*>(node.get());
      std::vector<ColumnIdx> required = required_above;
      for (const Predicate& p : filter->predicates()) {
        CollectExprColumns(*p.expr, &required);
      }
      SOFTDB_ASSIGN_OR_RETURN(
          node->mutable_children()[0],
          EliminateJoins(std::move(node->mutable_children()[0]),
                         Dedupe(std::move(required))));
      return node;
    }
    case PlanKind::kSort: {
      auto* sort = static_cast<SortNode*>(node.get());
      std::vector<ColumnIdx> required = required_above;
      for (const SortKey& k : sort->keys()) {
        CollectExprColumns(*k.expr, &required);
      }
      SOFTDB_ASSIGN_OR_RETURN(
          node->mutable_children()[0],
          EliminateJoins(std::move(node->mutable_children()[0]),
                         Dedupe(std::move(required))));
      return node;
    }
    case PlanKind::kLimit: {
      SOFTDB_ASSIGN_OR_RETURN(
          node->mutable_children()[0],
          EliminateJoins(std::move(node->mutable_children()[0]),
                         required_above));
      return node;
    }
    case PlanKind::kAggregate: {
      auto* agg = static_cast<AggregateNode*>(node.get());
      std::vector<ColumnIdx> required;
      for (const ExprPtr& g : agg->group_by()) CollectExprColumns(*g, &required);
      for (const AggregateItem& a : agg->aggregates()) {
        if (a.arg) CollectExprColumns(*a.arg, &required);
      }
      SOFTDB_ASSIGN_OR_RETURN(
          node->mutable_children()[0],
          EliminateJoins(std::move(node->mutable_children()[0]),
                         Dedupe(std::move(required))));
      return node;
    }
    case PlanKind::kUnionAll: {
      // Positional correspondence across branches: conservatively require
      // every column within each branch.
      for (PlanPtr& child : node->mutable_children()) {
        std::vector<ColumnIdx> all;
        for (ColumnIdx i = 0; i < child->output_schema().NumColumns(); ++i) {
          all.push_back(i);
        }
        SOFTDB_ASSIGN_OR_RETURN(child,
                                EliminateJoins(std::move(child), all));
      }
      return node;
    }
    case PlanKind::kJoin:
      break;
  }

  auto* join = static_cast<JoinNode*>(node.get());
  const ColumnIdx left_arity = static_cast<ColumnIdx>(
      join->children()[0]->output_schema().NumColumns());

  bool right_used_above = std::any_of(
      required_above.begin(), required_above.end(),
      [&](ColumnIdx c) { return c >= left_arity; });

  bool eliminated = false;
  if (ctx_->enable_join_elimination && !right_used_above &&
      join->children()[1]->kind() == PlanKind::kScan &&
      !join->equi_keys().empty() &&
      join->conditions().size() == join->equi_keys().size()) {
    const auto* parent_scan =
        static_cast<const ScanNode*>(join->children()[1].get());
    const bool parent_filtered = std::any_of(
        parent_scan->predicates().begin(), parent_scan->predicates().end(),
        [](const Predicate& p) { return !p.estimation_only; });
    // All join conditions must be plain column-pair equalities (else the
    // join filters beyond the keys).
    bool all_equi = true;
    for (const Predicate& c : join->conditions()) {
      ColumnPairPredicate pair;
      if (!MatchColumnPair(*c.expr, &pair) || pair.op != CompareOp::kEq) {
        all_equi = false;
      }
    }
    if (!parent_filtered && all_equi && parent_scan->external_table() == nullptr) {
      // Resolve the child-side key columns to one base table; they must be
      // non-nullable for elimination to preserve the row count.
      std::string child_table;
      std::vector<ColumnIdx> child_cols;
      std::vector<ColumnIdx> parent_cols;
      bool resolvable = true;
      for (const JoinNode::EquiKey& key : join->equi_keys()) {
        std::string t;
        ColumnIdx base = 0;
        if (!ResolveToBase(*join->children()[0], key.left, &t, &base)) {
          resolvable = false;
          break;
        }
        if (child_table.empty()) {
          child_table = t;
        } else if (child_table != t) {
          resolvable = false;
          break;
        }
        child_cols.push_back(base);
        parent_cols.push_back(key.right);
      }
      if (resolvable) {
        auto child_base = ctx_->catalog->GetTable(child_table);
        bool not_null = child_base.ok();
        if (not_null) {
          for (ColumnIdx c : child_cols) {
            not_null = not_null && !(*child_base)->schema().Column(c).nullable;
          }
        }
        // Parent key must be unique over the joined columns.
        const bool parent_unique =
            ctx_->ics != nullptr &&
            ctx_->ics->IsUniqueOver(parent_scan->table_name(), parent_cols);

        // Inclusion guarantee: enforced/informational FK, or an absolute
        // inclusion SC.
        bool inclusion_ok = false;
        std::string inclusion_source;
        if (ctx_->ics != nullptr) {
          for (ForeignKeyConstraint* fk :
               ctx_->ics->ForeignKeysFrom(child_table)) {
            if (fk->parent_table() == parent_scan->table_name() &&
                fk->columns() == child_cols &&
                fk->parent_columns() == parent_cols) {
              inclusion_ok = true;
              inclusion_source = "fk:" + fk->name();
            }
          }
        }
        if (!inclusion_ok && ctx_->scs != nullptr) {
          for (SoftConstraint* sc : ctx_->scs->ByKind(ScKind::kInclusion)) {
            auto* inc = static_cast<InclusionSc*>(sc);
            if (inc->IsAbsolute() && inc->child_table() == child_table &&
                inc->parent_table() == parent_scan->table_name() &&
                inc->child_columns() == child_cols &&
                inc->parent_columns() == parent_cols) {
              inclusion_ok = true;
              inclusion_source = "sc:" + inc->name();
              ctx_->RecordScUse(inc->name(), 5.0);
            }
          }
        }

        if (not_null && parent_unique && inclusion_ok) {
          ctx_->RecordRule("join-elimination: " + parent_scan->table_name() +
                           " via " + inclusion_source);
          RewriteCertificate cert;
          cert.kind = CertificateKind::kJoinElimination;
          cert.rule = "join-elimination: " + parent_scan->table_name() +
                      " via " + inclusion_source;
          cert.table = child_table;
          cert.parent_table = parent_scan->table_name();
          cert.inclusion_source = inclusion_source;
          CertificatePremise unique;
          unique.kind = CertificatePremise::Kind::kUniqueKey;
          unique.child_table = parent_scan->table_name();
          unique.parent_columns = parent_cols;
          cert.premises.push_back(std::move(unique));
          CertificatePremise inclusion;
          inclusion.kind = CertificatePremise::Kind::kInclusion;
          inclusion.source = inclusion_source;
          inclusion.child_table = child_table;
          inclusion.columns = child_cols;
          inclusion.parent_columns = parent_cols;
          AppendScEpochs(inclusion_source, ctx_->scs, &inclusion.sc_epochs);
          cert.premises.push_back(std::move(inclusion));
          ctx_->RecordCertificate(std::move(cert));
          PlanPtr left = std::move(node->mutable_children()[0]);
          eliminated = true;
          return EliminateJoins(std::move(left), required_above);
        }
      }
    }
  }
  (void)eliminated;

  // Recurse into both sides with split requirement sets.
  std::vector<ColumnIdx> left_req, right_req;
  for (ColumnIdx c : required_above) {
    if (c < left_arity) {
      left_req.push_back(c);
    } else {
      right_req.push_back(c - left_arity);
    }
  }
  for (const Predicate& c : join->conditions()) {
    std::vector<ColumnIdx> refs;
    CollectExprColumns(*c.expr, &refs);
    for (ColumnIdx r : refs) {
      if (r < left_arity) {
        left_req.push_back(r);
      } else {
        right_req.push_back(r - left_arity);
      }
    }
  }
  SOFTDB_ASSIGN_OR_RETURN(node->mutable_children()[0],
                          EliminateJoins(std::move(node->mutable_children()[0]),
                                         Dedupe(std::move(left_req))));
  SOFTDB_ASSIGN_OR_RETURN(node->mutable_children()[1],
                          EliminateJoins(std::move(node->mutable_children()[1]),
                                         Dedupe(std::move(right_req))));
  return node;
}

Status Rewriter::PruneAggregate(AggregateNode* agg) {
  if (!ctx_->enable_fd_pruning || ctx_->scs == nullptr) return Status::OK();
  const PlanNode& child = *agg->children()[0];

  // Resolve each group column to (base table, base column).
  struct GroupCol {
    bool resolvable = false;
    std::string table;
    ColumnIdx base_col = 0;
  };
  std::vector<GroupCol> info(agg->group_by().size());
  for (std::size_t i = 0; i < agg->group_by().size(); ++i) {
    const Expr& g = *agg->group_by()[i];
    if (g.kind() != ExprKind::kColumnRef) continue;
    const auto& ref = static_cast<const ColumnRefExpr&>(g);
    if (!ref.bound()) continue;
    info[i].resolvable =
        ResolveToBase(child, ref.index(), &info[i].table, &info[i].base_col);
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < agg->group_by().size(); ++i) {
      if (!agg->key_flags()[i] || !info[i].resolvable) continue;
      // Determinant pool: other still-keyed group columns on the same table.
      std::vector<ColumnIdx> available;
      for (std::size_t j = 0; j < agg->group_by().size(); ++j) {
        if (j == i || !agg->key_flags()[j] || !info[j].resolvable) continue;
        if (info[j].table != info[i].table) continue;
        available.push_back(info[j].base_col);
      }
      if (available.empty()) continue;
      for (SoftConstraint* sc :
           ctx_->scs->ByKind(ScKind::kFunctionalDependency)) {
        auto* fd = static_cast<FunctionalDependencySc*>(sc);
        if (!fd->IsAbsolute() || fd->table() != info[i].table) continue;
        if (fd->Determines(available, info[i].base_col)) {
          agg->ClearKeyFlag(i);
          ctx_->RecordRule(StrFormat("fd-groupby-prune: col %s [sc:%s]",
                                     agg->group_by()[i]->ToString().c_str(),
                                     sc->name().c_str()));
          ctx_->RecordScUse(sc->name(), 1.0);
          changed = true;
          break;
        }
      }
    }
  }
  return Status::OK();
}

Status Rewriter::PruneSort(SortNode* sort) {
  if (!ctx_->enable_fd_pruning || ctx_->scs == nullptr) return Status::OK();
  const PlanNode& child = *sort->children()[0];

  std::vector<SortKey>& keys = sort->mutable_keys();
  // Walk keys left to right; a key functionally determined by the prefix
  // (on the same base table) cannot influence the order.
  std::vector<std::pair<std::string, ColumnIdx>> prefix;
  for (std::size_t i = 0; i < keys.size();) {
    const Expr& e = *keys[i].expr;
    std::string table;
    ColumnIdx base_col = 0;
    bool resolvable = false;
    if (e.kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      resolvable = ref.bound() &&
                   ResolveToBase(child, ref.index(), &table, &base_col);
    }
    bool pruned = false;
    if (resolvable && !prefix.empty()) {
      std::vector<ColumnIdx> available;
      for (const auto& [t, c] : prefix) {
        if (t == table) available.push_back(c);
      }
      if (!available.empty()) {
        for (SoftConstraint* sc :
             ctx_->scs->ByKind(ScKind::kFunctionalDependency)) {
          auto* fd = static_cast<FunctionalDependencySc*>(sc);
          if (!fd->IsAbsolute() || fd->table() != table) continue;
          if (fd->Determines(available, base_col)) {
            ctx_->RecordRule(StrFormat("fd-orderby-prune: key %s [sc:%s]",
                                       e.ToString().c_str(),
                                       sc->name().c_str()));
            ctx_->RecordScUse(sc->name(), 1.0);
            keys.erase(keys.begin() + static_cast<std::ptrdiff_t>(i));
            pruned = true;
            break;
          }
        }
      }
    }
    if (!pruned) {
      if (resolvable) prefix.emplace_back(table, base_col);
      ++i;
    }
  }
  return Status::OK();
}

Result<PlanPtr> Rewriter::PruneUnionBranches(PlanPtr node) {
  auto* u = static_cast<UnionAllNode*>(node.get());
  std::vector<PlanPtr>& children = u->mutable_children();
  std::vector<PlanPtr> kept;
  std::size_t pruned = 0;
  for (PlanPtr& c : children) {
    if (IsProvablyEmpty(*c)) {
      ++pruned;
      continue;
    }
    kept.push_back(std::move(c));
  }
  if (pruned > 0) {
    ctx_->RecordRule(StrFormat("unionall-knockoff: %zu branches removed",
                               pruned));
  }
  if (kept.empty()) {
    // Keep one (empty) branch so the schema survives.
    kept.push_back(std::move(children[0]));
  }
  if (kept.size() == 1) return std::move(kept[0]);
  return PlanPtr(std::make_unique<UnionAllNode>(
      std::move(kept), std::vector<std::optional<Predicate>>()));
}

Result<PlanPtr> Rewriter::RewriteNode(PlanPtr node) {
  // Children first (bottom-up).
  for (PlanPtr& child : node->mutable_children()) {
    SOFTDB_ASSIGN_OR_RETURN(child, RewriteNode(std::move(child)));
  }
  switch (node->kind()) {
    case PlanKind::kScan: {
      SOFTDB_RETURN_IF_ERROR(RewriteScan(static_cast<ScanNode*>(node.get())));
      return MaybeExceptionAstRewrite(std::move(node));
    }
    case PlanKind::kJoin:
      SOFTDB_RETURN_IF_ERROR(ApplyJoinHoles(static_cast<JoinNode*>(node.get())));
      return node;
    case PlanKind::kAggregate:
      SOFTDB_RETURN_IF_ERROR(
          PruneAggregate(static_cast<AggregateNode*>(node.get())));
      return node;
    case PlanKind::kSort: {
      SOFTDB_RETURN_IF_ERROR(PruneSort(static_cast<SortNode*>(node.get())));
      auto* sort = static_cast<SortNode*>(node.get());
      if (sort->keys().empty()) {
        // All keys pruned: the sort is a no-op.
        ctx_->RecordRule("sort-eliminated");
        return std::move(node->mutable_children()[0]);
      }
      return node;
    }
    case PlanKind::kUnionAll:
      if (ctx_->enable_unionall_pruning) {
        return PruneUnionBranches(std::move(node));
      }
      return node;
    default:
      return node;
  }
}

Result<PlanPtr> Rewriter::Rewrite(PlanPtr plan) {
  const bool verify = ShouldVerifyPlans(ctx_->verify_plans);
  PlanVerifier verifier(
      {ctx_->catalog, ctx_->mvs, &ctx_->exception_asts});
  SOFTDB_ASSIGN_OR_RETURN(plan, RewriteNode(std::move(plan)));
  if (verify) {
    SOFTDB_RETURN_IF_ERROR(verifier.VerifyLogical(*plan, "rewrite"));
  }
  // Join elimination runs root-down with full requirement tracking.
  std::vector<ColumnIdx> all;
  for (ColumnIdx i = 0; i < plan->output_schema().NumColumns(); ++i) {
    all.push_back(i);
  }
  SOFTDB_ASSIGN_OR_RETURN(plan, EliminateJoins(std::move(plan), all));
  if (verify) {
    SOFTDB_RETURN_IF_ERROR(
        verifier.VerifyLogical(*plan, "join-elimination"));
  }
  return plan;
}

}  // namespace softdb
