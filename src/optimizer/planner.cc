#include "optimizer/planner.h"

#include <algorithm>
#include <cmath>

#include "analysis/certificate.h"
#include "analysis/implication.h"
#include "analysis/plan_verifier.h"
#include "constraints/zone_map_sc.h"
#include "optimizer/range_analysis.h"

namespace softdb {

namespace {

/// Clones the executable predicates only: twinned (estimation-only) SSC
/// predicates exist for the costing layer and must never reach an
/// executor's predicate list (PlanVerifier enforces this).
std::vector<Predicate> CloneExecutablePredicates(
    const std::vector<Predicate>& preds) {
  std::vector<Predicate> out;
  out.reserve(preds.size());
  for (const Predicate& p : preds) {
    if (p.estimation_only) continue;
    out.push_back(p.Clone());
  }
  return out;
}

/// Converts a numeric range bound to a Value of the column's type for index
/// probing. Integer-family columns round conservatively (floor for lower
/// bounds is wrong — we must not miss rows — so lower bounds use ceil when
/// exclusive handling would drop them; here bounds are already inclusive
/// ranges from ColumnRange, so floor/ceil keep soundness).
Value BoundValue(double v, TypeId type, bool is_lower) {
  switch (type) {
    case TypeId::kDouble:
      return Value::Double(v);
    case TypeId::kDate:
      return Value::Date(static_cast<std::int64_t>(
          is_lower ? std::ceil(v - 1e-9) : std::floor(v + 1e-9)));
    default:
      return Value::Int64(static_cast<std::int64_t>(
          is_lower ? std::ceil(v - 1e-9) : std::floor(v + 1e-9)));
  }
}

/// §4.2 runtime parameterization: simple predicates over indexed columns
/// are re-checked against the index's *current* min/max at every Open, so
/// the compiled plan adapts to updates without invalidation. Shared by the
/// row and batch sequential scans.
template <typename ScanOpT>
void WireRuntimeParams(const OptimizerContext* ctx, const ScanNode& scan,
                       ScanOpT* op) {
  if (!ctx->enable_runtime_parameterization ||
      scan.external_table() != nullptr) {
    return;
  }
  // Iterate the op's own (twin-stripped) predicate list so the recorded
  // predicate_index stays valid after estimation-only predicates were
  // filtered out of the executable list.
  for (std::size_t i = 0; i < op->predicates().size(); ++i) {
    const Predicate& p = op->predicates()[i];
    SimplePredicate sp;
    if (!MatchSimplePredicate(*p.expr, &sp)) continue;
    for (const Index* index : ctx->catalog->IndexesOn(scan.table_name())) {
      if (index->column() == sp.column) {
        op->AddRuntimeParameter(i, index, sp);
        break;
      }
    }
  }
}

// ------------------------------------------------- zone-map block skipping

bool ZmIntLike(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDate || t == TypeId::kBool;
}
bool ZmNumeric(TypeId t) { return ZmIntLike(t) || t == TypeId::kDouble; }
bool ZmSameFamily(TypeId a, TypeId b) {
  if (ZmNumeric(a) && ZmNumeric(b)) return true;
  return a == b;
}

const ColumnRefExpr* AsBoundColumn(const Expr* e) {
  if (e->kind() != ExprKind::kColumnRef) return nullptr;
  const auto* ref = static_cast<const ColumnRefExpr*>(e);
  return ref->bound() ? ref : nullptr;
}

const Value* AsLiteral(const Expr* e) {
  if (e->kind() != ExprKind::kLiteral) return nullptr;
  return &static_cast<const LiteralExpr*>(e)->value();
}

/// True when one comparison operand pairing cannot raise a type error on
/// any row: a NULL literal short-circuits to NULL before family checks,
/// and a non-NULL literal errors iff its family differs from the column's.
bool OperandPairErrorFree(TypeId col_type, const Value& literal) {
  return literal.is_null() || ZmSameFamily(col_type, literal.type());
}

/// Whether evaluating `e` can provably never raise a runtime error on ANY
/// row of `schema`. This gates zone-map skipping: a skipped block's rows
/// are never evaluated, so every predicate of the scan — not only the one
/// that proved the block empty — must be statically error-free, or a
/// pruned scan could silently swallow a type error the row engine raises.
bool PredicateErrorFree(const Expr& e, const Schema& schema) {
  switch (e.kind()) {
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(e);
      const ColumnRefExpr* lc = AsBoundColumn(cmp.left());
      const ColumnRefExpr* rc = AsBoundColumn(cmp.right());
      const Value* lv = AsLiteral(cmp.left());
      const Value* rv = AsLiteral(cmp.right());
      if (lc != nullptr && rv != nullptr) {
        return OperandPairErrorFree(schema.Column(lc->index()).type, *rv);
      }
      if (rc != nullptr && lv != nullptr) {
        return OperandPairErrorFree(schema.Column(rc->index()).type, *lv);
      }
      if (lc != nullptr && rc != nullptr) {
        return ZmSameFamily(schema.Column(lc->index()).type,
                            schema.Column(rc->index()).type);
      }
      return false;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(e);
      const ColumnRefExpr* col = AsBoundColumn(bt.input());
      const Value* lo = AsLiteral(bt.lo());
      const Value* hi = AsLiteral(bt.hi());
      if (col == nullptr || lo == nullptr || hi == nullptr) return false;
      const TypeId t = schema.Column(col->index()).type;
      return OperandPairErrorFree(t, *lo) && OperandPairErrorFree(t, *hi);
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      const ColumnRefExpr* col = AsBoundColumn(in.input());
      if (col == nullptr) return false;
      const TypeId t = schema.Column(col->index()).type;
      for (const ExprPtr& item : in.list()) {
        const Value* v = AsLiteral(item.get());
        if (v == nullptr || !OperandPairErrorFree(t, *v)) return false;
      }
      return true;
    }
    case ExprKind::kIsNull:
      return AsBoundColumn(
                 static_cast<const IsNullExpr&>(e).input()) != nullptr;
    default:
      return false;  // Logical / arithmetic shapes: assume they can raise.
  }
}

/// The prune tests one scan's predicates impose on one zone-mapped column.
struct ZonePruneTests {
  std::vector<Interval> intervals;  // From comparisons / BETWEEN halves.
  bool has_comparison = false;      // Any value test (rejects NULL rows).
  bool has_is_null = false;         // Bare `col IS NULL` conjunct.
  bool has_is_not_null = false;     // Bare `col IS NOT NULL` conjunct.
};

ZonePruneTests CollectPruneTests(const std::vector<Predicate>& preds,
                                 ColumnIdx column) {
  ZonePruneTests tests;
  std::vector<SimplePredicate> sps;
  for (const Predicate& p : preds) {
    if (p.estimation_only) continue;
    sps.clear();
    if (ExpandSimplePredicates(*p.expr, &sps)) {
      for (const SimplePredicate& sp : sps) {
        if (sp.column != column || sp.constant.is_null() ||
            !ZmNumeric(sp.constant.type())) {
          continue;
        }
        tests.has_comparison = true;
        // kNe yields no interval: it only excludes a point, which cannot
        // empty a [min, max] envelope wider than that point.
        if (auto iv = IntervalForComparison(sp.op, sp.constant)) {
          tests.intervals.push_back(*iv);
        }
      }
      continue;
    }
    if (p.expr->kind() == ExprKind::kIsNull) {
      const auto& isn = static_cast<const IsNullExpr&>(*p.expr);
      const ColumnRefExpr* col = AsBoundColumn(isn.input());
      if (col != nullptr && col->index() == column) {
        (isn.negated() ? tests.has_is_not_null : tests.has_is_null) = true;
      }
    }
  }
  return tests;
}

}  // namespace

ZoneMapSkips PhysicalPlanner::ZoneMapSkipsFor(const ScanNode& scan,
                                              const Table* table) const {
  auto it = zone_skip_memo_.find(&scan);
  if (it != zone_skip_memo_.end()) return it->second;
  ZoneMapSkips skips = ComputeZoneMapSkips(scan, table);
  zone_skip_memo_.emplace(&scan, skips);
  return skips;
}

ZoneMapSkips PhysicalPlanner::ComputeZoneMapSkips(const ScanNode& scan,
                                                  const Table* table) const {
  if (!ctx_->enable_zone_maps || ctx_->scs == nullptr ||
      scan.external_table() != nullptr) {
    return nullptr;
  }
  const std::size_t nblocks =
      (table->NumSlots() + kZoneMapBlockRows - 1) / kZoneMapBlockRows;
  if (nblocks == 0) return nullptr;

  std::vector<ZoneMapSc*> maps;
  for (SoftConstraint* sc : ctx_->scs->On(scan.table_name())) {
    if (sc->kind() != ScKind::kBlockZoneMap || !sc->IsAbsolute()) continue;
    auto* zm = static_cast<ZoneMapSc*>(sc);
    if (!ZmNumeric(table->schema().Column(zm->column()).type)) continue;
    maps.push_back(zm);
  }
  if (maps.empty()) return nullptr;

  // Error-reachability gate: see PredicateErrorFree.
  for (const Predicate& p : scan.predicates()) {
    if (p.estimation_only) continue;
    if (!PredicateErrorFree(*p.expr, table->schema())) return nullptr;
  }

  auto skips = std::make_shared<std::vector<std::uint8_t>>(nblocks, 0);
  bool any_test = false;
  for (ZoneMapSc* zm : maps) {
    const ZonePruneTests tests =
        CollectPruneTests(scan.predicates(), zm->column());
    if (!tests.has_comparison && !tests.has_is_null &&
        !tests.has_is_not_null) {
      continue;
    }
    any_test = true;
    const std::vector<ZoneMapSc::BlockSma> blocks = zm->SnapshotBlocks();
    const std::size_t n = std::min(nblocks, blocks.size());
    std::uint64_t contributed = 0;
    std::vector<std::uint64_t> sc_blocks;
    for (std::size_t b = 0; b < n; ++b) {
      bool skip = false;
      if (!blocks[b].has_value) {
        // No live non-NULL value in the block: any value test (which NULL
        // rows can never satisfy) or IS NOT NULL proves it empty.
        skip = tests.has_comparison || tests.has_is_not_null;
      } else {
        // Comparisons are decided in double space, exactly as DomainSc
        // classifies predicates (int64 beyond 2^53 loses precision both
        // places; the envelope stays an over-approximation either way).
        const Interval envelope =
            Interval::Range(blocks[b].min, blocks[b].max);
        for (const Interval& iv : tests.intervals) {
          Interval clipped = iv;
          clipped.Intersect(envelope);
          if (clipped.empty) {
            skip = true;
            break;
          }
        }
      }
      if (!skip && tests.has_is_null && blocks[b].null_count == 0) {
        skip = true;  // `col IS NULL` over a provably NULL-free block.
      }
      if (skip) {
        if ((*skips)[b] == 0) (*skips)[b] = 1;
        ++contributed;
        sc_blocks.push_back(b);
      }
    }
    if (contributed > 0) {
      // Rewrite-consumed: the skip set's validity rests on this SC, so the
      // epoch-snapshot / degraded-retry protocol must cover it. Benefit is
      // the simulated pages of row work avoided.
      ctx_->RecordScUse(zm->name(),
                        static_cast<double>(contributed) *
                            (static_cast<double>(kZoneMapBlockRows) /
                             static_cast<double>(kRowsPerPage)),
                        /*rewrite_consumed=*/true);
      RewriteCertificate cert;
      cert.kind = CertificateKind::kZoneMapSkip;
      cert.rule = "zone-map-skip: " + zm->name();
      cert.table = scan.table_name();
      cert.zm_column = zm->column();
      cert.skipped_blocks = sc_blocks;
      for (std::uint64_t b : sc_blocks) {
        CertificatePremise p;
        p.kind = CertificatePremise::Kind::kZoneBlock;
        p.source = "sc:" + zm->name();
        AppendScEpochs(p.source, ctx_->scs, &p.sc_epochs);
        p.block_index = b;
        p.block_min = blocks[b].min;
        p.block_max = blocks[b].max;
        p.block_has_value = blocks[b].has_value;
        p.block_null_count = blocks[b].null_count;
        cert.premises.push_back(std::move(p));
      }
      for (const Predicate& pred : scan.predicates()) {
        if (!pred.estimation_only) {
          cert.premise_exprs.push_back(pred.expr->Clone());
        }
      }
      ctx_->RecordCertificate(std::move(cert));
    }
  }
  if (!any_test) return nullptr;
  return skips;
}

Result<AccessPathChoice> PhysicalPlanner::ChooseAccessPath(
    const ScanNode& scan) const {
  AccessPathChoice choice;
  const Table* table = scan.external_table();
  if (table == nullptr) {
    SOFTDB_ASSIGN_OR_RETURN(Table * t, ctx_->catalog->GetTable(scan.table_name()));
    table = t;
  }
  choice.seq_cost_pages = static_cast<double>(table->NumPages());
  choice.cost_pages = choice.seq_cost_pages;
  if (scan.external_table() != nullptr) return choice;  // No indexes on ASTs.

  const RangeMap ranges =
      BuildRangeMap(scan.predicates(), /*include_estimation_only=*/false);
  if (ranges.unsatisfiable) {
    choice.cost_pages = 0.0;
    return choice;
  }

  const double rows = static_cast<double>(table->NumRows());
  for (const Index* index : ctx_->catalog->IndexesOn(scan.table_name())) {
    const ColumnRange* range = ranges.Find(index->column());
    if (range == nullptr || (!range->Bounded() && !range->equal.has_value())) {
      continue;
    }
    const double selectivity = estimator_->RangeSelectivity(
        scan.table_name(), index->column(), *range);
    const double matching = selectivity * rows;
    // Leaf pages of the range + data pages scaled by the index's measured
    // clustering (page-switch density), capped at the table's page count.
    const double data_pages =
        std::min(static_cast<double>(table->NumPages()),
                 matching * index->PageSwitchDensity());
    const double cost =
        matching / static_cast<double>(kRowsPerPage) + data_pages + 1.0;
    if (cost < choice.cost_pages) {
      choice.cost_pages = cost;
      choice.index = index;
      const TypeId col_type =
          table->schema().Column(index->column()).type;
      if (range->equal.has_value()) {
        choice.lo = *range->equal;
        choice.hi = *range->equal;
        choice.lo_inclusive = choice.hi_inclusive = true;
      } else {
        if (std::isfinite(range->lo)) {
          choice.lo = BoundValue(range->lo, col_type, /*is_lower=*/false);
          choice.lo_inclusive = true;  // Conservative: never miss rows.
        } else {
          choice.lo.reset();
        }
        if (std::isfinite(range->hi)) {
          choice.hi = BoundValue(range->hi, col_type, /*is_lower=*/true);
          choice.hi_inclusive = true;
        } else {
          choice.hi.reset();
        }
      }
    }
  }
  return choice;
}

Result<OperatorPtr> PhysicalPlanner::PlanScan(const ScanNode& scan) const {
  const Table* table = scan.external_table();
  if (table == nullptr) {
    SOFTDB_ASSIGN_OR_RETURN(Table * t,
                            ctx_->catalog->GetTable(scan.table_name()));
    table = t;
  }
  const RangeMap ranges =
      BuildRangeMap(scan.predicates(), /*include_estimation_only=*/false);
  if (ranges.unsatisfiable) {
    return OperatorPtr(std::make_unique<EmptyOp>(scan.output_schema()));
  }
  SOFTDB_ASSIGN_OR_RETURN(AccessPathChoice choice, ChooseAccessPath(scan));
  if (choice.index != nullptr) {
    return OperatorPtr(std::make_unique<IndexRangeScanOp>(
        table, choice.index, scan.output_schema(), choice.lo,
        choice.lo_inclusive, choice.hi, choice.hi_inclusive,
        CloneExecutablePredicates(scan.predicates())));
  }
  auto seq = std::make_unique<SeqScanOp>(table, scan.output_schema(),
                                         CloneExecutablePredicates(scan.predicates()));
  WireRuntimeParams(ctx_, scan, seq.get());
  seq->SetZoneMapSkips(ZoneMapSkipsFor(scan, table));
  return OperatorPtr(std::move(seq));
}

Result<BatchOperatorPtr> PhysicalPlanner::TryPlanBatch(
    const PlanNode& node) const {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      const Table* table = scan.external_table();
      if (table == nullptr) {
        SOFTDB_ASSIGN_OR_RETURN(Table * t,
                                ctx_->catalog->GetTable(scan.table_name()));
        table = t;
      }
      const RangeMap ranges =
          BuildRangeMap(scan.predicates(), /*include_estimation_only=*/false);
      // Unsatisfiable scans become the row engine's EmptyOp.
      if (ranges.unsatisfiable) return BatchOperatorPtr(nullptr);
      SOFTDB_ASSIGN_OR_RETURN(AccessPathChoice choice, ChooseAccessPath(scan));
      if (choice.index != nullptr) {
        return BatchOperatorPtr(std::make_unique<BatchIndexRangeScanOp>(
            table, choice.index, scan.output_schema(), choice.lo,
            choice.lo_inclusive, choice.hi, choice.hi_inclusive,
            CloneExecutablePredicates(scan.predicates())));
      }
      auto seq = std::make_unique<BatchSeqScanOp>(
          table, scan.output_schema(), CloneExecutablePredicates(scan.predicates()));
      WireRuntimeParams(ctx_, scan, seq.get());
      seq->SetZoneMapSkips(ZoneMapSkipsFor(scan, table));
      return BatchOperatorPtr(std::move(seq));
    }
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      SOFTDB_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              TryPlanBatch(*node.children()[0]));
      if (!child) return BatchOperatorPtr(nullptr);
      return BatchOperatorPtr(std::make_unique<BatchFilterOp>(
          std::move(child), CloneExecutablePredicates(filter.predicates())));
    }
    case PlanKind::kProject: {
      const auto& proj = static_cast<const ProjectNode&>(node);
      SOFTDB_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              TryPlanBatch(*node.children()[0]));
      if (!child) return BatchOperatorPtr(nullptr);
      std::vector<ExprPtr> exprs;
      exprs.reserve(proj.exprs().size());
      for (const ExprPtr& e : proj.exprs()) exprs.push_back(e->Clone());
      return BatchOperatorPtr(std::make_unique<BatchProjectOp>(
          std::move(child), proj.output_schema(), std::move(exprs)));
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      if (join.equi_keys().empty() || ctx_->prefer_sort_merge_join) {
        return BatchOperatorPtr(nullptr);
      }
      // The batch join rebuilds output cells through schema-typed columns;
      // scan/filter/join inputs carry table-typed values so the rebuild is
      // lossless. Projection inputs may carry expression-typed NULLs, so
      // those joins stay on the row engine.
      for (const PlanPtr& c : node.children()) {
        if (c->kind() != PlanKind::kScan && c->kind() != PlanKind::kFilter &&
            c->kind() != PlanKind::kJoin) {
          return BatchOperatorPtr(nullptr);
        }
      }
      SOFTDB_ASSIGN_OR_RETURN(BatchOperatorPtr left,
                              TryPlanBatch(*node.children()[0]));
      if (!left) return BatchOperatorPtr(nullptr);
      SOFTDB_ASSIGN_OR_RETURN(BatchOperatorPtr right,
                              TryPlanBatch(*node.children()[1]));
      if (!right) return BatchOperatorPtr(nullptr);
      return BatchOperatorPtr(std::make_unique<BatchHashJoinOp>(
          std::move(left), std::move(right), join.equi_keys(),
          CloneExecutablePredicates(join.conditions())));
    }
    default:
      return BatchOperatorPtr(nullptr);
  }
}

Result<OperatorPtr> PhysicalPlanner::Plan(const PlanNode& node) const {
  SOFTDB_ASSIGN_OR_RETURN(OperatorPtr root,
                          Plan(node, /*allow_vectorized=*/true));
  if (ShouldVerifyPlans(ctx_->verify_plans)) {
    PlanVerifier verifier({ctx_->catalog, ctx_->mvs, &ctx_->exception_asts});
    SOFTDB_RETURN_IF_ERROR(
        verifier.VerifyPhysical(*root, "physical-planning"));
  }
  return root;
}

Result<std::optional<PipelineSpec>> PhysicalPlanner::TryBuildPipelineSpec(
    const PlanNode& node, bool allow_project) const {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      // External tables (exception ASTs) have no morsel-splittable
      // storage contract; unsatisfiable scans become EmptyOp; index
      // access paths stay on the serial batch engine.
      if (scan.external_table() != nullptr) return std::optional<PipelineSpec>();
      const RangeMap ranges =
          BuildRangeMap(scan.predicates(), /*include_estimation_only=*/false);
      if (ranges.unsatisfiable) return std::optional<PipelineSpec>();
      SOFTDB_ASSIGN_OR_RETURN(AccessPathChoice choice, ChooseAccessPath(scan));
      if (choice.index != nullptr) return std::optional<PipelineSpec>();
      SOFTDB_ASSIGN_OR_RETURN(Table * table,
                              ctx_->catalog->GetTable(scan.table_name()));
      PipelineSpec spec;
      spec.table = table;
      spec.scan_schema = scan.output_schema();
      spec.scan_predicates = CloneExecutablePredicates(scan.predicates());
      WireRuntimeParams(ctx_, scan, &spec);
      spec.zone_skips = ZoneMapSkipsFor(scan, table);
      return std::optional<PipelineSpec>(std::move(spec));
    }
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      SOFTDB_ASSIGN_OR_RETURN(
          std::optional<PipelineSpec> child,
          TryBuildPipelineSpec(*node.children()[0], /*allow_project=*/false));
      if (!child.has_value()) return std::optional<PipelineSpec>();
      PipelineStage stage;
      stage.kind = PipelineStage::Kind::kFilter;
      stage.predicates = CloneExecutablePredicates(filter.predicates());
      child->stages.push_back(std::move(stage));
      return child;
    }
    case PlanKind::kProject: {
      if (!allow_project) return std::optional<PipelineSpec>();
      const auto& proj = static_cast<const ProjectNode&>(node);
      SOFTDB_ASSIGN_OR_RETURN(
          std::optional<PipelineSpec> child,
          TryBuildPipelineSpec(*node.children()[0], /*allow_project=*/false));
      if (!child.has_value()) return std::optional<PipelineSpec>();
      PipelineStage stage;
      stage.kind = PipelineStage::Kind::kProject;
      stage.schema = proj.output_schema();
      stage.exprs.reserve(proj.exprs().size());
      for (const ExprPtr& e : proj.exprs()) stage.exprs.push_back(e->Clone());
      child->stages.push_back(std::move(stage));
      return child;
    }
    default:
      return std::optional<PipelineSpec>();
  }
}

Result<OperatorPtr> PhysicalPlanner::TryPlanParallel(
    const PlanNode& node) const {
  switch (node.kind()) {
    case PlanKind::kScan:
    case PlanKind::kFilter:
    case PlanKind::kProject: {
      SOFTDB_ASSIGN_OR_RETURN(std::optional<PipelineSpec> spec,
                              TryBuildPipelineSpec(node, /*allow_project=*/true));
      if (spec.has_value()) {
        return OperatorPtr(std::make_unique<ParallelPipelineOp>(
            std::move(*spec), ctx_->parallel_morsel_rows));
      }
      // Not a pure scan pipeline (e.g. a projection or filter over a
      // join): keep this node serial but let the subtree below it go
      // parallel. The row-engine wrapper accounts stats identically to
      // its batch counterpart, so output stays bit-identical.
      if (node.children().size() != 1) return OperatorPtr(nullptr);
      SOFTDB_ASSIGN_OR_RETURN(OperatorPtr child,
                              TryPlanParallel(*node.children()[0]));
      if (!child) return OperatorPtr(nullptr);
      if (node.kind() == PlanKind::kFilter) {
        const auto& filter = static_cast<const FilterNode&>(node);
        return OperatorPtr(std::make_unique<FilterOp>(
            std::move(child),
            CloneExecutablePredicates(filter.predicates())));
      }
      const auto& proj = static_cast<const ProjectNode&>(node);
      std::vector<ExprPtr> exprs;
      exprs.reserve(proj.exprs().size());
      for (const ExprPtr& e : proj.exprs()) exprs.push_back(e->Clone());
      return OperatorPtr(std::make_unique<ProjectOp>(
          std::move(child), proj.output_schema(), std::move(exprs)));
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      if (join.equi_keys().empty() || ctx_->prefer_sort_merge_join) {
        return OperatorPtr(nullptr);
      }
      // Same input restriction as the serial batch join: projection
      // inputs may carry expression-typed values, so only scan/filter
      // pipelines feed the parallel join. Nested joins fall back to the
      // serial batch engine wholesale.
      SOFTDB_ASSIGN_OR_RETURN(
          std::optional<PipelineSpec> probe,
          TryBuildPipelineSpec(*node.children()[0], /*allow_project=*/false));
      if (!probe.has_value()) return OperatorPtr(nullptr);
      SOFTDB_ASSIGN_OR_RETURN(
          std::optional<PipelineSpec> build,
          TryBuildPipelineSpec(*node.children()[1], /*allow_project=*/false));
      if (!build.has_value()) return OperatorPtr(nullptr);
      return OperatorPtr(std::make_unique<ParallelHashJoinOp>(
          std::move(*probe), std::move(*build), join.equi_keys(),
          CloneExecutablePredicates(join.conditions()),
          ctx_->parallel_morsel_rows));
    }
    default:
      return OperatorPtr(nullptr);
  }
}

Result<OperatorPtr> PhysicalPlanner::Plan(const PlanNode& node,
                                          bool allow_vectorized) const {
  // Parallel-safe subtrees first: morsel-driven execution subsumes the
  // serial batch lowering for the shapes it supports. Never under LIMIT
  // (allow_vectorized is cleared there) — the kParallelSafety invariant.
  if (allow_vectorized && ctx_->use_vectorized && ctx_->num_threads > 1) {
    SOFTDB_ASSIGN_OR_RETURN(OperatorPtr par, TryPlanParallel(node));
    if (par) return par;
  }
  if (allow_vectorized && ctx_->use_vectorized) {
    SOFTDB_ASSIGN_OR_RETURN(BatchOperatorPtr batch, TryPlanBatch(node));
    if (batch) {
      return OperatorPtr(std::make_unique<BatchAdapterOp>(std::move(batch)));
    }
  }
  switch (node.kind()) {
    case PlanKind::kScan:
      return PlanScan(static_cast<const ScanNode&>(node));
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      SOFTDB_ASSIGN_OR_RETURN(OperatorPtr child, Plan(*node.children()[0], allow_vectorized));
      return OperatorPtr(std::make_unique<FilterOp>(
          std::move(child), CloneExecutablePredicates(filter.predicates())));
    }
    case PlanKind::kProject: {
      const auto& proj = static_cast<const ProjectNode&>(node);
      SOFTDB_ASSIGN_OR_RETURN(OperatorPtr child, Plan(*node.children()[0], allow_vectorized));
      std::vector<ExprPtr> exprs;
      exprs.reserve(proj.exprs().size());
      for (const ExprPtr& e : proj.exprs()) exprs.push_back(e->Clone());
      return OperatorPtr(std::make_unique<ProjectOp>(
          std::move(child), proj.output_schema(), std::move(exprs)));
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      SOFTDB_ASSIGN_OR_RETURN(OperatorPtr left, Plan(*node.children()[0], allow_vectorized));
      SOFTDB_ASSIGN_OR_RETURN(OperatorPtr right, Plan(*node.children()[1], allow_vectorized));
      if (!join.equi_keys().empty()) {
        if (ctx_->prefer_sort_merge_join) {
          return OperatorPtr(std::make_unique<SortMergeJoinOp>(
              std::move(left), std::move(right), join.equi_keys(),
              CloneExecutablePredicates(join.conditions())));
        }
        return OperatorPtr(std::make_unique<HashJoinOp>(
            std::move(left), std::move(right), join.equi_keys(),
            CloneExecutablePredicates(join.conditions())));
      }
      return OperatorPtr(std::make_unique<NestedLoopJoinOp>(
          std::move(left), std::move(right),
          CloneExecutablePredicates(join.conditions())));
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      SOFTDB_ASSIGN_OR_RETURN(OperatorPtr child, Plan(*node.children()[0], allow_vectorized));
      std::vector<ExprPtr> groups;
      groups.reserve(agg.group_by().size());
      for (const ExprPtr& g : agg.group_by()) groups.push_back(g->Clone());
      std::vector<AggregateItem> aggs;
      aggs.reserve(agg.aggregates().size());
      for (const AggregateItem& a : agg.aggregates()) aggs.push_back(a.Clone());
      return OperatorPtr(std::make_unique<HashAggregateOp>(
          std::move(child), agg.output_schema(), std::move(groups),
          std::move(aggs), agg.key_flags()));
    }
    case PlanKind::kSort: {
      const auto& sort = static_cast<const SortNode&>(node);
      bool presorted = false;
      OperatorPtr child;

      // Interesting orders: ORDER BY on a prefix of an equi join's left
      // key columns (all ascending) — plan the join as sort-merge, whose
      // output already carries that order, and elide the sort.
      if (node.children()[0]->kind() == PlanKind::kJoin) {
        const auto& join =
            static_cast<const JoinNode&>(*node.children()[0]);
        bool matches = !join.equi_keys().empty() &&
                       sort.keys().size() <= join.equi_keys().size();
        for (std::size_t i = 0; matches && i < sort.keys().size(); ++i) {
          const SortKey& k = sort.keys()[i];
          matches = k.ascending &&
                    k.expr->kind() == ExprKind::kColumnRef &&
                    static_cast<const ColumnRefExpr&>(*k.expr).bound() &&
                    static_cast<const ColumnRefExpr&>(*k.expr).index() ==
                        join.equi_keys()[i].left;
        }
        if (matches) {
          SOFTDB_ASSIGN_OR_RETURN(OperatorPtr left,
                                  Plan(*join.children()[0], allow_vectorized));
          SOFTDB_ASSIGN_OR_RETURN(OperatorPtr right,
                                  Plan(*join.children()[1], allow_vectorized));
          child = std::make_unique<SortMergeJoinOp>(
              std::move(left), std::move(right), join.equi_keys(),
              CloneExecutablePredicates(join.conditions()));
          presorted = true;
        }
      }
      if (!child) {
        SOFTDB_ASSIGN_OR_RETURN(child, Plan(*node.children()[0], allow_vectorized));
      }
      // Sort elision: a single ascending key over the column an index scan
      // already delivers in order.
      if (!presorted && sort.keys().size() == 1 &&
          sort.keys()[0].ascending &&
          node.children()[0]->kind() == PlanKind::kScan &&
          sort.keys()[0].expr->kind() == ExprKind::kColumnRef) {
        const auto& scan = static_cast<const ScanNode&>(*node.children()[0]);
        const auto& ref =
            static_cast<const ColumnRefExpr&>(*sort.keys()[0].expr);
        auto choice = ChooseAccessPath(scan);
        if (choice.ok() && choice->index != nullptr && ref.bound() &&
            choice->index->column() == ref.index()) {
          presorted = true;
        }
      }
      std::vector<SortKey> keys;
      keys.reserve(sort.keys().size());
      for (const SortKey& k : sort.keys()) keys.push_back(k.Clone());
      return OperatorPtr(std::make_unique<SortOp>(std::move(child),
                                                  std::move(keys), presorted));
    }
    case PlanKind::kUnionAll: {
      std::vector<OperatorPtr> children;
      children.reserve(node.children().size());
      for (const PlanPtr& c : node.children()) {
        SOFTDB_ASSIGN_OR_RETURN(OperatorPtr op, Plan(*c, allow_vectorized));
        children.push_back(std::move(op));
      }
      return OperatorPtr(std::make_unique<UnionAllOp>(node.output_schema(),
                                                      std::move(children)));
    }
    case PlanKind::kLimit: {
      const auto& limit = static_cast<const LimitNode&>(node);
      // LIMIT may stop pulling early; batch subtrees read ahead and would
      // skew ExecStats, so everything below stays on the row engine.
      SOFTDB_ASSIGN_OR_RETURN(OperatorPtr child,
                              Plan(*node.children()[0], false));
      return OperatorPtr(
          std::make_unique<LimitOp>(std::move(child), limit.limit()));
    }
  }
  return Status::Internal("unknown plan node");
}

double PhysicalPlanner::EstimateCost(const PlanNode& node) const {
  constexpr double kCpuPerRow = 0.001;  // Pages are the unit; cpu is cheap.
  // Column-at-a-time evaluation amortizes dispatch over a batch; the
  // operators the batch engine can lower get the cheaper rate.
  constexpr double kCpuPerRowVectorized = 0.00025;
  const double scan_cpu =
      ctx_->use_vectorized ? kCpuPerRowVectorized : kCpuPerRow;
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      auto choice = ChooseAccessPath(scan);
      if (!choice.ok()) return 1.0;
      double cpu = scan_cpu * estimator_->EstimateRows(node);
      // Skip-aware sequential costing: blocks a zone map prunes cost no
      // predicate work. Pages stay fully charged (the simulated page model
      // reads every page of a sequential pass), so the saving shows up in
      // the cpu term only.
      if (choice->index == nullptr && scan.external_table() == nullptr) {
        auto table = ctx_->catalog->GetTable(scan.table_name());
        if (table.ok()) {
          const ZoneMapSkips skips = ZoneMapSkipsFor(scan, *table);
          if (skips != nullptr && !skips->empty()) {
            std::size_t skipped = 0;
            for (const std::uint8_t s : *skips) skipped += s;
            cpu *= 1.0 - static_cast<double>(skipped) /
                             static_cast<double>(skips->size());
          }
        }
      }
      return choice->cost_pages + cpu;
    }
    case PlanKind::kFilter:
    case PlanKind::kProject:
      return EstimateCost(*node.children()[0]) +
             scan_cpu * estimator_->EstimateRows(node);
    case PlanKind::kLimit:
      // LIMIT subtrees run on the row engine (see Plan).
      return EstimateCost(*node.children()[0]) +
             kCpuPerRow * estimator_->EstimateRows(node);
    case PlanKind::kJoin: {
      const double build = estimator_->EstimateRows(*node.children()[1]);
      const double probe = estimator_->EstimateRows(*node.children()[0]);
      const auto& join = static_cast<const JoinNode&>(node);
      double cpu;
      if (!join.equi_keys().empty()) {
        const double rate = (ctx_->use_vectorized &&
                             !ctx_->prefer_sort_merge_join)
                                ? kCpuPerRowVectorized
                                : kCpuPerRow;
        cpu = rate * (build * 2.0 + probe);
      } else {
        cpu = kCpuPerRow * build * probe;  // Nested loop.
      }
      return EstimateCost(*node.children()[0]) +
             EstimateCost(*node.children()[1]) + cpu;
    }
    case PlanKind::kAggregate:
      return EstimateCost(*node.children()[0]) +
             kCpuPerRow * estimator_->EstimateRows(*node.children()[0]);
    case PlanKind::kSort: {
      const double rows =
          std::max(1.0, estimator_->EstimateRows(*node.children()[0]));
      const auto& sort = static_cast<const SortNode&>(node);
      // n log n comparisons, scaled by key count.
      const double cpu = kCpuPerRow * rows * std::log2(rows + 1.0) *
                         static_cast<double>(sort.keys().size());
      return EstimateCost(*node.children()[0]) + cpu;
    }
    case PlanKind::kUnionAll: {
      double total = 0.0;
      for (const PlanPtr& c : node.children()) total += EstimateCost(*c);
      return total;
    }
  }
  return 0.0;
}

}  // namespace softdb
