#include "optimizer/planner.h"

#include <algorithm>
#include <cmath>

#include "optimizer/range_analysis.h"

namespace softdb {

namespace {

std::vector<Predicate> ClonePredicates(const std::vector<Predicate>& preds) {
  std::vector<Predicate> out;
  out.reserve(preds.size());
  for (const Predicate& p : preds) out.push_back(p.Clone());
  return out;
}

/// Converts a numeric range bound to a Value of the column's type for index
/// probing. Integer-family columns round conservatively (floor for lower
/// bounds is wrong — we must not miss rows — so lower bounds use ceil when
/// exclusive handling would drop them; here bounds are already inclusive
/// ranges from ColumnRange, so floor/ceil keep soundness).
Value BoundValue(double v, TypeId type, bool is_lower) {
  switch (type) {
    case TypeId::kDouble:
      return Value::Double(v);
    case TypeId::kDate:
      return Value::Date(static_cast<std::int64_t>(
          is_lower ? std::ceil(v - 1e-9) : std::floor(v + 1e-9)));
    default:
      return Value::Int64(static_cast<std::int64_t>(
          is_lower ? std::ceil(v - 1e-9) : std::floor(v + 1e-9)));
  }
}

}  // namespace

Result<AccessPathChoice> PhysicalPlanner::ChooseAccessPath(
    const ScanNode& scan) const {
  AccessPathChoice choice;
  const Table* table = scan.external_table();
  if (table == nullptr) {
    SOFTDB_ASSIGN_OR_RETURN(Table * t, ctx_->catalog->GetTable(scan.table_name()));
    table = t;
  }
  choice.seq_cost_pages = static_cast<double>(table->NumPages());
  choice.cost_pages = choice.seq_cost_pages;
  if (scan.external_table() != nullptr) return choice;  // No indexes on ASTs.

  const RangeMap ranges =
      BuildRangeMap(scan.predicates(), /*include_estimation_only=*/false);
  if (ranges.unsatisfiable) {
    choice.cost_pages = 0.0;
    return choice;
  }

  const double rows = static_cast<double>(table->NumRows());
  for (const Index* index : ctx_->catalog->IndexesOn(scan.table_name())) {
    const ColumnRange* range = ranges.Find(index->column());
    if (range == nullptr || (!range->Bounded() && !range->equal.has_value())) {
      continue;
    }
    const double selectivity = estimator_->RangeSelectivity(
        scan.table_name(), index->column(), *range);
    const double matching = selectivity * rows;
    // Leaf pages of the range + data pages scaled by the index's measured
    // clustering (page-switch density), capped at the table's page count.
    const double data_pages =
        std::min(static_cast<double>(table->NumPages()),
                 matching * index->PageSwitchDensity());
    const double cost =
        matching / static_cast<double>(kRowsPerPage) + data_pages + 1.0;
    if (cost < choice.cost_pages) {
      choice.cost_pages = cost;
      choice.index = index;
      const TypeId col_type =
          table->schema().Column(index->column()).type;
      if (range->equal.has_value()) {
        choice.lo = *range->equal;
        choice.hi = *range->equal;
        choice.lo_inclusive = choice.hi_inclusive = true;
      } else {
        if (std::isfinite(range->lo)) {
          choice.lo = BoundValue(range->lo, col_type, /*is_lower=*/false);
          choice.lo_inclusive = true;  // Conservative: never miss rows.
        } else {
          choice.lo.reset();
        }
        if (std::isfinite(range->hi)) {
          choice.hi = BoundValue(range->hi, col_type, /*is_lower=*/true);
          choice.hi_inclusive = true;
        } else {
          choice.hi.reset();
        }
      }
    }
  }
  return choice;
}

Result<OperatorPtr> PhysicalPlanner::PlanScan(const ScanNode& scan) const {
  const Table* table = scan.external_table();
  if (table == nullptr) {
    SOFTDB_ASSIGN_OR_RETURN(Table * t,
                            ctx_->catalog->GetTable(scan.table_name()));
    table = t;
  }
  const RangeMap ranges =
      BuildRangeMap(scan.predicates(), /*include_estimation_only=*/false);
  if (ranges.unsatisfiable) {
    return OperatorPtr(std::make_unique<EmptyOp>(scan.output_schema()));
  }
  SOFTDB_ASSIGN_OR_RETURN(AccessPathChoice choice, ChooseAccessPath(scan));
  if (choice.index != nullptr) {
    return OperatorPtr(std::make_unique<IndexRangeScanOp>(
        table, choice.index, scan.output_schema(), choice.lo,
        choice.lo_inclusive, choice.hi, choice.hi_inclusive,
        ClonePredicates(scan.predicates())));
  }
  auto seq = std::make_unique<SeqScanOp>(table, scan.output_schema(),
                                         ClonePredicates(scan.predicates()));
  // §4.2 runtime parameterization: simple predicates over indexed columns
  // are re-checked against the index's *current* min/max at every Open, so
  // the compiled plan adapts to updates without invalidation.
  if (ctx_->enable_runtime_parameterization &&
      scan.external_table() == nullptr) {
    for (std::size_t i = 0; i < scan.predicates().size(); ++i) {
      const Predicate& p = scan.predicates()[i];
      if (p.estimation_only) continue;
      SimplePredicate sp;
      if (!MatchSimplePredicate(*p.expr, &sp)) continue;
      for (const Index* index : ctx_->catalog->IndexesOn(scan.table_name())) {
        if (index->column() == sp.column) {
          seq->AddRuntimeParameter(i, index, sp);
          break;
        }
      }
    }
  }
  return OperatorPtr(std::move(seq));
}

Result<OperatorPtr> PhysicalPlanner::Plan(const PlanNode& node) const {
  switch (node.kind()) {
    case PlanKind::kScan:
      return PlanScan(static_cast<const ScanNode&>(node));
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      SOFTDB_ASSIGN_OR_RETURN(OperatorPtr child, Plan(*node.children()[0]));
      return OperatorPtr(std::make_unique<FilterOp>(
          std::move(child), ClonePredicates(filter.predicates())));
    }
    case PlanKind::kProject: {
      const auto& proj = static_cast<const ProjectNode&>(node);
      SOFTDB_ASSIGN_OR_RETURN(OperatorPtr child, Plan(*node.children()[0]));
      std::vector<ExprPtr> exprs;
      exprs.reserve(proj.exprs().size());
      for (const ExprPtr& e : proj.exprs()) exprs.push_back(e->Clone());
      return OperatorPtr(std::make_unique<ProjectOp>(
          std::move(child), proj.output_schema(), std::move(exprs)));
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      SOFTDB_ASSIGN_OR_RETURN(OperatorPtr left, Plan(*node.children()[0]));
      SOFTDB_ASSIGN_OR_RETURN(OperatorPtr right, Plan(*node.children()[1]));
      if (!join.equi_keys().empty()) {
        if (ctx_->prefer_sort_merge_join) {
          return OperatorPtr(std::make_unique<SortMergeJoinOp>(
              std::move(left), std::move(right), join.equi_keys(),
              ClonePredicates(join.conditions())));
        }
        return OperatorPtr(std::make_unique<HashJoinOp>(
            std::move(left), std::move(right), join.equi_keys(),
            ClonePredicates(join.conditions())));
      }
      return OperatorPtr(std::make_unique<NestedLoopJoinOp>(
          std::move(left), std::move(right),
          ClonePredicates(join.conditions())));
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      SOFTDB_ASSIGN_OR_RETURN(OperatorPtr child, Plan(*node.children()[0]));
      std::vector<ExprPtr> groups;
      groups.reserve(agg.group_by().size());
      for (const ExprPtr& g : agg.group_by()) groups.push_back(g->Clone());
      std::vector<AggregateItem> aggs;
      aggs.reserve(agg.aggregates().size());
      for (const AggregateItem& a : agg.aggregates()) aggs.push_back(a.Clone());
      return OperatorPtr(std::make_unique<HashAggregateOp>(
          std::move(child), agg.output_schema(), std::move(groups),
          std::move(aggs), agg.key_flags()));
    }
    case PlanKind::kSort: {
      const auto& sort = static_cast<const SortNode&>(node);
      bool presorted = false;
      OperatorPtr child;

      // Interesting orders: ORDER BY on a prefix of an equi join's left
      // key columns (all ascending) — plan the join as sort-merge, whose
      // output already carries that order, and elide the sort.
      if (node.children()[0]->kind() == PlanKind::kJoin) {
        const auto& join =
            static_cast<const JoinNode&>(*node.children()[0]);
        bool matches = !join.equi_keys().empty() &&
                       sort.keys().size() <= join.equi_keys().size();
        for (std::size_t i = 0; matches && i < sort.keys().size(); ++i) {
          const SortKey& k = sort.keys()[i];
          matches = k.ascending &&
                    k.expr->kind() == ExprKind::kColumnRef &&
                    static_cast<const ColumnRefExpr&>(*k.expr).bound() &&
                    static_cast<const ColumnRefExpr&>(*k.expr).index() ==
                        join.equi_keys()[i].left;
        }
        if (matches) {
          SOFTDB_ASSIGN_OR_RETURN(OperatorPtr left,
                                  Plan(*join.children()[0]));
          SOFTDB_ASSIGN_OR_RETURN(OperatorPtr right,
                                  Plan(*join.children()[1]));
          child = std::make_unique<SortMergeJoinOp>(
              std::move(left), std::move(right), join.equi_keys(),
              ClonePredicates(join.conditions()));
          presorted = true;
        }
      }
      if (!child) {
        SOFTDB_ASSIGN_OR_RETURN(child, Plan(*node.children()[0]));
      }
      // Sort elision: a single ascending key over the column an index scan
      // already delivers in order.
      if (!presorted && sort.keys().size() == 1 &&
          sort.keys()[0].ascending &&
          node.children()[0]->kind() == PlanKind::kScan &&
          sort.keys()[0].expr->kind() == ExprKind::kColumnRef) {
        const auto& scan = static_cast<const ScanNode&>(*node.children()[0]);
        const auto& ref =
            static_cast<const ColumnRefExpr&>(*sort.keys()[0].expr);
        auto choice = ChooseAccessPath(scan);
        if (choice.ok() && choice->index != nullptr && ref.bound() &&
            choice->index->column() == ref.index()) {
          presorted = true;
        }
      }
      std::vector<SortKey> keys;
      keys.reserve(sort.keys().size());
      for (const SortKey& k : sort.keys()) keys.push_back(k.Clone());
      return OperatorPtr(std::make_unique<SortOp>(std::move(child),
                                                  std::move(keys), presorted));
    }
    case PlanKind::kUnionAll: {
      std::vector<OperatorPtr> children;
      children.reserve(node.children().size());
      for (const PlanPtr& c : node.children()) {
        SOFTDB_ASSIGN_OR_RETURN(OperatorPtr op, Plan(*c));
        children.push_back(std::move(op));
      }
      return OperatorPtr(std::make_unique<UnionAllOp>(node.output_schema(),
                                                      std::move(children)));
    }
    case PlanKind::kLimit: {
      const auto& limit = static_cast<const LimitNode&>(node);
      SOFTDB_ASSIGN_OR_RETURN(OperatorPtr child, Plan(*node.children()[0]));
      return OperatorPtr(
          std::make_unique<LimitOp>(std::move(child), limit.limit()));
    }
  }
  return Status::Internal("unknown plan node");
}

double PhysicalPlanner::EstimateCost(const PlanNode& node) const {
  constexpr double kCpuPerRow = 0.001;  // Pages are the unit; cpu is cheap.
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      auto choice = ChooseAccessPath(scan);
      if (!choice.ok()) return 1.0;
      return choice->cost_pages +
             kCpuPerRow * estimator_->EstimateRows(node);
    }
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kLimit:
      return EstimateCost(*node.children()[0]) +
             kCpuPerRow * estimator_->EstimateRows(node);
    case PlanKind::kJoin: {
      const double build = estimator_->EstimateRows(*node.children()[1]);
      const double probe = estimator_->EstimateRows(*node.children()[0]);
      const auto& join = static_cast<const JoinNode&>(node);
      double cpu;
      if (!join.equi_keys().empty()) {
        cpu = kCpuPerRow * (build * 2.0 + probe);
      } else {
        cpu = kCpuPerRow * build * probe;  // Nested loop.
      }
      return EstimateCost(*node.children()[0]) +
             EstimateCost(*node.children()[1]) + cpu;
    }
    case PlanKind::kAggregate:
      return EstimateCost(*node.children()[0]) +
             kCpuPerRow * estimator_->EstimateRows(*node.children()[0]);
    case PlanKind::kSort: {
      const double rows =
          std::max(1.0, estimator_->EstimateRows(*node.children()[0]));
      const auto& sort = static_cast<const SortNode&>(node);
      // n log n comparisons, scaled by key count.
      const double cpu = kCpuPerRow * rows * std::log2(rows + 1.0) *
                         static_cast<double>(sort.keys().size());
      return EstimateCost(*node.children()[0]) + cpu;
    }
    case PlanKind::kUnionAll: {
      double total = 0.0;
      for (const PlanPtr& c : node.children()) total += EstimateCost(*c);
      return total;
    }
  }
  return 0.0;
}

}  // namespace softdb
