#ifndef SOFTDB_OPTIMIZER_OPTIMIZER_CONTEXT_H_
#define SOFTDB_OPTIMIZER_OPTIMIZER_CONTEXT_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/certificate.h"
#include "constraints/ic_registry.h"
#include "constraints/sc_registry.h"
#include "mv/materialized_view.h"
#include "stats/analyzer.h"
#include "storage/catalog.h"

namespace softdb {

/// Everything the rewrite engine and the physical planner consult, plus
/// per-rule switches (the experiments toggle individual rules) and the
/// provenance outputs the plan cache needs for §4.1 invalidation.
struct OptimizerContext {
  const Catalog* catalog = nullptr;
  const StatsCatalog* stats = nullptr;
  const IcRegistry* ics = nullptr;
  ScRegistry* scs = nullptr;  // Non-const: selection-stage use accounting.
  const MvRegistry* mvs = nullptr;

  /// sc name -> exception AST name (the late_shipments wiring of §4.4).
  std::map<std::string, std::string> exception_asts;

  // Rule switches.
  bool enable_predicate_introduction = true;  // E1 (linear / offset ASCs).
  bool enable_twinning = true;                // E4 (SSC estimation twins).
  bool enable_join_elimination = true;        // E3.
  bool enable_fd_pruning = true;              // E6.
  bool enable_hole_trimming = true;           // E2.
  bool enable_domain_rules = true;            // Sybase-style min/max.
  bool enable_unionall_pruning = true;        // E10 branch knock-off.
  bool enable_exception_asts = true;          // E5 (ASC-as-AST).
  /// Symbolic implication over the ASC/CHECK fact base: fold predicates
  /// that contradict the facts to FALSE and prune redundant conjuncts.
  bool enable_implication = true;
  bool use_twins_in_estimation = true;        // Estimator switch for E4.
  /// Consult armed (absolute) kBlockZoneMap SCs at physical-planning time:
  /// sequential scans get a per-block skip set for blocks whose min/max/
  /// null-count envelope provably contradicts the scan's predicates. Used
  /// SCs are recorded as rewrite-consumed, so the epoch-snapshot /
  /// degraded-retry protocol guards mid-query widenings.
  bool enable_zone_maps = true;
  /// Plan equi joins as sort-merge instead of hash join. Independently of
  /// this flag, the planner uses sort-merge when a downstream ORDER BY
  /// matches the join keys (interesting orders), eliding the sort.
  bool prefer_sort_merge_join = false;
  /// §4.2 runtime plan parameterization: sequential scans re-check simple
  /// predicates over indexed columns against the index's current min/max
  /// at Open (tautologies skipped, contradictions short-circuit) without
  /// invalidating the plan.
  bool enable_runtime_parameterization = true;
  /// Lower scans, filters, projections and equi hash joins to the
  /// vectorized batch engine (selection vectors over ColumnBatches) where
  /// possible; unsupported operators fall back to the row engine per
  /// subtree. Results and ExecStats are identical either way — LIMIT
  /// subtrees stay on the row engine so early-exit accounting matches.
  bool use_vectorized = true;
  /// Run PlanVerifier after each rewrite and physical-planning phase.
  /// Debug builds verify regardless (see ShouldVerifyPlans).
  bool verify_plans = true;
  /// Parallel morsel-driven execution (DESIGN.md §8): with more than one
  /// thread, the planner lowers parallel-safe vectorized subtrees
  /// (seq-scan pipelines and equi hash joins over them) to the parallel
  /// operators. 1 = serial. Requires use_vectorized.
  std::size_t num_threads = 1;
  /// Slot-range size of one parallel scan morsel.
  std::size_t parallel_morsel_rows = 4096;

  // Outputs of a rewrite pass.
  std::vector<std::string> used_scs;       // SCs baked into the plan.
  /// Subset of used_scs whose truth the plan's *semantics* depend on
  /// (predicate introduction, hole prune/trim, join elimination, FD
  /// pruning, ...). Estimation-only uses — twinned predicates — are
  /// excluded: their overturn can change costs, never answers, so only
  /// rewrite-consumed SCs participate in the epoch revalidation / degraded
  /// retry protocol (DESIGN.md "Failure model").
  std::vector<std::string> rewrite_consumed_scs;
  std::vector<std::string> applied_rules;  // EXPLAIN annotations.
  /// One proof obligation per SC-driven transformation (DESIGN.md §13).
  /// The engine re-validates these post-planning with CertificateChecker.
  std::vector<RewriteCertificate> certificates;

  void RecordScUse(const std::string& name, double benefit,
                   bool rewrite_consumed = true) {
    used_scs.push_back(name);
    if (rewrite_consumed) rewrite_consumed_scs.push_back(name);
    if (scs != nullptr) scs->RecordUse(name, benefit);
  }
  void RecordRule(std::string description) {
    applied_rules.push_back(std::move(description));
  }
  void RecordCertificate(RewriteCertificate cert) {
    certificates.push_back(std::move(cert));
  }
  void ResetOutputs() {
    used_scs.clear();
    rewrite_consumed_scs.clear();
    applied_rules.clear();
    certificates.clear();
  }
};

}  // namespace softdb

#endif  // SOFTDB_OPTIMIZER_OPTIMIZER_CONTEXT_H_
