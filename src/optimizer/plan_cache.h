#ifndef SOFTDB_OPTIMIZER_PLAN_CACHE_H_
#define SOFTDB_OPTIMIZER_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "analysis/certificate.h"
#include "plan/logical_plan.h"

namespace softdb {

/// A pre-compiled ("packaged") query plan. §4.1: a plan built on an ASC is
/// in jeopardy when the ASC is overturned; the mitigation implemented here
/// is the paper's backup-plan tactic — "a package incorporates a 'backup'
/// plan which is ASC-free; if an ASC is overturned, a flag is raised and
/// packages revert to the alternative plans."
///
/// The plan trees themselves are immutable after Put; `using_backup` and
/// `executions` are the only mutable fields and are atomic, so concurrent
/// sessions may execute a package while maintenance flips it (a session
/// that already resolved ActivePlan finishes on the plan it picked — both
/// plans stay valid answers; see DESIGN.md §8).
struct CachedPlan {
  std::string sql;
  PlanPtr primary;                    // Rewritten with SCs.
  PlanPtr backup;                     // SC-free.
  std::vector<std::string> used_scs;  // SC names baked into primary.
  /// Rewrite-consumed SCs with the epoch each had at package build time
  /// (estimation-only twins excluded — their overturn can never make the
  /// primary plan wrong). The engine compares these against the live
  /// epochs on every cache hit, catching silent parameter changes (e.g. a
  /// synchronous repair that widened an SC without ever flipping
  /// `using_backup`). The epoch-aware Rearm re-stamps them, accepting the
  /// repaired SC as the package's new baseline. After Put, read and write
  /// only through PlanCache (guarded by the cache mutex).
  std::vector<std::pair<std::string, std::uint64_t>> sc_epochs;
  /// Rewrite certificates of each plan (DESIGN.md §13), re-checked on
  /// every cache hit before the plan runs: a hit long after Put must still
  /// prove its transformations against the live registries (epoch moves
  /// come back kStale and route through the staleness machinery above).
  /// Immutable after Put, like the plan trees.
  std::vector<RewriteCertificate> certificates;         // For `primary`.
  std::vector<RewriteCertificate> backup_certificates;  // For `backup`.
  std::vector<std::string> tables;    // Base tables either plan reads.
  std::atomic<bool> using_backup{false};
  std::atomic<std::uint64_t> executions{0};

  const PlanNode& ActivePlan() const {
    return using_backup.load(std::memory_order_acquire) ? *backup : *primary;
  }
};

/// Base tables scanned anywhere in `plan` (scan nodes + their external
/// join-hole tables), for table-scoped cache invalidation.
std::vector<std::string> CollectPlanTables(const PlanNode& plan);

/// Keyed by SQL text. Subscribe `OnScViolated` to the ScRegistry's
/// violation listener so overturned SCs flip dependent packages to their
/// backup plan instead of producing wrong answers.
///
/// Thread-safe: the entry map is mutex-guarded, entries are handed out as
/// shared_ptr so a concurrent eviction (DROP TABLE) cannot free a plan
/// another session is executing, and the counters are atomic.
class PlanCache {
 public:
  PlanCache() = default;
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Inserts a package. `sc_epochs` stamps the rewrite-consumed SCs with
  /// their build-time epochs (see CachedPlan). Under the
  /// "plan_cache.insert" failpoint the package is returned but not cached
  /// — callers run the plan they were handed either way.
  std::shared_ptr<CachedPlan> Put(
      const std::string& sql, PlanPtr primary, PlanPtr backup,
      std::vector<std::string> used_scs,
      std::vector<std::pair<std::string, std::uint64_t>> sc_epochs = {},
      std::vector<RewriteCertificate> certificates = {},
      std::vector<RewriteCertificate> backup_certificates = {});

  /// Returns the entry or null; counts hit/miss. The shared_ptr keeps the
  /// package alive across eviction — use it, don't re-Get.
  std::shared_ptr<CachedPlan> Get(const std::string& sql);

  /// Flips every package depending on `sc_name` to its backup plan.
  /// Returns the number of packages invalidated. Untouched packages count
  /// toward `invalidations_avoided` — the flushes a global scheme would
  /// have paid.
  std::size_t OnScViolated(const std::string& sc_name);

  /// Evicts only the packages that read `table`; everything else survives
  /// (and counts toward `invalidations_avoided`). Returns evictions.
  std::size_t OnTableDropped(const std::string& table);

  /// Re-arms packages after an SC returns to active (e.g. async repair
  /// completed): entries whose every used SC is in `active_scs` go back to
  /// the primary plan.
  std::size_t Rearm(const std::vector<std::string>& active_scs);

  /// Epoch-aware re-arm: additionally re-stamps each re-armed package's
  /// `sc_epochs` with the repaired SCs' current epochs, so the hit-time
  /// staleness check accepts the repair as the new baseline.
  std::size_t Rearm(
      const std::vector<std::pair<std::string, std::uint64_t>>& active_epochs);

  /// Locked copy of the entry's epoch stamps (see CachedPlan::sc_epochs).
  std::vector<std::pair<std::string, std::uint64_t>> ScEpochs(
      const CachedPlan& entry) const;

  void Clear();
  std::size_t size() const;

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  /// Packages a global flush would have dropped but scoped invalidation
  /// kept (the avoided-flush counter of the impact-analysis satellite).
  std::uint64_t invalidations_avoided() const {
    return invalidations_avoided_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;  // Guards entries_.
  std::map<std::string, std::shared_ptr<CachedPlan>> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> invalidations_avoided_{0};
};

}  // namespace softdb

#endif  // SOFTDB_OPTIMIZER_PLAN_CACHE_H_
