#ifndef SOFTDB_OPTIMIZER_CARDINALITY_H_
#define SOFTDB_OPTIMIZER_CARDINALITY_H_

#include <string>

#include "constraints/sc_registry.h"
#include "optimizer/range_analysis.h"
#include "plan/logical_plan.h"
#include "stats/analyzer.h"
#include "storage/catalog.h"

namespace softdb {

/// Cardinality estimation over logical plans, with the §5.1 switch: when
/// `use_twinned_predicates` is on, estimation-only predicates derived from
/// SSCs participate in selectivity, weighted by their confidence factor.
/// When off, the estimator is the classic baseline — catalog statistics
/// plus attribute-independence.
struct EstimatorOptions {
  bool use_twinned_predicates = true;
  /// Ablation switch: treat twins as ordinary conjuncts (multiply their
  /// selectivity under independence) instead of the paper's
  /// substitute-and-bound scheme. Kept for the E4 ablation bench — naive
  /// conjunction double-counts the correlation and can underestimate
  /// catastrophically.
  bool naive_twin_conjunction = false;
  /// Default equality selectivity when no stats exist.
  double default_eq_selectivity = 0.01;
  /// Default range selectivity when no stats exist (System R's 1/3).
  double default_range_selectivity = 1.0 / 3.0;
};

class CardinalityEstimator {
 public:
  /// `scs` is optional; when provided, duration predicates
  /// (`colY - colX <op> c`) are estimated from the virtual-column
  /// statistics kept by column-offset SCs (§5.1's virtual-column
  /// mechanism) instead of the default opaque factor.
  CardinalityEstimator(const Catalog* catalog, const StatsCatalog* stats,
                       EstimatorOptions options = {},
                       const ScRegistry* scs = nullptr)
      : catalog_(catalog), stats_(stats), scs_(scs), options_(options) {}

  const EstimatorOptions& options() const { return options_; }
  void set_options(EstimatorOptions o) { options_ = o; }

  /// Estimated output rows of a plan subtree.
  double EstimateRows(const PlanNode& node) const;

  /// Estimated selectivity of a scan's predicate set. The twin-aware
  /// estimate is a confidence-weighted mix:
  ///   conf * sel(real ∧ twins) + (1 - conf) * sel(real)
  /// which collapses to sel(real) when no twins are attached.
  double ScanSelectivity(const ScanNode& scan) const;

  /// Selectivity of one column range against one base-table column, from
  /// the histogram when available.
  double RangeSelectivity(const std::string& table, ColumnIdx column,
                          const ColumnRange& range) const;

  /// NDV of a base-table column (for join and group estimates); falls back
  /// to a tenth of the row count.
  double ColumnNdv(const std::string& table, ColumnIdx column) const;

 private:
  double SelectivityOfRangeMap(const std::string& table,
                               const RangeMap& map) const;
  double EstimateJoin(const JoinNode& join) const;
  /// Resolves a bound column of `node`'s output schema to its base table
  /// and column for stats lookup. Returns false for computed columns.
  bool ResolveBaseColumn(const PlanNode& node, ColumnIdx col,
                         std::string* table, ColumnIdx* base_col) const;

  /// Selectivity of one opaque predicate: duration predicates resolve via
  /// offset-SC virtual-column stats; everything else gets the default.
  double OpaquePredicateSelectivity(const std::string& table,
                                    const Expr& expr) const;

  const Catalog* catalog_;
  const StatsCatalog* stats_;
  const ScRegistry* scs_;
  EstimatorOptions options_;
};

}  // namespace softdb

#endif  // SOFTDB_OPTIMIZER_CARDINALITY_H_
