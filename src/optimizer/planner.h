#ifndef SOFTDB_OPTIMIZER_PLANNER_H_
#define SOFTDB_OPTIMIZER_PLANNER_H_

#include <map>
#include <optional>

#include "exec/batch_operators.h"
#include "exec/operators.h"
#include "exec/parallel_operators.h"
#include "optimizer/cardinality.h"
#include "optimizer/optimizer_context.h"
#include "plan/logical_plan.h"

namespace softdb {

/// The chosen access path for one scan.
struct AccessPathChoice {
  const Index* index = nullptr;  // Null: sequential scan.
  std::optional<Value> lo, hi;
  bool lo_inclusive = true, hi_inclusive = true;
  double cost_pages = 0.0;  // Estimated page fetches of the choice.
  double seq_cost_pages = 0.0;  // What a sequential scan would have cost.
};

/// Lowers a (rewritten) logical plan to executor operators, choosing access
/// paths by estimated page cost. Predicate introduction pays off here: an
/// introduced range on an indexed column turns a sequential scan into an
/// index range scan.
class PhysicalPlanner {
 public:
  /// `ctx` is non-const: zone-map consultation records SC uses (selection
  /// accounting + rewrite-consumed registration for the epoch protocol).
  PhysicalPlanner(OptimizerContext* ctx, const CardinalityEstimator* estimator)
      : ctx_(ctx), estimator_(estimator) {}

  Result<OperatorPtr> Plan(const PlanNode& node) const;

  /// Access-path selection for one scan (exposed for EXPLAIN and tests).
  Result<AccessPathChoice> ChooseAccessPath(const ScanNode& scan) const;

  /// Recursive plan cost in simulated pages + cpu, used by benches to show
  /// plan-cost shape without executing.
  double EstimateCost(const PlanNode& node) const;

 private:
  /// Recursive lowering. `allow_vectorized` is cleared under LIMIT nodes:
  /// LIMIT may stop consuming early, and a batch subtree would read ahead
  /// of the row engine, breaking ExecStats equivalence.
  Result<OperatorPtr> Plan(const PlanNode& node, bool allow_vectorized) const;
  Result<OperatorPtr> PlanScan(const ScanNode& scan) const;

  /// Lowers `node` to the batch engine when every operator in the subtree
  /// supports it; returns a null pointer (OK status) otherwise, in which
  /// case the caller plans `node` on the row engine and each child gets
  /// its own chance at vectorization — subtrees are maximal, adapters
  /// appear only at vectorized-subtree roots.
  Result<BatchOperatorPtr> TryPlanBatch(const PlanNode& node) const;

  /// Marks and lowers parallel-safe subtrees (ctx->num_threads > 1):
  /// sequential-scan pipelines (scan → filter* → project?) become
  /// ParallelPipelineOp, equi hash joins over two such pipelines become
  /// ParallelHashJoinOp. Returns null when the subtree is not
  /// parallel-safe (index access paths, unsatisfiable scans, nested
  /// joins, non-equi joins, ...); the caller then falls back to the
  /// serial batch or row engine. Never called under LIMIT — those
  /// subtrees stay serial (allow_vectorized is cleared), which the
  /// kParallelSafety plan invariant enforces.
  Result<OperatorPtr> TryPlanParallel(const PlanNode& node) const;

  /// Builds the pipeline spec for a parallel-safe scan chain, or nullopt.
  /// `allow_project`: projections are fine at a pipeline root but not
  /// under a join (mirrors TryPlanBatch's join-child restriction).
  Result<std::optional<PipelineSpec>> TryBuildPipelineSpec(
      const PlanNode& node, bool allow_project) const;

  /// The scan's zone-map skip set: blocks whose armed kBlockZoneMap
  /// envelope provably contradicts the scan's predicate conjunction. Null
  /// when zone maps are disabled, unarmed, inapplicable, or the scan's
  /// predicates are not statically error-free (skipping a block must never
  /// skip a runtime type error the row engine would have raised).
  ///
  /// Memoized per ScanNode: planning may lower the same scan several times
  /// (parallel attempt → batch attempt → row fallback), and the SC-use
  /// recording and skip decisions must happen exactly once per planning so
  /// every lowering shares one consistent snapshot.
  ZoneMapSkips ZoneMapSkipsFor(const ScanNode& scan, const Table* table) const;
  ZoneMapSkips ComputeZoneMapSkips(const ScanNode& scan,
                                   const Table* table) const;

  OptimizerContext* ctx_;
  const CardinalityEstimator* estimator_;
  mutable std::map<const ScanNode*, ZoneMapSkips> zone_skip_memo_;
};

}  // namespace softdb

#endif  // SOFTDB_OPTIMIZER_PLANNER_H_
