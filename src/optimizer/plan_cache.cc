#include "optimizer/plan_cache.h"

#include <algorithm>

namespace softdb {

namespace {

void CollectPlanTablesInto(const PlanNode& plan,
                           std::vector<std::string>* out) {
  if (plan.kind() == PlanKind::kScan) {
    const auto& scan = static_cast<const ScanNode&>(plan);
    if (std::find(out->begin(), out->end(), scan.table_name()) ==
        out->end()) {
      out->push_back(scan.table_name());
    }
  }
  for (const PlanPtr& child : plan.children()) {
    CollectPlanTablesInto(*child, out);
  }
}

}  // namespace

std::vector<std::string> CollectPlanTables(const PlanNode& plan) {
  std::vector<std::string> tables;
  CollectPlanTablesInto(plan, &tables);
  return tables;
}

CachedPlan* PlanCache::Put(const std::string& sql, PlanPtr primary,
                           PlanPtr backup,
                           std::vector<std::string> used_scs) {
  auto entry = std::make_unique<CachedPlan>();
  entry->sql = sql;
  entry->primary = std::move(primary);
  entry->backup = std::move(backup);
  entry->used_scs = std::move(used_scs);
  if (entry->primary != nullptr) {
    entry->tables = CollectPlanTables(*entry->primary);
  }
  if (entry->backup != nullptr) {
    for (const std::string& table : CollectPlanTables(*entry->backup)) {
      if (std::find(entry->tables.begin(), entry->tables.end(), table) ==
          entry->tables.end()) {
        entry->tables.push_back(table);
      }
    }
  }
  CachedPlan* ptr = entry.get();
  entries_[sql] = std::move(entry);
  return ptr;
}

CachedPlan* PlanCache::Get(const std::string& sql) {
  auto it = entries_.find(sql);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second.get();
}

std::size_t PlanCache::OnScViolated(const std::string& sc_name) {
  std::size_t flipped = 0;
  for (auto& [_, entry] : entries_) {
    if (entry->using_backup) continue;
    if (std::find(entry->used_scs.begin(), entry->used_scs.end(), sc_name) !=
        entry->used_scs.end()) {
      entry->using_backup = true;
      ++flipped;
      ++invalidations_;
    } else {
      // A catalog-wide flush would have dropped this package too.
      ++invalidations_avoided_;
    }
  }
  return flipped;
}

std::size_t PlanCache::OnTableDropped(const std::string& table) {
  std::size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    CachedPlan& entry = *it->second;
    // Entries recorded without table provenance are evicted conservatively.
    const bool reads_table =
        entry.tables.empty() ||
        std::find(entry.tables.begin(), entry.tables.end(), table) !=
            entry.tables.end();
    if (reads_table) {
      it = entries_.erase(it);
      ++evicted;
      ++invalidations_;
    } else {
      ++invalidations_avoided_;
      ++it;
    }
  }
  return evicted;
}

std::size_t PlanCache::Rearm(const std::vector<std::string>& active_scs) {
  std::size_t rearmed = 0;
  for (auto& [_, entry] : entries_) {
    if (!entry->using_backup) continue;
    const bool all_active = std::all_of(
        entry->used_scs.begin(), entry->used_scs.end(),
        [&](const std::string& name) {
          return std::find(active_scs.begin(), active_scs.end(), name) !=
                 active_scs.end();
        });
    if (all_active) {
      entry->using_backup = false;
      ++rearmed;
    }
  }
  return rearmed;
}

}  // namespace softdb
