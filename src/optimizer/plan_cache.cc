#include "optimizer/plan_cache.h"

#include <algorithm>

namespace softdb {

CachedPlan* PlanCache::Put(const std::string& sql, PlanPtr primary,
                           PlanPtr backup,
                           std::vector<std::string> used_scs) {
  auto entry = std::make_unique<CachedPlan>();
  entry->sql = sql;
  entry->primary = std::move(primary);
  entry->backup = std::move(backup);
  entry->used_scs = std::move(used_scs);
  CachedPlan* ptr = entry.get();
  entries_[sql] = std::move(entry);
  return ptr;
}

CachedPlan* PlanCache::Get(const std::string& sql) {
  auto it = entries_.find(sql);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second.get();
}

std::size_t PlanCache::OnScViolated(const std::string& sc_name) {
  std::size_t flipped = 0;
  for (auto& [_, entry] : entries_) {
    if (entry->using_backup) continue;
    if (std::find(entry->used_scs.begin(), entry->used_scs.end(), sc_name) !=
        entry->used_scs.end()) {
      entry->using_backup = true;
      ++flipped;
      ++invalidations_;
    }
  }
  return flipped;
}

std::size_t PlanCache::Rearm(const std::vector<std::string>& active_scs) {
  std::size_t rearmed = 0;
  for (auto& [_, entry] : entries_) {
    if (!entry->using_backup) continue;
    const bool all_active = std::all_of(
        entry->used_scs.begin(), entry->used_scs.end(),
        [&](const std::string& name) {
          return std::find(active_scs.begin(), active_scs.end(), name) !=
                 active_scs.end();
        });
    if (all_active) {
      entry->using_backup = false;
      ++rearmed;
    }
  }
  return rearmed;
}

}  // namespace softdb
