#include "optimizer/plan_cache.h"

#include <algorithm>

#include "common/failpoint.h"

namespace softdb {

namespace {

void CollectPlanTablesInto(const PlanNode& plan,
                           std::vector<std::string>* out) {
  if (plan.kind() == PlanKind::kScan) {
    const auto& scan = static_cast<const ScanNode&>(plan);
    if (std::find(out->begin(), out->end(), scan.table_name()) ==
        out->end()) {
      out->push_back(scan.table_name());
    }
  }
  for (const PlanPtr& child : plan.children()) {
    CollectPlanTablesInto(*child, out);
  }
}

}  // namespace

std::vector<std::string> CollectPlanTables(const PlanNode& plan) {
  std::vector<std::string> tables;
  CollectPlanTablesInto(plan, &tables);
  return tables;
}

std::shared_ptr<CachedPlan> PlanCache::Put(
    const std::string& sql, PlanPtr primary, PlanPtr backup,
    std::vector<std::string> used_scs,
    std::vector<std::pair<std::string, std::uint64_t>> sc_epochs,
    std::vector<RewriteCertificate> certificates,
    std::vector<RewriteCertificate> backup_certificates) {
  auto entry = std::make_shared<CachedPlan>();
  entry->sql = sql;
  entry->primary = std::move(primary);
  entry->backup = std::move(backup);
  entry->used_scs = std::move(used_scs);
  entry->sc_epochs = std::move(sc_epochs);
  entry->certificates = std::move(certificates);
  entry->backup_certificates = std::move(backup_certificates);
  if (entry->primary != nullptr) {
    entry->tables = CollectPlanTables(*entry->primary);
  }
  if (entry->backup != nullptr) {
    for (const std::string& table : CollectPlanTables(*entry->backup)) {
      if (std::find(entry->tables.begin(), entry->tables.end(), table) ==
          entry->tables.end()) {
        entry->tables.push_back(table);
      }
    }
  }
  // Injected insert failure degrades gracefully: the caller still gets a
  // runnable package, it just is not cached for the next session.
  if (SOFTDB_FAILPOINT_FIRED("plan_cache.insert")) return entry;
  std::lock_guard<std::mutex> lk(mu_);
  entries_[sql] = entry;
  return entry;
}

std::shared_ptr<CachedPlan> PlanCache::Get(const std::string& sql) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(sql);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::size_t PlanCache::OnScViolated(const std::string& sc_name) {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t flipped = 0;
  for (auto& [_, entry] : entries_) {
    if (entry->using_backup.load(std::memory_order_acquire)) continue;
    if (std::find(entry->used_scs.begin(), entry->used_scs.end(), sc_name) !=
        entry->used_scs.end()) {
      entry->using_backup.store(true, std::memory_order_release);
      ++flipped;
      invalidations_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // A catalog-wide flush would have dropped this package too.
      invalidations_avoided_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return flipped;
}

std::size_t PlanCache::OnTableDropped(const std::string& table) {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    CachedPlan& entry = *it->second;
    // Entries recorded without table provenance are evicted conservatively.
    const bool reads_table =
        entry.tables.empty() ||
        std::find(entry.tables.begin(), entry.tables.end(), table) !=
            entry.tables.end();
    if (reads_table) {
      // Sessions holding the shared_ptr from Get keep the plan alive.
      it = entries_.erase(it);
      ++evicted;
      invalidations_.fetch_add(1, std::memory_order_relaxed);
    } else {
      invalidations_avoided_.fetch_add(1, std::memory_order_relaxed);
      ++it;
    }
  }
  return evicted;
}

std::size_t PlanCache::Rearm(const std::vector<std::string>& active_scs) {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t rearmed = 0;
  for (auto& [_, entry] : entries_) {
    if (!entry->using_backup.load(std::memory_order_acquire)) continue;
    const bool all_active = std::all_of(
        entry->used_scs.begin(), entry->used_scs.end(),
        [&](const std::string& name) {
          return std::find(active_scs.begin(), active_scs.end(), name) !=
                 active_scs.end();
        });
    if (all_active) {
      entry->using_backup.store(false, std::memory_order_release);
      ++rearmed;
    }
  }
  return rearmed;
}

std::size_t PlanCache::Rearm(
    const std::vector<std::pair<std::string, std::uint64_t>>& active_epochs) {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t rearmed = 0;
  for (auto& [_, entry] : entries_) {
    if (!entry->using_backup.load(std::memory_order_acquire)) continue;
    const bool all_active = std::all_of(
        entry->used_scs.begin(), entry->used_scs.end(),
        [&](const std::string& name) {
          return std::any_of(active_epochs.begin(), active_epochs.end(),
                             [&](const auto& ae) { return ae.first == name; });
        });
    if (!all_active) continue;
    entry->using_backup.store(false, std::memory_order_release);
    for (auto& [name, epoch] : entry->sc_epochs) {
      for (const auto& [active_name, active_epoch] : active_epochs) {
        if (active_name == name) epoch = active_epoch;
      }
    }
    ++rearmed;
  }
  return rearmed;
}

std::vector<std::pair<std::string, std::uint64_t>> PlanCache::ScEpochs(
    const CachedPlan& entry) const {
  std::lock_guard<std::mutex> lk(mu_);
  return entry.sc_epochs;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.clear();
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

}  // namespace softdb
