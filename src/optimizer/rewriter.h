#ifndef SOFTDB_OPTIMIZER_REWRITER_H_
#define SOFTDB_OPTIMIZER_REWRITER_H_

#include "common/result.h"
#include "optimizer/optimizer_context.h"
#include "plan/logical_plan.h"

namespace softdb {

/// The semantic rewrite engine: applies the paper's constraint-driven
/// transformations to a bound logical plan. Rules (each individually
/// switchable via OptimizerContext):
///
///  1. Predicate introduction (E1) — absolute linear-correlation / offset
///     SCs add implied range predicates that unlock index access paths.
///  2. Twinning (E4, §5.1) — statistical SCs add estimation-only twin
///     predicates carrying their confidence factor.
///  3. Exception-AST rewrite (E5, §4.4) — a non-absolute offset SC with an
///     exception table rewrites a scan into
///     (base scan + introduced predicate) UNION ALL (exception scan),
///     which is exact because the AST holds precisely the violating rows.
///  4. Domain rules — Sybase-style min/max SCs drop tautological range
///     predicates and detect contradictions.
///  5. Constraint contradiction / union-all branch knock-off (E10, §5) —
///     scans whose predicates contradict an absolute check characterization
///     are provably empty; empty union branches are removed.
///  6. Join-hole trimming (E2, [8]) — absolute join-hole SCs prune or trim
///     range conditions over a join path.
///  7. Join elimination (E3, [6]) — FK/inclusion + parent-key uniqueness
///     remove joins whose parent side is never referenced.
///  8. FD pruning (E6, [29]) — absolute FD SCs remove functionally
///     determined GROUP BY key columns and ORDER BY keys.
class Rewriter {
 public:
  explicit Rewriter(OptimizerContext* ctx) : ctx_(ctx) {}

  /// Rewrites `plan` in place (consumes and returns it).
  Result<PlanPtr> Rewrite(PlanPtr plan);

 private:
  // Per-node-kind passes; see .cc for rule details.
  Result<PlanPtr> RewriteNode(PlanPtr node);
  Status RewriteScan(ScanNode* scan);
  Result<PlanPtr> MaybeExceptionAstRewrite(PlanPtr scan_owner);
  Status ApplyJoinHoles(JoinNode* join);
  Result<PlanPtr> EliminateJoins(PlanPtr node,
                                 const std::vector<ColumnIdx>& required_above);
  Status PruneAggregate(AggregateNode* agg);
  Status PruneSort(SortNode* sort);
  Result<PlanPtr> PruneUnionBranches(PlanPtr node);

  OptimizerContext* ctx_;
};

/// True when the subtree provably produces no rows (unsatisfiable scan
/// predicates, empty joins, all-empty unions). Global aggregates are never
/// provably empty (they emit one row on empty input).
bool IsProvablyEmpty(const PlanNode& node);

}  // namespace softdb

#endif  // SOFTDB_OPTIMIZER_REWRITER_H_
