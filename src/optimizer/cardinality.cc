#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

#include "constraints/column_offset_sc.h"

namespace softdb {

double CardinalityEstimator::OpaquePredicateSelectivity(
    const std::string& table, const Expr& expr) const {
  ColumnDiffPredicate diff;
  if (scs_ != nullptr && MatchColumnDiffPredicate(expr, &diff)) {
    for (SoftConstraint* sc : scs_->On(table)) {
      auto* offset = dynamic_cast<ColumnOffsetSc*>(sc);
      if (offset == nullptr || !sc->active()) continue;
      double c = diff.constant.NumericValue();
      CompareOp op = diff.op;
      if (offset->col_y() == diff.minuend &&
          offset->col_x() == diff.subtrahend) {
        // (y - x) op c: histogram is over y - x directly.
      } else if (offset->col_y() == diff.subtrahend &&
                 offset->col_x() == diff.minuend) {
        // (x - y) op c  <=>  (y - x) flipped-op -c.
        op = FlipCompare(op);
        c = -c;
      } else {
        continue;
      }
      auto selectivity = offset->DurationSelectivity(op, c);
      if (selectivity.has_value()) return *selectivity;
    }
  }
  return options_.default_range_selectivity;
}

bool CardinalityEstimator::ResolveBaseColumn(const PlanNode& node,
                                             ColumnIdx col, std::string* table,
                                             ColumnIdx* base_col) const {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      *table = scan.table_name();
      *base_col = col;  // Scan schema mirrors the base schema order.
      return true;
    }
    case PlanKind::kFilter:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      return ResolveBaseColumn(*node.children()[0], col, table, base_col);
    case PlanKind::kJoin: {
      const ColumnIdx left_arity = static_cast<ColumnIdx>(
          node.children()[0]->output_schema().NumColumns());
      if (col < left_arity) {
        return ResolveBaseColumn(*node.children()[0], col, table, base_col);
      }
      return ResolveBaseColumn(*node.children()[1], col - left_arity, table,
                               base_col);
    }
    case PlanKind::kProject: {
      const auto& proj = static_cast<const ProjectNode&>(node);
      if (col >= proj.exprs().size()) return false;
      const Expr& e = *proj.exprs()[col];
      if (e.kind() != ExprKind::kColumnRef) return false;
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      if (!ref.bound()) return false;
      return ResolveBaseColumn(*node.children()[0], ref.index(), table,
                               base_col);
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      if (col >= agg.group_by().size()) return false;
      const Expr& e = *agg.group_by()[col];
      if (e.kind() != ExprKind::kColumnRef) return false;
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      if (!ref.bound()) return false;
      return ResolveBaseColumn(*node.children()[0], ref.index(), table,
                               base_col);
    }
    case PlanKind::kUnionAll:
      return false;
  }
  return false;
}

double CardinalityEstimator::RangeSelectivity(const std::string& table,
                                              ColumnIdx column,
                                              const ColumnRange& range) const {
  if (range.empty) return 0.0;
  const TableStats* stats = stats_->Get(table);
  const ColumnStats* col_stats =
      stats != nullptr && stats->HasColumn(column) ? &stats->columns[column]
                                                   : nullptr;

  if (range.equal.has_value()) {
    if (col_stats != nullptr) {
      // Most-common-value hit gives an exact frequency.
      for (const FrequentValue& mcv : col_stats->mcvs) {
        if (mcv.value.GroupEquals(*range.equal)) {
          return col_stats->row_count == 0
                     ? 0.0
                     : static_cast<double>(mcv.count) /
                           static_cast<double>(col_stats->row_count);
        }
      }
      if (!col_stats->histogram.empty() &&
          range.equal->type() != TypeId::kString) {
        return col_stats->histogram.SelectivityEq(
                   range.equal->NumericValue()) *
               col_stats->NonNullFraction();
      }
      if (col_stats->distinct_count > 0) {
        return col_stats->NonNullFraction() /
               static_cast<double>(col_stats->distinct_count);
      }
    }
    return options_.default_eq_selectivity;
  }

  if (!range.Bounded()) return 1.0;
  if (col_stats != nullptr && !col_stats->histogram.empty()) {
    const double lo = range.lo;
    const double hi = range.hi;
    return col_stats->histogram.SelectivityRange(
               std::isinf(lo) ? NAN : lo, range.lo_inclusive,
               std::isinf(hi) ? NAN : hi, range.hi_inclusive) *
           col_stats->NonNullFraction();
  }
  return options_.default_range_selectivity;
}

double CardinalityEstimator::SelectivityOfRangeMap(const std::string& table,
                                                   const RangeMap& map) const {
  if (map.unsatisfiable) return 0.0;
  double selectivity = 1.0;
  for (const auto& [col, range] : map.ranges) {
    selectivity *= RangeSelectivity(table, col, range);
  }
  return selectivity;
}

double CardinalityEstimator::ScanSelectivity(const ScanNode& scan) const {
  const RangeMap real =
      BuildRangeMap(scan.predicates(), /*include_estimation_only=*/false);
  const double sel_real = SelectivityOfRangeMap(scan.table_name(), real);

  // Opaque (non-range-foldable) real predicates: duration predicates are
  // estimated from offset-SC virtual-column statistics, the rest with the
  // default factor.
  double opaque_factor = 1.0;
  for (const Predicate& p : scan.predicates()) {
    if (p.estimation_only) continue;
    std::vector<SimplePredicate> simples;
    if (p.expr->kind() != ExprKind::kLiteral &&
        !ExpandSimplePredicates(*p.expr, &simples)) {
      opaque_factor *= OpaquePredicateSelectivity(scan.table_name(), *p.expr);
    }
  }

  if (!options_.use_twinned_predicates) return sel_real * opaque_factor;

  if (options_.naive_twin_conjunction) {
    // Ablation path: fold twins into the conjunction like ordinary
    // predicates (independence across all columns), confidence-mixed.
    const RangeMap with_twins =
        BuildRangeMap(scan.predicates(), /*include_estimation_only=*/true);
    const double sel_twinned =
        SelectivityOfRangeMap(scan.table_name(), with_twins);
    double conf = 1.0;
    bool has_twins = false;
    for (const Predicate& p : scan.predicates()) {
      if (p.estimation_only) {
        conf *= p.confidence;
        has_twins = true;
      }
    }
    if (!has_twins) return sel_real * opaque_factor;
    return (conf * sel_twinned + (1.0 - conf) * sel_real) * opaque_factor;
  }

  // §5.1 twinning: each twin offers an *alternative* estimate in which the
  // source column's predicate is replaced by its image on the twin's
  // column — reducing a cross-column conjunction (where independence lies)
  // to a single-column range (where the histogram is exact). The twin only
  // holds for `confidence` of rows, so the alternative is mixed with the
  // baseline; and since both are upper-bound-style estimates, we keep the
  // smaller ("apply upper and lower bounds on our estimates").
  double best = sel_real;
  for (const Predicate& p : scan.predicates()) {
    if (!p.estimation_only) continue;
    std::vector<SimplePredicate> twin_simples;
    if (!ExpandSimplePredicates(*p.expr, &twin_simples)) continue;
    RangeMap candidate = real;
    if (p.source_column.has_value()) {
      candidate.ranges.erase(*p.source_column);
    }
    for (const SimplePredicate& sp : twin_simples) {
      candidate.ranges[sp.column].Apply(sp);
      if (candidate.ranges[sp.column].empty) candidate.unsatisfiable = true;
    }
    const double sel_twinned =
        SelectivityOfRangeMap(scan.table_name(), candidate);
    const double mixed =
        p.confidence * sel_twinned + (1.0 - p.confidence) * sel_real;
    best = std::min(best, mixed);
  }
  return best * opaque_factor;
}

double CardinalityEstimator::ColumnNdv(const std::string& table,
                                       ColumnIdx column) const {
  const TableStats* stats = stats_->Get(table);
  if (stats != nullptr && stats->HasColumn(column) &&
      stats->columns[column].distinct_count > 0) {
    return static_cast<double>(stats->columns[column].distinct_count);
  }
  auto t = catalog_->GetTable(table);
  if (t.ok()) {
    return std::max(1.0, static_cast<double>((*t)->NumRows()) / 10.0);
  }
  return 100.0;
}

double CardinalityEstimator::EstimateJoin(const JoinNode& join) const {
  const double left = EstimateRows(*join.children()[0]);
  const double right = EstimateRows(*join.children()[1]);
  double rows = left * right;
  for (const JoinNode::EquiKey& key : join.equi_keys()) {
    std::string lt, rt;
    ColumnIdx lc = 0, rc = 0;
    double ndv = 10.0;
    const bool l_ok =
        ResolveBaseColumn(*join.children()[0], key.left, &lt, &lc);
    const bool r_ok =
        ResolveBaseColumn(*join.children()[1], key.right, &rt, &rc);
    if (l_ok && r_ok) {
      ndv = std::max(ColumnNdv(lt, lc), ColumnNdv(rt, rc));
    } else if (l_ok) {
      ndv = ColumnNdv(lt, lc);
    } else if (r_ok) {
      ndv = ColumnNdv(rt, rc);
    }
    rows /= std::max(1.0, ndv);
  }
  // Non-equi residual conditions.
  const std::size_t residual =
      join.conditions().size() >= join.equi_keys().size()
          ? join.conditions().size() - join.equi_keys().size()
          : 0;
  for (std::size_t i = 0; i < residual; ++i) {
    rows *= options_.default_range_selectivity;
  }
  return rows;
}

double CardinalityEstimator::EstimateRows(const PlanNode& node) const {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      auto table = catalog_->GetTable(scan.table_name());
      const double base =
          table.ok() ? static_cast<double>((*table)->NumRows()) : 0.0;
      return base * ScanSelectivity(scan);
    }
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      double rows = EstimateRows(*node.children()[0]);
      for (const Predicate& p : filter.predicates()) {
        if (p.estimation_only) continue;
        SimplePredicate sp;
        rows *= MatchSimplePredicate(*p.expr, &sp) &&
                        sp.op == CompareOp::kEq
                    ? options_.default_eq_selectivity
                    : options_.default_range_selectivity;
      }
      return rows;
    }
    case PlanKind::kJoin:
      return EstimateJoin(static_cast<const JoinNode&>(node));
    case PlanKind::kProject:
    case PlanKind::kSort:
      return EstimateRows(*node.children()[0]);
    case PlanKind::kLimit: {
      const auto& limit = static_cast<const LimitNode&>(node);
      return std::min(static_cast<double>(limit.limit()),
                      EstimateRows(*node.children()[0]));
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      const double input = EstimateRows(*node.children()[0]);
      if (agg.group_by().empty()) return 1.0;
      double groups = 1.0;
      for (ColumnIdx g = 0; g < agg.group_by().size(); ++g) {
        std::string table;
        ColumnIdx base_col = 0;
        if (ResolveBaseColumn(node, g, &table, &base_col)) {
          groups *= ColumnNdv(table, base_col);
        } else {
          groups *= 10.0;
        }
      }
      return std::min(input, groups);
    }
    case PlanKind::kUnionAll: {
      double rows = 0.0;
      for (const PlanPtr& c : node.children()) rows += EstimateRows(*c);
      return rows;
    }
  }
  return 0.0;
}

}  // namespace softdb
