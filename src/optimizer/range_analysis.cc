#include "optimizer/range_analysis.h"

#include <cmath>

namespace softdb {

void ColumnRange::Apply(const SimplePredicate& pred) {
  if (pred.constant.is_null()) {
    // Comparison with NULL never holds.
    empty = true;
    return;
  }
  if (pred.constant.type() == TypeId::kString) {
    if (pred.op == CompareOp::kEq) {
      if (equal.has_value() && !equal->GroupEquals(pred.constant)) {
        empty = true;
      }
      equal = pred.constant;
    }
    return;  // Lexicographic ranges are not folded numerically.
  }
  const double c = pred.constant.NumericValue();
  switch (pred.op) {
    case CompareOp::kEq:
      if (equal.has_value() && !equal->GroupEquals(pred.constant)) {
        empty = true;
      }
      equal = pred.constant;
      if (c > lo || (c == lo && !lo_inclusive)) {
        lo = c;
        lo_inclusive = true;
      }
      if (c < hi || (c == hi && !hi_inclusive)) {
        hi = c;
        hi_inclusive = true;
      }
      break;
    case CompareOp::kGe:
      if (c > lo) {
        lo = c;
        lo_inclusive = true;
      }
      break;
    case CompareOp::kGt:
      if (c > lo || (c == lo && lo_inclusive)) {
        lo = c;
        lo_inclusive = false;
      }
      break;
    case CompareOp::kLe:
      if (c < hi) {
        hi = c;
        hi_inclusive = true;
      }
      break;
    case CompareOp::kLt:
      if (c < hi || (c == hi && hi_inclusive)) {
        hi = c;
        hi_inclusive = false;
      }
      break;
    case CompareOp::kNe:
      if (equal.has_value() && equal->GroupEquals(pred.constant)) empty = true;
      break;
  }
  if (lo > hi) empty = true;
  if (lo == hi && (!lo_inclusive || !hi_inclusive)) empty = true;
}

bool ColumnRange::ImpliedBy(const ColumnRange& outer) const {
  // this is implied by outer iff outer's interval ⊆ this interval.
  if (outer.empty) return true;  // Vacuous.
  if (lo > outer.lo) return false;
  if (lo == outer.lo && !lo_inclusive && outer.lo_inclusive) return false;
  if (hi < outer.hi) return false;
  if (hi == outer.hi && !hi_inclusive && outer.hi_inclusive) return false;
  if (equal.has_value()) {
    if (!outer.equal.has_value() || !outer.equal->GroupEquals(*equal)) {
      return false;
    }
  }
  return true;
}

RangeMap BuildRangeMap(const std::vector<Predicate>& predicates,
                       bool include_estimation_only) {
  RangeMap map;
  for (const Predicate& p : predicates) {
    if (p.estimation_only && !include_estimation_only) continue;
    // Literal FALSE conjunct (hole-pruned scans).
    if (p.expr->kind() == ExprKind::kLiteral) {
      const Value& v = static_cast<const LiteralExpr&>(*p.expr).value();
      if (!v.is_null() && v.type() == TypeId::kBool && !v.AsBool()) {
        map.unsatisfiable = true;
      }
      continue;
    }
    std::vector<SimplePredicate> simples;
    if (!ExpandSimplePredicates(*p.expr, &simples)) continue;
    for (const SimplePredicate& sp : simples) {
      map.ranges[sp.column].Apply(sp);
      if (map.ranges[sp.column].empty) map.unsatisfiable = true;
    }
  }
  return map;
}

bool IsUnsatisfiable(const std::vector<Predicate>& predicates) {
  return BuildRangeMap(predicates, /*include_estimation_only=*/false)
      .unsatisfiable;
}

bool Implies(const RangeMap& outer, const RangeMap& inner) {
  if (outer.unsatisfiable) return true;
  for (const auto& [col, inner_range] : inner.ranges) {
    const ColumnRange* outer_range = outer.Find(col);
    if (outer_range == nullptr) {
      // Outer does not constrain this column at all: implication requires
      // inner to be unbounded too.
      ColumnRange unconstrained;
      if (!inner_range.ImpliedBy(unconstrained)) return false;
      continue;
    }
    if (!inner_range.ImpliedBy(*outer_range)) return false;
  }
  return true;
}

}  // namespace softdb
