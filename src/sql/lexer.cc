#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/str_util.h"

namespace softdb {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",  "AND",    "OR",     "NOT",    "GROUP",
      "BY",     "ORDER",  "ASC",    "DESC",   "LIMIT",  "AS",     "JOIN",
      "INNER",  "ON",     "UNION",  "ALL",    "INSERT", "INTO",   "VALUES",
      "UPDATE", "SET",    "DELETE", "CREATE", "TABLE",  "INDEX",  "BETWEEN",
      "IN",     "IS",     "NULL",   "TRUE",   "FALSE",  "DATE",   "COUNT",
      "SUM",    "AVG",    "MIN",    "MAX",    "BIGINT", "INTEGER","INT",
      "DOUBLE", "FLOAT",  "VARCHAR","BOOLEAN","PRIMARY","KEY",    "FOREIGN",
      "REFERENCES", "CHECK", "UNIQUE", "CONSTRAINT", "DISTINCT", "HAVING",
      "ANALYZE", "EXPLAIN", "DROP", "ENFORCED",
  };
  return *kKeywords;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    const std::size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper)) {
        out.push_back(Token{TokenType::kKeyword, upper, start});
      } else {
        out.push_back(Token{TokenType::kIdentifier, std::move(word), start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        std::size_t j = i + 1;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
          is_float = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        }
      }
      out.push_back(Token{is_float ? TokenType::kFloatLiteral
                                   : TokenType::kIntLiteral,
                          sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += sql[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      out.push_back(Token{TokenType::kStringLiteral, std::move(text), start});
      continue;
    }
    // Multi-char operators first.
    auto two = sql.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
      out.push_back(
          Token{TokenType::kOperator, two == "!=" ? "<>" : two, start});
      i += 2;
      continue;
    }
    static const std::string kSingles = "=<>+-*/(),.;";
    if (kSingles.find(c) != std::string::npos) {
      out.push_back(Token{TokenType::kOperator, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError(StrFormat("unexpected character '%c' at offset %zu",
                                        c, start));
  }
  out.push_back(Token{TokenType::kEnd, "", n});
  return out;
}

}  // namespace softdb
