#include "sql/parser.h"

#include <utility>

#include "common/date.h"
#include "common/str_util.h"
#include "plan/logical_plan.h"
#include "sql/lexer.h"

namespace softdb {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement();
  Result<ExprPtr> ParseExprOnly();

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool MatchKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool MatchOp(const char* op) {
    if (Peek().IsOp(op)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError(StrFormat("expected %s near offset %zu", kw,
                                          Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectOp(const char* op) {
    if (!MatchOp(op)) {
      return Status::ParseError(StrFormat("expected '%s' near offset %zu", op,
                                          Peek().offset));
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError(StrFormat("expected identifier near offset %zu",
                                          Peek().offset));
    }
    return Advance().text;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect();
  Result<SelectItem> ParseSelectItem();
  Result<TableRef> ParseTableRef();
  Result<Statement> ParseCreate();
  Result<Statement> ParseInsert();
  Result<Statement> ParseUpdate();
  Result<Statement> ParseDelete();
  Result<ConstraintSpec> ParseConstraintSpec(std::string name);
  Result<TypeId> ParseType();

  // Expression grammar, lowest to highest precedence.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParsePredicate();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

Result<ExprPtr> Parser::ParseOr() {
  SOFTDB_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  std::vector<ExprPtr> terms;
  terms.push_back(std::move(left));
  while (MatchKeyword("OR")) {
    SOFTDB_ASSIGN_OR_RETURN(ExprPtr next, ParseAnd());
    terms.push_back(std::move(next));
  }
  return MakeOr(std::move(terms));
}

Result<ExprPtr> Parser::ParseAnd() {
  SOFTDB_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  std::vector<ExprPtr> terms;
  terms.push_back(std::move(left));
  while (MatchKeyword("AND")) {
    SOFTDB_ASSIGN_OR_RETURN(ExprPtr next, ParseNot());
    terms.push_back(std::move(next));
  }
  return MakeAnd(std::move(terms));
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    SOFTDB_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
    return ExprPtr(std::make_unique<NotExpr>(std::move(child)));
  }
  return ParsePredicate();
}

Result<ExprPtr> Parser::ParsePredicate() {
  SOFTDB_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());

  if (MatchKeyword("BETWEEN")) {
    SOFTDB_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    SOFTDB_RETURN_IF_ERROR(ExpectKeyword("AND"));
    SOFTDB_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    return MakeBetween(std::move(left), std::move(lo), std::move(hi));
  }

  bool negated_in = false;
  if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("IN")) {
    Advance();
    negated_in = true;
  }
  if (MatchKeyword("IN")) {
    SOFTDB_RETURN_IF_ERROR(ExpectOp("("));
    std::vector<ExprPtr> list;
    if (!Peek().IsOp(")")) {
      do {
        SOFTDB_ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
        list.push_back(std::move(item));
      } while (MatchOp(","));
    }
    SOFTDB_RETURN_IF_ERROR(ExpectOp(")"));
    ExprPtr in =
        std::make_unique<InListExpr>(std::move(left), std::move(list));
    if (negated_in) return ExprPtr(std::make_unique<NotExpr>(std::move(in)));
    return in;
  }

  if (MatchKeyword("IS")) {
    const bool negated = MatchKeyword("NOT");
    SOFTDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    return ExprPtr(std::make_unique<IsNullExpr>(std::move(left), negated));
  }

  static const std::pair<const char*, CompareOp> kOps[] = {
      {"<=", CompareOp::kLe}, {">=", CompareOp::kGe}, {"<>", CompareOp::kNe},
      {"=", CompareOp::kEq},  {"<", CompareOp::kLt},  {">", CompareOp::kGt},
  };
  for (const auto& [text, op] : kOps) {
    if (MatchOp(text)) {
      SOFTDB_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return MakeCompare(op, std::move(left), std::move(right));
    }
  }
  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  SOFTDB_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    ArithOp op;
    if (MatchOp("+")) {
      op = ArithOp::kAdd;
    } else if (MatchOp("-")) {
      op = ArithOp::kSub;
    } else {
      break;
    }
    SOFTDB_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = std::make_unique<ArithmeticExpr>(op, std::move(left),
                                            std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  SOFTDB_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
  while (true) {
    ArithOp op;
    if (MatchOp("*")) {
      op = ArithOp::kMul;
    } else if (MatchOp("/")) {
      op = ArithOp::kDiv;
    } else {
      break;
    }
    SOFTDB_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
    left = std::make_unique<ArithmeticExpr>(op, std::move(left),
                                            std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kIntLiteral:
      Advance();
      return MakeLiteral(Value::Int64(std::stoll(tok.text)));
    case TokenType::kFloatLiteral:
      Advance();
      return MakeLiteral(Value::Double(std::stod(tok.text)));
    case TokenType::kStringLiteral:
      Advance();
      return MakeLiteral(Value::String(tok.text));
    case TokenType::kIdentifier: {
      Advance();
      std::string name = tok.text;
      if (MatchOp(".")) {
        SOFTDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        name += "." + col;
      }
      return MakeColumnRef(std::move(name));
    }
    case TokenType::kKeyword: {
      if (MatchKeyword("NULL")) return MakeLiteral(Value::Null());
      if (MatchKeyword("TRUE")) return MakeLiteral(Value::Bool(true));
      if (MatchKeyword("FALSE")) return MakeLiteral(Value::Bool(false));
      if (MatchKeyword("DATE")) {
        if (Peek().type != TokenType::kStringLiteral) {
          return Status::ParseError("DATE must be followed by a 'YYYY-MM-DD'");
        }
        SOFTDB_ASSIGN_OR_RETURN(std::int64_t days, Date::Parse(Advance().text));
        return MakeLiteral(Value::Date(days));
      }
      if (MatchOp("-")) {
        // fallthrough below; handled as unary in operator branch.
      }
      break;
    }
    case TokenType::kOperator:
      if (MatchOp("(")) {
        SOFTDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        SOFTDB_RETURN_IF_ERROR(ExpectOp(")"));
        return inner;
      }
      if (MatchOp("-")) {
        SOFTDB_ASSIGN_OR_RETURN(ExprPtr operand, ParsePrimary());
        return ExprPtr(std::make_unique<ArithmeticExpr>(
            ArithOp::kSub, MakeLiteral(Value::Int64(0)), std::move(operand)));
      }
      break;
    default:
      break;
  }
  return Status::ParseError(StrFormat("unexpected token '%s' at offset %zu",
                                      tok.text.c_str(), tok.offset));
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  if (MatchOp("*")) {
    item.star = true;
    return item;
  }
  static const std::pair<const char*, AggFn> kAggs[] = {
      {"COUNT", AggFn::kCount}, {"SUM", AggFn::kSum}, {"AVG", AggFn::kAvg},
      {"MIN", AggFn::kMin},     {"MAX", AggFn::kMax},
  };
  for (const auto& [kw, fn] : kAggs) {
    if (Peek().IsKeyword(kw) && Peek(1).IsOp("(")) {
      Advance();
      Advance();
      if (fn == AggFn::kCount && MatchOp("*")) {
        item.agg_fn = static_cast<int>(AggFn::kCountStar);
      } else {
        SOFTDB_ASSIGN_OR_RETURN(item.agg_arg, ParseExpr());
        item.agg_fn = static_cast<int>(fn);
      }
      SOFTDB_RETURN_IF_ERROR(ExpectOp(")"));
      if (MatchKeyword("AS")) {
        SOFTDB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      }
      return item;
    }
  }
  SOFTDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  if (MatchKeyword("AS")) {
    SOFTDB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
  } else if (Peek().type == TokenType::kIdentifier) {
    item.alias = Advance().text;
  }
  return item;
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  SOFTDB_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
  if (MatchKeyword("AS")) {
    SOFTDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
  } else if (Peek().type == TokenType::kIdentifier) {
    ref.alias = Advance().text;
  }
  return ref;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  SOFTDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStmt>();
  do {
    SOFTDB_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    stmt->items.push_back(std::move(item));
  } while (MatchOp(","));

  SOFTDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  do {
    SOFTDB_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
    stmt->from.push_back(std::move(ref));
  } while (MatchOp(","));

  while (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER")) {
    MatchKeyword("INNER");
    SOFTDB_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
    JoinClause join;
    SOFTDB_ASSIGN_OR_RETURN(join.table, ParseTableRef());
    SOFTDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
    SOFTDB_ASSIGN_OR_RETURN(join.on, ParseExpr());
    stmt->joins.push_back(std::move(join));
  }

  if (MatchKeyword("WHERE")) {
    SOFTDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (MatchKeyword("GROUP")) {
    SOFTDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      SOFTDB_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
      stmt->group_by.push_back(std::move(g));
    } while (MatchOp(","));
  }
  if (MatchKeyword("ORDER")) {
    SOFTDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderItem item;
      SOFTDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
    } while (MatchOp(","));
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().type != TokenType::kIntLiteral) {
      return Status::ParseError("LIMIT requires an integer");
    }
    stmt->limit = static_cast<std::size_t>(std::stoull(Advance().text));
  }
  if (MatchKeyword("UNION")) {
    SOFTDB_RETURN_IF_ERROR(ExpectKeyword("ALL"));
    SOFTDB_ASSIGN_OR_RETURN(stmt->union_next, ParseSelect());
  }
  return stmt;
}

Result<TypeId> Parser::ParseType() {
  const Token& tok = Peek();
  if (tok.type != TokenType::kKeyword) {
    return Status::ParseError("expected a type name at offset " +
                              std::to_string(tok.offset));
  }
  Advance();
  if (tok.text == "BIGINT" || tok.text == "INTEGER" || tok.text == "INT") {
    return TypeId::kInt64;
  }
  if (tok.text == "DOUBLE" || tok.text == "FLOAT") return TypeId::kDouble;
  if (tok.text == "VARCHAR") {
    // Optional length, ignored: VARCHAR(32).
    if (MatchOp("(")) {
      if (Peek().type == TokenType::kIntLiteral) Advance();
      SOFTDB_RETURN_IF_ERROR(ExpectOp(")"));
    }
    return TypeId::kString;
  }
  if (tok.text == "DATE") return TypeId::kDate;
  if (tok.text == "BOOLEAN") return TypeId::kBool;
  return Status::ParseError("unknown type: " + tok.text);
}

Result<ConstraintSpec> Parser::ParseConstraintSpec(std::string name) {
  ConstraintSpec spec;
  spec.name = std::move(name);
  // Trailing NOT ENFORCED is consumed by the caller.
  auto parse_column_list = [&]() -> Result<std::vector<std::string>> {
    SOFTDB_RETURN_IF_ERROR(ExpectOp("("));
    std::vector<std::string> cols;
    do {
      SOFTDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      cols.push_back(std::move(col));
    } while (MatchOp(","));
    SOFTDB_RETURN_IF_ERROR(ExpectOp(")"));
    return cols;
  };

  if (MatchKeyword("PRIMARY")) {
    SOFTDB_RETURN_IF_ERROR(ExpectKeyword("KEY"));
    spec.kind = ConstraintSpec::Kind::kPrimaryKey;
    SOFTDB_ASSIGN_OR_RETURN(spec.columns, parse_column_list());
    return spec;
  }
  if (MatchKeyword("UNIQUE")) {
    spec.kind = ConstraintSpec::Kind::kUnique;
    SOFTDB_ASSIGN_OR_RETURN(spec.columns, parse_column_list());
    return spec;
  }
  if (MatchKeyword("FOREIGN")) {
    SOFTDB_RETURN_IF_ERROR(ExpectKeyword("KEY"));
    spec.kind = ConstraintSpec::Kind::kForeignKey;
    SOFTDB_ASSIGN_OR_RETURN(spec.columns, parse_column_list());
    SOFTDB_RETURN_IF_ERROR(ExpectKeyword("REFERENCES"));
    SOFTDB_ASSIGN_OR_RETURN(spec.ref_table, ExpectIdentifier());
    SOFTDB_ASSIGN_OR_RETURN(spec.ref_columns, parse_column_list());
    return spec;
  }
  if (MatchKeyword("CHECK")) {
    spec.kind = ConstraintSpec::Kind::kCheck;
    SOFTDB_RETURN_IF_ERROR(ExpectOp("("));
    SOFTDB_ASSIGN_OR_RETURN(spec.check, ParseExpr());
    SOFTDB_RETURN_IF_ERROR(ExpectOp(")"));
    return spec;
  }
  return Status::ParseError("expected a constraint clause");
}

Result<Statement> Parser::ParseCreate() {
  SOFTDB_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  if (MatchKeyword("TABLE")) {
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateTable;
    stmt.create_table = std::make_unique<CreateTableStmt>();
    SOFTDB_ASSIGN_OR_RETURN(stmt.create_table->table, ExpectIdentifier());
    SOFTDB_RETURN_IF_ERROR(ExpectOp("("));
    do {
      if (Peek().IsKeyword("PRIMARY") || Peek().IsKeyword("UNIQUE") ||
          Peek().IsKeyword("FOREIGN") || Peek().IsKeyword("CHECK") ||
          Peek().IsKeyword("CONSTRAINT")) {
        std::string name;
        if (MatchKeyword("CONSTRAINT")) {
          SOFTDB_ASSIGN_OR_RETURN(name, ExpectIdentifier());
        }
        SOFTDB_ASSIGN_OR_RETURN(ConstraintSpec spec,
                                ParseConstraintSpec(std::move(name)));
        if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("ENFORCED")) {
          Advance();
          Advance();
          spec.informational = true;
        } else {
          MatchKeyword("ENFORCED");
        }
        stmt.create_table->constraints.push_back(std::move(spec));
        continue;
      }
      ColumnSpec col;
      SOFTDB_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      SOFTDB_ASSIGN_OR_RETURN(col.type, ParseType());
      while (true) {
        if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("NULL")) {
          Advance();
          Advance();
          col.not_null = true;
          continue;
        }
        if (Peek().IsKeyword("PRIMARY") && Peek(1).IsKeyword("KEY")) {
          Advance();
          Advance();
          ConstraintSpec pk;
          pk.kind = ConstraintSpec::Kind::kPrimaryKey;
          pk.columns.push_back(col.name);
          stmt.create_table->constraints.push_back(std::move(pk));
          col.not_null = true;
          continue;
        }
        break;
      }
      stmt.create_table->columns.push_back(std::move(col));
    } while (MatchOp(","));
    SOFTDB_RETURN_IF_ERROR(ExpectOp(")"));
    return stmt;
  }
  if (MatchKeyword("INDEX")) {
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateIndex;
    stmt.create_index = std::make_unique<CreateIndexStmt>();
    SOFTDB_ASSIGN_OR_RETURN(stmt.create_index->index, ExpectIdentifier());
    SOFTDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
    SOFTDB_ASSIGN_OR_RETURN(stmt.create_index->table, ExpectIdentifier());
    SOFTDB_RETURN_IF_ERROR(ExpectOp("("));
    SOFTDB_ASSIGN_OR_RETURN(stmt.create_index->column, ExpectIdentifier());
    SOFTDB_RETURN_IF_ERROR(ExpectOp(")"));
    return stmt;
  }
  return Status::ParseError("expected TABLE or INDEX after CREATE");
}

Result<Statement> Parser::ParseInsert() {
  SOFTDB_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  SOFTDB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  Statement stmt;
  stmt.kind = Statement::Kind::kInsert;
  stmt.insert = std::make_unique<InsertStmt>();
  SOFTDB_ASSIGN_OR_RETURN(stmt.insert->table, ExpectIdentifier());
  SOFTDB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  do {
    SOFTDB_RETURN_IF_ERROR(ExpectOp("("));
    std::vector<ExprPtr> row;
    do {
      SOFTDB_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
      row.push_back(std::move(v));
    } while (MatchOp(","));
    SOFTDB_RETURN_IF_ERROR(ExpectOp(")"));
    stmt.insert->rows.push_back(std::move(row));
  } while (MatchOp(","));
  return stmt;
}

Result<Statement> Parser::ParseUpdate() {
  SOFTDB_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  Statement stmt;
  stmt.kind = Statement::Kind::kUpdate;
  stmt.update = std::make_unique<UpdateStmt>();
  SOFTDB_ASSIGN_OR_RETURN(stmt.update->table, ExpectIdentifier());
  SOFTDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
  do {
    SOFTDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    SOFTDB_RETURN_IF_ERROR(ExpectOp("="));
    SOFTDB_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
    stmt.update->assignments.emplace_back(std::move(col), std::move(value));
  } while (MatchOp(","));
  if (MatchKeyword("WHERE")) {
    SOFTDB_ASSIGN_OR_RETURN(stmt.update->where, ParseExpr());
  }
  return stmt;
}

Result<Statement> Parser::ParseDelete() {
  SOFTDB_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  SOFTDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  Statement stmt;
  stmt.kind = Statement::Kind::kDelete;
  stmt.del = std::make_unique<DeleteStmt>();
  SOFTDB_ASSIGN_OR_RETURN(stmt.del->table, ExpectIdentifier());
  if (MatchKeyword("WHERE")) {
    SOFTDB_ASSIGN_OR_RETURN(stmt.del->where, ParseExpr());
  }
  return stmt;
}

Result<Statement> Parser::ParseStatement() {
  Statement stmt;
  const Token& tok = Peek();
  Status status = Status::OK();
  if (tok.IsKeyword("SELECT")) {
    stmt.kind = Statement::Kind::kSelect;
    SOFTDB_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
  } else if (tok.IsKeyword("EXPLAIN")) {
    Advance();
    stmt.kind = Statement::Kind::kExplain;
    SOFTDB_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
  } else if (tok.IsKeyword("CREATE")) {
    SOFTDB_ASSIGN_OR_RETURN(stmt, ParseCreate());
  } else if (tok.IsKeyword("INSERT")) {
    SOFTDB_ASSIGN_OR_RETURN(stmt, ParseInsert());
  } else if (tok.IsKeyword("UPDATE")) {
    SOFTDB_ASSIGN_OR_RETURN(stmt, ParseUpdate());
  } else if (tok.IsKeyword("DELETE")) {
    SOFTDB_ASSIGN_OR_RETURN(stmt, ParseDelete());
  } else if (tok.IsKeyword("ANALYZE")) {
    Advance();
    stmt.kind = Statement::Kind::kAnalyze;
    stmt.analyze = std::make_unique<AnalyzeStmt>();
    if (Peek().type == TokenType::kIdentifier) {
      stmt.analyze->table = Advance().text;
    }
  } else if (tok.IsKeyword("DROP")) {
    Advance();
    SOFTDB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    stmt.kind = Statement::Kind::kDropTable;
    stmt.drop_table = std::make_unique<DropTableStmt>();
    SOFTDB_ASSIGN_OR_RETURN(stmt.drop_table->table, ExpectIdentifier());
  } else {
    return Status::ParseError("unrecognized statement start: '" + tok.text +
                              "'");
  }
  (void)status;
  MatchOp(";");
  if (Peek().type != TokenType::kEnd) {
    return Status::ParseError(StrFormat("trailing input at offset %zu: '%s'",
                                        Peek().offset, Peek().text.c_str()));
  }
  return stmt;
}

Result<ExprPtr> Parser::ParseExprOnly() {
  SOFTDB_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
  if (Peek().type != TokenType::kEnd) {
    return Status::ParseError("trailing input after expression");
  }
  return expr;
}

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  SOFTDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  SOFTDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseExprOnly();
}

}  // namespace softdb
