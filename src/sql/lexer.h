#ifndef SOFTDB_SQL_LEXER_H_
#define SOFTDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace softdb {

enum class TokenType : std::uint8_t {
  kIdentifier,   // foo, foo.bar (dots handled by parser)
  kKeyword,      // normalized uppercase SQL keyword
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,  // contents without quotes
  kOperator,       // = <> != < <= > >= + - * / ( ) , . ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // Keyword/operator text (keywords uppercase).
  std::size_t offset = 0;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOp(const char* op) const {
    return type == TokenType::kOperator && text == op;
  }
};

/// Tokenizes a SQL string. Keywords are case-insensitive and normalized to
/// uppercase; identifiers keep their original spelling. String literals use
/// single quotes with '' as the escape.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace softdb

#endif  // SOFTDB_SQL_LEXER_H_
