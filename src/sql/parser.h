#ifndef SOFTDB_SQL_PARSER_H_
#define SOFTDB_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "sql/statement.h"

namespace softdb {

/// Parses one SQL statement (a trailing ';' is allowed). The grammar covers
/// the subset the experiments require: SELECT with joins / GROUP BY /
/// ORDER BY / LIMIT / UNION ALL, DML, CREATE TABLE with PK/FK/CHECK/UNIQUE
/// clauses, CREATE INDEX, ANALYZE, EXPLAIN and DROP TABLE.
Result<Statement> ParseStatement(const std::string& sql);

/// Parses a scalar expression on its own (used by the soft-constraint API,
/// where constraint bodies are written as SQL predicates).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace softdb

#endif  // SOFTDB_SQL_PARSER_H_
