#include "sql/binder.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"
#include "plan/predicate.h"

namespace softdb {

void CollectColumnNames(const Expr& expr, std::vector<std::string>* out) {
  if (expr.kind() == ExprKind::kColumnRef) {
    out->push_back(static_cast<const ColumnRefExpr&>(expr).name());
    return;
  }
  switch (expr.kind()) {
    case ExprKind::kComparison: {
      const auto& e = static_cast<const ComparisonExpr&>(expr);
      CollectColumnNames(*e.left(), out);
      CollectColumnNames(*e.right(), out);
      break;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const auto& e = static_cast<const LogicalExpr&>(expr);
      for (const ExprPtr& c : e.children()) CollectColumnNames(*c, out);
      break;
    }
    case ExprKind::kNot:
      CollectColumnNames(*static_cast<const NotExpr&>(expr).child(), out);
      break;
    case ExprKind::kArithmetic: {
      const auto& e = static_cast<const ArithmeticExpr&>(expr);
      CollectColumnNames(*e.left(), out);
      CollectColumnNames(*e.right(), out);
      break;
    }
    case ExprKind::kBetween: {
      const auto& e = static_cast<const BetweenExpr&>(expr);
      CollectColumnNames(*e.input(), out);
      CollectColumnNames(*e.lo(), out);
      CollectColumnNames(*e.hi(), out);
      break;
    }
    case ExprKind::kInList: {
      const auto& e = static_cast<const InListExpr&>(expr);
      CollectColumnNames(*e.input(), out);
      for (const ExprPtr& item : e.list()) CollectColumnNames(*item, out);
      break;
    }
    case ExprKind::kIsNull:
      CollectColumnNames(*static_cast<const IsNullExpr&>(expr).input(), out);
      break;
    case ExprKind::kColumnRef:  // Handled by the early return above.
    case ExprKind::kLiteral:
      break;
  }
}

namespace {

/// One FROM entry during binding.
struct BoundTable {
  std::string effective_name;  // Alias or table name, lowercased.
  std::string table_name;
  Schema schema;  // Columns qualified with effective_name.
};

/// Which bound tables an unbound conjunct references. Returns indices into
/// `tables`, or an error for unknown/ambiguous names.
Result<std::set<std::size_t>> ReferencedTables(
    const Expr& expr, const std::vector<BoundTable>& tables) {
  std::vector<std::string> names;
  CollectColumnNames(expr, &names);
  std::set<std::size_t> out;
  for (const std::string& name : names) {
    const std::size_t dot = name.find('.');
    if (dot != std::string::npos) {
      const std::string qual = ToLower(name.substr(0, dot));
      bool found = false;
      for (std::size_t i = 0; i < tables.size(); ++i) {
        if (tables[i].effective_name == qual) {
          out.insert(i);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::BindError("unknown table qualifier: " + qual);
      }
      continue;
    }
    // Unqualified: must be unique across all tables.
    int hits = 0;
    std::size_t which = 0;
    for (std::size_t i = 0; i < tables.size(); ++i) {
      if (tables[i].schema.Resolve(name).ok()) {
        ++hits;
        which = i;
      }
    }
    if (hits == 0) return Status::BindError("unknown column: " + name);
    if (hits > 1) return Status::BindError("ambiguous column: " + name);
    out.insert(which);
  }
  return out;
}

}  // namespace

Result<PlanPtr> Binder::BindSelect(const SelectStmt& stmt) {
  SOFTDB_ASSIGN_OR_RETURN(PlanPtr first, BindSingleSelect(stmt));
  if (!stmt.union_next) return first;

  std::vector<PlanPtr> branches;
  branches.push_back(std::move(first));
  const SelectStmt* next = stmt.union_next.get();
  while (next != nullptr) {
    SOFTDB_ASSIGN_OR_RETURN(PlanPtr branch, BindSingleSelect(*next));
    branches.push_back(std::move(branch));
    next = next->union_next.get();
  }
  const std::size_t arity = branches[0]->output_schema().NumColumns();
  for (const PlanPtr& b : branches) {
    if (b->output_schema().NumColumns() != arity) {
      return Status::BindError("UNION ALL branches have different arity");
    }
  }
  return PlanPtr(std::make_unique<UnionAllNode>(
      std::move(branches), std::vector<std::optional<Predicate>>()));
}

Result<PlanPtr> Binder::BindSingleSelect(const SelectStmt& stmt) {
  // 1. Resolve FROM tables (and JOIN tables) into scans.
  std::vector<BoundTable> tables;
  std::vector<ExprPtr> conjuncts;  // Unbound predicate pool.

  auto add_table = [&](const TableRef& ref) -> Status {
    SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(ref.table));
    BoundTable bt;
    bt.effective_name = ToLower(ref.EffectiveName());
    bt.table_name = table->name();
    std::vector<ColumnDef> cols = table->schema().columns();
    for (ColumnDef& c : cols) c.table = bt.effective_name;
    bt.schema = Schema(std::move(cols));
    for (const BoundTable& existing : tables) {
      if (existing.effective_name == bt.effective_name) {
        return Status::BindError("duplicate table name/alias: " +
                                 bt.effective_name);
      }
    }
    tables.push_back(std::move(bt));
    return Status::OK();
  };

  if (stmt.from.empty()) return Status::BindError("FROM clause required");
  for (const TableRef& ref : stmt.from) {
    SOFTDB_RETURN_IF_ERROR(add_table(ref));
  }
  for (const JoinClause& join : stmt.joins) {
    SOFTDB_RETURN_IF_ERROR(add_table(join.table));
    for (ExprPtr& c : FlattenConjuncts(join.on->Clone())) {
      conjuncts.push_back(std::move(c));
    }
  }
  if (stmt.where) {
    for (ExprPtr& c : FlattenConjuncts(stmt.where->Clone())) {
      conjuncts.push_back(std::move(c));
    }
  }

  // 2. Classify conjuncts by the tables they touch.
  std::vector<std::vector<ExprPtr>> scan_preds(tables.size());
  struct MultiConjunct {
    ExprPtr expr;
    std::set<std::size_t> tables;
  };
  std::vector<MultiConjunct> multi;
  for (ExprPtr& c : conjuncts) {
    SOFTDB_ASSIGN_OR_RETURN(std::set<std::size_t> refs,
                            ReferencedTables(*c, tables));
    if (refs.size() <= 1) {
      const std::size_t t = refs.empty() ? 0 : *refs.begin();
      scan_preds[t].push_back(std::move(c));
    } else {
      multi.push_back(MultiConjunct{std::move(c), std::move(refs)});
    }
  }

  // 3. Build scans with bound single-table predicates.
  std::vector<PlanPtr> scans;
  for (std::size_t i = 0; i < tables.size(); ++i) {
    auto scan = std::make_unique<ScanNode>(tables[i].table_name,
                                           tables[i].schema);
    for (ExprPtr& p : scan_preds[i]) {
      SOFTDB_RETURN_IF_ERROR(p->Bind(tables[i].schema));
      scan->predicates().push_back(Predicate(std::move(p)));
    }
    scans.push_back(std::move(scan));
  }

  // 4. Left-deep join tree in FROM order; attach each multi-table conjunct
  // at the first join whose coverage includes all its tables.
  PlanPtr plan = std::move(scans[0]);
  std::set<std::size_t> covered{0};
  for (std::size_t i = 1; i < tables.size(); ++i) {
    covered.insert(i);
    Schema joined = Schema::Concat(plan->output_schema(),
                                   scans[i]->output_schema());
    std::vector<Predicate> conditions;
    std::vector<JoinNode::EquiKey> equi_keys;
    const ColumnIdx left_arity =
        static_cast<ColumnIdx>(plan->output_schema().NumColumns());
    for (auto it = multi.begin(); it != multi.end();) {
      const bool applies = std::includes(covered.begin(), covered.end(),
                                         it->tables.begin(), it->tables.end());
      if (!applies) {
        ++it;
        continue;
      }
      SOFTDB_RETURN_IF_ERROR(it->expr->Bind(joined));
      ColumnPairPredicate pair;
      if (MatchColumnPair(*it->expr, &pair) && pair.op == CompareOp::kEq) {
        // Normalize: one side left of the seam, the other right.
        ColumnIdx a = pair.left;
        ColumnIdx b = pair.right;
        if (a > b) std::swap(a, b);
        if (a < left_arity && b >= left_arity) {
          equi_keys.push_back(JoinNode::EquiKey{
              a, static_cast<ColumnIdx>(b - left_arity)});
        }
      }
      conditions.push_back(Predicate(std::move(it->expr)));
      it = multi.erase(it);
    }
    plan = std::make_unique<JoinNode>(std::move(plan), std::move(scans[i]),
                                      std::move(conditions),
                                      std::move(equi_keys));
  }
  if (!multi.empty()) {
    return Status::BindError("could not place join condition: " +
                             multi[0].expr->ToString());
  }

  // 5. Aggregation.
  const bool has_agg = std::any_of(
      stmt.items.begin(), stmt.items.end(),
      [](const SelectItem& item) { return item.agg_fn.has_value(); });
  const bool grouped = has_agg || !stmt.group_by.empty();

  if (grouped) {
    std::vector<ExprPtr> group_exprs;
    for (const ExprPtr& g : stmt.group_by) {
      ExprPtr bound = g->Clone();
      SOFTDB_RETURN_IF_ERROR(bound->Bind(plan->output_schema()));
      group_exprs.push_back(std::move(bound));
    }
    std::vector<AggregateItem> aggs;
    for (const SelectItem& item : stmt.items) {
      if (!item.agg_fn.has_value()) continue;
      AggregateItem agg;
      agg.fn = static_cast<AggFn>(*item.agg_fn);
      if (item.agg_arg) {
        agg.arg = item.agg_arg->Clone();
        SOFTDB_RETURN_IF_ERROR(agg.arg->Bind(plan->output_schema()));
      }
      agg.name = item.alias;
      aggs.push_back(std::move(agg));
    }
    plan = std::make_unique<AggregateNode>(std::move(plan),
                                           std::move(group_exprs),
                                           std::move(aggs));
  }

  // 6. Projection of the select list against the current output schema.
  std::vector<ExprPtr> proj_exprs;
  std::vector<std::string> proj_names;
  bool identity_projection = true;
  if (grouped) {
    // Output schema is group columns followed by aggregates, in order.
    const Schema& agg_schema = plan->output_schema();
    std::size_t agg_pos =
        static_cast<const AggregateNode*>(plan.get())->group_by().size();
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        return Status::BindError("SELECT * not allowed with GROUP BY");
      }
      if (item.agg_fn.has_value()) {
        const ColumnDef& def =
            agg_schema.Column(static_cast<ColumnIdx>(agg_pos));
        proj_exprs.push_back(std::make_unique<ColumnRefExpr>(
            def.QualifiedName(), static_cast<ColumnIdx>(agg_pos), def.type));
        proj_names.push_back(item.alias.empty() ? def.name : item.alias);
        ++agg_pos;
      } else {
        ExprPtr bound = item.expr->Clone();
        SOFTDB_RETURN_IF_ERROR(bound->Bind(agg_schema));
        proj_names.push_back(item.alias.empty() ? bound->ToString()
                                                : item.alias);
        proj_exprs.push_back(std::move(bound));
      }
    }
    identity_projection = false;
  } else {
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        const Schema& schema = plan->output_schema();
        for (ColumnIdx i = 0; i < schema.NumColumns(); ++i) {
          const ColumnDef& def = schema.Column(i);
          proj_exprs.push_back(std::make_unique<ColumnRefExpr>(
              def.QualifiedName(), i, def.type));
          proj_names.push_back(def.name);
        }
        continue;
      }
      ExprPtr bound = item.expr->Clone();
      SOFTDB_RETURN_IF_ERROR(bound->Bind(plan->output_schema()));
      if (bound->kind() != ExprKind::kColumnRef || !item.alias.empty()) {
        identity_projection = false;
      }
      proj_names.push_back(item.alias.empty() ? bound->ToString()
                                              : item.alias);
      proj_exprs.push_back(std::move(bound));
    }
    if (proj_exprs.size() != plan->output_schema().NumColumns()) {
      identity_projection = false;
    }
  }

  // 7. ORDER BY: bind below the projection when possible (projection
  // preserves order), above it otherwise.
  std::vector<SortKey> below_keys;
  bool sort_below = true;
  for (const OrderItem& item : stmt.order_by) {
    ExprPtr bound = item.expr->Clone();
    if (bound->Bind(plan->output_schema()).ok()) {
      below_keys.push_back(SortKey{std::move(bound), item.ascending});
    } else {
      sort_below = false;
      break;
    }
  }
  if (!stmt.order_by.empty() && sort_below) {
    plan = std::make_unique<SortNode>(std::move(plan), std::move(below_keys));
  }

  if (!identity_projection || grouped) {
    plan = std::make_unique<ProjectNode>(std::move(plan),
                                         std::move(proj_exprs),
                                         std::move(proj_names));
  }

  if (!stmt.order_by.empty() && !sort_below) {
    std::vector<SortKey> above_keys;
    for (const OrderItem& item : stmt.order_by) {
      ExprPtr bound = item.expr->Clone();
      SOFTDB_RETURN_IF_ERROR(bound->Bind(plan->output_schema()));
      above_keys.push_back(SortKey{std::move(bound), item.ascending});
    }
    plan = std::make_unique<SortNode>(std::move(plan), std::move(above_keys));
  }

  if (stmt.limit.has_value()) {
    plan = std::make_unique<LimitNode>(std::move(plan), *stmt.limit);
  }
  return plan;
}

}  // namespace softdb
