#ifndef SOFTDB_SQL_BINDER_H_
#define SOFTDB_SQL_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "plan/logical_plan.h"
#include "sql/statement.h"
#include "storage/catalog.h"

namespace softdb {

/// Resolves names in a parsed SELECT against the catalog and produces a
/// bound logical plan:
///
/// * one ScanNode per FROM/JOIN table (alias-qualified),
/// * single-table conjuncts pushed into their scan,
/// * multi-table conjuncts attached at the lowest covering join, with
///   equality pairs extracted as hash-join keys,
/// * Aggregate / Project / Sort / Limit on top,
/// * UNION ALL chains become a UnionAllNode.
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  Result<PlanPtr> BindSelect(const SelectStmt& stmt);

 private:
  Result<PlanPtr> BindSingleSelect(const SelectStmt& stmt);

  const Catalog* catalog_;
};

/// Collects the textual column references in an unbound expression.
void CollectColumnNames(const Expr& expr, std::vector<std::string>* out);

}  // namespace softdb

#endif  // SOFTDB_SQL_BINDER_H_
