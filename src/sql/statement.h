#ifndef SOFTDB_SQL_STATEMENT_H_
#define SOFTDB_SQL_STATEMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "plan/expr.h"
#include "storage/schema.h"

namespace softdb {

/// One item of a SELECT list: either `*`, a plain expression, or an
/// aggregate call.
struct SelectItem {
  bool star = false;
  ExprPtr expr;                 // Unbound; null when star or aggregate.
  std::optional<int> agg_fn;    // Index into AggFn enum when an aggregate.
  ExprPtr agg_arg;              // Null for COUNT(*).
  std::string alias;
};

/// A table in the FROM clause with its optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // Empty: use table name.

  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

/// An explicit JOIN clause (`JOIN t ON cond`); comma-joins desugar to
/// conditions in WHERE.
struct JoinClause {
  TableRef table;
  ExprPtr on;  // Unbound.
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// Parsed SELECT. UNION ALL chains through `union_next`.
struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<JoinClause> joins;
  ExprPtr where;  // May be null.
  std::vector<ExprPtr> group_by;
  std::vector<OrderItem> order_by;
  std::optional<std::size_t> limit;
  std::unique_ptr<SelectStmt> union_next;
};

/// Column clause of CREATE TABLE.
struct ColumnSpec {
  std::string name;
  TypeId type = TypeId::kInt64;
  bool not_null = false;
};

/// Table-level constraint clause of CREATE TABLE. The parser records the
/// shape; the engine materializes it via the constraint registry.
struct ConstraintSpec {
  enum class Kind { kPrimaryKey, kUnique, kForeignKey, kCheck };
  Kind kind = Kind::kCheck;
  std::string name;                       // Optional.
  std::vector<std::string> columns;       // PK/unique/FK local columns.
  std::string ref_table;                  // FK target.
  std::vector<std::string> ref_columns;   // FK target columns.
  ExprPtr check;                          // CHECK expression (unbound).
  /// `NOT ENFORCED` clause: an informational constraint (§1) — never
  /// checked, still visible to the optimizer.
  bool informational = false;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnSpec> columns;
  std::vector<ConstraintSpec> constraints;
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::string column;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<ExprPtr>> rows;  // Constant expressions.
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // May be null.
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // May be null.
};

struct AnalyzeStmt {
  std::string table;  // Empty: all tables.
};

struct DropTableStmt {
  std::string table;
};

/// Any parsed statement. Exactly one member is set, per `kind`.
struct Statement {
  enum class Kind {
    kSelect,
    kExplain,  // EXPLAIN <select>: plan only, no execution.
    kCreateTable,
    kCreateIndex,
    kInsert,
    kUpdate,
    kDelete,
    kAnalyze,
    kDropTable,
  };
  Kind kind = Kind::kSelect;
  std::unique_ptr<SelectStmt> select;  // kSelect / kExplain.
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<AnalyzeStmt> analyze;
  std::unique_ptr<DropTableStmt> drop_table;
};

}  // namespace softdb

#endif  // SOFTDB_SQL_STATEMENT_H_
