#include "constraints/inclusion_sc.h"

#include <unordered_set>

#include "common/str_util.h"

namespace softdb {

namespace {

std::string KeyImage(const std::vector<Value>& row,
                     const std::vector<ColumnIdx>& cols) {
  std::string image;
  for (ColumnIdx c : cols) {
    image += row[c].ToString();
    image += '\x1f';
  }
  return image;
}

std::unordered_set<std::string> ParentKeys(
    const Table& parent, const std::vector<ColumnIdx>& cols) {
  std::unordered_set<std::string> keys;
  for (RowId r = 0; r < parent.NumSlots(); ++r) {
    if (!parent.IsLive(r)) continue;
    keys.insert(KeyImage(parent.GetRow(r), cols));
  }
  return keys;
}

}  // namespace

Result<bool> InclusionSc::CheckRow(const Catalog& catalog,
                                   const std::vector<Value>& row) const {
  for (ColumnIdx c : child_columns_) {
    if (row[c].is_null()) return true;
  }
  SOFTDB_ASSIGN_OR_RETURN(Table * parent, catalog.GetTable(parent_table_));
  const std::string key = KeyImage(row, child_columns_);
  // Linear parent probe; the registry caches nothing here because inclusion
  // SCs are typically maintained asynchronously (the cheap path).
  for (RowId r = 0; r < parent->NumSlots(); ++r) {
    if (!parent->IsLive(r)) continue;
    if (KeyImage(parent->GetRow(r), parent_columns_) == key) return true;
  }
  return false;
}

Result<ScVerifyOutcome> InclusionSc::CountViolations(
    const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * child, catalog.GetTable(table_));
  SOFTDB_ASSIGN_OR_RETURN(Table * parent, catalog.GetTable(parent_table_));
  const std::unordered_set<std::string> keys =
      ParentKeys(*parent, parent_columns_);
  ScVerifyOutcome out;
  for (RowId r = 0; r < child->NumSlots(); ++r) {
    if (!child->IsLive(r)) continue;
    ++out.rows;
    std::vector<Value> row = child->GetRow(r);
    bool has_null = false;
    for (ColumnIdx c : child_columns_) has_null = has_null || row[c].is_null();
    if (has_null) continue;
    if (!keys.count(KeyImage(row, child_columns_))) ++out.violations;
  }
  return out;
}

std::string InclusionSc::Describe() const {
  return StrFormat("SC %s: %s ⊆ %s (conf %.4f, %s)", name_.c_str(),
                   table_.c_str(), parent_table_.c_str(), confidence(),
                   ScStateName(state()));
}

}  // namespace softdb
