#include "constraints/sc_registry.h"

#include <algorithm>
#include <utility>

namespace softdb {

Status ScRegistry::Add(ScPtr sc, const Catalog& catalog, bool verify_now) {
  if (Find(sc->name()) != nullptr) {
    return Status::AlreadyExists("soft constraint exists: " + sc->name());
  }
  if (verify_now) {
    // Verification reads the catalog; keep it outside the list lock.
    SOFTDB_RETURN_IF_ERROR(sc->Verify(catalog).status());
  }
  std::unique_lock<std::shared_mutex> lk(list_mu_);
  if (FindLocked(sc->name()) != nullptr) {  // Lost a concurrent-Add race.
    return Status::AlreadyExists("soft constraint exists: " + sc->name());
  }
  constraints_.push_back(ScSharedPtr(std::move(sc)));
  return Status::OK();
}

SoftConstraint* ScRegistry::FindLocked(const std::string& name) const {
  for (const ScSharedPtr& sc : constraints_) {
    if (sc->name() == name) return sc.get();
  }
  return nullptr;
}

SoftConstraint* ScRegistry::Find(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lk(list_mu_);
  return FindLocked(name);
}

Status ScRegistry::Drop(const std::string& name) {
  ScSharedPtr dropped;
  {
    std::unique_lock<std::shared_mutex> lk(list_mu_);
    for (auto it = constraints_.begin(); it != constraints_.end(); ++it) {
      if ((*it)->name() == name) {
        dropped = *it;
        constraints_.erase(it);
        // The graveyard keeps the object alive: sessions may still hold
        // raw pointers from Find/On/All.
        graveyard_.push_back(dropped);
        break;
      }
    }
  }
  if (dropped == nullptr) {
    return Status::NotFound("no such soft constraint: " + name);
  }
  dropped->set_state(ScState::kDropped);
  stats_.drops.fetch_add(1, std::memory_order_relaxed);
  FireViolation(*dropped);  // Without the list lock (listener locks).
  return Status::OK();
}

std::vector<ScRegistry::ScSharedPtr> ScRegistry::Snapshot() const {
  std::shared_lock<std::shared_mutex> lk(list_mu_);
  return constraints_;
}

std::vector<SoftConstraint*> ScRegistry::On(const std::string& table) const {
  std::shared_lock<std::shared_mutex> lk(list_mu_);
  std::vector<SoftConstraint*> out;
  for (const ScSharedPtr& sc : constraints_) {
    if (sc->table() == table) {
      out.push_back(sc.get());
      continue;
    }
    if (auto* hole = dynamic_cast<JoinHoleSc*>(sc.get())) {
      if (hole->right_table() == table) out.push_back(sc.get());
    }
  }
  return out;
}

std::vector<SoftConstraint*> ScRegistry::ByKind(ScKind kind) const {
  std::shared_lock<std::shared_mutex> lk(list_mu_);
  std::vector<SoftConstraint*> out;
  for (const ScSharedPtr& sc : constraints_) {
    if (sc->kind() == kind) out.push_back(sc.get());
  }
  return out;
}

std::vector<SoftConstraint*> ScRegistry::All() const {
  std::shared_lock<std::shared_mutex> lk(list_mu_);
  std::vector<SoftConstraint*> out;
  out.reserve(constraints_.size());
  for (const ScSharedPtr& sc : constraints_) out.push_back(sc.get());
  return out;
}

std::size_t ScRegistry::size() const {
  std::shared_lock<std::shared_mutex> lk(list_mu_);
  return constraints_.size();
}

Status ScRegistry::OnInsert(const Catalog& catalog, const std::string& table,
                            const std::vector<Value>& row,
                            const std::set<std::string>* scope) {
  // Iterate a snapshot: row checks read the catalog and the listener
  // takes the plan-cache mutex, neither under the registry's list lock.
  for (const ScSharedPtr& sc_ptr : Snapshot()) {
    SoftConstraint* sc = sc_ptr.get();
    // Serialize maintenance per SC; queries never take this lock — they
    // read the atomic lifecycle fields.
    std::lock_guard<std::mutex> sc_lk(sc->maintenance_mu());
    if (!sc->active()) continue;

    auto* hole = dynamic_cast<JoinHoleSc*>(sc);
    const bool is_left = sc->table() == table;
    const bool is_right = hole != nullptr && hole->right_table() == table;
    if (!is_left && !is_right) continue;

    // Statistical SCs need no synchronous work: currency tracking already
    // bounds their decay (§3: "SSCs do not have to be checked at update").
    if (!sc->IsAbsolute()) continue;

    // Impact scoping: the analyzer proved this statement cannot overturn
    // SCs outside `scope`, so their checks (and conservative hole
    // invalidation) are safely skipped.
    if (scope != nullptr && scope->count(sc->name()) == 0) {
      stats_.scoped_skips.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    bool complies = true;
    if (hole != nullptr) {
      // Join holes: conservative policies avoid the join; kDropOnViolation
      // and kTolerate do the exact probe.
      if (sc->policy() == ScMaintenancePolicy::kSyncRepair) {
        // Conservative repair: drop any hole the new value projects into
        // (§4.3's "assume the new value does violate the holes").
        const std::size_t dropped =
            is_left ? hole->InvalidateHolesForLeftInsert(row)
                    : hole->InvalidateHolesForRightInsert(row);
        stats_.holes_invalidated.fetch_add(dropped,
                                           std::memory_order_relaxed);
        if (dropped > 0) {
          stats_.sync_repairs.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      if (is_right) {
        // Exact check from the right side: symmetric probe is expensive;
        // treat as a left check would by re-verifying lazily via queue.
        if (sc->policy() == ScMaintenancePolicy::kAsyncRepair) {
          const std::size_t dropped = hole->InvalidateHolesForRightInsert(row);
          stats_.holes_invalidated.fetch_add(dropped,
                                             std::memory_order_relaxed);
          continue;
        }
      }
      if (is_left) {
        stats_.row_checks.fetch_add(1, std::memory_order_relaxed);
        SOFTDB_ASSIGN_OR_RETURN(complies, sc->CheckRow(catalog, row));
      }
    } else {
      stats_.row_checks.fetch_add(1, std::memory_order_relaxed);
      SOFTDB_ASSIGN_OR_RETURN(complies, sc->CheckRow(catalog, row));
    }
    if (complies) continue;

    stats_.violations.fetch_add(1, std::memory_order_relaxed);
    switch (sc->policy()) {
      case ScMaintenancePolicy::kDropOnViolation:
        sc->set_state(ScState::kViolated);
        stats_.drops.fetch_add(1, std::memory_order_relaxed);
        FireViolation(*sc);
        break;
      case ScMaintenancePolicy::kSyncRepair: {
        Status st = sc->RepairForRow(row);
        if (st.ok()) {
          stats_.sync_repairs.fetch_add(1, std::memory_order_relaxed);
        } else {
          // No sync repair available: fall back to drop.
          sc->set_state(ScState::kViolated);
          stats_.drops.fetch_add(1, std::memory_order_relaxed);
          FireViolation(*sc);
        }
        break;
      }
      case ScMaintenancePolicy::kAsyncRepair:
        sc->set_state(ScState::kRepairQueued);
        {
          std::lock_guard<std::mutex> lk(aux_mu_);
          repair_queue_.push_back(sc->name());
        }
        stats_.async_enqueued.fetch_add(1, std::memory_order_relaxed);
        FireViolation(*sc);  // Plans lose the SC until repair completes.
        break;
      case ScMaintenancePolicy::kTolerate: {
        // Demote to statistical: account one more violating row.
        const double rows =
            static_cast<double>(std::max<std::uint64_t>(1, sc->verified_rows()));
        sc->set_confidence(std::max(0.0, sc->confidence() - 1.0 / rows));
        FireViolation(*sc);  // Rewrites relying on absoluteness are invalid.
        break;
      }
    }
  }
  return Status::OK();
}

Status ScRegistry::RunRepairQueue(const Catalog& catalog) {
  while (true) {
    std::string name;
    {
      std::lock_guard<std::mutex> lk(aux_mu_);
      if (repair_queue_.empty()) break;
      name = repair_queue_.front();
      repair_queue_.pop_front();
    }
    SoftConstraint* sc = Find(name);
    if (sc == nullptr) continue;
    std::lock_guard<std::mutex> sc_lk(sc->maintenance_mu());
    if (sc->state() != ScState::kRepairQueued) continue;
    SOFTDB_RETURN_IF_ERROR(sc->RepairFull(catalog));
    sc->set_state(ScState::kActive);
    stats_.async_repairs.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

std::size_t ScRegistry::repair_queue_size() const {
  std::lock_guard<std::mutex> lk(aux_mu_);
  return repair_queue_.size();
}

Status ScRegistry::VerifyAll(const Catalog& catalog) {
  for (const ScSharedPtr& sc : Snapshot()) {
    std::lock_guard<std::mutex> sc_lk(sc->maintenance_mu());
    if (sc->state() == ScState::kDropped) continue;
    SOFTDB_RETURN_IF_ERROR(sc->Verify(catalog).status());
  }
  return Status::OK();
}

void ScRegistry::RecordUse(const std::string& name, double benefit) {
  std::lock_guard<std::mutex> lk(aux_mu_);
  ++use_counts_[name];
  benefits_[name] += benefit;
}

std::uint64_t ScRegistry::UseCount(const std::string& name) const {
  std::lock_guard<std::mutex> lk(aux_mu_);
  auto it = use_counts_.find(name);
  return it == use_counts_.end() ? 0 : it->second;
}

double ScRegistry::TotalBenefit(const std::string& name) const {
  std::lock_guard<std::mutex> lk(aux_mu_);
  auto it = benefits_.find(name);
  return it == benefits_.end() ? 0.0 : it->second;
}

}  // namespace softdb
