#include "constraints/sc_registry.h"

#include <algorithm>

namespace softdb {

Status ScRegistry::Add(ScPtr sc, const Catalog& catalog, bool verify_now) {
  if (Find(sc->name()) != nullptr) {
    return Status::AlreadyExists("soft constraint exists: " + sc->name());
  }
  if (verify_now) {
    SOFTDB_RETURN_IF_ERROR(sc->Verify(catalog).status());
  }
  constraints_.push_back(std::move(sc));
  return Status::OK();
}

SoftConstraint* ScRegistry::Find(const std::string& name) const {
  for (const ScPtr& sc : constraints_) {
    if (sc->name() == name) return sc.get();
  }
  return nullptr;
}

Status ScRegistry::Drop(const std::string& name) {
  for (auto it = constraints_.begin(); it != constraints_.end(); ++it) {
    if ((*it)->name() == name) {
      (*it)->set_state(ScState::kDropped);
      FireViolation(**it);
      constraints_.erase(it);
      ++stats_.drops;
      return Status::OK();
    }
  }
  return Status::NotFound("no such soft constraint: " + name);
}

std::vector<SoftConstraint*> ScRegistry::On(const std::string& table) const {
  std::vector<SoftConstraint*> out;
  for (const ScPtr& sc : constraints_) {
    if (sc->table() == table) {
      out.push_back(sc.get());
      continue;
    }
    if (auto* hole = dynamic_cast<JoinHoleSc*>(sc.get())) {
      if (hole->right_table() == table) out.push_back(sc.get());
    }
  }
  return out;
}

std::vector<SoftConstraint*> ScRegistry::ByKind(ScKind kind) const {
  std::vector<SoftConstraint*> out;
  for (const ScPtr& sc : constraints_) {
    if (sc->kind() == kind) out.push_back(sc.get());
  }
  return out;
}

std::vector<SoftConstraint*> ScRegistry::All() const {
  std::vector<SoftConstraint*> out;
  out.reserve(constraints_.size());
  for (const ScPtr& sc : constraints_) out.push_back(sc.get());
  return out;
}

Status ScRegistry::OnInsert(const Catalog& catalog, const std::string& table,
                            const std::vector<Value>& row,
                            const std::set<std::string>* scope) {
  for (const ScPtr& sc_ptr : constraints_) {
    SoftConstraint* sc = sc_ptr.get();
    if (!sc->active()) continue;

    auto* hole = dynamic_cast<JoinHoleSc*>(sc);
    const bool is_left = sc->table() == table;
    const bool is_right = hole != nullptr && hole->right_table() == table;
    if (!is_left && !is_right) continue;

    // Statistical SCs need no synchronous work: currency tracking already
    // bounds their decay (§3: "SSCs do not have to be checked at update").
    if (!sc->IsAbsolute()) continue;

    // Impact scoping: the analyzer proved this statement cannot overturn
    // SCs outside `scope`, so their checks (and conservative hole
    // invalidation) are safely skipped.
    if (scope != nullptr && scope->count(sc->name()) == 0) {
      ++stats_.scoped_skips;
      continue;
    }

    bool complies = true;
    if (hole != nullptr) {
      // Join holes: conservative policies avoid the join; kDropOnViolation
      // and kTolerate do the exact probe.
      if (sc->policy() == ScMaintenancePolicy::kSyncRepair) {
        // Conservative repair: drop any hole the new value projects into
        // (§4.3's "assume the new value does violate the holes").
        const std::size_t dropped =
            is_left ? hole->InvalidateHolesForLeftInsert(row)
                    : hole->InvalidateHolesForRightInsert(row);
        stats_.holes_invalidated += dropped;
        if (dropped > 0) ++stats_.sync_repairs;
        continue;
      }
      if (is_right) {
        // Exact check from the right side: symmetric probe is expensive;
        // treat as a left check would by re-verifying lazily via queue.
        if (sc->policy() == ScMaintenancePolicy::kAsyncRepair) {
          const std::size_t dropped = hole->InvalidateHolesForRightInsert(row);
          stats_.holes_invalidated += dropped;
          continue;
        }
      }
      if (is_left) {
        ++stats_.row_checks;
        SOFTDB_ASSIGN_OR_RETURN(complies, sc->CheckRow(catalog, row));
      }
    } else {
      ++stats_.row_checks;
      SOFTDB_ASSIGN_OR_RETURN(complies, sc->CheckRow(catalog, row));
    }
    if (complies) continue;

    ++stats_.violations;
    switch (sc->policy()) {
      case ScMaintenancePolicy::kDropOnViolation:
        sc->set_state(ScState::kViolated);
        ++stats_.drops;
        FireViolation(*sc);
        break;
      case ScMaintenancePolicy::kSyncRepair: {
        Status st = sc->RepairForRow(row);
        if (st.ok()) {
          ++stats_.sync_repairs;
        } else {
          // No sync repair available: fall back to drop.
          sc->set_state(ScState::kViolated);
          ++stats_.drops;
          FireViolation(*sc);
        }
        break;
      }
      case ScMaintenancePolicy::kAsyncRepair:
        sc->set_state(ScState::kRepairQueued);
        repair_queue_.push_back(sc->name());
        ++stats_.async_enqueued;
        FireViolation(*sc);  // Plans lose the SC until repair completes.
        break;
      case ScMaintenancePolicy::kTolerate: {
        // Demote to statistical: account one more violating row.
        const double rows =
            static_cast<double>(std::max<std::uint64_t>(1, sc->verified_rows()));
        sc->set_confidence(std::max(0.0, sc->confidence() - 1.0 / rows));
        FireViolation(*sc);  // Rewrites relying on absoluteness are invalid.
        break;
      }
    }
  }
  return Status::OK();
}

Status ScRegistry::RunRepairQueue(const Catalog& catalog) {
  while (!repair_queue_.empty()) {
    const std::string name = repair_queue_.front();
    repair_queue_.pop_front();
    SoftConstraint* sc = Find(name);
    if (sc == nullptr || sc->state() != ScState::kRepairQueued) continue;
    SOFTDB_RETURN_IF_ERROR(sc->RepairFull(catalog));
    sc->set_state(ScState::kActive);
    ++stats_.async_repairs;
  }
  return Status::OK();
}

Status ScRegistry::VerifyAll(const Catalog& catalog) {
  for (const ScPtr& sc : constraints_) {
    if (sc->state() == ScState::kDropped) continue;
    SOFTDB_RETURN_IF_ERROR(sc->Verify(catalog).status());
  }
  return Status::OK();
}

void ScRegistry::RecordUse(const std::string& name, double benefit) {
  ++use_counts_[name];
  benefits_[name] += benefit;
}

std::uint64_t ScRegistry::UseCount(const std::string& name) const {
  auto it = use_counts_.find(name);
  return it == use_counts_.end() ? 0 : it->second;
}

double ScRegistry::TotalBenefit(const std::string& name) const {
  auto it = benefits_.find(name);
  return it == benefits_.end() ? 0.0 : it->second;
}

}  // namespace softdb
