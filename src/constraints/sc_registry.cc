#include "constraints/sc_registry.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "constraints/zone_map_sc.h"

namespace softdb {

Status ScRegistry::Add(ScPtr sc, const Catalog& catalog, bool verify_now) {
  if (Find(sc->name()) != nullptr) {
    return Status::AlreadyExists("soft constraint exists: " + sc->name());
  }
  if (verify_now) {
    // Verification reads the catalog; keep it outside the list lock.
    SOFTDB_RETURN_IF_ERROR(sc->Verify(catalog).status());
  }
  ScSharedPtr shared(std::move(sc));
  {
    std::unique_lock<std::shared_mutex> lk(list_mu_);
    if (FindLocked(shared->name()) != nullptr) {  // Lost a concurrent-Add race.
      return Status::AlreadyExists("soft constraint exists: " + shared->name());
    }
    constraints_.push_back(shared);
  }
  if (wal_log_ != nullptr) {
    // Registration must be durable before it is acknowledged; on a log
    // failure the SC is unregistered again so memory and log agree.
    Status st = wal_log_->LogRegister(*shared);
    if (!st.ok()) {
      std::unique_lock<std::shared_mutex> lk(list_mu_);
      constraints_.erase(
          std::remove(constraints_.begin(), constraints_.end(), shared),
          constraints_.end());
      return st;
    }
  }
  return Status::OK();
}

SoftConstraint* ScRegistry::FindLocked(const std::string& name) const {
  for (const ScSharedPtr& sc : constraints_) {
    if (sc->name() == name) return sc.get();
  }
  return nullptr;
}

SoftConstraint* ScRegistry::Find(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lk(list_mu_);
  return FindLocked(name);
}

Status ScRegistry::Drop(const std::string& name) {
  ScSharedPtr dropped;
  {
    std::unique_lock<std::shared_mutex> lk(list_mu_);
    for (auto it = constraints_.begin(); it != constraints_.end(); ++it) {
      if ((*it)->name() == name) {
        dropped = *it;
        constraints_.erase(it);
        // The graveyard keeps the object alive: sessions may still hold
        // raw pointers from Find/On/All.
        graveyard_.push_back(dropped);
        break;
      }
    }
  }
  if (dropped == nullptr) {
    return Status::NotFound("no such soft constraint: " + name);
  }
  dropped->set_state(ScState::kDropped);
  stats_.drops.fetch_add(1, std::memory_order_relaxed);
  FireViolation(*dropped);  // Without the list lock (listener locks).
  if (wal_log_ != nullptr) {
    SOFTDB_RETURN_IF_ERROR(wal_log_->LogDrop(*dropped));
  }
  return Status::OK();
}

std::vector<ScRegistry::ScSharedPtr> ScRegistry::Snapshot() const {
  std::shared_lock<std::shared_mutex> lk(list_mu_);
  return constraints_;
}

std::vector<SoftConstraint*> ScRegistry::On(const std::string& table) const {
  std::shared_lock<std::shared_mutex> lk(list_mu_);
  std::vector<SoftConstraint*> out;
  for (const ScSharedPtr& sc : constraints_) {
    if (sc->table() == table) {
      out.push_back(sc.get());
      continue;
    }
    if (auto* hole = dynamic_cast<JoinHoleSc*>(sc.get())) {
      if (hole->right_table() == table) out.push_back(sc.get());
    }
  }
  return out;
}

std::vector<SoftConstraint*> ScRegistry::ByKind(ScKind kind) const {
  std::shared_lock<std::shared_mutex> lk(list_mu_);
  std::vector<SoftConstraint*> out;
  for (const ScSharedPtr& sc : constraints_) {
    if (sc->kind() == kind) out.push_back(sc.get());
  }
  return out;
}

std::vector<SoftConstraint*> ScRegistry::All() const {
  std::shared_lock<std::shared_mutex> lk(list_mu_);
  std::vector<SoftConstraint*> out;
  out.reserve(constraints_.size());
  for (const ScSharedPtr& sc : constraints_) out.push_back(sc.get());
  return out;
}

std::size_t ScRegistry::size() const {
  std::shared_lock<std::shared_mutex> lk(list_mu_);
  return constraints_.size();
}

Status ScRegistry::OnInsert(const Catalog& catalog, const std::string& table,
                            const std::vector<Value>& row,
                            const std::set<std::string>* scope) {
  // Iterate a snapshot: row checks read the catalog and the listener
  // takes the plan-cache mutex, neither under the registry's list lock.
  for (const ScSharedPtr& sc_ptr : Snapshot()) {
    SoftConstraint* sc = sc_ptr.get();
    // Serialize maintenance per SC; queries never take this lock — they
    // read the atomic lifecycle fields.
    std::lock_guard<std::mutex> sc_lk(sc->maintenance_mu());
    if (!sc->active()) continue;

    // Zone maps are keyed by RowId, which this hook does not have; they
    // fold through OnRowAppended/OnRowUpdated instead.
    if (sc->kind() == ScKind::kBlockZoneMap) continue;

    auto* hole = dynamic_cast<JoinHoleSc*>(sc);
    const bool is_left = sc->table() == table;
    const bool is_right = hole != nullptr && hole->right_table() == table;
    if (!is_left && !is_right) continue;

    // Statistical SCs need no synchronous work: currency tracking already
    // bounds their decay (§3: "SSCs do not have to be checked at update").
    if (!sc->IsAbsolute()) continue;

    // Impact scoping: the analyzer proved this statement cannot overturn
    // SCs outside `scope`, so their checks (and conservative hole
    // invalidation) are safely skipped.
    if (scope != nullptr && scope->count(sc->name()) == 0) {
      stats_.scoped_skips.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    bool complies = true;
    if (hole != nullptr) {
      // Join holes: conservative policies avoid the join; kDropOnViolation
      // and kTolerate do the exact probe.
      if (sc->policy() == ScMaintenancePolicy::kSyncRepair) {
        // Conservative repair: drop any hole the new value projects into
        // (§4.3's "assume the new value does violate the holes").
        const std::size_t dropped =
            is_left ? hole->InvalidateHolesForLeftInsert(row)
                    : hole->InvalidateHolesForRightInsert(row);
        stats_.holes_invalidated.fetch_add(dropped,
                                           std::memory_order_relaxed);
        if (dropped > 0) {
          sc->BumpEpoch();  // Plans pruned on a hole that no longer holds.
          stats_.sync_repairs.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      if (is_right) {
        // Exact check from the right side: symmetric probe is expensive;
        // treat as a left check would by re-verifying lazily via queue.
        if (sc->policy() == ScMaintenancePolicy::kAsyncRepair) {
          const std::size_t dropped = hole->InvalidateHolesForRightInsert(row);
          stats_.holes_invalidated.fetch_add(dropped,
                                             std::memory_order_relaxed);
          if (dropped > 0) sc->BumpEpoch();
          continue;
        }
      }
      if (is_left) {
        stats_.row_checks.fetch_add(1, std::memory_order_relaxed);
        SOFTDB_ASSIGN_OR_RETURN(complies, sc->CheckRow(catalog, row));
      }
    } else {
      stats_.row_checks.fetch_add(1, std::memory_order_relaxed);
      SOFTDB_ASSIGN_OR_RETURN(complies, sc->CheckRow(catalog, row));
    }
    if (complies) continue;

    stats_.violations.fetch_add(1, std::memory_order_relaxed);
    switch (sc->policy()) {
      case ScMaintenancePolicy::kDropOnViolation:
        sc->set_state(ScState::kViolated);
        stats_.drops.fetch_add(1, std::memory_order_relaxed);
        FireViolation(*sc);
        break;
      case ScMaintenancePolicy::kSyncRepair: {
        Status st = sc->RepairForRow(row);
        if (st.ok()) {
          // The SC stayed active but its parameters changed; in-flight
          // plans that consumed the old parameters must revalidate.
          sc->BumpEpoch();
          stats_.sync_repairs.fetch_add(1, std::memory_order_relaxed);
        } else {
          // No sync repair available: fall back to drop.
          sc->set_state(ScState::kViolated);
          stats_.drops.fetch_add(1, std::memory_order_relaxed);
          FireViolation(*sc);
        }
        break;
      }
      case ScMaintenancePolicy::kAsyncRepair: {
        sc->set_state(ScState::kRepairQueued);
        // Dedupe on enqueue: a stale ticket can still be queued when the SC
        // was resurrected (e.g. by VerifyAll) and violated again, and
        // double-queueing would double-count async_enqueued and repair the
        // SC twice.
        bool enqueued = false;
        {
          std::lock_guard<std::mutex> lk(aux_mu_);
          if (queued_names_.insert(sc->name()).second) {
            repair_queue_.push_back(RepairTicket{
                sc->name(), 0, std::chrono::steady_clock::now()});
            enqueued = true;
          }
        }
        if (enqueued) {
          stats_.async_enqueued.fetch_add(1, std::memory_order_relaxed);
        }
        FireViolation(*sc);  // Plans lose the SC until repair completes.
        break;
      }
      case ScMaintenancePolicy::kTolerate: {
        // Demote to statistical: account one more violating row.
        const double rows =
            static_cast<double>(std::max<std::uint64_t>(1, sc->verified_rows()));
        sc->set_confidence(std::max(0.0, sc->confidence() - 1.0 / rows));
        FireViolation(*sc);  // Rewrites relying on absoluteness are invalid.
        break;
      }
    }
  }
  return Status::OK();
}

Status ScRegistry::OnRowAppended(const Catalog& catalog,
                                 const std::string& table, RowId rid,
                                 const std::vector<Value>& row) {
  (void)catalog;
  for (const ScSharedPtr& sc_ptr : Snapshot()) {
    SoftConstraint* sc = sc_ptr.get();
    if (sc->kind() != ScKind::kBlockZoneMap || sc->table() != table) continue;
    std::lock_guard<std::mutex> sc_lk(sc->maintenance_mu());
    if (!sc->active()) continue;
    // A widen-only fold keeps the invariant for free: no compliance check,
    // no policy machinery, no epoch bump — O(1) per row.
    static_cast<ZoneMapSc*>(sc)->FoldAppendedRow(rid, row);
  }
  return Status::OK();
}

Status ScRegistry::OnRowUpdated(const Catalog& catalog,
                                const std::string& table, RowId rid,
                                const std::vector<Value>& new_row) {
  for (const ScSharedPtr& sc_ptr : Snapshot()) {
    SoftConstraint* sc = sc_ptr.get();
    if (sc->kind() != ScKind::kBlockZoneMap || sc->table() != table) continue;
    std::lock_guard<std::mutex> sc_lk(sc->maintenance_mu());
    if (!sc->active()) continue;
    SOFTDB_RETURN_IF_ERROR(
        static_cast<ZoneMapSc*>(sc)->FoldUpdatedRow(catalog, rid, new_row));
  }
  return Status::OK();
}

Status ScRegistry::RunRepairQueue(const Catalog& catalog) {
  std::size_t pending;
  {
    std::lock_guard<std::mutex> lk(aux_mu_);
    pending = repair_queue_.size();
  }
  // Bounded pass: each ticket queued at entry gets one attempt; re-queued
  // failures land at the back and wait for the next drain (or the worker).
  for (std::size_t i = 0; i < pending; ++i) {
    if (RepairStep(catalog, /*respect_backoff=*/false) ==
        RepairStepResult::kIdle) {
      break;
    }
  }
  return Status::OK();
}

RepairStepResult ScRegistry::RepairStep(const Catalog& catalog,
                                        bool respect_backoff) {
  RepairTicket ticket;
  {
    std::lock_guard<std::mutex> lk(aux_mu_);
    const auto now = std::chrono::steady_clock::now();
    auto it = repair_queue_.begin();
    while (it != repair_queue_.end() && respect_backoff &&
           it->not_before > now) {
      ++it;
    }
    if (it == repair_queue_.end()) return RepairStepResult::kIdle;
    ticket = std::move(*it);
    repair_queue_.erase(it);
    queued_names_.erase(ticket.name);
  }
  return AttemptRepair(catalog, std::move(ticket));
}

RepairStepResult ScRegistry::AttemptRepair(const Catalog& catalog,
                                           RepairTicket ticket) {
  SoftConstraint* sc = Find(ticket.name);
  if (sc == nullptr) return RepairStepResult::kStale;  // Dropped meanwhile.
  RepairPolicy policy;
  {
    std::lock_guard<std::mutex> lk(aux_mu_);
    policy = repair_policy_;
  }
  RepairStepResult outcome;
  Status error;
  {
    std::lock_guard<std::mutex> sc_lk(sc->maintenance_mu());
    if (sc->state() != ScState::kRepairQueued) {
      // Resurrected (VerifyAll) or demoted while queued; nothing to do.
      return RepairStepResult::kStale;
    }
    Status st;
    if (SOFTDB_FAILPOINT_FIRED("sc.repair_full")) {
      st = Status::Internal("injected repair failure for " + sc->name());
    } else {
      st = sc->RepairFull(catalog);
    }
    if (st.ok()) {
      sc->set_state(ScState::kActive);
      if (wal_log_ != nullptr) {
        // Durable arm protocol (DESIGN.md §14): the arm counts only when
        // both the transition and its commit record land. On a log
        // failure the in-memory arm is reverted and the attempt treated
        // as failed; the log may retain a dangling transition, which
        // recovery disarms.
        Status wst = wal_log_->LogTransition(*sc, ScState::kRepairQueued,
                                             ScState::kActive,
                                             ScArmMode::kRepairFull);
        if (wst.ok()) wst = wal_log_->LogArmCommit(*sc);
        if (!wst.ok()) {
          sc->set_state(ScState::kRepairQueued);
          st = std::move(wst);
        }
      }
    }
    if (st.ok()) {
      outcome = RepairStepResult::kRepaired;
    } else {
      error = std::move(st);
      ++ticket.attempts;
      if (ticket.attempts >= policy.max_attempts) {
        // Poison SC: demote out of the queue for good, like a drop, but
        // keep it listed so audits and catalog dumps surface it.
        sc->set_state(ScState::kQuarantined);
        if (wal_log_ != nullptr) {
          // Best effort: a lost quarantine record only means recovery
          // leaves the SC queued and repair re-quarantines it.
          (void)wal_log_->LogTransition(*sc, ScState::kRepairQueued,
                                        ScState::kQuarantined,
                                        ScArmMode::kNone);
        }
        outcome = RepairStepResult::kQuarantined;
      } else {
        outcome = RepairStepResult::kRequeued;
      }
    }
  }
  switch (outcome) {
    case RepairStepResult::kRepaired:
      stats_.async_repairs.fetch_add(1, std::memory_order_relaxed);
      RecordAudit({ticket.name, ticket.attempts, "", "repaired"});
      break;
    case RepairStepResult::kRequeued: {
      stats_.repair_failures.fetch_add(1, std::memory_order_relaxed);
      RepairAuditRecord audit{ticket.name, ticket.attempts, error.message(),
                              "requeued"};
      bool requeued = false;
      {
        std::lock_guard<std::mutex> lk(aux_mu_);
        if (queued_names_.insert(ticket.name).second) {
          ticket.not_before = std::chrono::steady_clock::now() +
                              BackoffLocked(ticket.attempts);
          repair_queue_.push_back(std::move(ticket));
          requeued = true;
        }
      }
      if (requeued) RecordAudit(std::move(audit));
      break;
    }
    case RepairStepResult::kQuarantined:
      stats_.repair_failures.fetch_add(1, std::memory_order_relaxed);
      stats_.quarantined.fetch_add(1, std::memory_order_relaxed);
      RecordAudit(
          {ticket.name, ticket.attempts, error.message(), "quarantined"});
      FireViolation(*sc);  // Plans must not wait for this SC anymore.
      break;
    default:
      break;
  }
  return outcome;
}

std::chrono::milliseconds ScRegistry::BackoffLocked(std::size_t attempts) {
  const std::size_t shift = attempts == 0 ? 0 : std::min<std::size_t>(
                                                    attempts - 1, 20);
  double ms = static_cast<double>(repair_policy_.base_backoff.count()) *
              static_cast<double>(std::uint64_t{1} << shift);
  ms = std::min(ms, static_cast<double>(repair_policy_.max_backoff.count()));
  // Deterministic ±25% jitter desynchronizes retries without losing test
  // reproducibility (the Rng is seeded by policy).
  ms *= 0.75 + 0.5 * backoff_rng_.NextDouble();
  return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
}

void ScRegistry::RecordAudit(RepairAuditRecord record) {
  if (wal_log_ != nullptr) {
    // Best effort: the audit trail is diagnostic, not load-bearing.
    (void)wal_log_->LogAudit(record);
  }
  std::lock_guard<std::mutex> lk(aux_mu_);
  repair_audit_.push_back(std::move(record));
}

std::optional<std::chrono::steady_clock::time_point>
ScRegistry::NextRepairDue() const {
  std::lock_guard<std::mutex> lk(aux_mu_);
  std::optional<std::chrono::steady_clock::time_point> due;
  for (const RepairTicket& t : repair_queue_) {
    if (!due.has_value() || t.not_before < *due) due = t.not_before;
  }
  return due;
}

void ScRegistry::SetRepairPolicy(const RepairPolicy& policy) {
  std::lock_guard<std::mutex> lk(aux_mu_);
  repair_policy_ = policy;
  backoff_rng_ = Rng(policy.jitter_seed);
}

RepairPolicy ScRegistry::repair_policy() const {
  std::lock_guard<std::mutex> lk(aux_mu_);
  return repair_policy_;
}

std::vector<RepairAuditRecord> ScRegistry::repair_audit() const {
  std::lock_guard<std::mutex> lk(aux_mu_);
  return repair_audit_;
}

std::size_t ScRegistry::repair_queue_size() const {
  std::lock_guard<std::mutex> lk(aux_mu_);
  return repair_queue_.size();
}

Status ScRegistry::VerifyAll(const Catalog& catalog) {
  for (const ScSharedPtr& sc : Snapshot()) {
    std::lock_guard<std::mutex> sc_lk(sc->maintenance_mu());
    // Quarantined SCs are deliberately not resurrected by a blanket
    // re-verify; recovery from quarantine is a manual decision.
    if (sc->state() == ScState::kDropped ||
        sc->state() == ScState::kQuarantined) {
      continue;
    }
    const ScState before = sc->state();
    SOFTDB_RETURN_IF_ERROR(sc->Verify(catalog).status());
    if (wal_log_ != nullptr) {
      // Logged even when the state did not change: Verify refreshes
      // confidence and the currency baseline, which replay re-derives by
      // re-running Verify at the same log position (arm mode kVerify).
      SOFTDB_RETURN_IF_ERROR(wal_log_->LogTransition(*sc, before, sc->state(),
                                                     ScArmMode::kVerify));
      SOFTDB_RETURN_IF_ERROR(wal_log_->LogArmCommit(*sc));
    }
  }
  return Status::OK();
}

void ScRegistry::RecordUse(const std::string& name, double benefit) {
  std::lock_guard<std::mutex> lk(aux_mu_);
  ++use_counts_[name];
  benefits_[name] += benefit;
}

std::uint64_t ScRegistry::UseCount(const std::string& name) const {
  std::lock_guard<std::mutex> lk(aux_mu_);
  auto it = use_counts_.find(name);
  return it == use_counts_.end() ? 0 : it->second;
}

double ScRegistry::TotalBenefit(const std::string& name) const {
  std::lock_guard<std::mutex> lk(aux_mu_);
  auto it = benefits_.find(name);
  return it == benefits_.end() ? 0.0 : it->second;
}

void ScRegistry::RestoreTicket(const std::string& name, std::size_t attempts) {
  std::lock_guard<std::mutex> lk(aux_mu_);
  if (queued_names_.insert(name).second) {
    repair_queue_.push_back(
        RepairTicket{name, attempts, std::chrono::steady_clock::now()});
  }
}

void ScRegistry::DropTicket(const std::string& name) {
  std::lock_guard<std::mutex> lk(aux_mu_);
  if (queued_names_.erase(name) == 0) return;
  for (auto it = repair_queue_.begin(); it != repair_queue_.end(); ++it) {
    if (it->name == name) {
      repair_queue_.erase(it);
      break;
    }
  }
}

void ScRegistry::RestoreAudit(RepairAuditRecord record) {
  std::lock_guard<std::mutex> lk(aux_mu_);
  repair_audit_.push_back(std::move(record));
}

std::vector<std::pair<std::string, std::size_t>> ScRegistry::TicketSnapshot()
    const {
  std::lock_guard<std::mutex> lk(aux_mu_);
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(repair_queue_.size());
  for (const RepairTicket& t : repair_queue_) {
    out.emplace_back(t.name, t.attempts);
  }
  return out;
}

void ScRegistry::RestoreUse(const std::string& name, std::uint64_t count,
                            double benefit) {
  std::lock_guard<std::mutex> lk(aux_mu_);
  use_counts_[name] = count;
  benefits_[name] = benefit;
}

std::vector<std::tuple<std::string, std::uint64_t, double>>
ScRegistry::UseSnapshot() const {
  std::lock_guard<std::mutex> lk(aux_mu_);
  std::vector<std::tuple<std::string, std::uint64_t, double>> out;
  out.reserve(use_counts_.size());
  for (const auto& [name, count] : use_counts_) {
    const auto bit = benefits_.find(name);
    out.emplace_back(name, count, bit == benefits_.end() ? 0.0 : bit->second);
  }
  return out;
}

}  // namespace softdb
