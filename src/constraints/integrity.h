#ifndef SOFTDB_CONSTRAINTS_INTEGRITY_H_
#define SOFTDB_CONSTRAINTS_INTEGRITY_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "plan/expr.h"
#include "storage/catalog.h"

namespace softdb {

/// How a declared constraint participates in enforcement.
///
/// * kEnforced — checked on every insert/update/delete, like an ordinary
///   integrity constraint.
/// * kInformational — the paper's informational constraint: an external
///   promise that it holds; the system never checks it, but the optimizer
///   uses it exactly like an enforced one (ORACLE's RELY, DB2's NOT
///   ENFORCED).
enum class ConstraintMode : std::uint8_t { kEnforced, kInformational };

enum class IcKind : std::uint8_t {
  kUnique,      // Also covers primary keys.
  kCheck,
  kForeignKey,
};

/// A declared integrity constraint. Subclasses implement per-row checking
/// and full-table validation; enforcement is driven by the registry so that
/// informational constraints can skip it wholesale.
class IntegrityConstraint {
 public:
  IntegrityConstraint(std::string name, std::string table, IcKind kind,
                      ConstraintMode mode)
      : name_(std::move(name)), table_(std::move(table)), kind_(kind),
        mode_(mode) {}
  virtual ~IntegrityConstraint() = default;

  const std::string& name() const { return name_; }
  const std::string& table() const { return table_; }
  IcKind kind() const { return kind_; }
  ConstraintMode mode() const { return mode_; }
  bool informational() const { return mode_ == ConstraintMode::kInformational; }

  /// Checks a candidate row (pre-insert). OK when admissible.
  virtual Status CheckRow(const Catalog& catalog,
                          const std::vector<Value>& row) = 0;

  /// Validates the whole table; returns the number of violating rows.
  virtual Result<std::uint64_t> Validate(const Catalog& catalog) = 0;

  /// Incremental bookkeeping after a successful mutation.
  virtual void AfterInsert(const std::vector<Value>& row) { (void)row; }
  virtual void AfterDelete(const std::vector<Value>& row) { (void)row; }

  virtual std::string ToString() const = 0;

 protected:
  std::string name_;
  std::string table_;
  IcKind kind_;
  ConstraintMode mode_;
};

using IcPtr = std::unique_ptr<IntegrityConstraint>;

/// UNIQUE / PRIMARY KEY over one or more columns. Maintains a hash set of
/// key images for O(1) insert checking (the realistic cost shape: enforced
/// uniqueness costs a probe + insert per row; informational costs nothing).
class UniqueConstraint final : public IntegrityConstraint {
 public:
  UniqueConstraint(std::string name, std::string table,
                   std::vector<ColumnIdx> columns, bool is_primary,
                   ConstraintMode mode);

  const std::vector<ColumnIdx>& columns() const { return columns_; }
  bool is_primary() const { return is_primary_; }

  Status CheckRow(const Catalog& catalog,
                  const std::vector<Value>& row) override;
  Result<std::uint64_t> Validate(const Catalog& catalog) override;
  void AfterInsert(const std::vector<Value>& row) override;
  void AfterDelete(const std::vector<Value>& row) override;
  std::string ToString() const override;

  /// True when `key` currently exists (FK lookups piggyback on this).
  bool ContainsKey(const std::string& key_image) const {
    return keys_.count(key_image) > 0;
  }
  /// Builds the key image for a row of this constraint's table.
  std::string KeyImage(const std::vector<Value>& row) const;
  /// Builds a key image from raw key values (parent lookups).
  static std::string KeyImageOf(const std::vector<Value>& key_values);

  /// (Re)builds the key set from table contents.
  Status Rebuild(const Catalog& catalog);

 private:
  std::vector<ColumnIdx> columns_;
  bool is_primary_;
  std::unordered_set<std::string> keys_;
  bool built_ = false;
};

/// CHECK (expr) — a row predicate bound against the table schema.
class CheckConstraint final : public IntegrityConstraint {
 public:
  CheckConstraint(std::string name, std::string table, ExprPtr expr,
                  ConstraintMode mode);

  const Expr& expr() const { return *expr_; }

  Status CheckRow(const Catalog& catalog,
                  const std::vector<Value>& row) override;
  Result<std::uint64_t> Validate(const Catalog& catalog) override;
  std::string ToString() const override;

 private:
  ExprPtr expr_;
};

/// FOREIGN KEY (cols) REFERENCES parent (cols). Insert checking uses the
/// parent's unique constraint key set when one exists, falling back to a
/// parent scan.
class ForeignKeyConstraint final : public IntegrityConstraint {
 public:
  ForeignKeyConstraint(std::string name, std::string table,
                       std::vector<ColumnIdx> columns, std::string parent,
                       std::vector<ColumnIdx> parent_columns,
                       ConstraintMode mode);

  const std::vector<ColumnIdx>& columns() const { return columns_; }
  const std::string& parent_table() const { return parent_; }
  const std::vector<ColumnIdx>& parent_columns() const {
    return parent_columns_;
  }

  /// Wires the parent's unique constraint for fast existence checks.
  void SetParentKey(const UniqueConstraint* parent_key) {
    parent_key_ = parent_key;
  }

  Status CheckRow(const Catalog& catalog,
                  const std::vector<Value>& row) override;
  Result<std::uint64_t> Validate(const Catalog& catalog) override;
  std::string ToString() const override;

 private:
  bool ParentHas(const Catalog& catalog,
                 const std::vector<Value>& key_values) const;

  std::vector<ColumnIdx> columns_;
  std::string parent_;
  std::vector<ColumnIdx> parent_columns_;
  const UniqueConstraint* parent_key_ = nullptr;
};

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_INTEGRITY_H_
