#ifndef SOFTDB_CONSTRAINTS_SOFT_CONSTRAINT_H_
#define SOFTDB_CONSTRAINTS_SOFT_CONSTRAINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/catalog.h"

namespace softdb {

/// Classes of soft constraint implemented, mirroring the discovery work the
/// paper builds on (§2): linear correlations [10], join holes [8],
/// functional dependencies [29], inclusion/referential characterizations
/// [6], Sybase-style min/max domains, and generic row predicates.
enum class ScKind : std::uint8_t {
  kLinearCorrelation,
  kColumnOffset,
  kJoinHole,
  kFunctionalDependency,
  kInclusion,
  kDomain,
  kPredicate,
  // Per-block min/max/null-count SMAs (Moerkotte's Small Materialized
  // Aggregates, materialized as an incrementally-updatable approximate
  // constraint à la Kläbe et al.): scans skip blocks whose envelope
  // provably contradicts the predicate.
  kBlockZoneMap,
};

const char* ScKindName(ScKind kind);

/// Lifecycle of a soft constraint.
///
/// kActive    — usable by the optimizer.
/// kViolated  — overturned by an update and not yet repaired; unusable for
///              rewrite, and plans built on it are invalidated (§4.1).
/// kRepairQueued — violated, async repair pending (§4.3).
/// kQuarantined — repair kept failing past the bounded attempt budget; the
///              SC is demoted like a drop but stays listed so audits and
///              catalog dumps can surface it (poison-SC quarantine).
/// kDropped   — removed (the maintenance policy of last resort).
enum class ScState : std::uint8_t {
  kActive,
  kViolated,
  kRepairQueued,
  kQuarantined,
  kDropped,
};

const char* ScStateName(ScState state);

/// What to do when an update violates an absolute soft constraint (§4.3).
enum class ScMaintenancePolicy : std::uint8_t {
  kDropOnViolation,  // Last resort: overturn the SC.
  kSyncRepair,       // Repair inline (possibly suboptimally, e.g. widen).
  kAsyncRepair,      // Mark violated, queue exact repair for later.
  kTolerate,         // Demote to statistical: decay confidence, stay active.
};

/// Outcome of a full verification pass.
struct ScVerifyOutcome {
  std::uint64_t rows = 0;
  std::uint64_t violations = 0;
  double confidence = 1.0;  // (rows - violations) / rows.
};

/// A soft constraint: an IC-shaped statement about the data that is not
/// enforced. `confidence` is the SSC confidence factor (§3); an SC with
/// confidence 1.0 verified against the current state is an *absolute* soft
/// constraint (ASC) and is eligible for semantics-preserving rewrite.
/// Currency (§3.3) is tracked as mutations to the base table since the last
/// verification, giving a bound on how far confidence may have decayed.
///
/// Lifecycle fields (state, confidence, policy, currency baseline) are
/// atomics: concurrent queries read them lock-free while maintenance
/// mutates them under `maintenance_mu()`, which serializes maintenance of
/// one SC without blocking readers. A query may observe the SC mid-demotion
/// (e.g. state already kViolated, confidence not yet decayed) — every such
/// interleaving is a state the SC legitimately passes through, and the
/// plan-cache backup flip keeps answers correct regardless (DESIGN.md §8).
class SoftConstraint {
 public:
  SoftConstraint(std::string name, ScKind kind, std::string table)
      : name_(std::move(name)), kind_(kind), table_(std::move(table)) {}
  virtual ~SoftConstraint() = default;

  const std::string& name() const { return name_; }
  ScKind kind() const { return kind_; }
  /// Primary table (join holes also have a second; see subclass).
  const std::string& table() const { return table_; }

  ScState state() const { return state_.load(std::memory_order_acquire); }
  void set_state(ScState s) {
    // Every lifecycle transition bumps the epoch, so a plan that consumed
    // this SC can detect an invalidation-and-repair cycle that happened
    // entirely during its execution (A-B-A on `state` alone).
    if (state_.exchange(s, std::memory_order_acq_rel) != s) {
      epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  bool active() const { return state() == ScState::kActive; }

  /// Monotonic lifecycle version. Plans snapshot the epoch of every
  /// rewrite-consumed SC before execution and revalidate at completion
  /// (DESIGN.md "Failure model").
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// For repairs that mutate derived parameters without a state transition
  /// (e.g. a synchronous widen that keeps the SC active): invalidates epoch
  /// snapshots held by in-flight plans.
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  /// Confidence as of the last verification.
  double confidence() const {
    return confidence_.load(std::memory_order_acquire);
  }
  void set_confidence(double c) {
    confidence_.store(c, std::memory_order_release);
  }

  ScMaintenancePolicy policy() const {
    return policy_.load(std::memory_order_acquire);
  }
  void set_policy(ScMaintenancePolicy p) {
    policy_.store(p, std::memory_order_release);
  }

  /// Absolute (usable in rewrite): active and violation-free as verified.
  bool IsAbsolute() const {
    return state() == ScState::kActive && confidence() >= 1.0;
  }

  /// Serializes maintenance (OnInsert policy work, repair, re-verify) of
  /// this SC. Queries never take it — they read the atomic fields above.
  std::mutex& maintenance_mu() const { return maintenance_mu_; }

  /// §3.3 currency: upper bound on confidence decay given `mutations`
  /// table changes since verification over `rows` rows. E.g. 1M rows and
  /// 30k updates bound the error at 3%.
  double CurrencyMargin(const Table& table) const {
    const std::uint64_t mutations = table.MutationsSince(verified_version());
    const std::uint64_t rows = table.NumRows();
    if (rows == 0) return 1.0;
    const double margin =
        static_cast<double>(mutations) / static_cast<double>(rows);
    return margin > 1.0 ? 1.0 : margin;
  }

  /// Confidence lower bound after accounting for staleness.
  double CurrencyAdjustedConfidence(const Table& table) const {
    const double adjusted = confidence() - CurrencyMargin(table);
    return adjusted < 0.0 ? 0.0 : adjusted;
  }

  std::uint64_t verified_version() const {
    return verified_version_.load(std::memory_order_acquire);
  }
  std::uint64_t verified_rows() const {
    return verified_rows_.load(std::memory_order_acquire);
  }

  /// Full verification against the current database: recounts violations,
  /// updates confidence and the currency baseline.
  Result<ScVerifyOutcome> Verify(const Catalog& catalog);

  /// Crash recovery only: installs a durably-recorded lifecycle verbatim —
  /// no epoch bump, no verification (recovery bumps every epoch itself
  /// once replay finishes, so recovered epochs strictly dominate any
  /// pre-crash snapshot; see DESIGN.md §14).
  void RestoreLifecycle(ScState state, std::uint64_t epoch, double confidence,
                        ScMaintenancePolicy policy,
                        std::uint64_t verified_version,
                        std::uint64_t verified_rows) {
    state_.store(state, std::memory_order_release);
    epoch_.store(epoch, std::memory_order_release);
    confidence_.store(confidence, std::memory_order_release);
    policy_.store(policy, std::memory_order_release);
    verified_version_.store(verified_version, std::memory_order_release);
    verified_rows_.store(verified_rows, std::memory_order_release);
  }

  /// Side-effect-free violation recount against the current database
  /// state: no confidence or currency update. The impact-analysis fuzz
  /// harness uses this as ground truth for "did this DML statement
  /// actually change the SC's compliance".
  Result<ScVerifyOutcome> AuditViolations(const Catalog& catalog) {
    return CountViolations(catalog);
  }

  /// Row-level compliance check used by synchronous maintenance. True when
  /// the row abides the constraint. Constraints that cannot be checked one
  /// row at a time (join holes) override RequiresJoinCheck().
  virtual Result<bool> CheckRow(const Catalog& catalog,
                                const std::vector<Value>& row) const = 0;

  /// Whether row checks need data from another table (join holes).
  virtual bool RequiresJoinCheck() const { return false; }

  /// Synchronous, possibly suboptimal repair absorbing `row` (e.g. widen an
  /// envelope). Default: unsupported.
  virtual Status RepairForRow(const std::vector<Value>& row) {
    (void)row;
    return Status::NotImplemented("no sync repair for " + name_);
  }

  /// Exact (async) repair: recompute parameters from data. Default: full
  /// Verify (subclasses with parameters override).
  virtual Status RepairFull(const Catalog& catalog);

  /// Human-readable statement, e.g. the IC-equivalent SQL.
  virtual std::string Describe() const = 0;

 protected:
  /// Subclass hook for Verify: count rows and violations.
  virtual Result<ScVerifyOutcome> CountViolations(
      const Catalog& catalog) = 0;

  std::string name_;
  ScKind kind_;
  std::string table_;
  std::atomic<ScState> state_{ScState::kActive};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<double> confidence_{1.0};
  std::atomic<ScMaintenancePolicy> policy_{
      ScMaintenancePolicy::kDropOnViolation};
  std::atomic<std::uint64_t> verified_version_{0};
  std::atomic<std::uint64_t> verified_rows_{0};
  mutable std::mutex maintenance_mu_;
  /// Guards subclass *derived parameters* — offset bounds, domain min/max,
  /// hole lists, regression coefficients, duration histograms — which
  /// maintenance (repair, re-verify) rewrites in place while concurrent
  /// planners read them. Readers take it shared at each read site; repair
  /// and verify take it exclusive only around the actual mutation, so the
  /// lock is never held across table scans. Always leaf-level: no other
  /// lock is acquired while holding it.
  mutable std::shared_mutex params_mu_;
};

using ScPtr = std::unique_ptr<SoftConstraint>;

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_SOFT_CONSTRAINT_H_
