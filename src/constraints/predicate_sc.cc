#include "constraints/predicate_sc.h"

#include "common/str_util.h"

namespace softdb {

Result<bool> PredicateSc::CheckRow(const Catalog&,
                                   const std::vector<Value>& row) const {
  SOFTDB_ASSIGN_OR_RETURN(Value v, expr_->Eval(row));
  // NULL (unknown) counts as compliant, matching SQL CHECK semantics.
  return v.is_null() || v.AsBool();
}

Result<ScVerifyOutcome> PredicateSc::CountViolations(
    const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  ScVerifyOutcome out;
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r)) continue;
    ++out.rows;
    SOFTDB_ASSIGN_OR_RETURN(Value v, expr_->Eval(table->GetRow(r)));
    if (!v.is_null() && !v.AsBool()) ++out.violations;
  }
  return out;
}

std::string PredicateSc::Describe() const {
  return StrFormat("SC %s ON %s: CHECK (%s) (conf %.4f, %s)", name_.c_str(),
                   table_.c_str(), expr_->ToString().c_str(), confidence(),
                   ScStateName(state()));
}

}  // namespace softdb
