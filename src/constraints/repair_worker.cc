#include "constraints/repair_worker.h"

#include <algorithm>
#include <utility>

namespace softdb {

RepairWorker::RepairWorker(ScRegistry* registry, const Catalog* catalog)
    : RepairWorker(registry, catalog, Options(), nullptr) {}

RepairWorker::RepairWorker(ScRegistry* registry, const Catalog* catalog,
                           Options options,
                           std::function<void()> on_repaired)
    : registry_(registry), catalog_(catalog), options_(options),
      on_repaired_(std::move(on_repaired)) {}

RepairWorker::~RepairWorker() { Stop(); }

void RepairWorker::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void RepairWorker::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void RepairWorker::Loop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_requested_) return;
    }
    const RepairStepResult result = registry_->RepairStep(*catalog_);
    if (result != RepairStepResult::kIdle) {
      steps_.fetch_add(1, std::memory_order_relaxed);
      if (result == RepairStepResult::kRepaired && on_repaired_) {
        on_repaired_();
      }
      continue;  // Drain eagerly while work is due.
    }
    // Nothing due: sleep until the earliest backoff deadline (capped at the
    // poll interval, which also bounds reaction time to fresh enqueues).
    auto wake = std::chrono::steady_clock::now() + options_.poll_interval;
    if (auto due = registry_->NextRepairDue(); due.has_value()) {
      wake = std::min(wake, *due);
    }
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_until(lk, wake, [this] { return stop_requested_; });
    if (stop_requested_) return;
  }
}

}  // namespace softdb
