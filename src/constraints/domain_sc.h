#ifndef SOFTDB_CONSTRAINTS_DOMAIN_SC_H_
#define SOFTDB_CONSTRAINTS_DOMAIN_SC_H_

#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "constraints/soft_constraint.h"
#include "plan/predicate.h"

namespace softdb {

/// Min/max domain bound on one column — the Sybase-style "SC" §2 cites:
/// maintained max and min information usable to abbreviate range conditions
/// (a predicate weaker than the domain is a tautology; one outside it is a
/// contradiction).
class DomainSc final : public SoftConstraint {
 public:
  DomainSc(std::string name, std::string table, ColumnIdx column, Value min,
           Value max)
      : SoftConstraint(std::move(name), ScKind::kDomain, std::move(table)),
        column_(column), min_(std::move(min)), max_(std::move(max)) {}

  ColumnIdx column() const { return column_; }
  Value min_value() const {
    std::shared_lock<std::shared_mutex> lk(params_mu_);
    return min_;
  }
  Value max_value() const {
    std::shared_lock<std::shared_mutex> lk(params_mu_);
    return max_;
  }

  /// Classification of a simple predicate against the domain.
  enum class Implication {
    kNone,        // Domain says nothing decisive.
    kTautology,   // Every in-domain value satisfies it: predicate droppable.
    kContradiction,  // No in-domain value satisfies it: result empty.
  };
  Implication Classify(const SimplePredicate& pred) const;

  Result<bool> CheckRow(const Catalog& catalog,
                        const std::vector<Value>& row) const override;
  Status RepairForRow(const std::vector<Value>& row) override;
  Status RepairFull(const Catalog& catalog) override;
  std::string Describe() const override;

 protected:
  Result<ScVerifyOutcome> CountViolations(
      const Catalog& catalog) override;

 private:
  ColumnIdx column_;
  // Derived parameters, guarded by params_mu_ (repair widens or refits the
  // bounds while planners classify predicates against them).
  Value min_;
  Value max_;
};

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_DOMAIN_SC_H_
