#include "constraints/integrity.h"

#include "common/str_util.h"

namespace softdb {

// ------------------------------------------------------------------- Unique

UniqueConstraint::UniqueConstraint(std::string name, std::string table,
                                   std::vector<ColumnIdx> columns,
                                   bool is_primary, ConstraintMode mode)
    : IntegrityConstraint(std::move(name), std::move(table), IcKind::kUnique,
                          mode),
      columns_(std::move(columns)), is_primary_(is_primary) {}

std::string UniqueConstraint::KeyImage(const std::vector<Value>& row) const {
  std::string image;
  for (ColumnIdx c : columns_) {
    image += row[c].ToString();
    image += '\x1f';
  }
  return image;
}

std::string UniqueConstraint::KeyImageOf(
    const std::vector<Value>& key_values) {
  std::string image;
  for (const Value& v : key_values) {
    image += v.ToString();
    image += '\x1f';
  }
  return image;
}

Status UniqueConstraint::Rebuild(const Catalog& catalog) {
  keys_.clear();
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r)) continue;
    keys_.insert(KeyImage(table->GetRow(r)));
  }
  built_ = true;
  return Status::OK();
}

Status UniqueConstraint::CheckRow(const Catalog& catalog,
                                  const std::vector<Value>& row) {
  if (!built_) SOFTDB_RETURN_IF_ERROR(Rebuild(catalog));
  // NULL key components never conflict (SQL UNIQUE semantics), but primary
  // keys reject NULLs outright.
  for (ColumnIdx c : columns_) {
    if (row[c].is_null()) {
      if (is_primary_) {
        return Status::ConstraintViolation("NULL in primary key column of " +
                                           table_);
      }
      return Status::OK();
    }
  }
  if (keys_.count(KeyImage(row))) {
    return Status::ConstraintViolation(
        StrFormat("duplicate key for constraint %s on %s", name_.c_str(),
                  table_.c_str()));
  }
  return Status::OK();
}

Result<std::uint64_t> UniqueConstraint::Validate(const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  std::unordered_set<std::string> seen;
  std::uint64_t violations = 0;
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r)) continue;
    std::vector<Value> row = table->GetRow(r);
    bool has_null = false;
    for (ColumnIdx c : columns_) has_null = has_null || row[c].is_null();
    if (has_null) {
      if (is_primary_) ++violations;
      continue;
    }
    if (!seen.insert(KeyImage(row)).second) ++violations;
  }
  return violations;
}

void UniqueConstraint::AfterInsert(const std::vector<Value>& row) {
  if (!built_) return;
  for (ColumnIdx c : columns_) {
    if (row[c].is_null()) return;
  }
  keys_.insert(KeyImage(row));
}

void UniqueConstraint::AfterDelete(const std::vector<Value>& row) {
  if (!built_) return;
  keys_.erase(KeyImage(row));
}

std::string UniqueConstraint::ToString() const {
  return StrFormat("%s %s ON %s (%zu cols)%s", is_primary_ ? "PRIMARY KEY"
                                                           : "UNIQUE",
                   name_.c_str(), table_.c_str(), columns_.size(),
                   informational() ? " [informational]" : "");
}

// -------------------------------------------------------------------- Check

CheckConstraint::CheckConstraint(std::string name, std::string table,
                                 ExprPtr expr, ConstraintMode mode)
    : IntegrityConstraint(std::move(name), std::move(table), IcKind::kCheck,
                          mode),
      expr_(std::move(expr)) {}

Status CheckConstraint::CheckRow(const Catalog&,
                                 const std::vector<Value>& row) {
  SOFTDB_ASSIGN_OR_RETURN(Value v, expr_->Eval(row));
  // SQL CHECK admits NULL (unknown) results.
  if (!v.is_null() && !v.AsBool()) {
    return Status::ConstraintViolation("CHECK " + name_ + " violated: " +
                                       expr_->ToString());
  }
  return Status::OK();
}

Result<std::uint64_t> CheckConstraint::Validate(const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  std::uint64_t violations = 0;
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r)) continue;
    SOFTDB_ASSIGN_OR_RETURN(Value v, expr_->Eval(table->GetRow(r)));
    if (!v.is_null() && !v.AsBool()) ++violations;
  }
  return violations;
}

std::string CheckConstraint::ToString() const {
  return StrFormat("CHECK %s ON %s (%s)%s", name_.c_str(), table_.c_str(),
                   expr_->ToString().c_str(),
                   informational() ? " [informational]" : "");
}

// --------------------------------------------------------------- ForeignKey

ForeignKeyConstraint::ForeignKeyConstraint(std::string name, std::string table,
                                           std::vector<ColumnIdx> columns,
                                           std::string parent,
                                           std::vector<ColumnIdx> parent_columns,
                                           ConstraintMode mode)
    : IntegrityConstraint(std::move(name), std::move(table),
                          IcKind::kForeignKey, mode),
      columns_(std::move(columns)), parent_(std::move(parent)),
      parent_columns_(std::move(parent_columns)) {}

bool ForeignKeyConstraint::ParentHas(
    const Catalog& catalog, const std::vector<Value>& key_values) const {
  if (parent_key_ != nullptr) {
    return parent_key_->ContainsKey(UniqueConstraint::KeyImageOf(key_values));
  }
  auto parent = catalog.GetTable(parent_);
  if (!parent.ok()) return false;
  const Table* table = *parent;
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r)) continue;
    bool match = true;
    for (std::size_t i = 0; i < parent_columns_.size(); ++i) {
      Value v = table->Get(r, parent_columns_[i]);
      if (!v.GroupEquals(key_values[i])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

Status ForeignKeyConstraint::CheckRow(const Catalog& catalog,
                                      const std::vector<Value>& row) {
  std::vector<Value> key;
  key.reserve(columns_.size());
  for (ColumnIdx c : columns_) {
    if (row[c].is_null()) return Status::OK();  // SQL: NULL FK matches.
    key.push_back(row[c]);
  }
  if (!ParentHas(catalog, key)) {
    return Status::ConstraintViolation(
        StrFormat("FK %s: no parent row in %s", name_.c_str(),
                  parent_.c_str()));
  }
  return Status::OK();
}

Result<std::uint64_t> ForeignKeyConstraint::Validate(const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  std::uint64_t violations = 0;
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r)) continue;
    std::vector<Value> row = table->GetRow(r);
    std::vector<Value> key;
    bool has_null = false;
    for (ColumnIdx c : columns_) {
      if (row[c].is_null()) {
        has_null = true;
        break;
      }
      key.push_back(row[c]);
    }
    if (has_null) continue;
    if (!ParentHas(catalog, key)) ++violations;
  }
  return violations;
}

std::string ForeignKeyConstraint::ToString() const {
  return StrFormat("FOREIGN KEY %s ON %s -> %s%s", name_.c_str(),
                   table_.c_str(), parent_.c_str(),
                   informational() ? " [informational]" : "");
}

}  // namespace softdb
