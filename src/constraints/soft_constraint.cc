#include "constraints/soft_constraint.h"

namespace softdb {

const char* ScKindName(ScKind kind) {
  switch (kind) {
    case ScKind::kLinearCorrelation:
      return "linear-correlation";
    case ScKind::kColumnOffset:
      return "column-offset";
    case ScKind::kJoinHole:
      return "join-hole";
    case ScKind::kFunctionalDependency:
      return "functional-dependency";
    case ScKind::kInclusion:
      return "inclusion";
    case ScKind::kDomain:
      return "domain";
    case ScKind::kPredicate:
      return "predicate";
    case ScKind::kBlockZoneMap:
      return "block-zone-map";
  }
  return "?";
}

const char* ScStateName(ScState state) {
  switch (state) {
    case ScState::kActive:
      return "active";
    case ScState::kViolated:
      return "violated";
    case ScState::kRepairQueued:
      return "repair-queued";
    case ScState::kQuarantined:
      return "quarantined";
    case ScState::kDropped:
      return "dropped";
  }
  return "?";
}

Result<ScVerifyOutcome> SoftConstraint::Verify(const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(ScVerifyOutcome outcome, CountViolations(catalog));
  outcome.confidence =
      outcome.rows == 0
          ? 1.0
          : static_cast<double>(outcome.rows - outcome.violations) /
                static_cast<double>(outcome.rows);
  set_confidence(outcome.confidence);
  auto table = catalog.GetTable(table_);
  if (table.ok()) {
    verified_version_.store((*table)->version(), std::memory_order_release);
    verified_rows_.store((*table)->NumRows(), std::memory_order_release);
  }
  if (state() == ScState::kViolated || state() == ScState::kRepairQueued) {
    // A verification pass re-baselines the SC; it becomes usable again
    // (possibly with confidence < 1, i.e. as an SSC only).
    set_state(ScState::kActive);
  }
  return outcome;
}

Status SoftConstraint::RepairFull(const Catalog& catalog) {
  return Verify(catalog).status();
}

}  // namespace softdb
