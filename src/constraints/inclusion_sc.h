#ifndef SOFTDB_CONSTRAINTS_INCLUSION_SC_H_
#define SOFTDB_CONSTRAINTS_INCLUSION_SC_H_

#include <string>
#include <vector>

#include "constraints/soft_constraint.h"

namespace softdb {

/// Inclusion dependency `child(cols) ⊆ parent(cols)` held softly: the
/// referential-integrity shape that join elimination [6] needs, for
/// databases where the FK was never declared as an IC (§2: "in
/// environments where such ICs do characterize the data but are not
/// defined as ICs, these techniques cannot work ... any facility to
/// discover referential integrity and maintain it as SCs would enable
/// these optimization techniques").
class InclusionSc final : public SoftConstraint {
 public:
  InclusionSc(std::string name, std::string child_table,
              std::vector<ColumnIdx> child_columns, std::string parent_table,
              std::vector<ColumnIdx> parent_columns)
      : SoftConstraint(std::move(name), ScKind::kInclusion,
                       std::move(child_table)),
        child_columns_(std::move(child_columns)),
        parent_table_(std::move(parent_table)),
        parent_columns_(std::move(parent_columns)) {}

  const std::string& child_table() const { return table_; }
  const std::vector<ColumnIdx>& child_columns() const {
    return child_columns_;
  }
  const std::string& parent_table() const { return parent_table_; }
  const std::vector<ColumnIdx>& parent_columns() const {
    return parent_columns_;
  }

  Result<bool> CheckRow(const Catalog& catalog,
                        const std::vector<Value>& row) const override;
  std::string Describe() const override;

 protected:
  Result<ScVerifyOutcome> CountViolations(
      const Catalog& catalog) override;

 private:
  std::vector<ColumnIdx> child_columns_;
  std::string parent_table_;
  std::vector<ColumnIdx> parent_columns_;
};

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_INCLUSION_SC_H_
