#include "constraints/fd_sc.h"

#include <algorithm>

#include "common/str_util.h"

namespace softdb {

bool FunctionalDependencySc::Determines(
    const std::vector<ColumnIdx>& available, ColumnIdx column) const {
  if (std::find(dependents_.begin(), dependents_.end(), column) ==
      dependents_.end()) {
    return false;
  }
  return std::all_of(determinants_.begin(), determinants_.end(),
                     [&](ColumnIdx d) {
                       return std::find(available.begin(), available.end(),
                                        d) != available.end();
                     });
}

std::string FunctionalDependencySc::DetImage(
    const std::vector<Value>& row) const {
  std::string image;
  for (ColumnIdx c : determinants_) {
    image += row[c].ToString();
    image += '\x1f';
  }
  return image;
}

std::string FunctionalDependencySc::DepImage(
    const std::vector<Value>& row) const {
  std::string image;
  for (ColumnIdx c : dependents_) {
    image += row[c].ToString();
    image += '\x1f';
  }
  return image;
}

Result<bool> FunctionalDependencySc::CheckRow(
    const Catalog& catalog, const std::vector<Value>& row) const {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  if (mapping_version_ != table->version()) {
    // (Re)build the determinant -> dependent map from current data.
    mapping_.clear();
    for (RowId r = 0; r < table->NumSlots(); ++r) {
      if (!table->IsLive(r)) continue;
      std::vector<Value> existing = table->GetRow(r);
      mapping_.emplace(DetImage(existing), DepImage(existing));
    }
    mapping_version_ = table->version();
  }
  auto it = mapping_.find(DetImage(row));
  if (it == mapping_.end()) return true;
  return it->second == DepImage(row);
}

Result<ScVerifyOutcome> FunctionalDependencySc::CountViolations(
    const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  std::unordered_map<std::string, std::string> seen;
  ScVerifyOutcome out;
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r)) continue;
    ++out.rows;
    std::vector<Value> row = table->GetRow(r);
    auto [it, inserted] = seen.emplace(DetImage(row), DepImage(row));
    if (!inserted && it->second != DepImage(row)) ++out.violations;
  }
  return out;
}

std::string FunctionalDependencySc::Describe() const {
  std::vector<std::string> det, dep;
  for (ColumnIdx c : determinants_) det.push_back(StrFormat("col%u", c));
  for (ColumnIdx c : dependents_) dep.push_back(StrFormat("col%u", c));
  return StrFormat("SC %s ON %s: {%s} -> {%s} (conf %.4f, %s)", name_.c_str(),
                   table_.c_str(), Join(det, ",").c_str(),
                   Join(dep, ",").c_str(), confidence(), ScStateName(state()));
}

}  // namespace softdb
