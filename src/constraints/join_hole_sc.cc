#include "constraints/join_hole_sc.h"

#include <algorithm>
#include <unordered_map>

#include "common/str_util.h"

namespace softdb {

bool JoinHoleSc::CoversQuery(double a_lo, double a_hi, double b_lo,
                             double b_hi) const {
  std::shared_lock<std::shared_mutex> lk(params_mu_);
  for (const HoleRect& h : holes_) {
    if (a_lo >= h.a_lo && a_hi <= h.a_hi && b_lo >= h.b_lo && b_hi <= h.b_hi) {
      return true;
    }
  }
  return false;
}

bool JoinHoleSc::TrimARange(double* a_lo, double* a_hi, double b_lo,
                            double b_hi) const {
  std::shared_lock<std::shared_mutex> lk(params_mu_);
  bool trimmed = false;
  bool changed = true;
  // Iterate: trimming by one hole can expose another at the new edge.
  while (changed) {
    changed = false;
    for (const HoleRect& h : holes_) {
      if (b_lo < h.b_lo || b_hi > h.b_hi) continue;  // Must span B range.
      // Hole covers a prefix of the A range.
      if (h.a_lo <= *a_lo && h.a_hi >= *a_lo && h.a_hi < *a_hi &&
          h.a_hi > *a_lo) {
        *a_lo = h.a_hi;  // Open edge; harmless under continuous trimming.
        trimmed = changed = true;
      }
      // Hole covers a suffix of the A range.
      if (h.a_hi >= *a_hi && h.a_lo <= *a_hi && h.a_lo > *a_lo &&
          h.a_lo < *a_hi) {
        *a_hi = h.a_lo;
        trimmed = changed = true;
      }
    }
  }
  return trimmed;
}

bool JoinHoleSc::TrimBRange(double* b_lo, double* b_hi, double a_lo,
                            double a_hi) const {
  std::shared_lock<std::shared_mutex> lk(params_mu_);
  bool trimmed = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const HoleRect& h : holes_) {
      if (a_lo < h.a_lo || a_hi > h.a_hi) continue;
      if (h.b_lo <= *b_lo && h.b_hi >= *b_lo && h.b_hi < *b_hi &&
          h.b_hi > *b_lo) {
        *b_lo = h.b_hi;
        trimmed = changed = true;
      }
      if (h.b_hi >= *b_hi && h.b_lo <= *b_hi && h.b_lo > *b_lo &&
          h.b_lo < *b_hi) {
        *b_hi = h.b_lo;
        trimmed = changed = true;
      }
    }
  }
  return trimmed;
}

std::size_t JoinHoleSc::InvalidateHolesForLeftInsert(
    const std::vector<Value>& row) {
  const Value& a = row[attr_a_];
  if (a.is_null()) return 0;
  const double av = a.NumericValue();
  std::unique_lock<std::shared_mutex> lk(params_mu_);
  const std::size_t before = holes_.size();
  holes_.erase(std::remove_if(holes_.begin(), holes_.end(),
                              [av](const HoleRect& h) {
                                return h.ContainsA(av);
                              }),
               holes_.end());
  return before - holes_.size();
}

std::size_t JoinHoleSc::InvalidateHolesForRightInsert(
    const std::vector<Value>& row) {
  const Value& b = row[attr_b_];
  if (b.is_null()) return 0;
  const double bv = b.NumericValue();
  std::unique_lock<std::shared_mutex> lk(params_mu_);
  const std::size_t before = holes_.size();
  holes_.erase(std::remove_if(holes_.begin(), holes_.end(),
                              [bv](const HoleRect& h) {
                                return h.ContainsB(bv);
                              }),
               holes_.end());
  return before - holes_.size();
}

Result<bool> JoinHoleSc::CheckRow(const Catalog& catalog,
                                  const std::vector<Value>& row) const {
  // Exact row check: join the new left row against the right table and see
  // whether any joined pair lands in a hole. (Exact but requires a join —
  // the expense §4.3 discusses.)
  const Value& key = row[left_join_col_];
  const Value& a = row[attr_a_];
  if (key.is_null() || a.is_null()) return true;
  const double av = a.NumericValue();
  // Snapshot the hole list rather than holding params_mu_ across the join
  // scan below.
  const std::vector<HoleRect> hole_snapshot = holes();
  bool in_any_a = false;
  for (const HoleRect& h : hole_snapshot) in_any_a = in_any_a || h.ContainsA(av);
  if (!in_any_a) return true;

  SOFTDB_ASSIGN_OR_RETURN(Table * right, catalog.GetTable(right_table_));
  const ColumnVector& jr = right->ColumnData(right_join_col_);
  const ColumnVector& bs = right->ColumnData(attr_b_);
  for (RowId r = 0; r < right->NumSlots(); ++r) {
    if (!right->IsLive(r) || jr.IsNull(r) || bs.IsNull(r)) continue;
    if (!jr.Get(r).GroupEquals(key)) continue;
    const double bv = bs.GetNumeric(r);
    for (const HoleRect& h : hole_snapshot) {
      if (h.ContainsA(av) && h.ContainsB(bv)) return false;
    }
  }
  return true;
}

Result<ScVerifyOutcome> JoinHoleSc::CountViolations(
    const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * left, catalog.GetTable(table_));
  SOFTDB_ASSIGN_OR_RETURN(Table * right, catalog.GetTable(right_table_));
  const std::vector<HoleRect> hole_snapshot = holes();

  // Hash join, linear in |left| + |right| + |join| as in [8].
  std::unordered_multimap<std::string, double> right_index;
  const ColumnVector& jr = right->ColumnData(right_join_col_);
  const ColumnVector& bs = right->ColumnData(attr_b_);
  for (RowId r = 0; r < right->NumSlots(); ++r) {
    if (!right->IsLive(r) || jr.IsNull(r) || bs.IsNull(r)) continue;
    right_index.emplace(jr.Get(r).ToString(), bs.GetNumeric(r));
  }

  const ColumnVector& jl = left->ColumnData(left_join_col_);
  const ColumnVector& as = left->ColumnData(attr_a_);
  ScVerifyOutcome out;
  for (RowId r = 0; r < left->NumSlots(); ++r) {
    if (!left->IsLive(r) || jl.IsNull(r) || as.IsNull(r)) continue;
    const double av = as.GetNumeric(r);
    auto [lo, hi] = right_index.equal_range(jl.Get(r).ToString());
    for (auto it = lo; it != hi; ++it) {
      ++out.rows;
      const double bv = it->second;
      for (const HoleRect& h : hole_snapshot) {
        if (h.ContainsA(av) && h.ContainsB(bv)) {
          ++out.violations;
          break;
        }
      }
    }
  }
  return out;
}

std::string JoinHoleSc::Describe() const {
  return StrFormat(
      "SC %s: %zu holes over %s(col%u) JOIN %s(col%u) on (col%u, col%u) "
      "(conf %.4f, %s)",
      name_.c_str(), holes().size(), table_.c_str(), left_join_col_,
      right_table_.c_str(), right_join_col_, attr_a_, attr_b_, confidence(),
      ScStateName(state()));
}

}  // namespace softdb
