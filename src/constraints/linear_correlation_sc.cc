#include "constraints/linear_correlation_sc.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace softdb {

std::pair<double, double> LinearCorrelationSc::ARangeForB(double b_lo,
                                                          double b_hi) const {
  const Band band = this->band();
  double lo = band.k * b_lo + band.c;
  double hi = band.k * b_hi + band.c;
  if (lo > hi) std::swap(lo, hi);
  return {lo - band.epsilon, hi + band.epsilon};
}

Result<bool> LinearCorrelationSc::CheckRow(
    const Catalog&, const std::vector<Value>& row) const {
  const Value& a = row[col_a_];
  const Value& b = row[col_b_];
  if (a.is_null() || b.is_null()) return true;  // NULLs vacuously comply.
  const Band band = this->band();
  const double expected = band.k * b.NumericValue() + band.c;
  return std::abs(a.NumericValue() - expected) <= band.epsilon;
}

Status LinearCorrelationSc::RepairForRow(const std::vector<Value>& row) {
  // Sync (suboptimal) repair: widen the envelope to absorb the row. This
  // keeps the SC absolute at the cost of selectivity; an async RepairFull
  // later refits k, c, and epsilon exactly (§4.3's hybrid strategy).
  const Value& a = row[col_a_];
  const Value& b = row[col_b_];
  if (a.is_null() || b.is_null()) return Status::OK();
  std::unique_lock<std::shared_mutex> lk(params_mu_);
  const double deviation =
      std::abs(a.NumericValue() - (k_ * b.NumericValue() + c_));
  if (deviation > epsilon_) epsilon_ = deviation;
  return Status::OK();
}

Status LinearCorrelationSc::RepairFull(const Catalog& catalog) {
  // Exact repair: least-squares refit plus a max-deviation envelope.
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  const ColumnVector& as = table->ColumnData(col_a_);
  const ColumnVector& bs = table->ColumnData(col_b_);
  double sum_b = 0, sum_a = 0, sum_bb = 0, sum_ab = 0;
  std::uint64_t n = 0;
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r) || as.IsNull(r) || bs.IsNull(r)) continue;
    const double a = as.GetNumeric(r);
    const double b = bs.GetNumeric(r);
    sum_b += b;
    sum_a += a;
    sum_bb += b * b;
    sum_ab += a * b;
    ++n;
  }
  // Refit into locals, publish under the params lock: planners read the
  // envelope concurrently.
  Band fit = band();
  if (n >= 2) {
    const double denom = static_cast<double>(n) * sum_bb - sum_b * sum_b;
    if (std::abs(denom) > 1e-12) {
      fit.k = (static_cast<double>(n) * sum_ab - sum_b * sum_a) / denom;
      fit.c = (sum_a - fit.k * sum_b) / static_cast<double>(n);
    }
  }
  double max_dev = 0.0;
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r) || as.IsNull(r) || bs.IsNull(r)) continue;
    max_dev = std::max(max_dev, std::abs(as.GetNumeric(r) -
                                         (fit.k * bs.GetNumeric(r) + fit.c)));
  }
  fit.epsilon = max_dev;
  {
    std::unique_lock<std::shared_mutex> lk(params_mu_);
    k_ = fit.k;
    c_ = fit.c;
    epsilon_ = fit.epsilon;
  }
  return Verify(catalog).status();
}

Result<ScVerifyOutcome> LinearCorrelationSc::CountViolations(
    const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  const ColumnVector& as = table->ColumnData(col_a_);
  const ColumnVector& bs = table->ColumnData(col_b_);
  ScVerifyOutcome out;
  const Band band = this->band();
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r)) continue;
    ++out.rows;
    if (as.IsNull(r) || bs.IsNull(r)) continue;
    const double dev =
        std::abs(as.GetNumeric(r) - (band.k * bs.GetNumeric(r) + band.c));
    if (dev > band.epsilon) ++out.violations;
  }
  return out;
}

std::string LinearCorrelationSc::Describe() const {
  const Band band = this->band();
  return StrFormat(
      "SC %s ON %s: col%u BETWEEN %.6g*col%u %+.6g - %.6g AND %.6g*col%u "
      "%+.6g + %.6g (conf %.4f, %s)",
      name_.c_str(), table_.c_str(), col_a_, band.k, col_b_, band.c,
      band.epsilon, band.k, col_b_, band.c, band.epsilon, confidence(),
      ScStateName(state()));
}

}  // namespace softdb
