#include "constraints/zone_map_sc.h"

#include <algorithm>

#include "common/str_util.h"

namespace softdb {

namespace {

std::size_t BlockOf(RowId rid) { return rid / kZoneMapBlockRows; }

}  // namespace

Status ZoneMapSc::Mine(const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  const ColumnVector& col = table->ColumnData(column_);
  const std::size_t slots = table->NumSlots();
  std::vector<BlockSma> fresh((slots + kZoneMapBlockRows - 1) /
                              kZoneMapBlockRows);
  for (RowId r = 0; r < slots; ++r) {
    if (!table->IsLive(r)) continue;
    BlockSma& b = fresh[BlockOf(r)];
    if (col.IsNull(r)) {
      ++b.null_count;
      continue;
    }
    const double x = col.GetNumeric(r);
    b.min = b.has_value ? std::min(b.min, x) : x;
    b.max = b.has_value ? std::max(b.max, x) : x;
    b.has_value = true;
  }
  {
    std::unique_lock<std::shared_mutex> lk(params_mu_);
    blocks_ = std::move(fresh);
  }
  return Status::OK();
}

void ZoneMapSc::FoldAppendedRow(RowId rid, const std::vector<Value>& row) {
  const Value& v = row[column_];
  std::unique_lock<std::shared_mutex> lk(params_mu_);
  const std::size_t blk = BlockOf(rid);
  if (blk >= blocks_.size()) blocks_.resize(blk + 1);
  BlockSma& b = blocks_[blk];
  if (v.is_null()) {
    ++b.null_count;
    return;
  }
  const double x = v.NumericValue();
  b.min = b.has_value ? std::min(b.min, x) : x;
  b.max = b.has_value ? std::max(b.max, x) : x;
  b.has_value = true;
  // No epoch bump: appends only loosen the envelope, and a plan in flight
  // was admitted against the pre-insert table state.
}

Status ZoneMapSc::FoldUpdatedRow(const Catalog& catalog, RowId rid,
                                 const std::vector<Value>& new_row) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  const Value old_v = table->Get(rid, column_);
  const Value& new_v = new_row[column_];
  bool widened = false;
  {
    std::unique_lock<std::shared_mutex> lk(params_mu_);
    const std::size_t blk = BlockOf(rid);
    if (blk >= blocks_.size()) blocks_.resize(blk + 1);
    BlockSma& b = blocks_[blk];
    if (new_v.is_null()) {
      if (!old_v.is_null()) {
        // Non-null → NULL raises the block's possible live-null count. The
        // old value stays inside the (over-approximate) envelope.
        ++b.null_count;
        widened = true;
      }
    } else {
      const double x = new_v.NumericValue();
      if (!b.has_value) {
        b.min = x;
        b.max = x;
        b.has_value = true;
        widened = true;
      } else if (x < b.min) {
        b.min = x;
        widened = true;
      } else if (x > b.max) {
        b.max = x;
        widened = true;
      }
      // NULL → non-null leaves null_count as an upper bound (one-sided
      // invariant); no tightening is attempted online.
    }
  }
  if (widened) {
    // Unlike appends, an update can move a row that an in-flight skip
    // decision already passed over; the epoch bump routes such plans
    // through the standard degraded retry.
    BumpEpoch();
  }
  return Status::OK();
}

void ZoneMapSc::DeclareBlock(std::size_t block, BlockSma sma) {
  std::unique_lock<std::shared_mutex> lk(params_mu_);
  if (block >= blocks_.size()) blocks_.resize(block + 1);
  blocks_[block] = sma;
}

void ZoneMapSc::CorruptBlockForTest(std::size_t block, double min, double max,
                                    std::uint64_t null_count) {
  DeclareBlock(block, BlockSma{min, max, /*has_value=*/true, null_count});
}

Status ZoneMapSc::RepairFull(const Catalog& catalog) {
  SOFTDB_RETURN_IF_ERROR(Mine(catalog));
  return Verify(catalog).status();
}

Result<ScVerifyOutcome> ZoneMapSc::CountViolations(const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  const ColumnVector& col = table->ColumnData(column_);
  const std::vector<BlockSma> blocks = SnapshotBlocks();
  ScVerifyOutcome out;
  // Actual live NULL rows per block, tallied to charge any excess over the
  // stored upper bound as violations.
  std::vector<std::uint64_t> live_nulls(blocks.size(), 0);
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r)) continue;
    ++out.rows;
    const std::size_t blk = BlockOf(r);
    if (col.IsNull(r)) {
      if (blk < live_nulls.size()) ++live_nulls[blk];
      // A live NULL in a block the map has never seen: charged below via
      // the stored-bound comparison (stored count is implicitly 0).
      if (blk >= blocks.size()) ++out.violations;
      continue;
    }
    if (blk >= blocks.size() || !blocks[blk].has_value) {
      ++out.violations;
      continue;
    }
    const double x = col.GetNumeric(r);
    if (x < blocks[blk].min || x > blocks[blk].max) ++out.violations;
  }
  for (std::size_t blk = 0; blk < blocks.size(); ++blk) {
    if (live_nulls[blk] > blocks[blk].null_count) {
      out.violations += live_nulls[blk] - blocks[blk].null_count;
    }
  }
  return out;
}

std::string ZoneMapSc::Describe() const {
  std::size_t nblocks;
  std::size_t armed = 0;
  {
    std::shared_lock<std::shared_mutex> lk(params_mu_);
    nblocks = blocks_.size();
    for (const BlockSma& b : blocks_) {
      if (b.has_value) ++armed;
    }
  }
  return StrFormat(
      "SC %s ON %s: BLOCK ZONE MAP col%u (%zu blocks x %zu rows, %zu with "
      "values, conf %.4f, %s)",
      name_.c_str(), table_.c_str(), column_, nblocks, kZoneMapBlockRows,
      armed, confidence(), ScStateName(state()));
}

}  // namespace softdb
