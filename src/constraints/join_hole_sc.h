#ifndef SOFTDB_CONSTRAINTS_JOIN_HOLE_SC_H_
#define SOFTDB_CONSTRAINTS_JOIN_HOLE_SC_H_

#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "constraints/soft_constraint.h"

namespace softdb {

/// An axis-aligned empty rectangle over a join path: for the join
/// `left ⋈ right ON left.jl = right.jr`, no joined tuple has
/// (left.attr_a, right.attr_b) inside the rectangle.
struct HoleRect {
  double a_lo = 0.0;
  double a_hi = 0.0;  // Inclusive bounds on attr_a.
  double b_lo = 0.0;
  double b_hi = 0.0;  // Inclusive bounds on attr_b.

  bool ContainsA(double a) const { return a >= a_lo && a <= a_hi; }
  bool ContainsB(double b) const { return b >= b_lo && b <= b_hi; }
};

/// Two-dimensional join holes [8]: maximal empty rectangles in the joint
/// (attr_a, attr_b) distribution of a join result. Knowing the holes lets
/// the optimizer trim range conditions on attr_a / attr_b in queries over
/// this join path, or prune the join entirely when the query rectangle
/// falls inside a hole (§2, §4.3).
class JoinHoleSc final : public SoftConstraint {
 public:
  JoinHoleSc(std::string name, std::string left_table, ColumnIdx left_join_col,
             ColumnIdx attr_a, std::string right_table,
             ColumnIdx right_join_col, ColumnIdx attr_b,
             std::vector<HoleRect> holes)
      : SoftConstraint(std::move(name), ScKind::kJoinHole,
                       std::move(left_table)),
        left_join_col_(left_join_col), attr_a_(attr_a),
        right_table_(std::move(right_table)), right_join_col_(right_join_col),
        attr_b_(attr_b), holes_(std::move(holes)) {}

  const std::string& left_table() const { return table_; }
  const std::string& right_table() const { return right_table_; }
  ColumnIdx left_join_col() const { return left_join_col_; }
  ColumnIdx right_join_col() const { return right_join_col_; }
  ColumnIdx attr_a() const { return attr_a_; }
  ColumnIdx attr_b() const { return attr_b_; }
  std::vector<HoleRect> holes() const {
    std::shared_lock<std::shared_mutex> lk(params_mu_);
    return holes_;
  }

  /// True when the query rectangle [a_lo,a_hi]x[b_lo,b_hi] lies entirely
  /// inside some hole — the join result is provably empty.
  bool CoversQuery(double a_lo, double a_hi, double b_lo, double b_hi) const;

  /// Trims [a_lo, a_hi] using holes that span the full queried B-range:
  /// the part of the A-range inside such a hole cannot contribute. Returns
  /// true if the range shrank. (Symmetrically for TrimBRange.)
  bool TrimARange(double* a_lo, double* a_hi, double b_lo, double b_hi) const;
  bool TrimBRange(double* b_lo, double* b_hi, double a_lo, double a_hi) const;

  /// Conservative synchronous maintenance (§4.3): an insert whose attr
  /// value intersects a hole's A (or B) projection *might* fill it; without
  /// the join we assume it does and drop that hole. Returns the number of
  /// holes dropped.
  std::size_t InvalidateHolesForLeftInsert(const std::vector<Value>& row);
  std::size_t InvalidateHolesForRightInsert(const std::vector<Value>& row);

  bool RequiresJoinCheck() const override { return true; }
  Result<bool> CheckRow(const Catalog& catalog,
                        const std::vector<Value>& row) const override;
  std::string Describe() const override;

 protected:
  /// Violations = joined tuples inside any hole (requires computing the
  /// join; linear in the join size as in [8]).
  Result<ScVerifyOutcome> CountViolations(
      const Catalog& catalog) override;

 private:
  ColumnIdx left_join_col_;
  ColumnIdx attr_a_;
  std::string right_table_;
  ColumnIdx right_join_col_;
  ColumnIdx attr_b_;
  // Derived parameter, guarded by params_mu_ (inserts conservatively drop
  // holes while planners trim ranges against them).
  std::vector<HoleRect> holes_;
};

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_JOIN_HOLE_SC_H_
