#ifndef SOFTDB_CONSTRAINTS_IC_REGISTRY_H_
#define SOFTDB_CONSTRAINTS_IC_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "constraints/integrity.h"

namespace softdb {

/// Registry of declared integrity constraints. Enforcement policy lives
/// here: enforced constraints are checked on every insert; informational
/// constraints are registered, visible to the optimizer, and never checked
/// (§1's informational-constraint facility).
class IcRegistry {
 public:
  IcRegistry() = default;
  IcRegistry(const IcRegistry&) = delete;
  IcRegistry& operator=(const IcRegistry&) = delete;

  /// Adds a constraint. Enforced constraints are validated against current
  /// data first and rejected if violated; informational ones are trusted
  /// as-is. FK constraints are wired to the parent's PK/unique key set when
  /// one is declared.
  Status Add(IcPtr constraint, const Catalog& catalog);

  /// Runs all *enforced* constraints of `table` against a candidate row.
  Status CheckInsert(const Catalog& catalog, const std::string& table,
                     const std::vector<Value>& row);

  /// Post-mutation bookkeeping (key sets), applied to all constraints
  /// (informational ones keep their sets usable for the optimizer).
  void AfterInsert(const std::string& table, const std::vector<Value>& row);
  void AfterDelete(const std::string& table, const std::vector<Value>& row);

  /// All constraints on `table`, any kind/mode.
  std::vector<IntegrityConstraint*> On(const std::string& table) const;

  /// FK constraints whose child is `table` (enforced or informational —
  /// both are valid for rewrite).
  std::vector<ForeignKeyConstraint*> ForeignKeysFrom(
      const std::string& table) const;

  /// The primary key of `table`, or the first unique constraint, or null.
  const UniqueConstraint* KeyOf(const std::string& table) const;

  /// True when `columns` is a superset of some unique key of `table`.
  bool IsUniqueOver(const std::string& table,
                    const std::vector<ColumnIdx>& columns) const;

  /// All CHECK constraints on `table` (the rewriter uses these like ASCs).
  std::vector<CheckConstraint*> ChecksOn(const std::string& table) const;

  IntegrityConstraint* Find(const std::string& name) const;
  Status Drop(const std::string& name);

  /// Every registered constraint, in registration order (checkpoint
  /// serialization).
  std::vector<IntegrityConstraint*> All() const {
    std::vector<IntegrityConstraint*> out;
    out.reserve(constraints_.size());
    for (const IcPtr& ic : constraints_) out.push_back(ic.get());
    return out;
  }

  std::size_t size() const { return constraints_.size(); }

  /// Total row checks executed (the E7 maintenance-cost metric).
  std::uint64_t checks_performed() const { return checks_performed_; }

 private:
  std::vector<IcPtr> constraints_;
  std::uint64_t checks_performed_ = 0;
};

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_IC_REGISTRY_H_
