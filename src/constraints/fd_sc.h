#ifndef SOFTDB_CONSTRAINTS_FD_SC_H_
#define SOFTDB_CONSTRAINTS_FD_SC_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "constraints/soft_constraint.h"

namespace softdb {

/// Functional dependency `determinants -> dependents` held as a soft
/// constraint ([29], §2): beyond declared keys, FDs in denormalized tables
/// let the optimizer prune functionally determined columns from GROUP BY
/// and ORDER BY clauses, shrinking or eliminating sorts. Only absolute FD
/// SCs are used for rewrite (the pruning must be semantics-preserving).
class FunctionalDependencySc final : public SoftConstraint {
 public:
  FunctionalDependencySc(std::string name, std::string table,
                         std::vector<ColumnIdx> determinants,
                         std::vector<ColumnIdx> dependents)
      : SoftConstraint(std::move(name), ScKind::kFunctionalDependency,
                       std::move(table)),
        determinants_(std::move(determinants)),
        dependents_(std::move(dependents)) {}

  const std::vector<ColumnIdx>& determinants() const { return determinants_; }
  const std::vector<ColumnIdx>& dependents() const { return dependents_; }

  /// True when `column` is functionally determined by `available`:
  /// determinants ⊆ available and column ∈ dependents.
  bool Determines(const std::vector<ColumnIdx>& available,
                  ColumnIdx column) const;

  Result<bool> CheckRow(const Catalog& catalog,
                        const std::vector<Value>& row) const override;
  std::string Describe() const override;

 protected:
  Result<ScVerifyOutcome> CountViolations(
      const Catalog& catalog) override;

 private:
  std::string DetImage(const std::vector<Value>& row) const;
  std::string DepImage(const std::vector<Value>& row) const;

  std::vector<ColumnIdx> determinants_;
  std::vector<ColumnIdx> dependents_;
  // Row-check cache built lazily at first CheckRow after a Verify.
  mutable std::unordered_map<std::string, std::string> mapping_;
  mutable std::uint64_t mapping_version_ = ~std::uint64_t{0};
};

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_FD_SC_H_
