#include "constraints/column_offset_sc.h"

#include <algorithm>

#include "common/str_util.h"

namespace softdb {

namespace {

Value ShiftValue(const Value& v, std::int64_t delta) {
  if (v.type() == TypeId::kDouble) {
    return Value::Double(v.AsDouble() + static_cast<double>(delta));
  }
  if (v.type() == TypeId::kDate) return Value::Date(v.AsInt64() + delta);
  return Value::Int64(v.AsInt64() + delta);
}

}  // namespace

std::vector<SimplePredicate> ColumnOffsetSc::DerivePredicates(
    const SimplePredicate& pred) const {
  std::vector<SimplePredicate> out;
  if (pred.constant.is_null()) return out;
  std::int64_t min_offset, max_offset;
  {
    std::shared_lock<std::shared_mutex> lk(params_mu_);
    min_offset = min_offset_;
    max_offset = max_offset_;
  }
  // Invariant: x + min <= y <= x + max for compliant rows.
  if (pred.column == col_y_) {
    switch (pred.op) {
      case CompareOp::kEq:
        // y = c  =>  c - max <= x <= c - min.
        out.push_back({col_x_, CompareOp::kGe,
                       ShiftValue(pred.constant, -max_offset)});
        out.push_back({col_x_, CompareOp::kLe,
                       ShiftValue(pred.constant, -min_offset)});
        break;
      case CompareOp::kGe:
      case CompareOp::kGt:
        // y >= c  =>  x >= c - max.
        out.push_back({col_x_, pred.op,
                       ShiftValue(pred.constant, -max_offset)});
        break;
      case CompareOp::kLe:
      case CompareOp::kLt:
        // y <= c  =>  x <= c - min.
        out.push_back({col_x_, pred.op,
                       ShiftValue(pred.constant, -min_offset)});
        break;
      case CompareOp::kNe:
        break;
    }
    return out;
  }
  if (pred.column == col_x_) {
    switch (pred.op) {
      case CompareOp::kEq:
        // x = c  =>  c + min <= y <= c + max.
        out.push_back({col_y_, CompareOp::kGe,
                       ShiftValue(pred.constant, min_offset)});
        out.push_back({col_y_, CompareOp::kLe,
                       ShiftValue(pred.constant, max_offset)});
        break;
      case CompareOp::kGe:
      case CompareOp::kGt:
        // x >= c  =>  y >= c + min.
        out.push_back({col_y_, pred.op,
                       ShiftValue(pred.constant, min_offset)});
        break;
      case CompareOp::kLe:
      case CompareOp::kLt:
        // x <= c  =>  y <= c + max.
        out.push_back({col_y_, pred.op,
                       ShiftValue(pred.constant, max_offset)});
        break;
      case CompareOp::kNe:
        break;
    }
  }
  return out;
}

Result<bool> ColumnOffsetSc::CheckRow(const Catalog&,
                                      const std::vector<Value>& row) const {
  const Value& x = row[col_x_];
  const Value& y = row[col_y_];
  if (x.is_null() || y.is_null()) return true;
  const double diff = y.NumericValue() - x.NumericValue();
  std::shared_lock<std::shared_mutex> lk(params_mu_);
  return diff >= static_cast<double>(min_offset_) &&
         diff <= static_cast<double>(max_offset_);
}

Status ColumnOffsetSc::RepairForRow(const std::vector<Value>& row) {
  const Value& x = row[col_x_];
  const Value& y = row[col_y_];
  if (x.is_null() || y.is_null()) return Status::OK();
  const std::int64_t diff = static_cast<std::int64_t>(
      y.NumericValue() - x.NumericValue());
  std::unique_lock<std::shared_mutex> lk(params_mu_);
  min_offset_ = std::min(min_offset_, diff);
  max_offset_ = std::max(max_offset_, diff);
  return Status::OK();
}

Status ColumnOffsetSc::RepairFull(const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  const ColumnVector& xs = table->ColumnData(col_x_);
  const ColumnVector& ys = table->ColumnData(col_y_);
  bool any = false;
  std::int64_t lo = 0, hi = 0;
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r) || xs.IsNull(r) || ys.IsNull(r)) continue;
    const std::int64_t diff =
        static_cast<std::int64_t>(ys.GetNumeric(r) - xs.GetNumeric(r));
    if (!any) {
      lo = hi = diff;
      any = true;
    } else {
      lo = std::min(lo, diff);
      hi = std::max(hi, diff);
    }
  }
  if (any) {
    std::unique_lock<std::shared_mutex> lk(params_mu_);
    min_offset_ = lo;
    max_offset_ = hi;
  }
  return Verify(catalog).status();
}

Result<ScVerifyOutcome> ColumnOffsetSc::CountViolations(
    const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  const ColumnVector& xs = table->ColumnData(col_x_);
  const ColumnVector& ys = table->ColumnData(col_y_);
  ScVerifyOutcome out;
  std::int64_t min_offset, max_offset;
  {
    std::shared_lock<std::shared_mutex> lk(params_mu_);
    min_offset = min_offset_;
    max_offset = max_offset_;
  }
  std::vector<double> diffs;
  diffs.reserve(table->NumRows());
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r)) continue;
    ++out.rows;
    if (xs.IsNull(r) || ys.IsNull(r)) continue;
    const double diff = ys.GetNumeric(r) - xs.GetNumeric(r);
    diffs.push_back(diff);
    if (diff < static_cast<double>(min_offset) ||
        diff > static_cast<double>(max_offset)) {
      ++out.violations;
    }
  }
  // Verification doubles as runstats on the virtual difference column.
  // Build outside the lock, publish under it: planners read the histogram
  // concurrently through DurationSelectivity.
  EquiDepthHistogram fresh = EquiDepthHistogram::Build(std::move(diffs), 32);
  {
    std::unique_lock<std::shared_mutex> lk(params_mu_);
    duration_histogram_ = std::move(fresh);
  }
  return out;
}

std::optional<double> ColumnOffsetSc::DurationSelectivity(CompareOp op,
                                                          double c) const {
  std::shared_lock<std::shared_mutex> lk(params_mu_);
  if (duration_histogram_.empty()) return std::nullopt;
  switch (op) {
    case CompareOp::kLe:
      return duration_histogram_.SelectivityLessEq(c);
    case CompareOp::kLt:
      return duration_histogram_.SelectivityLess(c);
    case CompareOp::kGe:
      return 1.0 - duration_histogram_.SelectivityLess(c);
    case CompareOp::kGt:
      return 1.0 - duration_histogram_.SelectivityLessEq(c);
    case CompareOp::kEq:
      return duration_histogram_.SelectivityEq(c);
    case CompareOp::kNe:
      return 1.0 - duration_histogram_.SelectivityEq(c);
  }
  return std::nullopt;
}

std::string ColumnOffsetSc::Describe() const {
  return StrFormat(
      "SC %s ON %s: col%u - col%u BETWEEN %lld AND %lld (conf %.4f, %s)",
      name_.c_str(), table_.c_str(), col_y_, col_x_,
      static_cast<long long>(min_offset()),
      static_cast<long long>(max_offset()), confidence(), ScStateName(state()));
}

}  // namespace softdb
