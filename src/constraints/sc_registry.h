#ifndef SOFTDB_CONSTRAINTS_SC_REGISTRY_H_
#define SOFTDB_CONSTRAINTS_SC_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"

#include "constraints/join_hole_sc.h"
#include "constraints/soft_constraint.h"

namespace softdb {

/// Counters for the maintenance experiments (E7). Atomic: maintenance and
/// concurrent readers (stats assertions, benches) may overlap.
struct ScMaintenanceStats {
  std::atomic<std::uint64_t> row_checks{0};     // Sync row compliance checks.
  std::atomic<std::uint64_t> violations{0};     // Violating inserts observed.
  std::atomic<std::uint64_t> sync_repairs{0};   // In-line repairs performed.
  std::atomic<std::uint64_t> async_enqueued{0};  // SCs queued for repair.
  std::atomic<std::uint64_t> async_repairs{0};  // Exact repairs completed.
  std::atomic<std::uint64_t> drops{0};          // SCs overturned.
  std::atomic<std::uint64_t> holes_invalidated{0};  // Holes dropped.
  std::atomic<std::uint64_t> scoped_skips{0};   // Skipped via impact scoping.
  std::atomic<std::uint64_t> repair_failures{0};  // Failed repair attempts.
  std::atomic<std::uint64_t> quarantined{0};    // Poison SCs quarantined.

  void Reset() {
    row_checks = 0;
    violations = 0;
    sync_repairs = 0;
    async_enqueued = 0;
    async_repairs = 0;
    drops = 0;
    holes_invalidated = 0;
    scoped_skips = 0;
    repair_failures = 0;
    quarantined = 0;
  }
};

/// Retry budget and backoff shape for async repair (shared by the manual
/// drain and the background RepairWorker).
struct RepairPolicy {
  std::size_t max_attempts = 5;  // Quarantine after this many failures.
  std::chrono::milliseconds base_backoff{10};
  std::chrono::milliseconds max_backoff{1000};
  std::uint64_t jitter_seed = 0x5EEDULL;  // Deterministic backoff jitter.
};

/// One entry in the repair audit trail; quarantines always leave a record.
struct RepairAuditRecord {
  std::string sc_name;
  std::size_t attempts = 0;  // Attempts consumed when the action was taken.
  std::string last_error;    // Message of the failed attempt, if any.
  std::string action;        // "repaired" | "requeued" | "quarantined".
};

/// How an SC re-entered kActive — recorded in the durable arm transition so
/// recovery re-derives parameters exactly the way the live engine did
/// (exact repair refits them; a verify resurrect keeps them and recounts).
enum class ScArmMode : std::uint8_t {
  kNone = 0,      // Not an arm (transition away from active).
  kRepairFull,    // Async repair: RepairFull recomputed parameters.
  kVerify,        // VerifyAll resurrected the SC via a clean recount.
};

/// Durability hook implemented by the engine's DurabilityManager
/// (storage/recovery.h). Only lifecycle changes that deterministic DML
/// replay can NOT reproduce go through it: registration, drop, repair
/// arms, quarantines, verify-driven transitions, and audit entries.
/// DML-driven transitions (policy reactions inside OnInsert, zone-map
/// folds, hole invalidations, sync-repair widens) are intentionally not
/// logged — replaying the logged row images through the full maintenance
/// pipeline recomputes them (DESIGN.md §14). An arm is durable only when
/// LogTransition(→kActive) is followed by LogArmCommit; recovery disarms
/// any dangling arm and re-enqueues it for revalidation.
class ScWalLog {
 public:
  virtual ~ScWalLog() = default;
  virtual Status LogRegister(const SoftConstraint& sc) = 0;
  virtual Status LogDrop(const SoftConstraint& sc) = 0;
  virtual Status LogTransition(const SoftConstraint& sc, ScState from,
                               ScState to, ScArmMode mode) = 0;
  virtual Status LogArmCommit(const SoftConstraint& sc) = 0;
  virtual Status LogAudit(const RepairAuditRecord& record) = 0;
};

/// What one RepairStep call did.
enum class RepairStepResult {
  kIdle,         // Nothing queued (or nothing due yet).
  kRepaired,     // An SC was repaired and reactivated.
  kRequeued,     // The attempt failed; ticket re-queued with backoff.
  kQuarantined,  // Attempt budget exhausted; SC demoted to quarantine.
  kStale,        // Ticket no longer applies (SC dropped or resurrected).
};

/// Registry and maintenance engine for soft constraints — the "SC facility"
/// of §3.2 (discovery results are Add()ed, selection consults the use/
/// benefit accounting, maintenance runs through OnInsert + the repair
/// queue).
///
/// Thread-safe (DESIGN.md §8): the constraint list is guarded by a shared
/// mutex (queries snapshot it shared; Add/Drop take it exclusive), per-SC
/// lifecycle fields are atomics with a per-SC maintenance mutex
/// serializing concurrent maintenance of one SC, and dropped SCs move to
/// a graveyard so raw SoftConstraint pointers handed to sessions stay
/// valid for the registry's lifetime. The violation listener is invoked
/// without registry locks held (it takes the plan-cache mutex).
class ScRegistry {
 public:
  /// Fired when an SC leaves the active state (violation or drop); the plan
  /// cache subscribes to invalidate dependent plans (§4.1).
  using ViolationListener = std::function<void(const SoftConstraint&)>;

  ScRegistry() = default;
  ScRegistry(const ScRegistry&) = delete;
  ScRegistry& operator=(const ScRegistry&) = delete;

  /// Registers an SC. When `verify_now`, runs a full verification so the
  /// confidence and currency baseline reflect the current state.
  Status Add(ScPtr sc, const Catalog& catalog, bool verify_now = true);

  SoftConstraint* Find(const std::string& name) const;
  Status Drop(const std::string& name);

  /// Active SCs whose (primary) table is `table`; join-hole SCs also match
  /// on their right table.
  std::vector<SoftConstraint*> On(const std::string& table) const;
  std::vector<SoftConstraint*> ByKind(ScKind kind) const;
  std::vector<SoftConstraint*> All() const;

  void SetViolationListener(ViolationListener listener) {
    listener_ = std::move(listener);
  }

  /// Synchronous maintenance hook, called with each row about to be
  /// inserted into `table` (after IC checks pass). Applies each affected
  /// SC's maintenance policy. Never rejects the insert — SCs do not
  /// constrain (§2: "soft constraints do not constrain anything!").
  ///
  /// When `scope` is non-null it must be a *sound over-approximation* of
  /// the SCs this row can invalidate (from the static DML impact
  /// analyzer): SCs outside it skip their synchronous check entirely,
  /// counted in `stats().scoped_skips`.
  Status OnInsert(const Catalog& catalog, const std::string& table,
                  const std::vector<Value>& row,
                  const std::set<std::string>* scope = nullptr);

  /// Positional maintenance hooks for SCs keyed by RowId (block zone
  /// maps), which OnInsert cannot service because it runs before the row
  /// has an id. OnRowAppended is called right after the append succeeds;
  /// OnRowUpdated is called BEFORE the table cells mutate, so the SC can
  /// still read the old values. Both fold incrementally — no rescans.
  Status OnRowAppended(const Catalog& catalog, const std::string& table,
                       RowId rid, const std::vector<Value>& row);
  Status OnRowUpdated(const Catalog& catalog, const std::string& table,
                      RowId rid, const std::vector<Value>& new_row);

  /// Drains the async repair queue (exact re-mining / re-verification) —
  /// the off-line step §4.3 schedules for light-load periods. Each ticket
  /// queued at entry is attempted once, ignoring backoff; failures are
  /// re-queued (or quarantined past the attempt budget) rather than
  /// propagated, so a poison SC cannot wedge the drain.
  Status RunRepairQueue(const Catalog& catalog);
  std::size_t repair_queue_size() const;

  /// Attempts the first due repair ticket and reports what happened. The
  /// background RepairWorker's unit of work; `respect_backoff` false also
  /// considers tickets still inside their backoff window.
  RepairStepResult RepairStep(const Catalog& catalog,
                              bool respect_backoff = true);

  /// Earliest not-before among queued tickets (nullopt when queue empty) —
  /// how long the worker may sleep.
  std::optional<std::chrono::steady_clock::time_point> NextRepairDue() const;

  void SetRepairPolicy(const RepairPolicy& policy);
  RepairPolicy repair_policy() const;

  /// Copy of the audit trail (repairs, re-queues, quarantines), in order.
  std::vector<RepairAuditRecord> repair_audit() const;

  /// Re-verifies every SC (periodic runstats-style refresh, §3).
  Status VerifyAll(const Catalog& catalog);

  /// Selection-stage accounting (§3.2): the optimizer records each use and
  /// the estimated benefit; the selection pass drops SCs that never pay for
  /// their maintenance.
  void RecordUse(const std::string& name, double benefit);
  std::uint64_t UseCount(const std::string& name) const;
  double TotalBenefit(const std::string& name) const;

  const ScMaintenanceStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  std::size_t size() const;

  /// Attaches (or detaches, with null) the durability hook. The hook must
  /// outlive the registry or be detached first; it is invoked without the
  /// list lock held and must never call back into the registry.
  void SetWalLog(ScWalLog* log) { wal_log_ = log; }

  // Checkpoint/recovery plumbing (storage/recovery.cc). None of these go
  // through the WAL hook: they *reinstate* durable state, they don't
  // create it.
  /// Re-enqueues a repair ticket verbatim (due immediately); dedups like a
  /// live enqueue.
  void RestoreTicket(const std::string& name, std::size_t attempts);
  /// Removes any queued ticket for `name` (a replayed arm commit means the
  /// live engine had already popped it).
  void DropTicket(const std::string& name);
  /// Appends one audit record without logging it.
  void RestoreAudit(RepairAuditRecord record);
  /// Queued tickets as {name, attempts}, in queue order.
  std::vector<std::pair<std::string, std::size_t>> TicketSnapshot() const;
  /// Reinstates selection accounting for one SC.
  void RestoreUse(const std::string& name, std::uint64_t count,
                  double benefit);
  /// Selection accounting as {name, use_count, total_benefit}.
  std::vector<std::tuple<std::string, std::uint64_t, double>> UseSnapshot()
      const;

 private:
  using ScSharedPtr = std::shared_ptr<SoftConstraint>;

  /// A queued repair with its retry bookkeeping.
  struct RepairTicket {
    std::string name;
    std::size_t attempts = 0;
    std::chrono::steady_clock::time_point not_before{};
  };

  void FireViolation(const SoftConstraint& sc) {
    if (listener_) listener_(sc);
  }
  /// Snapshot of the live constraint list; callers iterate without the
  /// list lock so row checks and listener callbacks never hold it.
  std::vector<ScSharedPtr> Snapshot() const;
  SoftConstraint* FindLocked(const std::string& name) const;

  /// Runs one repair attempt for a popped ticket: repair + reactivate, or
  /// re-queue with exponential backoff, or quarantine past the budget.
  RepairStepResult AttemptRepair(const Catalog& catalog, RepairTicket ticket);
  /// Backoff for the ticket's next attempt: base * 2^(attempts-1), capped,
  /// with deterministic ±25% jitter. Called under aux_mu_.
  std::chrono::milliseconds BackoffLocked(std::size_t attempts);
  void RecordAudit(RepairAuditRecord record);

  mutable std::shared_mutex list_mu_;  // Guards constraints_ + graveyard_.
  std::vector<ScSharedPtr> constraints_;
  std::vector<ScSharedPtr> graveyard_;  // Dropped; keeps pointers valid.

  mutable std::mutex aux_mu_;  // Guards queue + use/benefit accounting.
  std::deque<RepairTicket> repair_queue_;
  std::set<std::string> queued_names_;  // Dedupes enqueues (one ticket/SC).
  RepairPolicy repair_policy_;
  Rng backoff_rng_{RepairPolicy{}.jitter_seed};
  std::vector<RepairAuditRecord> repair_audit_;
  std::map<std::string, std::uint64_t> use_counts_;
  std::map<std::string, double> benefits_;

  ViolationListener listener_;
  ScMaintenanceStats stats_;
  ScWalLog* wal_log_ = nullptr;
};

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_SC_REGISTRY_H_
