#ifndef SOFTDB_CONSTRAINTS_SC_REGISTRY_H_
#define SOFTDB_CONSTRAINTS_SC_REGISTRY_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "constraints/join_hole_sc.h"
#include "constraints/soft_constraint.h"

namespace softdb {

/// Counters for the maintenance experiments (E7). Atomic: maintenance and
/// concurrent readers (stats assertions, benches) may overlap.
struct ScMaintenanceStats {
  std::atomic<std::uint64_t> row_checks{0};     // Sync row compliance checks.
  std::atomic<std::uint64_t> violations{0};     // Violating inserts observed.
  std::atomic<std::uint64_t> sync_repairs{0};   // In-line repairs performed.
  std::atomic<std::uint64_t> async_enqueued{0};  // SCs queued for repair.
  std::atomic<std::uint64_t> async_repairs{0};  // Exact repairs completed.
  std::atomic<std::uint64_t> drops{0};          // SCs overturned.
  std::atomic<std::uint64_t> holes_invalidated{0};  // Holes dropped.
  std::atomic<std::uint64_t> scoped_skips{0};   // Skipped via impact scoping.

  void Reset() {
    row_checks = 0;
    violations = 0;
    sync_repairs = 0;
    async_enqueued = 0;
    async_repairs = 0;
    drops = 0;
    holes_invalidated = 0;
    scoped_skips = 0;
  }
};

/// Registry and maintenance engine for soft constraints — the "SC facility"
/// of §3.2 (discovery results are Add()ed, selection consults the use/
/// benefit accounting, maintenance runs through OnInsert + the repair
/// queue).
///
/// Thread-safe (DESIGN.md §8): the constraint list is guarded by a shared
/// mutex (queries snapshot it shared; Add/Drop take it exclusive), per-SC
/// lifecycle fields are atomics with a per-SC maintenance mutex
/// serializing concurrent maintenance of one SC, and dropped SCs move to
/// a graveyard so raw SoftConstraint pointers handed to sessions stay
/// valid for the registry's lifetime. The violation listener is invoked
/// without registry locks held (it takes the plan-cache mutex).
class ScRegistry {
 public:
  /// Fired when an SC leaves the active state (violation or drop); the plan
  /// cache subscribes to invalidate dependent plans (§4.1).
  using ViolationListener = std::function<void(const SoftConstraint&)>;

  ScRegistry() = default;
  ScRegistry(const ScRegistry&) = delete;
  ScRegistry& operator=(const ScRegistry&) = delete;

  /// Registers an SC. When `verify_now`, runs a full verification so the
  /// confidence and currency baseline reflect the current state.
  Status Add(ScPtr sc, const Catalog& catalog, bool verify_now = true);

  SoftConstraint* Find(const std::string& name) const;
  Status Drop(const std::string& name);

  /// Active SCs whose (primary) table is `table`; join-hole SCs also match
  /// on their right table.
  std::vector<SoftConstraint*> On(const std::string& table) const;
  std::vector<SoftConstraint*> ByKind(ScKind kind) const;
  std::vector<SoftConstraint*> All() const;

  void SetViolationListener(ViolationListener listener) {
    listener_ = std::move(listener);
  }

  /// Synchronous maintenance hook, called with each row about to be
  /// inserted into `table` (after IC checks pass). Applies each affected
  /// SC's maintenance policy. Never rejects the insert — SCs do not
  /// constrain (§2: "soft constraints do not constrain anything!").
  ///
  /// When `scope` is non-null it must be a *sound over-approximation* of
  /// the SCs this row can invalidate (from the static DML impact
  /// analyzer): SCs outside it skip their synchronous check entirely,
  /// counted in `stats().scoped_skips`.
  Status OnInsert(const Catalog& catalog, const std::string& table,
                  const std::vector<Value>& row,
                  const std::set<std::string>* scope = nullptr);

  /// Drains the async repair queue (exact re-mining / re-verification) —
  /// the off-line step §4.3 schedules for light-load periods.
  Status RunRepairQueue(const Catalog& catalog);
  std::size_t repair_queue_size() const;

  /// Re-verifies every SC (periodic runstats-style refresh, §3).
  Status VerifyAll(const Catalog& catalog);

  /// Selection-stage accounting (§3.2): the optimizer records each use and
  /// the estimated benefit; the selection pass drops SCs that never pay for
  /// their maintenance.
  void RecordUse(const std::string& name, double benefit);
  std::uint64_t UseCount(const std::string& name) const;
  double TotalBenefit(const std::string& name) const;

  const ScMaintenanceStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  std::size_t size() const;

 private:
  using ScSharedPtr = std::shared_ptr<SoftConstraint>;

  void FireViolation(const SoftConstraint& sc) {
    if (listener_) listener_(sc);
  }
  /// Snapshot of the live constraint list; callers iterate without the
  /// list lock so row checks and listener callbacks never hold it.
  std::vector<ScSharedPtr> Snapshot() const;
  SoftConstraint* FindLocked(const std::string& name) const;

  mutable std::shared_mutex list_mu_;  // Guards constraints_ + graveyard_.
  std::vector<ScSharedPtr> constraints_;
  std::vector<ScSharedPtr> graveyard_;  // Dropped; keeps pointers valid.

  mutable std::mutex aux_mu_;  // Guards queue + use/benefit accounting.
  std::deque<std::string> repair_queue_;
  std::map<std::string, std::uint64_t> use_counts_;
  std::map<std::string, double> benefits_;

  ViolationListener listener_;
  ScMaintenanceStats stats_;
};

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_SC_REGISTRY_H_
