#ifndef SOFTDB_CONSTRAINTS_PREDICATE_SC_H_
#define SOFTDB_CONSTRAINTS_PREDICATE_SC_H_

#include <string>
#include <vector>

#include "constraints/soft_constraint.h"
#include "plan/expr.h"

namespace softdb {

/// A generic row check constraint held softly: an arbitrary predicate over
/// one table's row ("ship_date <= order_date + 21"), bound to the table
/// schema. This is the §5.1 mechanism of "the same infrastructure as a
/// regular [check] constraint along with an additional number that
/// specifies the percentage of rows satisfying it"; exception-table ASTs
/// (§4.4) are defined over the negation of a PredicateSc.
class PredicateSc final : public SoftConstraint {
 public:
  /// `expr` must be bound against the table's schema already.
  PredicateSc(std::string name, std::string table, ExprPtr expr)
      : SoftConstraint(std::move(name), ScKind::kPredicate, std::move(table)),
        expr_(std::move(expr)) {}

  const Expr& expr() const { return *expr_; }

  Result<bool> CheckRow(const Catalog& catalog,
                        const std::vector<Value>& row) const override;
  std::string Describe() const override;

 protected:
  Result<ScVerifyOutcome> CountViolations(
      const Catalog& catalog) override;

 private:
  ExprPtr expr_;
};

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_PREDICATE_SC_H_
