#include "constraints/domain_sc.h"

#include "common/str_util.h"

namespace softdb {

DomainSc::Implication DomainSc::Classify(const SimplePredicate& pred) const {
  if (pred.column != column_ || pred.constant.is_null()) {
    return Implication::kNone;
  }
  const double c = pred.constant.NumericValue();
  double lo, hi;
  {
    std::shared_lock<std::shared_mutex> lk(params_mu_);
    lo = min_.NumericValue();
    hi = max_.NumericValue();
  }
  switch (pred.op) {
    case CompareOp::kLe:
      if (c >= hi) return Implication::kTautology;
      if (c < lo) return Implication::kContradiction;
      return Implication::kNone;
    case CompareOp::kLt:
      if (c > hi) return Implication::kTautology;
      if (c <= lo) return Implication::kContradiction;
      return Implication::kNone;
    case CompareOp::kGe:
      if (c <= lo) return Implication::kTautology;
      if (c > hi) return Implication::kContradiction;
      return Implication::kNone;
    case CompareOp::kGt:
      if (c < lo) return Implication::kTautology;
      if (c >= hi) return Implication::kContradiction;
      return Implication::kNone;
    case CompareOp::kEq:
      if (c < lo || c > hi) return Implication::kContradiction;
      return Implication::kNone;
    case CompareOp::kNe:
      if (c < lo || c > hi) return Implication::kTautology;
      return Implication::kNone;
  }
  return Implication::kNone;
}

Result<bool> DomainSc::CheckRow(const Catalog&,
                                const std::vector<Value>& row) const {
  const Value& v = row[column_];
  if (v.is_null()) return true;
  const double x = v.NumericValue();
  std::shared_lock<std::shared_mutex> lk(params_mu_);
  return x >= min_.NumericValue() && x <= max_.NumericValue();
}

Status DomainSc::RepairForRow(const std::vector<Value>& row) {
  const Value& v = row[column_];
  if (v.is_null()) return Status::OK();
  std::unique_lock<std::shared_mutex> lk(params_mu_);
  auto lt = v.Compare(min_);
  if (lt.ok() && *lt < 0) min_ = v;
  auto gt = v.Compare(max_);
  if (gt.ok() && *gt > 0) max_ = v;
  return Status::OK();
}

Status DomainSc::RepairFull(const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  const ColumnVector& col = table->ColumnData(column_);
  // Refit into locals, publish under the params lock: planners classify
  // predicates against the bounds concurrently.
  Value new_min, new_max;
  bool any = false;
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r) || col.IsNull(r)) continue;
    Value v = col.Get(r);
    if (!any) {
      new_min = v;
      new_max = v;
      any = true;
      continue;
    }
    auto lt = v.Compare(new_min);
    if (lt.ok() && *lt < 0) new_min = v;
    auto gt = v.Compare(new_max);
    if (gt.ok() && *gt > 0) new_max = v;
  }
  if (any) {
    std::unique_lock<std::shared_mutex> lk(params_mu_);
    min_ = std::move(new_min);
    max_ = std::move(new_max);
  }
  return Verify(catalog).status();
}

Result<ScVerifyOutcome> DomainSc::CountViolations(
    const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(table_));
  const ColumnVector& col = table->ColumnData(column_);
  ScVerifyOutcome out;
  double lo, hi;
  {
    std::shared_lock<std::shared_mutex> lk(params_mu_);
    lo = min_.NumericValue();
    hi = max_.NumericValue();
  }
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r)) continue;
    ++out.rows;
    if (col.IsNull(r)) continue;
    const double x = col.GetNumeric(r);
    if (x < lo || x > hi) ++out.violations;
  }
  return out;
}

std::string DomainSc::Describe() const {
  return StrFormat("SC %s ON %s: col%u BETWEEN %s AND %s (conf %.4f, %s)",
                   name_.c_str(), table_.c_str(), column_,
                   min_value().ToString().c_str(),
                   max_value().ToString().c_str(), confidence(),
                   ScStateName(state()));
}

}  // namespace softdb
