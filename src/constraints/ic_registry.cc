#include "constraints/ic_registry.h"

#include <algorithm>

#include "common/str_util.h"

namespace softdb {

Status IcRegistry::Add(IcPtr constraint, const Catalog& catalog) {
  if (Find(constraint->name()) != nullptr) {
    return Status::AlreadyExists("constraint exists: " + constraint->name());
  }
  if (!constraint->informational()) {
    SOFTDB_ASSIGN_OR_RETURN(std::uint64_t violations,
                            constraint->Validate(catalog));
    if (violations > 0) {
      return Status::ConstraintViolation(
          StrFormat("cannot add %s: %llu existing rows violate it",
                    constraint->name().c_str(),
                    static_cast<unsigned long long>(violations)));
    }
  }
  if (auto* unique = dynamic_cast<UniqueConstraint*>(constraint.get())) {
    SOFTDB_RETURN_IF_ERROR(unique->Rebuild(catalog));
    // Wire any FK pointing at this table's key.
    for (const IcPtr& c : constraints_) {
      if (auto* fk = dynamic_cast<ForeignKeyConstraint*>(c.get())) {
        if (fk->parent_table() == unique->table() &&
            fk->parent_columns() == unique->columns()) {
          fk->SetParentKey(unique);
        }
      }
    }
  }
  if (auto* fk = dynamic_cast<ForeignKeyConstraint*>(constraint.get())) {
    for (const IcPtr& c : constraints_) {
      if (auto* unique = dynamic_cast<UniqueConstraint*>(c.get())) {
        if (unique->table() == fk->parent_table() &&
            unique->columns() == fk->parent_columns()) {
          fk->SetParentKey(unique);
        }
      }
    }
  }
  constraints_.push_back(std::move(constraint));
  return Status::OK();
}

Status IcRegistry::CheckInsert(const Catalog& catalog, const std::string& table,
                               const std::vector<Value>& row) {
  for (const IcPtr& c : constraints_) {
    if (c->table() != table || c->informational()) continue;
    ++checks_performed_;
    SOFTDB_RETURN_IF_ERROR(c->CheckRow(catalog, row));
  }
  return Status::OK();
}

void IcRegistry::AfterInsert(const std::string& table,
                             const std::vector<Value>& row) {
  for (const IcPtr& c : constraints_) {
    if (c->table() == table) c->AfterInsert(row);
  }
}

void IcRegistry::AfterDelete(const std::string& table,
                             const std::vector<Value>& row) {
  for (const IcPtr& c : constraints_) {
    if (c->table() == table) c->AfterDelete(row);
  }
}

std::vector<IntegrityConstraint*> IcRegistry::On(
    const std::string& table) const {
  std::vector<IntegrityConstraint*> out;
  for (const IcPtr& c : constraints_) {
    if (c->table() == table) out.push_back(c.get());
  }
  return out;
}

std::vector<ForeignKeyConstraint*> IcRegistry::ForeignKeysFrom(
    const std::string& table) const {
  std::vector<ForeignKeyConstraint*> out;
  for (const IcPtr& c : constraints_) {
    if (c->table() != table) continue;
    if (auto* fk = dynamic_cast<ForeignKeyConstraint*>(c.get())) {
      out.push_back(fk);
    }
  }
  return out;
}

const UniqueConstraint* IcRegistry::KeyOf(const std::string& table) const {
  const UniqueConstraint* fallback = nullptr;
  for (const IcPtr& c : constraints_) {
    if (c->table() != table) continue;
    if (auto* unique = dynamic_cast<const UniqueConstraint*>(c.get())) {
      if (unique->is_primary()) return unique;
      if (fallback == nullptr) fallback = unique;
    }
  }
  return fallback;
}

bool IcRegistry::IsUniqueOver(const std::string& table,
                              const std::vector<ColumnIdx>& columns) const {
  for (const IcPtr& c : constraints_) {
    if (c->table() != table) continue;
    if (auto* unique = dynamic_cast<const UniqueConstraint*>(c.get())) {
      const auto& key = unique->columns();
      const bool contained = std::all_of(
          key.begin(), key.end(), [&](ColumnIdx k) {
            return std::find(columns.begin(), columns.end(), k) !=
                   columns.end();
          });
      if (contained) return true;
    }
  }
  return false;
}

std::vector<CheckConstraint*> IcRegistry::ChecksOn(
    const std::string& table) const {
  std::vector<CheckConstraint*> out;
  for (const IcPtr& c : constraints_) {
    if (c->table() != table) continue;
    if (auto* check = dynamic_cast<CheckConstraint*>(c.get())) {
      out.push_back(check);
    }
  }
  return out;
}

IntegrityConstraint* IcRegistry::Find(const std::string& name) const {
  for (const IcPtr& c : constraints_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Status IcRegistry::Drop(const std::string& name) {
  for (auto it = constraints_.begin(); it != constraints_.end(); ++it) {
    if ((*it)->name() == name) {
      constraints_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no such constraint: " + name);
}

}  // namespace softdb
