#ifndef SOFTDB_CONSTRAINTS_ZONE_MAP_SC_H_
#define SOFTDB_CONSTRAINTS_ZONE_MAP_SC_H_

#include <cstdint>
#include <limits>
#include <shared_mutex>
#include <string>
#include <vector>

#include "constraints/soft_constraint.h"
#include "storage/table.h"  // kZoneMapBlockRows

namespace softdb {

/// Block zone maps as a soft constraint: per-block (1024-row-aligned)
/// min/max/null-count Small Materialized Aggregates over one column's
/// numeric rendering, mined exactly at table load and folded
/// *incrementally* on DML — widen-only, Kläbe-style, so maintenance never
/// rescans the table. The constraint it asserts, per block b:
///
///   (1) every LIVE row in b with a non-NULL column value v has
///       min_b ≤ v ≤ max_b (and has_value_b is set);
///   (2) the number of LIVE NULL rows in b is ≤ null_count_b.
///
/// Both clauses are one-sided over-approximations, which is what makes
/// widen-only folding sound: inserts widen the envelope / bump the null
/// count, deletes are no-ops (the envelope just stays loose), updates
/// widen and — being the one mutation that can matter to an in-flight
/// plan — bump the epoch so the standard degraded-retry protocol applies.
/// Scans may therefore skip a block when the predicate's TRUE-region
/// misses [min_b, max_b] (comparisons), when null_count_b == 0 (IS NULL),
/// or when !has_value_b (IS NOT NULL and all comparisons).
///
/// Like every SC it is epoch-guarded and verified: VerifyAll recounts the
/// invariant against the data (catching a corrupted / stale map: its
/// confidence drops below 1 and planners stop consulting it), and
/// RepairFull re-mines the exact aggregates.
class ZoneMapSc final : public SoftConstraint {
 public:
  struct BlockSma {
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    bool has_value = false;          // Any non-NULL value folded?
    std::uint64_t null_count = 0;    // Upper bound on live NULL rows.
  };

  ZoneMapSc(std::string name, std::string table, ColumnIdx column)
      : SoftConstraint(std::move(name), ScKind::kBlockZoneMap,
                       std::move(table)),
        column_(column) {}

  ColumnIdx column() const { return column_; }

  /// Exact (re)computation of every block from the current live rows.
  /// Used at mining time and by RepairFull.
  Status Mine(const Catalog& catalog);

  /// Incremental folds, called by the ScRegistry DML hooks under this
  /// SC's maintenance_mu(). FoldAppendedRow widens the row's block
  /// without an epoch bump (a loosened envelope cannot invalidate a skip
  /// decision made against pre-insert data under the engine's
  /// DML/query serialization). FoldUpdatedRow is called BEFORE the table
  /// cells mutate — it reads the old value from the catalog — and bumps
  /// the epoch when the update widens the block's bounds or raises its
  /// null count, invalidating in-flight plans that consumed this map.
  void FoldAppendedRow(RowId rid, const std::vector<Value>& row);
  Status FoldUpdatedRow(const Catalog& catalog, RowId rid,
                        const std::vector<Value>& new_row);

  /// Copy of the per-block SMAs (planners consult this snapshot under the
  /// params lock, then compute skip sets lock-free).
  std::vector<BlockSma> SnapshotBlocks() const {
    std::shared_lock<std::shared_mutex> lk(params_mu_);
    return blocks_;
  }

  /// Declares one block's SMA verbatim, growing the block vector as
  /// needed. This is the catalog-dump loader behind softdb_lint's ZONEMAP
  /// directive: a dumped map is re-stated block by block so the linter can
  /// cross-check it against the rest of the catalog without the data.
  void DeclareBlock(std::size_t block, BlockSma sma);

  /// Test hook: seed a corrupted (narrowed) block so VerifyAll's
  /// detection and RepairFull's re-mine can be exercised.
  void CorruptBlockForTest(std::size_t block, double min, double max,
                           std::uint64_t null_count);

  /// Zone maps are folded by position via the DML hooks, never checked
  /// row-at-a-time (a row without its RowId cannot be attributed to a
  /// block), so generic per-row maintenance treats every row as compliant.
  Result<bool> CheckRow(const Catalog& catalog,
                        const std::vector<Value>& row) const override {
    (void)catalog;
    (void)row;
    return true;
  }

  /// Exact repair: re-mine every block, then re-verify.
  Status RepairFull(const Catalog& catalog) override;

  std::string Describe() const override;

 protected:
  Result<ScVerifyOutcome> CountViolations(const Catalog& catalog) override;

 private:
  ColumnIdx column_;
  // Derived parameters under params_mu_: one SMA per kZoneMapBlockRows
  // slots, indexed by RowId / kZoneMapBlockRows (tombstoned slots
  // included — deletes are no-ops, the envelope is an over-approximation).
  std::vector<BlockSma> blocks_;
};

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_ZONE_MAP_SC_H_
