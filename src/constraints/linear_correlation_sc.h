#ifndef SOFTDB_CONSTRAINTS_LINEAR_CORRELATION_SC_H_
#define SOFTDB_CONSTRAINTS_LINEAR_CORRELATION_SC_H_

#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "constraints/soft_constraint.h"

namespace softdb {

/// Linear correlation `a BETWEEN k*b + c - eps AND k*b + c + eps` between
/// two numeric columns of one table — the class mined in [10] and the
/// paper's flagship predicate-introduction enabler: a selective envelope
/// lets the rewriter add a range predicate on `a` (which has an index) to a
/// query that only constrains `b`.
class LinearCorrelationSc final : public SoftConstraint {
 public:
  LinearCorrelationSc(std::string name, std::string table, ColumnIdx col_a,
                      ColumnIdx col_b, double k, double c, double epsilon)
      : SoftConstraint(std::move(name), ScKind::kLinearCorrelation,
                       std::move(table)),
        col_a_(col_a), col_b_(col_b), k_(k), c_(c), epsilon_(epsilon) {}

  ColumnIdx col_a() const { return col_a_; }
  ColumnIdx col_b() const { return col_b_; }

  /// Envelope parameters. `band()` returns one consistent snapshot — use it
  /// whenever more than one of k, c, epsilon feeds the same derivation, so
  /// a concurrent refit cannot mix old and new coefficients.
  struct Band {
    double k = 0.0;
    double c = 0.0;
    double epsilon = 0.0;
  };
  Band band() const {
    std::shared_lock<std::shared_mutex> lk(params_mu_);
    return {k_, c_, epsilon_};
  }
  double k() const { return band().k; }
  double c() const { return band().c; }
  double epsilon() const { return band().epsilon; }

  /// Image of a B-range through the envelope: the A-range that contains
  /// every compliant row whose B lies in [b_lo, b_hi]. Handles negative k.
  std::pair<double, double> ARangeForB(double b_lo, double b_hi) const;

  Result<bool> CheckRow(const Catalog& catalog,
                        const std::vector<Value>& row) const override;
  Status RepairForRow(const std::vector<Value>& row) override;
  Status RepairFull(const Catalog& catalog) override;
  std::string Describe() const override;

 protected:
  Result<ScVerifyOutcome> CountViolations(
      const Catalog& catalog) override;

 private:
  ColumnIdx col_a_;
  ColumnIdx col_b_;
  // Derived parameters, guarded by params_mu_ (repair refits the envelope
  // while planners derive introduced predicates from it).
  double k_;
  double c_;
  double epsilon_;
};

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_LINEAR_CORRELATION_SC_H_
