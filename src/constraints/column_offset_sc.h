#ifndef SOFTDB_CONSTRAINTS_COLUMN_OFFSET_SC_H_
#define SOFTDB_CONSTRAINTS_COLUMN_OFFSET_SC_H_

#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "constraints/soft_constraint.h"
#include "plan/predicate.h"
#include "stats/histogram.h"

namespace softdb {

/// Inter-column offset bound `col_y - col_x BETWEEN min_offset AND
/// max_offset` on one table. This is the shape behind both worked examples
/// of the paper:
///
/// * `ship_date BETWEEN order_date AND order_date + 21` (§4.4's
///   late_shipments business rule, offsets [0, 21] days), and
/// * `end_date <= start_date + 30` (§5's project query, offsets [0, 30]).
///
/// It powers §5.1's *twinning*: a query predicate on `y` implies a
/// predicate on `x` (and vice versa), which the optimizer attaches as an
/// estimation-only twin with this SC's confidence — or, when the SC is
/// absolute, as a real introduced predicate enabling an index on the other
/// column.
class ColumnOffsetSc final : public SoftConstraint {
 public:
  ColumnOffsetSc(std::string name, std::string table, ColumnIdx col_x,
                 ColumnIdx col_y, std::int64_t min_offset,
                 std::int64_t max_offset)
      : SoftConstraint(std::move(name), ScKind::kColumnOffset,
                       std::move(table)),
        col_x_(col_x), col_y_(col_y), min_offset_(min_offset),
        max_offset_(max_offset) {}

  ColumnIdx col_x() const { return col_x_; }
  ColumnIdx col_y() const { return col_y_; }
  /// One consistent [min, max] snapshot — use it whenever both bounds feed
  /// the same derivation, so a concurrent repair cannot mix old and new.
  std::pair<std::int64_t, std::int64_t> offset_range() const {
    std::shared_lock<std::shared_mutex> lk(params_mu_);
    return {min_offset_, max_offset_};
  }
  std::int64_t min_offset() const { return offset_range().first; }
  std::int64_t max_offset() const { return offset_range().second; }

  /// Derives the implied predicate(s) on the *other* column from a simple
  /// predicate on `pred.column` (which must be col_x or col_y, as indexes
  /// of this SC's table schema). Empty when the operator gives no
  /// implication (e.g. <>).
  std::vector<SimplePredicate> DerivePredicates(
      const SimplePredicate& pred) const;

  /// Distribution statistics on the *virtual column* `col_y - col_x`,
  /// refreshed by Verify. This is §5.1's second mechanism ("combine
  /// multiple SSCs in virtual columns where the distribution statistics on
  /// the virtual column can be broken down"): the estimator uses it
  /// directly for predicates over the difference, such as §5's "projects
  /// completed in 5 days" (`end_date - start_date <= 5`).
  EquiDepthHistogram duration_histogram() const {
    std::shared_lock<std::shared_mutex> lk(params_mu_);
    return duration_histogram_;
  }

  /// Selectivity of `(col_y - col_x) <op> c` from the duration histogram.
  /// Returns nullopt before the first Verify.
  std::optional<double> DurationSelectivity(CompareOp op, double c) const;

  /// Checkpoint loading: reinstates a serialized duration histogram so the
  /// recovered SC estimates like the pre-crash one without a rescan.
  void RestoreDurationHistogram(EquiDepthHistogram h) {
    std::unique_lock<std::shared_mutex> lk(params_mu_);
    duration_histogram_ = std::move(h);
  }

  Result<bool> CheckRow(const Catalog& catalog,
                        const std::vector<Value>& row) const override;
  Status RepairForRow(const std::vector<Value>& row) override;
  Status RepairFull(const Catalog& catalog) override;
  std::string Describe() const override;

 protected:
  Result<ScVerifyOutcome> CountViolations(
      const Catalog& catalog) override;

 private:
  ColumnIdx col_x_;
  ColumnIdx col_y_;
  // Derived parameters, guarded by params_mu_ (repair widens the offsets,
  // Verify rebuilds the histogram, while planners read both).
  std::int64_t min_offset_;
  std::int64_t max_offset_;
  EquiDepthHistogram duration_histogram_;
};

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_COLUMN_OFFSET_SC_H_
