#ifndef SOFTDB_CONSTRAINTS_REPAIR_WORKER_H_
#define SOFTDB_CONSTRAINTS_REPAIR_WORKER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "constraints/sc_registry.h"

namespace softdb {

/// Background self-healing loop over ScRegistry's repair queue — the
/// automatic version of the §4.3 "off-line repair at light load" step. One
/// dedicated thread drains due tickets via ScRegistry::RepairStep, which
/// supplies exponential backoff + deterministic jitter between attempts and
/// quarantines an SC whose repair keeps failing past the registry's
/// RepairPolicy budget (with an audit record).
///
/// The worker is an optional engine component: SoftDb starts one when
/// EngineOptions::enable_repair_worker is set, and the manual
/// RunMaintenance drain keeps working alongside it (both paths share the
/// registry's ticket bookkeeping, so an SC is never repaired twice).
class RepairWorker {
 public:
  struct Options {
    /// Idle sleep between queue polls when no ticket is due. Kept short:
    /// the wait also wakes early for the earliest ticket deadline.
    std::chrono::milliseconds poll_interval{20};
  };

  /// `on_repaired` (optional) runs on the worker thread after every
  /// successful repair — the engine uses it to re-arm cached plans.
  RepairWorker(ScRegistry* registry, const Catalog* catalog);
  RepairWorker(ScRegistry* registry, const Catalog* catalog, Options options,
               std::function<void()> on_repaired = nullptr);
  ~RepairWorker();

  RepairWorker(const RepairWorker&) = delete;
  RepairWorker& operator=(const RepairWorker&) = delete;

  /// Starts the worker thread (no-op when already running).
  void Start();

  /// Stops and joins the worker thread (no-op when not running). Any
  /// in-flight repair attempt completes first.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Tickets processed (any outcome) since Start — test observability.
  std::uint64_t steps() const {
    return steps_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  ScRegistry* registry_;
  const Catalog* catalog_;
  Options options_;
  std::function<void()> on_repaired_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> steps_{0};
  std::thread thread_;
};

}  // namespace softdb

#endif  // SOFTDB_CONSTRAINTS_REPAIR_WORKER_H_
