#include "storage/column_vector.h"

#include <cmath>

namespace softdb {

namespace {

bool IntBacked(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDate || t == TypeId::kBool;
}

}  // namespace

Status ColumnVector::Append(const Value& v) {
  nulls_.push_back(v.is_null() ? 1 : 0);
  if (IntBacked(type_)) {
    if (v.is_null()) {
      ints_.push_back(0);
    } else if (IntBacked(v.type())) {
      ints_.push_back(v.AsInt64());
    } else if (v.type() == TypeId::kDouble) {
      ints_.push_back(static_cast<std::int64_t>(std::llround(v.AsDouble())));
    } else {
      nulls_.pop_back();
      return Status::TypeMismatch(std::string("cannot store ") +
                                  TypeName(v.type()) + " in " +
                                  TypeName(type_) + " column");
    }
    return Status::OK();
  }
  if (type_ == TypeId::kDouble) {
    if (v.is_null()) {
      doubles_.push_back(0.0);
    } else if (v.type() == TypeId::kString) {
      nulls_.pop_back();
      return Status::TypeMismatch("cannot store VARCHAR in DOUBLE column");
    } else {
      doubles_.push_back(v.NumericValue());
    }
    return Status::OK();
  }
  // VARCHAR
  if (v.is_null()) {
    strings_.emplace_back();
    codes_.push_back(kNullCode);
  } else if (v.type() == TypeId::kString) {
    strings_.push_back(v.AsString());
    codes_.push_back(CodeFor(v.AsString()));
  } else {
    nulls_.pop_back();
    return Status::TypeMismatch(std::string("cannot store ") +
                                TypeName(v.type()) + " in VARCHAR column");
  }
  return Status::OK();
}

Status ColumnVector::Set(std::size_t row, const Value& v) {
  if (row >= nulls_.size()) {
    return Status::OutOfRange("row index out of range");
  }
  nulls_[row] = v.is_null() ? 1 : 0;
  if (v.is_null()) {
    if (type_ == TypeId::kString) codes_[row] = kNullCode;
    return Status::OK();
  }
  if (IntBacked(type_)) {
    if (IntBacked(v.type())) {
      ints_[row] = v.AsInt64();
    } else if (v.type() == TypeId::kDouble) {
      ints_[row] = static_cast<std::int64_t>(std::llround(v.AsDouble()));
    } else {
      return Status::TypeMismatch("type mismatch in Set");
    }
  } else if (type_ == TypeId::kDouble) {
    if (v.type() == TypeId::kString) {
      return Status::TypeMismatch("type mismatch in Set");
    }
    doubles_[row] = v.NumericValue();
  } else {
    if (v.type() != TypeId::kString) {
      return Status::TypeMismatch("type mismatch in Set");
    }
    strings_[row] = v.AsString();
    codes_[row] = CodeFor(strings_[row]);
  }
  return Status::OK();
}

Value ColumnVector::Get(std::size_t row) const {
  if (nulls_[row]) return Value::Null(type_);
  switch (type_) {
    case TypeId::kInt64:
      return Value::Int64(ints_[row]);
    case TypeId::kDate:
      return Value::Date(ints_[row]);
    case TypeId::kBool:
      return Value::Bool(ints_[row] != 0);
    case TypeId::kDouble:
      return Value::Double(doubles_[row]);
    case TypeId::kString:
      return Value::String(strings_[row]);
  }
  return Value::Null(type_);
}

double ColumnVector::GetNumeric(std::size_t row) const {
  if (nulls_[row]) return 0.0;
  if (IntBacked(type_)) return static_cast<double>(ints_[row]);
  if (type_ == TypeId::kDouble) return doubles_[row];
  return 0.0;
}

void ColumnVector::Reserve(std::size_t n) {
  nulls_.reserve(n);
  if (IntBacked(type_)) {
    ints_.reserve(n);
  } else if (type_ == TypeId::kDouble) {
    doubles_.reserve(n);
  } else {
    strings_.reserve(n);
    codes_.reserve(n);
  }
}

std::int32_t ColumnVector::CodeFor(const std::string& s) {
  auto it = dict_map_.find(s);
  if (it != dict_map_.end()) return it->second;
  const auto code = static_cast<std::int32_t>(dict_.size());
  auto inserted = dict_map_.emplace(s, code).first;
  dict_.push_back(&inserted->first);
  return code;
}

std::optional<std::int32_t> ColumnVector::FindCode(
    const std::string& s) const {
  auto it = dict_map_.find(s);
  if (it == dict_map_.end()) return std::nullopt;
  return it->second;
}

}  // namespace softdb
