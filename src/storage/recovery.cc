#include "storage/recovery.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "constraints/fd_sc.h"
#include "constraints/inclusion_sc.h"
#include "constraints/integrity.h"
#include "constraints/join_hole_sc.h"
#include "constraints/linear_correlation_sc.h"
#include "constraints/predicate_sc.h"
#include "constraints/zone_map_sc.h"
#include "engine/softdb.h"
#include "sql/parser.h"
#include "stats/analyzer.h"
#include "storage/catalog.h"

namespace softdb {

namespace {

constexpr char kCheckpointMagic[8] = {'S', 'D', 'B', 'C', 'K', 'P', 'T', '1'};

Status WriteFileDurable(const std::string& path, const std::string& bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("cannot create " + path);
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      ::close(fd);
      return Status::IOError("write failed for " + path);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IOError("fsync failed for " + path);
  }
  if (::close(fd) != 0) return Status::IOError("close failed for " + path);
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed for " + path);
  return bytes;
}

void EncodeHistogram(const EquiDepthHistogram& h, BinWriter* w) {
  w->PutU64(h.total_count());
  w->PutU32(static_cast<std::uint32_t>(h.buckets().size()));
  for (const EquiDepthHistogram::Bucket& b : h.buckets()) {
    w->PutDouble(b.lo);
    w->PutDouble(b.hi);
    w->PutU64(b.count);
    w->PutU64(b.distinct);
  }
}

Result<EquiDepthHistogram> DecodeHistogram(BinReader* r) {
  SOFTDB_ASSIGN_OR_RETURN(std::uint64_t total, r->GetU64());
  SOFTDB_ASSIGN_OR_RETURN(std::uint32_t n, r->GetU32());
  std::vector<EquiDepthHistogram::Bucket> buckets;
  buckets.reserve(std::min<std::uint32_t>(n, 4096));
  for (std::uint32_t i = 0; i < n; ++i) {
    EquiDepthHistogram::Bucket b;
    SOFTDB_ASSIGN_OR_RETURN(b.lo, r->GetDouble());
    SOFTDB_ASSIGN_OR_RETURN(b.hi, r->GetDouble());
    SOFTDB_ASSIGN_OR_RETURN(b.count, r->GetU64());
    SOFTDB_ASSIGN_OR_RETURN(b.distinct, r->GetU64());
    buckets.push_back(b);
  }
  return EquiDepthHistogram::FromParts(std::move(buckets), total);
}

void EncodeColumnList(const std::vector<ColumnIdx>& cols, BinWriter* w) {
  w->PutU32(static_cast<std::uint32_t>(cols.size()));
  for (ColumnIdx c : cols) w->PutU32(c);
}

Result<std::vector<ColumnIdx>> DecodeColumnList(BinReader* r) {
  SOFTDB_ASSIGN_OR_RETURN(std::uint32_t n, r->GetU32());
  std::vector<ColumnIdx> cols;
  cols.reserve(std::min<std::uint32_t>(n, 4096));
  for (std::uint32_t i = 0; i < n; ++i) {
    SOFTDB_ASSIGN_OR_RETURN(ColumnIdx c, r->GetU32());
    cols.push_back(c);
  }
  return cols;
}

/// Reads one u8 and checks it is a valid enumerator (<= `max`). The CRC
/// already rules out corruption; this catches version-skewed files.
Result<std::uint8_t> GetEnumU8(BinReader* r, std::uint8_t max,
                               const char* what) {
  SOFTDB_ASSIGN_OR_RETURN(std::uint8_t v, r->GetU8());
  if (v > max) {
    return Status::DataLoss(StrFormat("invalid %s enum value %u", what, v));
  }
  return v;
}

/// A durable →active transition awaiting its commit record during replay.
struct PendingArm {
  ScState from = ScState::kActive;
  ScState to = ScState::kActive;
  std::uint64_t epoch = 0;
  ScArmMode mode = ScArmMode::kNone;
};

}  // namespace

// ---------------------------------------------------------------------------
// DurabilityManager: record encoders.
// ---------------------------------------------------------------------------

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    std::string dir, std::uint64_t seq, std::size_t sync_every_n) {
  SOFTDB_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> writer,
                          WalWriter::Open(dir, seq, sync_every_n));
  return std::unique_ptr<DurabilityManager>(
      new DurabilityManager(std::move(dir), std::move(writer)));
}

Status DurabilityManager::LogDdl(const std::string& sql) {
  BinWriter w;
  w.PutString(sql);
  return writer_->Append(WalRecordKind::kDdl, w.data());
}

Status DurabilityManager::LogInsert(const std::string& table,
                                    const std::vector<Value>& row) {
  BinWriter w;
  w.PutString(table);
  w.PutU32(static_cast<std::uint32_t>(row.size()));
  for (const Value& v : row) w.PutValue(v);
  return writer_->Append(WalRecordKind::kInsert, w.data());
}

Status DurabilityManager::LogUpdate(const std::string& table, RowId rid,
                                    const std::vector<Value>& new_row) {
  BinWriter w;
  w.PutString(table);
  w.PutU64(rid);
  w.PutU32(static_cast<std::uint32_t>(new_row.size()));
  for (const Value& v : new_row) w.PutValue(v);
  return writer_->Append(WalRecordKind::kUpdate, w.data());
}

Status DurabilityManager::LogDelete(const std::string& table, RowId rid) {
  BinWriter w;
  w.PutString(table);
  w.PutU64(rid);
  return writer_->Append(WalRecordKind::kDelete, w.data());
}

Status DurabilityManager::LogExceptionAst(const std::string& sc_name) {
  BinWriter w;
  w.PutString(sc_name);
  return writer_->Append(WalRecordKind::kExceptionAst, w.data());
}

Status DurabilityManager::LogRegister(const SoftConstraint& sc) {
  BinWriter w;
  SOFTDB_RETURN_IF_ERROR(EncodeSoftConstraint(sc, &w));
  return writer_->Append(WalRecordKind::kScRegister, w.data());
}

Status DurabilityManager::LogDrop(const SoftConstraint& sc) {
  BinWriter w;
  w.PutString(sc.name());
  return writer_->Append(WalRecordKind::kScDrop, w.data());
}

Status DurabilityManager::LogTransition(const SoftConstraint& sc, ScState from,
                                        ScState to, ScArmMode mode) {
  BinWriter w;
  w.PutString(sc.name());
  w.PutU8(static_cast<std::uint8_t>(from));
  w.PutU8(static_cast<std::uint8_t>(to));
  w.PutU64(sc.epoch());
  w.PutU8(static_cast<std::uint8_t>(mode));
  return writer_->Append(WalRecordKind::kScTransition, w.data());
}

Status DurabilityManager::LogArmCommit(const SoftConstraint& sc) {
  BinWriter w;
  w.PutString(sc.name());
  w.PutU64(sc.epoch());
  return writer_->Append(WalRecordKind::kScArmCommit, w.data());
}

Status DurabilityManager::LogAudit(const RepairAuditRecord& record) {
  BinWriter w;
  w.PutString(record.sc_name);
  w.PutU64(record.attempts);
  w.PutString(record.last_error);
  w.PutString(record.action);
  return writer_->Append(WalRecordKind::kScAudit, w.data());
}

// ---------------------------------------------------------------------------
// Soft-constraint serialization.
// ---------------------------------------------------------------------------

Status EncodeSoftConstraint(const SoftConstraint& sc, BinWriter* w) {
  w->PutU8(static_cast<std::uint8_t>(sc.kind()));
  w->PutString(sc.name());
  w->PutString(sc.table());
  w->PutU8(static_cast<std::uint8_t>(sc.state()));
  w->PutU64(sc.epoch());
  w->PutDouble(sc.confidence());
  w->PutU8(static_cast<std::uint8_t>(sc.policy()));
  w->PutU64(sc.verified_version());
  w->PutU64(sc.verified_rows());

  switch (sc.kind()) {
    case ScKind::kLinearCorrelation: {
      const auto& lc = static_cast<const LinearCorrelationSc&>(sc);
      const LinearCorrelationSc::Band band = lc.band();
      w->PutU32(lc.col_a());
      w->PutU32(lc.col_b());
      w->PutDouble(band.k);
      w->PutDouble(band.c);
      w->PutDouble(band.epsilon);
      return Status::OK();
    }
    case ScKind::kColumnOffset: {
      const auto& co = static_cast<const ColumnOffsetSc&>(sc);
      const auto [min_offset, max_offset] = co.offset_range();
      w->PutU32(co.col_x());
      w->PutU32(co.col_y());
      w->PutI64(min_offset);
      w->PutI64(max_offset);
      EncodeHistogram(co.duration_histogram(), w);
      return Status::OK();
    }
    case ScKind::kJoinHole: {
      const auto& jh = static_cast<const JoinHoleSc&>(sc);
      w->PutU32(jh.left_join_col());
      w->PutU32(jh.attr_a());
      w->PutString(jh.right_table());
      w->PutU32(jh.right_join_col());
      w->PutU32(jh.attr_b());
      const std::vector<HoleRect> holes = jh.holes();
      w->PutU32(static_cast<std::uint32_t>(holes.size()));
      for (const HoleRect& h : holes) {
        w->PutDouble(h.a_lo);
        w->PutDouble(h.a_hi);
        w->PutDouble(h.b_lo);
        w->PutDouble(h.b_hi);
      }
      return Status::OK();
    }
    case ScKind::kFunctionalDependency: {
      const auto& fd = static_cast<const FunctionalDependencySc&>(sc);
      EncodeColumnList(fd.determinants(), w);
      EncodeColumnList(fd.dependents(), w);
      return Status::OK();
    }
    case ScKind::kInclusion: {
      const auto& inc = static_cast<const InclusionSc&>(sc);
      EncodeColumnList(inc.child_columns(), w);
      w->PutString(inc.parent_table());
      EncodeColumnList(inc.parent_columns(), w);
      return Status::OK();
    }
    case ScKind::kDomain: {
      const auto& dom = static_cast<const DomainSc&>(sc);
      w->PutU32(dom.column());
      w->PutValue(dom.min_value());
      w->PutValue(dom.max_value());
      return Status::OK();
    }
    case ScKind::kPredicate: {
      const auto& pred = static_cast<const PredicateSc&>(sc);
      // Round-trip through the SQL rendering; decode re-parses and re-binds
      // against the table schema (the softdb_lint catalog-dump idiom).
      w->PutString(pred.expr().ToString());
      return Status::OK();
    }
    case ScKind::kBlockZoneMap: {
      const auto& zm = static_cast<const ZoneMapSc&>(sc);
      w->PutU32(zm.column());
      const std::vector<ZoneMapSc::BlockSma> blocks = zm.SnapshotBlocks();
      w->PutU32(static_cast<std::uint32_t>(blocks.size()));
      for (const ZoneMapSc::BlockSma& b : blocks) {
        w->PutDouble(b.min);
        w->PutDouble(b.max);
        w->PutU8(b.has_value ? 1 : 0);
        w->PutU64(b.null_count);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled SC kind in EncodeSoftConstraint");
}

Result<ScPtr> DecodeSoftConstraint(BinReader* r, const Catalog& catalog) {
  SOFTDB_ASSIGN_OR_RETURN(
      std::uint8_t kind_raw,
      GetEnumU8(r, static_cast<std::uint8_t>(ScKind::kBlockZoneMap),
                "ScKind"));
  const ScKind kind = static_cast<ScKind>(kind_raw);
  SOFTDB_ASSIGN_OR_RETURN(std::string name, r->GetString());
  SOFTDB_ASSIGN_OR_RETURN(std::string table, r->GetString());
  SOFTDB_ASSIGN_OR_RETURN(
      std::uint8_t state_raw,
      GetEnumU8(r, static_cast<std::uint8_t>(ScState::kDropped), "ScState"));
  SOFTDB_ASSIGN_OR_RETURN(std::uint64_t epoch, r->GetU64());
  SOFTDB_ASSIGN_OR_RETURN(double confidence, r->GetDouble());
  SOFTDB_ASSIGN_OR_RETURN(
      std::uint8_t policy_raw,
      GetEnumU8(r, static_cast<std::uint8_t>(ScMaintenancePolicy::kTolerate),
                "ScMaintenancePolicy"));
  SOFTDB_ASSIGN_OR_RETURN(std::uint64_t verified_version, r->GetU64());
  SOFTDB_ASSIGN_OR_RETURN(std::uint64_t verified_rows, r->GetU64());

  ScPtr sc;
  switch (kind) {
    case ScKind::kLinearCorrelation: {
      SOFTDB_ASSIGN_OR_RETURN(ColumnIdx col_a, r->GetU32());
      SOFTDB_ASSIGN_OR_RETURN(ColumnIdx col_b, r->GetU32());
      SOFTDB_ASSIGN_OR_RETURN(double k, r->GetDouble());
      SOFTDB_ASSIGN_OR_RETURN(double c, r->GetDouble());
      SOFTDB_ASSIGN_OR_RETURN(double epsilon, r->GetDouble());
      sc = std::make_unique<LinearCorrelationSc>(name, table, col_a, col_b, k,
                                                 c, epsilon);
      break;
    }
    case ScKind::kColumnOffset: {
      SOFTDB_ASSIGN_OR_RETURN(ColumnIdx col_x, r->GetU32());
      SOFTDB_ASSIGN_OR_RETURN(ColumnIdx col_y, r->GetU32());
      SOFTDB_ASSIGN_OR_RETURN(std::int64_t min_offset, r->GetI64());
      SOFTDB_ASSIGN_OR_RETURN(std::int64_t max_offset, r->GetI64());
      SOFTDB_ASSIGN_OR_RETURN(EquiDepthHistogram hist, DecodeHistogram(r));
      auto co = std::make_unique<ColumnOffsetSc>(name, table, col_x, col_y,
                                                 min_offset, max_offset);
      co->RestoreDurationHistogram(std::move(hist));
      sc = std::move(co);
      break;
    }
    case ScKind::kJoinHole: {
      SOFTDB_ASSIGN_OR_RETURN(ColumnIdx left_join_col, r->GetU32());
      SOFTDB_ASSIGN_OR_RETURN(ColumnIdx attr_a, r->GetU32());
      SOFTDB_ASSIGN_OR_RETURN(std::string right_table, r->GetString());
      SOFTDB_ASSIGN_OR_RETURN(ColumnIdx right_join_col, r->GetU32());
      SOFTDB_ASSIGN_OR_RETURN(ColumnIdx attr_b, r->GetU32());
      SOFTDB_ASSIGN_OR_RETURN(std::uint32_t n, r->GetU32());
      std::vector<HoleRect> holes;
      holes.reserve(std::min<std::uint32_t>(n, 4096));
      for (std::uint32_t i = 0; i < n; ++i) {
        HoleRect h;
        SOFTDB_ASSIGN_OR_RETURN(h.a_lo, r->GetDouble());
        SOFTDB_ASSIGN_OR_RETURN(h.a_hi, r->GetDouble());
        SOFTDB_ASSIGN_OR_RETURN(h.b_lo, r->GetDouble());
        SOFTDB_ASSIGN_OR_RETURN(h.b_hi, r->GetDouble());
        holes.push_back(h);
      }
      sc = std::make_unique<JoinHoleSc>(name, table, left_join_col, attr_a,
                                        right_table, right_join_col, attr_b,
                                        std::move(holes));
      break;
    }
    case ScKind::kFunctionalDependency: {
      SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> det, DecodeColumnList(r));
      SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> dep, DecodeColumnList(r));
      sc = std::make_unique<FunctionalDependencySc>(name, table,
                                                    std::move(det),
                                                    std::move(dep));
      break;
    }
    case ScKind::kInclusion: {
      SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> child_cols,
                              DecodeColumnList(r));
      SOFTDB_ASSIGN_OR_RETURN(std::string parent, r->GetString());
      SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> parent_cols,
                              DecodeColumnList(r));
      sc = std::make_unique<InclusionSc>(name, table, std::move(child_cols),
                                         parent, std::move(parent_cols));
      break;
    }
    case ScKind::kDomain: {
      SOFTDB_ASSIGN_OR_RETURN(ColumnIdx column, r->GetU32());
      SOFTDB_ASSIGN_OR_RETURN(Value min, r->GetValue());
      SOFTDB_ASSIGN_OR_RETURN(Value max, r->GetValue());
      sc = std::make_unique<DomainSc>(name, table, column, std::move(min),
                                      std::move(max));
      break;
    }
    case ScKind::kPredicate: {
      SOFTDB_ASSIGN_OR_RETURN(std::string text, r->GetString());
      SOFTDB_ASSIGN_OR_RETURN(Table * t, catalog.GetTable(table));
      SOFTDB_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpression(text));
      SOFTDB_RETURN_IF_ERROR(expr->Bind(t->schema()));
      sc = std::make_unique<PredicateSc>(name, table, std::move(expr));
      break;
    }
    case ScKind::kBlockZoneMap: {
      SOFTDB_ASSIGN_OR_RETURN(ColumnIdx column, r->GetU32());
      SOFTDB_ASSIGN_OR_RETURN(std::uint32_t n, r->GetU32());
      auto zm = std::make_unique<ZoneMapSc>(name, table, column);
      for (std::uint32_t i = 0; i < n; ++i) {
        ZoneMapSc::BlockSma b;
        SOFTDB_ASSIGN_OR_RETURN(b.min, r->GetDouble());
        SOFTDB_ASSIGN_OR_RETURN(b.max, r->GetDouble());
        SOFTDB_ASSIGN_OR_RETURN(std::uint8_t has_value, r->GetU8());
        b.has_value = has_value != 0;
        SOFTDB_ASSIGN_OR_RETURN(b.null_count, r->GetU64());
        zm->DeclareBlock(i, b);
      }
      sc = std::move(zm);
      break;
    }
  }
  if (sc == nullptr) {
    return Status::DataLoss("undecodable SC kind in checkpoint/WAL");
  }
  sc->RestoreLifecycle(static_cast<ScState>(state_raw), epoch, confidence,
                       static_cast<ScMaintenancePolicy>(policy_raw),
                       verified_version, verified_rows);
  return sc;
}

// ---------------------------------------------------------------------------
// Checkpoint body (engine-state snapshot).
// ---------------------------------------------------------------------------

namespace {

void EncodeTables(const Catalog& catalog, BinWriter* w) {
  const std::vector<std::string> names = catalog.TableNames();
  w->PutU32(static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) {
    const Table* table = catalog.GetTable(name).value();
    w->PutString(table->name());
    const Schema& schema = table->schema();
    w->PutU32(static_cast<std::uint32_t>(schema.NumColumns()));
    for (std::size_t c = 0; c < schema.NumColumns(); ++c) {
      const ColumnDef& def = schema.Column(static_cast<ColumnIdx>(c));
      w->PutString(def.name);
      w->PutU8(static_cast<std::uint8_t>(def.type));
      w->PutU8(def.nullable ? 1 : 0);
    }
    w->PutU64(table->version());
    // Every slot, tombstones included: RowIds are load-bearing (indexes,
    // zone-map blocks, logged UPDATE/DELETE positions), so the restore
    // re-appends dead rows and re-deletes them to reproduce slot layout.
    w->PutU64(table->NumSlots());
    for (RowId rid = 0; rid < table->NumSlots(); ++rid) {
      w->PutU8(table->IsLive(rid) ? 1 : 0);
      const std::vector<Value> row = table->GetRow(rid);
      for (const Value& v : row) w->PutValue(v);
    }
  }
}

void EncodeIndexes(const Catalog& catalog, BinWriter* w) {
  std::vector<const Index*> indexes;
  for (const std::string& name : catalog.TableNames()) {
    for (const Index* idx : catalog.IndexesOn(name)) indexes.push_back(idx);
  }
  w->PutU32(static_cast<std::uint32_t>(indexes.size()));
  for (const Index* idx : indexes) {
    w->PutString(idx->name());
    w->PutString(idx->table()->name());
    w->PutString(idx->table()->schema().Column(idx->column()).name);
  }
}

Status EncodeIntegrityConstraints(const IcRegistry& ics, BinWriter* w) {
  const std::vector<IntegrityConstraint*> all = ics.All();
  w->PutU32(static_cast<std::uint32_t>(all.size()));
  for (const IntegrityConstraint* ic : all) {
    w->PutU8(static_cast<std::uint8_t>(ic->kind()));
    w->PutString(ic->name());
    w->PutString(ic->table());
    w->PutU8(static_cast<std::uint8_t>(ic->mode()));
    switch (ic->kind()) {
      case IcKind::kUnique: {
        const auto* uq = static_cast<const UniqueConstraint*>(ic);
        w->PutU8(uq->is_primary() ? 1 : 0);
        EncodeColumnList(uq->columns(), w);
        break;
      }
      case IcKind::kCheck: {
        const auto* ck = static_cast<const CheckConstraint*>(ic);
        w->PutString(ck->expr().ToString());
        break;
      }
      case IcKind::kForeignKey: {
        const auto* fk = static_cast<const ForeignKeyConstraint*>(ic);
        EncodeColumnList(fk->columns(), w);
        w->PutString(fk->parent_table());
        EncodeColumnList(fk->parent_columns(), w);
        break;
      }
    }
  }
  return Status::OK();
}

void EncodeStats(const StatsCatalog& stats, BinWriter* w) {
  const std::vector<std::string> names = stats.AnalyzedTables();
  w->PutU32(static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) {
    const TableStats* ts = stats.Get(name);
    w->PutString(name);
    w->PutU64(ts->row_count);
    w->PutU64(ts->analyzed_version);
    w->PutU32(static_cast<std::uint32_t>(ts->columns.size()));
    for (const ColumnStats& cs : ts->columns) {
      w->PutU64(cs.row_count);
      w->PutU64(cs.null_count);
      w->PutU64(cs.distinct_count);
      w->PutU8(cs.min.has_value() ? 1 : 0);
      if (cs.min.has_value()) w->PutValue(*cs.min);
      w->PutU8(cs.max.has_value() ? 1 : 0);
      if (cs.max.has_value()) w->PutValue(*cs.max);
      EncodeHistogram(cs.histogram, w);
      w->PutU32(static_cast<std::uint32_t>(cs.mcvs.size()));
      for (const FrequentValue& fv : cs.mcvs) {
        w->PutValue(fv.value);
        w->PutU64(fv.count);
      }
    }
  }
}

Status DecodeTables(BinReader* r, Catalog* catalog) {
  SOFTDB_ASSIGN_OR_RETURN(std::uint32_t ntables, r->GetU32());
  for (std::uint32_t t = 0; t < ntables; ++t) {
    SOFTDB_ASSIGN_OR_RETURN(std::string name, r->GetString());
    SOFTDB_ASSIGN_OR_RETURN(std::uint32_t ncols, r->GetU32());
    Schema schema;
    for (std::uint32_t c = 0; c < ncols; ++c) {
      ColumnDef def;
      SOFTDB_ASSIGN_OR_RETURN(def.name, r->GetString());
      SOFTDB_ASSIGN_OR_RETURN(
          std::uint8_t type_raw,
          GetEnumU8(r, static_cast<std::uint8_t>(TypeId::kBool), "TypeId"));
      def.type = static_cast<TypeId>(type_raw);
      SOFTDB_ASSIGN_OR_RETURN(std::uint8_t nullable, r->GetU8());
      def.nullable = nullable != 0;
      schema.AddColumn(std::move(def));
    }
    SOFTDB_ASSIGN_OR_RETURN(Table * table,
                            catalog->CreateTable(name, std::move(schema)));
    SOFTDB_ASSIGN_OR_RETURN(std::uint64_t version, r->GetU64());
    SOFTDB_ASSIGN_OR_RETURN(std::uint64_t nslots, r->GetU64());
    const std::size_t arity = table->schema().NumColumns();
    for (std::uint64_t rid = 0; rid < nslots; ++rid) {
      SOFTDB_ASSIGN_OR_RETURN(std::uint8_t live, r->GetU8());
      std::vector<Value> row;
      row.reserve(arity);
      for (std::size_t c = 0; c < arity; ++c) {
        SOFTDB_ASSIGN_OR_RETURN(Value v, r->GetValue());
        row.push_back(std::move(v));
      }
      SOFTDB_ASSIGN_OR_RETURN(RowId got, table->Append(row));
      if (got != rid) {
        return Status::DataLoss(
            StrFormat("checkpoint restore: slot %llu of %s landed at %llu",
                      static_cast<unsigned long long>(rid), name.c_str(),
                      static_cast<unsigned long long>(got)));
      }
      if (live == 0) SOFTDB_RETURN_IF_ERROR(table->Delete(got));
    }
    table->RestoreVersion(version);
  }
  return Status::OK();
}

Status DecodeIndexes(BinReader* r, Catalog* catalog) {
  SOFTDB_ASSIGN_OR_RETURN(std::uint32_t n, r->GetU32());
  for (std::uint32_t i = 0; i < n; ++i) {
    SOFTDB_ASSIGN_OR_RETURN(std::string index_name, r->GetString());
    SOFTDB_ASSIGN_OR_RETURN(std::string table_name, r->GetString());
    SOFTDB_ASSIGN_OR_RETURN(std::string column_name, r->GetString());
    SOFTDB_RETURN_IF_ERROR(
        catalog->CreateIndex(index_name, table_name, column_name).status());
  }
  return Status::OK();
}

Status DecodeIntegrityConstraints(BinReader* r, const Catalog& catalog,
                                  IcRegistry* ics) {
  SOFTDB_ASSIGN_OR_RETURN(std::uint32_t n, r->GetU32());
  for (std::uint32_t i = 0; i < n; ++i) {
    SOFTDB_ASSIGN_OR_RETURN(
        std::uint8_t kind_raw,
        GetEnumU8(r, static_cast<std::uint8_t>(IcKind::kForeignKey),
                  "IcKind"));
    SOFTDB_ASSIGN_OR_RETURN(std::string name, r->GetString());
    SOFTDB_ASSIGN_OR_RETURN(std::string table, r->GetString());
    SOFTDB_ASSIGN_OR_RETURN(
        std::uint8_t mode_raw,
        GetEnumU8(r,
                  static_cast<std::uint8_t>(ConstraintMode::kInformational),
                  "ConstraintMode"));
    const ConstraintMode mode = static_cast<ConstraintMode>(mode_raw);
    IcPtr ic;
    switch (static_cast<IcKind>(kind_raw)) {
      case IcKind::kUnique: {
        SOFTDB_ASSIGN_OR_RETURN(std::uint8_t is_primary, r->GetU8());
        SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> cols,
                                DecodeColumnList(r));
        ic = std::make_unique<UniqueConstraint>(name, table, std::move(cols),
                                                is_primary != 0, mode);
        break;
      }
      case IcKind::kCheck: {
        SOFTDB_ASSIGN_OR_RETURN(std::string text, r->GetString());
        SOFTDB_ASSIGN_OR_RETURN(Table * t, catalog.GetTable(table));
        SOFTDB_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpression(text));
        SOFTDB_RETURN_IF_ERROR(expr->Bind(t->schema()));
        ic = std::make_unique<CheckConstraint>(name, table, std::move(expr),
                                               mode);
        break;
      }
      case IcKind::kForeignKey: {
        SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> cols,
                                DecodeColumnList(r));
        SOFTDB_ASSIGN_OR_RETURN(std::string parent, r->GetString());
        SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> parent_cols,
                                DecodeColumnList(r));
        ic = std::make_unique<ForeignKeyConstraint>(name, table,
                                                    std::move(cols), parent,
                                                    std::move(parent_cols),
                                                    mode);
        break;
      }
    }
    SOFTDB_RETURN_IF_ERROR(ics->Add(std::move(ic), catalog));
  }
  return Status::OK();
}

Status DecodeStats(BinReader* r, StatsCatalog* stats) {
  SOFTDB_ASSIGN_OR_RETURN(std::uint32_t n, r->GetU32());
  for (std::uint32_t i = 0; i < n; ++i) {
    SOFTDB_ASSIGN_OR_RETURN(std::string name, r->GetString());
    TableStats ts;
    SOFTDB_ASSIGN_OR_RETURN(ts.row_count, r->GetU64());
    SOFTDB_ASSIGN_OR_RETURN(ts.analyzed_version, r->GetU64());
    SOFTDB_ASSIGN_OR_RETURN(std::uint32_t ncols, r->GetU32());
    for (std::uint32_t c = 0; c < ncols; ++c) {
      ColumnStats cs;
      SOFTDB_ASSIGN_OR_RETURN(cs.row_count, r->GetU64());
      SOFTDB_ASSIGN_OR_RETURN(cs.null_count, r->GetU64());
      SOFTDB_ASSIGN_OR_RETURN(cs.distinct_count, r->GetU64());
      SOFTDB_ASSIGN_OR_RETURN(std::uint8_t has_min, r->GetU8());
      if (has_min != 0) {
        SOFTDB_ASSIGN_OR_RETURN(Value v, r->GetValue());
        cs.min = std::move(v);
      }
      SOFTDB_ASSIGN_OR_RETURN(std::uint8_t has_max, r->GetU8());
      if (has_max != 0) {
        SOFTDB_ASSIGN_OR_RETURN(Value v, r->GetValue());
        cs.max = std::move(v);
      }
      SOFTDB_ASSIGN_OR_RETURN(cs.histogram, DecodeHistogram(r));
      SOFTDB_ASSIGN_OR_RETURN(std::uint32_t nmcvs, r->GetU32());
      for (std::uint32_t m = 0; m < nmcvs; ++m) {
        FrequentValue fv;
        SOFTDB_ASSIGN_OR_RETURN(fv.value, r->GetValue());
        SOFTDB_ASSIGN_OR_RETURN(fv.count, r->GetU64());
        cs.mcvs.push_back(std::move(fv));
      }
      ts.columns.push_back(std::move(cs));
    }
    stats->Restore(name, std::move(ts));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// SoftDb::Checkpoint — the six-step protocol documented in recovery.h.
// ---------------------------------------------------------------------------

Status SoftDb::Checkpoint() {
  SOFTDB_RETURN_IF_ERROR(WalReady());
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "checkpoint requires a WAL (set EngineOptions::wal_dir)");
  }
  const std::string& dir = wal_->dir();
  WalWriter& writer = wal_->writer();

  // Step 1: mark the checkpoint in the log. Everything at or before this
  // marker will be superseded by the snapshot.
  SOFTDB_INJECT_FAULT("wal.checkpoint_begin",
                      Status::IOError("injected fault: wal.checkpoint_begin"));
  SOFTDB_RETURN_IF_ERROR(writer.Append(WalRecordKind::kCheckpointBegin, ""));
  SOFTDB_RETURN_IF_ERROR(writer.Sync());
  const std::uint64_t sealed_seq = writer.seq();

  // Step 2: snapshot the full engine state to checkpoint.tmp. Requires the
  // engine to be quiescent (no concurrent statements or repair-worker
  // activity), per the engine's DML serialization contract.
  BinWriter body;
  body.PutU64(sealed_seq + 1);  // wal_start_seq: replay begins here.
  EncodeTables(catalog_, &body);
  EncodeIndexes(catalog_, &body);
  SOFTDB_RETURN_IF_ERROR(EncodeIntegrityConstraints(ics_, &body));
  body.PutU64(ic_name_counter_);
  EncodeStats(stats_, &body);
  {
    const std::vector<SoftConstraint*> all = scs_.All();
    body.PutU32(static_cast<std::uint32_t>(all.size()));
    for (const SoftConstraint* sc : all) {
      SOFTDB_RETURN_IF_ERROR(EncodeSoftConstraint(*sc, &body));
    }
  }
  {
    const auto tickets = scs_.TicketSnapshot();
    body.PutU32(static_cast<std::uint32_t>(tickets.size()));
    for (const auto& [name, attempts] : tickets) {
      body.PutString(name);
      body.PutU64(attempts);
    }
    const auto audits = scs_.repair_audit();
    body.PutU32(static_cast<std::uint32_t>(audits.size()));
    for (const RepairAuditRecord& rec : audits) {
      body.PutString(rec.sc_name);
      body.PutU64(rec.attempts);
      body.PutString(rec.last_error);
      body.PutString(rec.action);
    }
    const auto uses = scs_.UseSnapshot();
    body.PutU32(static_cast<std::uint32_t>(uses.size()));
    for (const auto& [name, count, benefit] : uses) {
      body.PutString(name);
      body.PutU64(count);
      body.PutDouble(benefit);
    }
  }
  {
    body.PutU32(static_cast<std::uint32_t>(exception_asts_.size()));
    for (const auto& [sc_name, view_name] : exception_asts_) {
      (void)view_name;  // Derived ("exc_" + sc_name); recreated on load.
      body.PutString(sc_name);
    }
  }
  std::string file(kCheckpointMagic, sizeof(kCheckpointMagic));
  const std::uint32_t crc = Crc32(body.data().data(), body.data().size());
  BinWriter crc_bytes;
  crc_bytes.PutU32(crc);
  file += crc_bytes.data();
  file += body.data();
  SOFTDB_RETURN_IF_ERROR(WriteFileDurable(CheckpointTmpPath(dir), file));

  // Step 3: the end marker makes "a complete snapshot exists" durable.
  SOFTDB_INJECT_FAULT("wal.checkpoint_end",
                      Status::IOError("injected fault: wal.checkpoint_end"));
  SOFTDB_RETURN_IF_ERROR(writer.Append(WalRecordKind::kCheckpointEnd, ""));
  SOFTDB_RETURN_IF_ERROR(writer.Sync());

  // Step 4: truncate by rolling to a fresh segment; the snapshot governs
  // everything before it.
  SOFTDB_INJECT_FAULT("wal.truncate",
                      Status::IOError("injected fault: wal.truncate"));
  SOFTDB_RETURN_IF_ERROR(writer.Roll(sealed_seq + 1));

  // Step 5: atomically publish the snapshot.
  std::error_code ec;
  std::filesystem::rename(CheckpointTmpPath(dir), CheckpointPath(dir), ec);
  if (ec) {
    return Status::IOError("checkpoint rename failed: " + ec.message());
  }

  // Step 6: drop superseded segments. Best effort — leftovers are skipped
  // by wal_start_seq on recovery.
  SOFTDB_ASSIGN_OR_RETURN(std::vector<std::uint64_t> seqs,
                          ListWalSegments(dir));
  for (std::uint64_t seq : seqs) {
    if (seq <= sealed_seq) {
      std::filesystem::remove(WalSegmentPath(dir, seq), ec);
    }
  }
  writer.BumpCheckpointCount();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SoftDb::Recover — checkpoint load + epoch-aware tail replay.
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SoftDb>> SoftDb::Recover(const std::string& dir,
                                                EngineOptions options) {
  namespace fs = std::filesystem;

  // Boot an empty engine with the WAL and repair worker off: replay must
  // not re-log records, and background repair must not race the replay.
  EngineOptions boot = options;
  boot.wal_dir.clear();
  boot.enable_repair_worker = false;
  auto db = std::make_unique<SoftDb>(boot);
  db->recovering_ = true;

  WalStats rstats;
  std::error_code ec;
  // An orphaned checkpoint.tmp is an unpublished snapshot from a crash
  // mid-checkpoint; the rename never happened, so it never governs.
  fs::remove(CheckpointTmpPath(dir), ec);

  // Highest epoch durably recorded per SC: recovered epochs must strictly
  // dominate every value a pre-crash plan could have stamped.
  std::map<std::string, std::uint64_t> durable_epoch;

  std::uint64_t start_seq = 0;
  const bool have_checkpoint = fs::exists(CheckpointPath(dir), ec);
  if (have_checkpoint) {
    SOFTDB_ASSIGN_OR_RETURN(std::string file,
                            ReadWholeFile(CheckpointPath(dir)));
    if (file.size() < sizeof(kCheckpointMagic) + 4 ||
        file.compare(0, sizeof(kCheckpointMagic), kCheckpointMagic,
                     sizeof(kCheckpointMagic)) != 0) {
      return Status::DataLoss("checkpoint.bin: bad magic");
    }
    BinReader crc_reader(file.data() + sizeof(kCheckpointMagic), 4);
    SOFTDB_ASSIGN_OR_RETURN(std::uint32_t want_crc, crc_reader.GetU32());
    const char* body = file.data() + sizeof(kCheckpointMagic) + 4;
    const std::size_t body_size = file.size() - sizeof(kCheckpointMagic) - 4;
    if (Crc32(body, body_size) != want_crc) {
      return Status::DataLoss("checkpoint.bin: CRC mismatch");
    }
    BinReader r(body, body_size);
    SOFTDB_ASSIGN_OR_RETURN(start_seq, r.GetU64());
    SOFTDB_RETURN_IF_ERROR(DecodeTables(&r, &db->catalog_));
    SOFTDB_RETURN_IF_ERROR(DecodeIndexes(&r, &db->catalog_));
    SOFTDB_RETURN_IF_ERROR(
        DecodeIntegrityConstraints(&r, db->catalog_, &db->ics_));
    SOFTDB_ASSIGN_OR_RETURN(db->ic_name_counter_, r.GetU64());
    SOFTDB_RETURN_IF_ERROR(DecodeStats(&r, &db->stats_));
    SOFTDB_ASSIGN_OR_RETURN(std::uint32_t nscs, r.GetU32());
    for (std::uint32_t i = 0; i < nscs; ++i) {
      SOFTDB_ASSIGN_OR_RETURN(ScPtr sc, DecodeSoftConstraint(&r, db->catalog_));
      durable_epoch[sc->name()] = sc->epoch();
      SOFTDB_RETURN_IF_ERROR(
          db->scs_.Add(std::move(sc), db->catalog_, /*verify_now=*/false));
    }
    SOFTDB_ASSIGN_OR_RETURN(std::uint32_t ntickets, r.GetU32());
    for (std::uint32_t i = 0; i < ntickets; ++i) {
      SOFTDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
      SOFTDB_ASSIGN_OR_RETURN(std::uint64_t attempts, r.GetU64());
      db->scs_.RestoreTicket(name, static_cast<std::size_t>(attempts));
    }
    SOFTDB_ASSIGN_OR_RETURN(std::uint32_t naudits, r.GetU32());
    for (std::uint32_t i = 0; i < naudits; ++i) {
      RepairAuditRecord rec;
      SOFTDB_ASSIGN_OR_RETURN(rec.sc_name, r.GetString());
      SOFTDB_ASSIGN_OR_RETURN(std::uint64_t attempts, r.GetU64());
      rec.attempts = static_cast<std::size_t>(attempts);
      SOFTDB_ASSIGN_OR_RETURN(rec.last_error, r.GetString());
      SOFTDB_ASSIGN_OR_RETURN(rec.action, r.GetString());
      db->scs_.RestoreAudit(std::move(rec));
    }
    SOFTDB_ASSIGN_OR_RETURN(std::uint32_t nuses, r.GetU32());
    for (std::uint32_t i = 0; i < nuses; ++i) {
      SOFTDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
      SOFTDB_ASSIGN_OR_RETURN(std::uint64_t count, r.GetU64());
      SOFTDB_ASSIGN_OR_RETURN(double benefit, r.GetDouble());
      db->scs_.RestoreUse(name, count, benefit);
    }
    SOFTDB_ASSIGN_OR_RETURN(std::uint32_t nasts, r.GetU32());
    for (std::uint32_t i = 0; i < nasts; ++i) {
      SOFTDB_ASSIGN_OR_RETURN(std::string sc_name, r.GetString());
      SOFTDB_RETURN_IF_ERROR(db->CreateExceptionAst(sc_name).status());
    }
    if (!r.done()) {
      return Status::DataLoss("checkpoint.bin: trailing bytes after body");
    }
    rstats.recovery_checkpoint_loaded = 1;
  }

  SOFTDB_ASSIGN_OR_RETURN(std::vector<std::uint64_t> seqs,
                          ListWalSegments(dir));
  if (!have_checkpoint && seqs.empty()) {
    return Status::NotFound("no WAL segments or checkpoint in " + dir);
  }

  // Replay the tail. Arms (→active transitions carrying a re-derivation
  // mode) are held pending until their commit record; a commit re-runs the
  // re-derivation at the same log position the live engine ran it.
  std::map<std::string, PendingArm> pending;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    const std::uint64_t seq = seqs[i];
    if (seq < start_seq) continue;  // Superseded by the checkpoint.
    const bool is_last = i + 1 == seqs.size();
    SOFTDB_ASSIGN_OR_RETURN(WalSegment segment,
                            ReadWalSegment(WalSegmentPath(dir, seq), is_last));
    rstats.recovery_torn_records_dropped += segment.torn_records_dropped;
    for (const WalRecord& rec : segment.records) {
      ++rstats.recovery_records_replayed;
      BinReader r(rec.payload);
      switch (rec.kind) {
        case WalRecordKind::kDdl: {
          SOFTDB_ASSIGN_OR_RETURN(std::string sql, r.GetString());
          SOFTDB_RETURN_IF_ERROR(db->Execute(sql).status());
          break;
        }
        case WalRecordKind::kInsert: {
          SOFTDB_ASSIGN_OR_RETURN(std::string table, r.GetString());
          SOFTDB_ASSIGN_OR_RETURN(std::uint32_t n, r.GetU32());
          std::vector<Value> row;
          row.reserve(n);
          for (std::uint32_t c = 0; c < n; ++c) {
            SOFTDB_ASSIGN_OR_RETURN(Value v, r.GetValue());
            row.push_back(std::move(v));
          }
          SOFTDB_RETURN_IF_ERROR(db->InsertRow(table, row));
          break;
        }
        case WalRecordKind::kUpdate: {
          SOFTDB_ASSIGN_OR_RETURN(std::string table_name, r.GetString());
          SOFTDB_ASSIGN_OR_RETURN(RowId rid, r.GetU64());
          SOFTDB_ASSIGN_OR_RETURN(std::uint32_t n, r.GetU32());
          std::vector<Value> new_row;
          new_row.reserve(n);
          for (std::uint32_t c = 0; c < n; ++c) {
            SOFTDB_ASSIGN_OR_RETURN(Value v, r.GetValue());
            new_row.push_back(std::move(v));
          }
          SOFTDB_ASSIGN_OR_RETURN(Table * table,
                                  db->catalog_.GetTable(table_name));
          const std::vector<Value> old_row = table->GetRow(rid);
          SOFTDB_RETURN_IF_ERROR(
              db->ApplyUpdateRow(table, rid, old_row, new_row, nullptr));
          break;
        }
        case WalRecordKind::kDelete: {
          SOFTDB_ASSIGN_OR_RETURN(std::string table_name, r.GetString());
          SOFTDB_ASSIGN_OR_RETURN(RowId rid, r.GetU64());
          SOFTDB_ASSIGN_OR_RETURN(Table * table,
                                  db->catalog_.GetTable(table_name));
          const std::vector<Value> old_row = table->GetRow(rid);
          SOFTDB_RETURN_IF_ERROR(db->ApplyDeleteRow(table, rid, old_row));
          break;
        }
        case WalRecordKind::kScRegister: {
          SOFTDB_ASSIGN_OR_RETURN(ScPtr sc,
                                  DecodeSoftConstraint(&r, db->catalog_));
          durable_epoch[sc->name()] =
              std::max(durable_epoch[sc->name()], sc->epoch());
          SOFTDB_RETURN_IF_ERROR(
              db->scs_.Add(std::move(sc), db->catalog_, /*verify_now=*/false));
          break;
        }
        case WalRecordKind::kScDrop: {
          SOFTDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
          SOFTDB_RETURN_IF_ERROR(db->scs_.Drop(name));
          pending.erase(name);
          break;
        }
        case WalRecordKind::kScTransition: {
          SOFTDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
          SOFTDB_ASSIGN_OR_RETURN(
              std::uint8_t from_raw,
              GetEnumU8(&r, static_cast<std::uint8_t>(ScState::kDropped),
                        "ScState"));
          SOFTDB_ASSIGN_OR_RETURN(
              std::uint8_t to_raw,
              GetEnumU8(&r, static_cast<std::uint8_t>(ScState::kDropped),
                        "ScState"));
          SOFTDB_ASSIGN_OR_RETURN(std::uint64_t epoch, r.GetU64());
          SOFTDB_ASSIGN_OR_RETURN(
              std::uint8_t mode_raw,
              GetEnumU8(&r, static_cast<std::uint8_t>(ScArmMode::kVerify),
                        "ScArmMode"));
          durable_epoch[name] = std::max(durable_epoch[name], epoch);
          const ScState to = static_cast<ScState>(to_raw);
          const ScArmMode mode = static_cast<ScArmMode>(mode_raw);
          if (mode != ScArmMode::kNone) {
            pending[name] = PendingArm{static_cast<ScState>(from_raw), to,
                                       epoch, mode};
            break;
          }
          SoftConstraint* sc = db->scs_.Find(name);
          if (sc == nullptr) break;  // Dropped later in the log.
          sc->RestoreLifecycle(to, epoch, sc->confidence(), sc->policy(),
                               sc->verified_version(), sc->verified_rows());
          if (to == ScState::kQuarantined) {
            db->scs_.DropTicket(name);  // Live engine popped the ticket.
          } else if (to == ScState::kRepairQueued) {
            db->scs_.RestoreTicket(name, 0);
          }
          break;
        }
        case WalRecordKind::kScArmCommit: {
          SOFTDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
          SOFTDB_ASSIGN_OR_RETURN(std::uint64_t epoch, r.GetU64());
          durable_epoch[name] = std::max(durable_epoch[name], epoch);
          const auto it = pending.find(name);
          if (it == pending.end()) break;  // Stray commit: nothing pending.
          const PendingArm arm = it->second;
          pending.erase(it);
          SoftConstraint* sc = db->scs_.Find(name);
          if (sc == nullptr) break;
          // Re-derive parameters exactly as the live engine did: an exact
          // repair refits them, a verify recounts with the existing ones.
          Status st = arm.mode == ScArmMode::kRepairFull
                          ? sc->RepairFull(db->catalog_)
                          : sc->Verify(db->catalog_).status();
          if (!st.ok()) {
            // Replay could not reproduce the arm — recover it disarmed and
            // queued for revalidation rather than trusting the log blind.
            sc->set_state(ScState::kRepairQueued);
            db->scs_.RestoreTicket(name, 0);
            break;
          }
          sc->RestoreLifecycle(arm.to, epoch, sc->confidence(), sc->policy(),
                               sc->verified_version(), sc->verified_rows());
          if (arm.mode == ScArmMode::kRepairFull) db->scs_.DropTicket(name);
          break;
        }
        case WalRecordKind::kScAudit: {
          RepairAuditRecord rec;
          SOFTDB_ASSIGN_OR_RETURN(rec.sc_name, r.GetString());
          SOFTDB_ASSIGN_OR_RETURN(std::uint64_t attempts, r.GetU64());
          rec.attempts = static_cast<std::size_t>(attempts);
          SOFTDB_ASSIGN_OR_RETURN(rec.last_error, r.GetString());
          SOFTDB_ASSIGN_OR_RETURN(rec.action, r.GetString());
          db->scs_.RestoreAudit(std::move(rec));
          break;
        }
        case WalRecordKind::kExceptionAst: {
          SOFTDB_ASSIGN_OR_RETURN(std::string sc_name, r.GetString());
          SOFTDB_RETURN_IF_ERROR(db->CreateExceptionAst(sc_name).status());
          break;
        }
        case WalRecordKind::kCheckpointBegin:
        case WalRecordKind::kCheckpointEnd:
          break;  // Protocol markers; the published snapshot governs.
      }
    }
  }

  // Dangling arms: a →active transition whose commit never became durable
  // is NOT an arm. The SC recovers disarmed, queued for revalidation — an
  // overturned SC must never resurrect on the strength of half a protocol.
  for (const auto& [name, arm] : pending) {
    SoftConstraint* sc = db->scs_.Find(name);
    if (sc == nullptr || sc->state() == ScState::kDropped) continue;
    if (arm.to == ScState::kActive) {
      sc->set_state(ScState::kRepairQueued);
      db->scs_.RestoreTicket(name, 0);
    }
  }

  // Strict epoch domination: every recovered SC ends one epoch past the
  // highest durably-recorded value, so no pre-crash plan stamp (all of
  // which were at or below a durable epoch) can pass the PR 8 certificate
  // epoch fast path against recovered state.
  for (SoftConstraint* sc : db->scs_.All()) {
    std::uint64_t floor_epoch = sc->epoch();
    const auto it = durable_epoch.find(sc->name());
    if (it != durable_epoch.end()) {
      floor_epoch = std::max(floor_epoch, it->second);
    }
    sc->RestoreLifecycle(sc->state(), floor_epoch + 1, sc->confidence(),
                         sc->policy(), sc->verified_version(),
                         sc->verified_rows());
  }

  // Reopen the log past every existing segment, fold the recovery counters
  // into the fresh writer, and compact the replayed tail into a new
  // checkpoint so the next recovery starts from here.
  std::uint64_t max_seq = start_seq;
  if (!seqs.empty()) max_seq = std::max(max_seq, seqs.back());
  db->recovering_ = false;
  const std::size_t sync_every_n =
      options.wal_sync_every_n == 0 ? 1 : options.wal_sync_every_n;
  SOFTDB_ASSIGN_OR_RETURN(
      db->wal_, DurabilityManager::Open(dir, max_seq + 1, sync_every_n));
  db->wal_->writer().AdoptRecoveryStats(rstats);
  db->options_.wal_dir = dir;
  db->options_.enable_repair_worker = options.enable_repair_worker;
  db->scs_.SetWalLog(db->wal_.get());
  SOFTDB_RETURN_IF_ERROR(db->Checkpoint());
  if (options.enable_repair_worker) db->StartRepairWorker();
  return db;
}

}  // namespace softdb
