#ifndef SOFTDB_STORAGE_INDEX_H_
#define SOFTDB_STORAGE_INDEX_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/table.h"

namespace softdb {

/// An ordered secondary index over one column, backed by a sorted entry
/// vector (a flattened B+-tree leaf level — sufficient for an in-memory
/// engine, and gives the optimizer the index-range-scan access path the
/// paper's predicate-introduction rewrite targets).
class Index {
 public:
  Index(std::string name, const Table* table, ColumnIdx column);

  const std::string& name() const { return name_; }
  const Table* table() const { return table_; }
  ColumnIdx column() const { return column_; }
  std::size_t NumEntries() const { return entries_.size(); }

  /// Rebuilds from the current table contents (NULL keys are skipped, as in
  /// typical single-column B-tree indexes).
  void Rebuild();

  /// Inserts one entry (called on table append).
  Status Insert(const Value& key, RowId row);

  /// Removes the entry for `row` with key `key` (called on delete/update).
  Status Remove(const Value& key, RowId row);

  /// Collects live row ids with keys in the given range. Unset bounds are
  /// unbounded. Results are in key order.
  std::vector<RowId> RangeScan(const std::optional<Value>& lo, bool lo_inclusive,
                               const std::optional<Value>& hi,
                               bool hi_inclusive) const;

  /// Entries that a range scan would touch, for page-cost accounting
  /// (leaf pages = entries / kRowsPerPage).
  std::size_t RangeSize(const std::optional<Value>& lo, bool lo_inclusive,
                        const std::optional<Value>& hi,
                        bool hi_inclusive) const;

  /// Smallest / largest key currently indexed — the Sybase-style min/max
  /// "soft constraint" of §2 falls out of the index for free.
  std::optional<Value> MinKey() const;
  std::optional<Value> MaxKey() const;

  /// Expected data pages fetched per entry when scanning in key order — a
  /// clustering measure like PostgreSQL's correlation statistic. 1/64 for
  /// a perfectly clustered table (each page yields kRowsPerPage entries
  /// before moving on), approaching 1.0 for random placement. The planner
  /// multiplies this by the matching row count for its data-page cost.
  double PageSwitchDensity() const;

 private:
  struct Entry {
    Value key;
    RowId row;
  };

  // Index into entries_ of the first entry >= (or > if !inclusive) `key`.
  std::size_t LowerBound(const Value& key, bool inclusive) const;

  std::string name_;
  const Table* table_;
  ColumnIdx column_;
  std::vector<Entry> entries_;
  // PageSwitchDensity cache, keyed by entry count.
  mutable double density_cache_ = 1.0;
  mutable std::size_t density_cache_size_ = ~std::size_t{0};
};

}  // namespace softdb

#endif  // SOFTDB_STORAGE_INDEX_H_
