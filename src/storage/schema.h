#ifndef SOFTDB_STORAGE_SCHEMA_H_
#define SOFTDB_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace softdb {

/// One column of a table or of an intermediate result. `table` is the
/// qualifier used for name resolution ("purchase.ship_date"); intermediate
/// results keep the qualifier of the column's origin so multi-table
/// expressions bind unambiguously.
struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kInt64;
  bool nullable = true;
  std::string table;  // Qualifier; may be empty for computed columns.

  /// "table.name" when qualified, else "name".
  std::string QualifiedName() const {
    return table.empty() ? name : table + "." + name;
  }
};

/// Ordered list of columns with name lookup. Schemas are value types: plan
/// nodes copy and extend them freely.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  std::size_t NumColumns() const { return columns_.size(); }
  const ColumnDef& Column(ColumnIdx i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  void AddColumn(ColumnDef def) { columns_.push_back(std::move(def)); }

  /// Resolves `name`, optionally qualified as "table.column". Errors when
  /// the name is unknown or ambiguous across qualifiers.
  Result<ColumnIdx> Resolve(const std::string& name) const;

  /// Index of the exact (table, name) pair, if present.
  std::optional<ColumnIdx> Find(const std::string& table,
                                const std::string& name) const;

  /// Concatenation used by joins: left columns then right columns.
  static Schema Concat(const Schema& left, const Schema& right);

  /// "(<table.col TYPE>, ...)" for EXPLAIN output and errors.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace softdb

#endif  // SOFTDB_STORAGE_SCHEMA_H_
