#ifndef SOFTDB_STORAGE_WAL_H_
#define SOFTDB_STORAGE_WAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace softdb {

/// Binary write-ahead log (DESIGN.md §14). One log directory holds
/// `wal.<seq>.log` segment files plus (after a checkpoint) `checkpoint.bin`.
/// Each segment starts with an 8-byte magic + u64 sequence number, followed
/// by length-prefixed, CRC32-checksummed records:
///
///   u32 length | u32 crc32 | u8 kind | payload[length-1]
///
/// `length` counts the kind byte plus payload; the CRC covers the same
/// span. All integers are little-endian (the engine targets x86-64; the
/// encoder writes bytes explicitly so the format is endian-stable anyway).

/// Record kinds. Values are part of the on-disk format — append only.
enum class WalRecordKind : std::uint8_t {
  kDdl = 1,              // Raw SQL: CREATE TABLE/INDEX, DROP TABLE, ANALYZE.
  kInsert = 2,           // table, coerced row image (one record per row).
  kUpdate = 3,           // table, rid, full new row image.
  kDelete = 4,           // table, rid.
  kScRegister = 5,       // Full SC blob: kind, lifecycle, parameters.
  kScDrop = 6,           // SC name.
  kScTransition = 7,     // {name, from, to, epoch, arm mode}.
  kScArmCommit = 8,      // {name, epoch}: commits a preceding →active arm.
  kScAudit = 9,          // Repair audit record.
  kCheckpointBegin = 10,  // Checkpoint protocol marker.
  kCheckpointEnd = 11,    // Checkpoint snapshot durable.
  kExceptionAst = 12,     // Exception AST registered for {sc_name}.
};

const char* WalRecordKindName(WalRecordKind kind);

/// One decoded log record.
struct WalRecord {
  WalRecordKind kind;
  std::string payload;
};

/// Cumulative WAL activity counters (surfaced through ExecStats/EXPLAIN and
/// bench_wal). Copied out under the writer mutex — plain fields.
struct WalStats {
  std::uint64_t records_appended = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t fsyncs = 0;
  /// Largest group of records a single fsync made durable (group commit).
  std::uint64_t max_commit_batch = 0;
  std::uint64_t checkpoints = 0;
  // Recovery-side counters (filled by Recover, then carried by the
  // reopened writer so EXPLAIN can surface them).
  std::uint64_t recovery_checkpoint_loaded = 0;  // 0 or 1.
  std::uint64_t recovery_records_replayed = 0;
  std::uint64_t recovery_torn_records_dropped = 0;
};

/// CRC-32 (IEEE, reflected — the zlib polynomial) over `data`.
std::uint32_t Crc32(const void* data, std::size_t size);

/// Little-endian byte-sink used by the WAL and checkpoint encoders.
class BinWriter {
 public:
  void PutU8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(const std::string& s);
  void PutValue(const Value& v);

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian reader over a byte span. Every getter
/// fails with Status::DataLoss on underrun — corrupt length fields must
/// surface as typed errors, never as out-of-bounds reads.
class BinReader {
 public:
  BinReader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit BinReader(const std::string& s) : BinReader(s.data(), s.size()) {}

  Result<std::uint8_t> GetU8();
  Result<std::uint32_t> GetU32();
  Result<std::uint64_t> GetU64();
  Result<std::int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<Value> GetValue();

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Appender for one WAL directory. Appends are serialized by an internal
/// mutex; group commit fsyncs the file once every `sync_every_n` records
/// (1 = every record). Failpoint sites: `wal.append` fires before the
/// write, `wal.fsync` before the fsync — see DESIGN.md §9/§14.
class WalWriter {
 public:
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens segment `wal.<seq>.log` in `dir` for appending, creating it
  /// (and the directory) if needed. Fails if the segment already exists.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                 std::uint64_t seq,
                                                 std::size_t sync_every_n);

  /// Appends one record and applies the group-commit policy. On any
  /// failure (failpoint or real I/O error) the record is NOT durable and
  /// the statement that triggered it must fail.
  Status Append(WalRecordKind kind, const std::string& payload);

  /// Forces an fsync of everything appended so far (checkpoint barriers).
  Status Sync();

  /// Closes the current segment (after a final fsync) and starts
  /// `wal.<new_seq>.log`. Used by the checkpoint protocol to truncate.
  Status Roll(std::uint64_t new_seq);

  std::uint64_t seq() const { return seq_; }
  WalStats stats() const;
  /// Merges recovery counters into this writer's stats (used when a
  /// recovered engine re-opens its log).
  void AdoptRecoveryStats(const WalStats& recovery);
  void BumpCheckpointCount();

 private:
  WalWriter(std::string dir, std::size_t sync_every_n)
      : dir_(std::move(dir)), sync_every_n_(sync_every_n) {}

  Status OpenSegmentLocked(std::uint64_t seq);
  Status SyncLocked();
  /// Writes the group-commit buffer to the segment fd (no fsync).
  Status FlushLocked();

  std::string dir_;
  std::size_t sync_every_n_;
  mutable std::mutex mu_;
  int fd_ = -1;
  std::uint64_t seq_ = 0;
  std::uint64_t unsynced_records_ = 0;
  /// Framed-but-unwritten records. Unsynced records carry no durability
  /// promise, so batching them here until the group-commit fsync (or a
  /// size threshold) is crash-equivalent to writing each one eagerly.
  std::string buffer_;
  WalStats stats_;
};

/// Decoded contents of one WAL segment file.
struct WalSegment {
  std::uint64_t seq = 0;
  std::vector<WalRecord> records;
  std::uint64_t torn_records_dropped = 0;
};

/// Path helpers.
std::string WalSegmentPath(const std::string& dir, std::uint64_t seq);
std::string CheckpointPath(const std::string& dir);
std::string CheckpointTmpPath(const std::string& dir);

/// Sequence numbers of the `wal.<seq>.log` segments in `dir`, ascending.
/// Missing directory → empty list.
Result<std::vector<std::uint64_t>> ListWalSegments(const std::string& dir);

/// Reads and CRC-verifies one segment. Torn-tail tolerance applies only
/// when `is_last_segment`: a final record whose frame is incomplete, whose
/// length runs past EOF, or whose CRC fails *at exact end-of-file* is
/// dropped (counted in torn_records_dropped). The same damage anywhere
/// else — or any damage in a non-last segment — is Status::DataLoss.
Result<WalSegment> ReadWalSegment(const std::string& path,
                                  bool is_last_segment);

}  // namespace softdb

#endif  // SOFTDB_STORAGE_WAL_H_
