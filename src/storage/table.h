#ifndef SOFTDB_STORAGE_TABLE_H_
#define SOFTDB_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/column_vector.h"
#include "storage/schema.h"

namespace softdb {

/// Rows per simulated disk page. The cost model and the "pages scanned"
/// experiment metrics are defined in these units; the value approximates a
/// 8KB page of ~64 hundred-byte tuples.
constexpr std::size_t kRowsPerPage = 64;

/// Rows per zone-map block (the granularity of the kBlockZoneMap soft
/// constraint's per-block min/max/null-count SMAs, and of scan block
/// skipping). Equal to the vectorized engine's batch capacity ON PURPOSE:
/// serial batch scans produce 1024-row-aligned batches, so block-skip
/// decisions map 1:1 onto batches; morsel scans may straddle blocks and
/// drop rows of skipped blocks from their selection vectors instead.
constexpr std::size_t kZoneMapBlockRows = 1024;

/// An in-memory, column-oriented table. Deletes are tombstones; updates are
/// in place. Row ids are append positions and are never reused, so they can
/// be stored in indexes and exception tables safely.
class Table {
 public:
  Table(std::string name, Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Total row slots including tombstones (== next RowId).
  std::size_t NumSlots() const { return live_.size(); }
  /// Live (visible) rows.
  std::size_t NumRows() const { return live_count_; }
  /// Pages occupied by the table under the simulated page model.
  std::size_t NumPages() const {
    return (NumSlots() + kRowsPerPage - 1) / kRowsPerPage;
  }

  bool IsLive(RowId row) const { return row < live_.size() && live_[row]; }

  /// Appends a full row; `values` must match the schema arity and types.
  Result<RowId> Append(const std::vector<Value>& values);

  /// Reads one cell. `row` must be a valid slot (live or not).
  Value Get(RowId row, ColumnIdx col) const { return columns_[col].Get(row); }

  /// Materializes a full row.
  std::vector<Value> GetRow(RowId row) const;

  /// Overwrites one cell of a live row.
  Status Set(RowId row, ColumnIdx col, const Value& v);

  /// Tombstones a row. Idempotent on already-deleted rows.
  Status Delete(RowId row);

  /// Raw column access for miners, ANALYZE, and vectorized scans.
  const ColumnVector& ColumnData(ColumnIdx col) const { return columns_[col]; }

  /// Raw tombstone bitmap (1 = live), indexed by RowId. The vectorized scan
  /// builds its selection vector from a span of this without per-row calls.
  const std::uint8_t* LiveBitmap() const { return live_.data(); }

  void Reserve(std::size_t rows);

  /// Monotone version bumped on every mutation; statistics and soft
  /// constraints record the version they were computed at so staleness
  /// (the paper's "currency") is measurable.
  std::uint64_t version() const { return version_; }
  /// Mutations since a recorded version — the currency input of §3.3.
  std::uint64_t MutationsSince(std::uint64_t v) const { return version_ - v; }

  /// Crash recovery only: pins the mutation counter to the checkpointed
  /// value after the row images have been re-appended, so SC/stats currency
  /// baselines captured pre-crash stay meaningful. `v` must not move the
  /// counter backwards past mutations already applied to this instance.
  void RestoreVersion(std::uint64_t v) {
    if (v > version_) version_ = v;
  }

 private:
  std::string name_;
  Schema schema_;
  std::vector<ColumnVector> columns_;
  std::vector<std::uint8_t> live_;
  std::size_t live_count_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace softdb

#endif  // SOFTDB_STORAGE_TABLE_H_
