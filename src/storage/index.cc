#include "storage/index.h"

#include <algorithm>

namespace softdb {

namespace {

// Key ordering; same-typed keys only (enforced by the column type).
bool KeyLess(const Value& a, const Value& b) {
  auto cmp = a.Compare(b);
  return cmp.ok() && *cmp < 0;
}

}  // namespace

Index::Index(std::string name, const Table* table, ColumnIdx column)
    : name_(std::move(name)), table_(table), column_(column) {
  Rebuild();
}

void Index::Rebuild() {
  entries_.clear();
  entries_.reserve(table_->NumRows());
  const ColumnVector& col = table_->ColumnData(column_);
  for (RowId row = 0; row < table_->NumSlots(); ++row) {
    if (!table_->IsLive(row) || col.IsNull(row)) continue;
    entries_.push_back(Entry{col.Get(row), row});
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              auto cmp = a.key.Compare(b.key);
              if (cmp.ok() && *cmp != 0) return *cmp < 0;
              return a.row < b.row;
            });
}

Status Index::Insert(const Value& key, RowId row) {
  if (key.is_null()) return Status::OK();
  Entry e{key, row};
  auto it = std::upper_bound(entries_.begin(), entries_.end(), e,
                             [](const Entry& a, const Entry& b) {
                               auto cmp = a.key.Compare(b.key);
                               if (cmp.ok() && *cmp != 0) return *cmp < 0;
                               return a.row < b.row;
                             });
  entries_.insert(it, std::move(e));
  return Status::OK();
}

Status Index::Remove(const Value& key, RowId row) {
  if (key.is_null()) return Status::OK();
  std::size_t i = LowerBound(key, /*inclusive=*/true);
  for (; i < entries_.size(); ++i) {
    auto cmp = entries_[i].key.Compare(key);
    if (!cmp.ok() || *cmp != 0) break;
    if (entries_[i].row == row) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      return Status::OK();
    }
  }
  return Status::NotFound("index entry not found");
}

std::size_t Index::LowerBound(const Value& key, bool inclusive) const {
  if (inclusive) {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, const Value& k) { return KeyLess(e.key, k); });
    return static_cast<std::size_t>(it - entries_.begin());
  }
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), key,
      [](const Value& k, const Entry& e) { return KeyLess(k, e.key); });
  return static_cast<std::size_t>(it - entries_.begin());
}

std::vector<RowId> Index::RangeScan(const std::optional<Value>& lo,
                                    bool lo_inclusive,
                                    const std::optional<Value>& hi,
                                    bool hi_inclusive) const {
  std::size_t begin = lo.has_value() ? LowerBound(*lo, lo_inclusive) : 0;
  std::size_t end = entries_.size();
  if (hi.has_value()) {
    // First entry strictly past the upper bound.
    end = LowerBound(*hi, /*inclusive=*/!hi_inclusive);
  }
  std::vector<RowId> out;
  if (end > begin) out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    if (table_->IsLive(entries_[i].row)) out.push_back(entries_[i].row);
  }
  return out;
}

std::size_t Index::RangeSize(const std::optional<Value>& lo, bool lo_inclusive,
                             const std::optional<Value>& hi,
                             bool hi_inclusive) const {
  std::size_t begin = lo.has_value() ? LowerBound(*lo, lo_inclusive) : 0;
  std::size_t end = entries_.size();
  if (hi.has_value()) end = LowerBound(*hi, /*inclusive=*/!hi_inclusive);
  return end > begin ? end - begin : 0;
}

double Index::PageSwitchDensity() const {
  if (density_cache_size_ == entries_.size()) return density_cache_;
  if (entries_.empty()) return 1.0;
  std::uint64_t switches = 1;  // First entry always fetches a page.
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].row / kRowsPerPage != entries_[i - 1].row / kRowsPerPage) {
      ++switches;
    }
  }
  density_cache_ =
      static_cast<double>(switches) / static_cast<double>(entries_.size());
  density_cache_size_ = entries_.size();
  return density_cache_;
}

std::optional<Value> Index::MinKey() const {
  for (const Entry& e : entries_) {
    if (table_->IsLive(e.row)) return e.key;
  }
  return std::nullopt;
}

std::optional<Value> Index::MaxKey() const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (table_->IsLive(it->row)) return it->key;
  }
  return std::nullopt;
}

}  // namespace softdb
