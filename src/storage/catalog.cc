#include "storage/catalog.h"

#include <mutex>

#include "common/str_util.h"

namespace softdb {

namespace {

// Lock-free lookup helper shared by the public methods; callers hold mu_.
Table* FindTableIn(const std::map<std::string, std::unique_ptr<Table>>& tables,
                   const std::string& key) {
  auto it = tables.find(key);
  return it == tables.end() ? nullptr : it->second.get();
}

}  // namespace

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  const std::string key = ToLower(name);
  std::unique_lock<std::shared_mutex> lk(mu_);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  // Stamp every column with its table qualifier for name resolution.
  std::vector<ColumnDef> cols = schema.columns();
  for (ColumnDef& c : cols) c.table = key;
  auto table = std::make_unique<Table>(key, Schema(std::move(cols)));
  Table* ptr = table.get();
  tables_[key] = std::move(table);
  return ptr;
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  const std::string key = ToLower(name);
  std::shared_lock<std::shared_mutex> lk(mu_);
  Table* table = FindTableIn(tables_, key);
  if (table == nullptr) return Status::NotFound("unknown table: " + name);
  return table;
}

bool Catalog::HasTable(const std::string& name) const {
  const std::string key = ToLower(name);
  std::shared_lock<std::shared_mutex> lk(mu_);
  return tables_.count(key) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  const std::string key = ToLower(name);
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = tables_.find(key);
  if (it == tables_.end()) return Status::NotFound("unknown table: " + name);
  // Park the objects in the graveyard: cached plans and SCs may still hold
  // raw pointers, and evicting those is the plan cache's job, not ours.
  auto idx_it = indexes_.find(key);
  if (idx_it != indexes_.end()) {
    for (auto& idx : idx_it->second) {
      dropped_indexes_.push_back(std::move(idx));
    }
    indexes_.erase(idx_it);
  }
  dropped_tables_.push_back(std::move(it->second));
  tables_.erase(it);
  return Status::OK();
}

Result<Index*> Catalog::CreateIndex(const std::string& index_name,
                                    const std::string& table_name,
                                    const std::string& column_name) {
  const std::string table_key = ToLower(table_name);
  std::unique_lock<std::shared_mutex> lk(mu_);
  Table* table = FindTableIn(tables_, table_key);
  if (table == nullptr) {
    return Status::NotFound("unknown table: " + table_name);
  }
  SOFTDB_ASSIGN_OR_RETURN(ColumnIdx col, table->schema().Resolve(column_name));
  for (const auto& idx : indexes_[table_key]) {
    if (ToLower(idx->name()) == ToLower(index_name)) {
      return Status::AlreadyExists("index already exists: " + index_name);
    }
  }
  auto index = std::make_unique<Index>(ToLower(index_name), table, col);
  Index* ptr = index.get();
  indexes_[table_key].push_back(std::move(index));
  return ptr;
}

std::vector<Index*> Catalog::IndexesOn(const std::string& table_name) const {
  const std::string key = ToLower(table_name);
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<Index*> out;
  auto it = indexes_.find(key);
  if (it == indexes_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& idx : it->second) out.push_back(idx.get());
  return out;
}

Index* Catalog::FindIndex(const std::string& table_name,
                          const std::string& column_name) const {
  const std::string key = ToLower(table_name);
  std::shared_lock<std::shared_mutex> lk(mu_);
  Table* table = FindTableIn(tables_, key);
  if (table == nullptr) return nullptr;
  auto col = table->schema().Resolve(column_name);
  if (!col.ok()) return nullptr;
  auto it = indexes_.find(key);
  if (it == indexes_.end()) return nullptr;
  for (const auto& idx : it->second) {
    if (idx->column() == *col) return idx.get();
  }
  return nullptr;
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

void Catalog::NotifyInsert(const Table* table, RowId row) {
  // Shared lock: only the map structure needs protecting; mutating the
  // index itself is covered by the per-table single-writer contract.
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = indexes_.find(table->name());
  if (it == indexes_.end()) return;
  for (const auto& idx : it->second) {
    (void)idx->Insert(table->Get(row, idx->column()), row);
  }
}

void Catalog::NotifyDelete(const Table* table, RowId row,
                           const std::vector<Value>& old_values) {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = indexes_.find(table->name());
  if (it == indexes_.end()) return;
  for (const auto& idx : it->second) {
    (void)idx->Remove(old_values[idx->column()], row);
  }
}

void Catalog::NotifyUpdate(const Table* table, RowId row, ColumnIdx col,
                           const Value& old_value, const Value& new_value) {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = indexes_.find(table->name());
  if (it == indexes_.end()) return;
  for (const auto& idx : it->second) {
    if (idx->column() != col) continue;
    (void)idx->Remove(old_value, row);
    (void)idx->Insert(new_value, row);
  }
}

}  // namespace softdb
