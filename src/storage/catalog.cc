#include "storage/catalog.h"

#include "common/str_util.h"

namespace softdb {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  const std::string key = ToLower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  // Stamp every column with its table qualifier for name resolution.
  std::vector<ColumnDef> cols = schema.columns();
  for (ColumnDef& c : cols) c.table = key;
  auto table = std::make_unique<Table>(key, Schema(std::move(cols)));
  Table* ptr = table.get();
  tables_[key] = std::move(table);
  return ptr;
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("unknown table: " + name);
  }
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  const std::string key = ToLower(name);
  if (!tables_.count(key)) return Status::NotFound("unknown table: " + name);
  indexes_.erase(key);
  tables_.erase(key);
  return Status::OK();
}

Result<Index*> Catalog::CreateIndex(const std::string& index_name,
                                    const std::string& table_name,
                                    const std::string& column_name) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, GetTable(table_name));
  SOFTDB_ASSIGN_OR_RETURN(ColumnIdx col, table->schema().Resolve(column_name));
  for (const auto& idx : indexes_[ToLower(table_name)]) {
    if (ToLower(idx->name()) == ToLower(index_name)) {
      return Status::AlreadyExists("index already exists: " + index_name);
    }
  }
  auto index = std::make_unique<Index>(ToLower(index_name), table, col);
  Index* ptr = index.get();
  indexes_[ToLower(table_name)].push_back(std::move(index));
  return ptr;
}

std::vector<Index*> Catalog::IndexesOn(const std::string& table_name) const {
  std::vector<Index*> out;
  auto it = indexes_.find(ToLower(table_name));
  if (it == indexes_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& idx : it->second) out.push_back(idx.get());
  return out;
}

Index* Catalog::FindIndex(const std::string& table_name,
                          const std::string& column_name) const {
  auto table = GetTable(table_name);
  if (!table.ok()) return nullptr;
  auto col = (*table)->schema().Resolve(column_name);
  if (!col.ok()) return nullptr;
  for (Index* idx : IndexesOn(table_name)) {
    if (idx->column() == *col) return idx;
  }
  return nullptr;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

void Catalog::NotifyInsert(const Table* table, RowId row) {
  auto it = indexes_.find(table->name());
  if (it == indexes_.end()) return;
  for (const auto& idx : it->second) {
    (void)idx->Insert(table->Get(row, idx->column()), row);
  }
}

void Catalog::NotifyDelete(const Table* table, RowId row,
                           const std::vector<Value>& old_values) {
  auto it = indexes_.find(table->name());
  if (it == indexes_.end()) return;
  for (const auto& idx : it->second) {
    (void)idx->Remove(old_values[idx->column()], row);
  }
}

void Catalog::NotifyUpdate(const Table* table, RowId row, ColumnIdx col,
                           const Value& old_value, const Value& new_value) {
  auto it = indexes_.find(table->name());
  if (it == indexes_.end()) return;
  for (const auto& idx : it->second) {
    if (idx->column() != col) continue;
    (void)idx->Remove(old_value, row);
    (void)idx->Insert(new_value, row);
  }
}

}  // namespace softdb
