#ifndef SOFTDB_STORAGE_RECOVERY_H_
#define SOFTDB_STORAGE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "common/value.h"
#include "constraints/sc_registry.h"
#include "storage/wal.h"

namespace softdb {

class Catalog;

/// Durability manager for one SoftDb (DESIGN.md §14): owns the WAL writer
/// and implements the ScRegistry's durability hook. The engine logs DML as
/// row images (replayed through the full maintenance pipeline, which
/// re-derives every DML-driven SC transition deterministically) and DDL as
/// raw SQL; the registry logs only what replay cannot re-derive —
/// registrations, drops, repair/verify arms (transition + commit pair),
/// quarantines, and audit entries.
///
/// Write protocol is apply-in-memory-first, then log: a statement is
/// acknowledged only when both succeeded, and a log failure surfaces as an
/// error that leaves the engine's durable image behind its memory image —
/// the process must be treated as crashed and recovered.
///
/// The checkpoint protocol (SoftDb::Checkpoint, defined in recovery.cc):
///   1. append kCheckpointBegin + fsync          [site wal.checkpoint_begin]
///   2. write + fsync checkpoint.tmp (full snapshot, wal_start_seq = S+1)
///   3. append kCheckpointEnd + fsync            [site wal.checkpoint_end]
///   4. roll the writer to segment S+1           [site wal.truncate]
///   5. rename checkpoint.tmp -> checkpoint.bin
///   6. delete segments <= S
/// A crash at any step is consistent: until the rename lands, the previous
/// checkpoint (or none) governs and the old segments are still intact;
/// after it, replay starts at wal_start_seq and skips older segments.
class DurabilityManager final : public ScWalLog {
 public:
  /// Opens (or creates) the log directory and starts segment `seq`.
  static Result<std::unique_ptr<DurabilityManager>> Open(
      std::string dir, std::uint64_t seq, std::size_t sync_every_n);

  // Engine-side records; one LogInsert/LogUpdate/LogDelete per affected
  // row, carrying the coerced row image.
  Status LogDdl(const std::string& sql);
  Status LogInsert(const std::string& table, const std::vector<Value>& row);
  Status LogUpdate(const std::string& table, RowId rid,
                   const std::vector<Value>& new_row);
  Status LogDelete(const std::string& table, RowId rid);
  Status LogExceptionAst(const std::string& sc_name);

  // ScWalLog (registry-side records).
  Status LogRegister(const SoftConstraint& sc) override;
  Status LogDrop(const SoftConstraint& sc) override;
  Status LogTransition(const SoftConstraint& sc, ScState from, ScState to,
                       ScArmMode mode) override;
  Status LogArmCommit(const SoftConstraint& sc) override;
  Status LogAudit(const RepairAuditRecord& record) override;

  Status Sync() { return writer_->Sync(); }
  WalStats stats() const { return writer_->stats(); }
  WalWriter& writer() { return *writer_; }
  const std::string& dir() const { return dir_; }

 private:
  DurabilityManager(std::string dir, std::unique_ptr<WalWriter> writer)
      : dir_(std::move(dir)), writer_(std::move(writer)) {}

  std::string dir_;
  std::unique_ptr<WalWriter> writer_;
};

/// Serializes one SC — kind tag, name, tables, full lifecycle, and derived
/// parameters (envelopes, offsets, holes, domains, zone-map SMAs, duration
/// histograms, predicate text) — into `w`.
Status EncodeSoftConstraint(const SoftConstraint& sc, BinWriter* w);

/// Rebuilds an SC from `r`, lifecycle included (no epoch bump, no
/// verification). PredicateSc expressions round-trip through their SQL
/// rendering and are re-bound against `catalog`, so the SC's table must
/// exist before its constraints are decoded.
Result<ScPtr> DecodeSoftConstraint(BinReader* r, const Catalog& catalog);

}  // namespace softdb

#endif  // SOFTDB_STORAGE_RECOVERY_H_
