#include "storage/schema.h"

#include "common/str_util.h"

namespace softdb {

Result<ColumnIdx> Schema::Resolve(const std::string& name) const {
  std::string qualifier;
  std::string column = name;
  const std::size_t dot = name.find('.');
  if (dot != std::string::npos) {
    qualifier = ToLower(name.substr(0, dot));
    column = name.substr(dot + 1);
  }
  const std::string column_lower = ToLower(column);

  std::optional<ColumnIdx> found;
  for (ColumnIdx i = 0; i < columns_.size(); ++i) {
    const ColumnDef& def = columns_[i];
    if (ToLower(def.name) != column_lower) continue;
    if (!qualifier.empty() && ToLower(def.table) != qualifier) continue;
    if (found.has_value()) {
      return Status::BindError("ambiguous column reference: " + name);
    }
    found = i;
  }
  if (!found.has_value()) {
    return Status::BindError("unknown column: " + name + " in schema " +
                             ToString());
  }
  return *found;
}

std::optional<ColumnIdx> Schema::Find(const std::string& table,
                                      const std::string& name) const {
  const std::string t = ToLower(table);
  const std::string n = ToLower(name);
  for (ColumnIdx i = 0; i < columns_.size(); ++i) {
    if (ToLower(columns_[i].table) == t && ToLower(columns_[i].name) == n) {
      return i;
    }
  }
  return std::nullopt;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<ColumnDef> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const ColumnDef& c : columns_) {
    parts.push_back(c.QualifiedName() + " " + TypeName(c.type));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace softdb
