#ifndef SOFTDB_STORAGE_CATALOG_H_
#define SOFTDB_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/index.h"
#include "storage/table.h"

namespace softdb {

/// System catalog: owns tables and their indexes. Table names are
/// case-insensitive. Constraint and soft-constraint metadata live in their
/// own registries (src/constraints) that reference catalog objects, the way
/// DB2's SYSCAT splits packed-data from metadata.
///
/// Thread-safety (DESIGN.md §8): the name→object maps are guarded by a
/// shared mutex (lookups shared, CREATE/DROP exclusive). Dropped tables and
/// indexes move to a graveyard instead of being freed, so raw Table*/Index*
/// pointers held by concurrent sessions (cached plans, SC objects) stay
/// valid for the catalog's lifetime. The *contents* of a Table are not
/// locked here — the engine's per-table single-writer contract covers data,
/// index entries, and stats (readers of a table being mutated see a plain
/// data race; softdb requires DML to a table be externally serialized with
/// queries that read it, like a latch-free bulk path).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Errors if the name exists.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Looks up a table by (case-insensitive) name.
  Result<Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Drops a table and all its indexes.
  Status DropTable(const std::string& name);

  /// Creates and builds an index over `table.column_name`.
  Result<Index*> CreateIndex(const std::string& index_name,
                             const std::string& table_name,
                             const std::string& column_name);

  /// All indexes on `table_name` (empty if none).
  std::vector<Index*> IndexesOn(const std::string& table_name) const;

  /// The index on exactly `table_name.column_name` if one exists.
  Index* FindIndex(const std::string& table_name,
                   const std::string& column_name) const;

  /// Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

  /// Propagates a row insert to all indexes of the table.
  void NotifyInsert(const Table* table, RowId row);
  /// Propagates a row delete to all indexes of the table.
  void NotifyDelete(const Table* table, RowId row,
                    const std::vector<Value>& old_values);
  /// Propagates a cell update to the affected index (if any).
  void NotifyUpdate(const Table* table, RowId row, ColumnIdx col,
                    const Value& old_value, const Value& new_value);

 private:
  mutable std::shared_mutex mu_;  // Guards the maps + graveyards.
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::vector<std::unique_ptr<Index>>> indexes_;
  // DROP TABLE parks objects here instead of freeing them: sessions may
  // still hold raw pointers from GetTable/IndexesOn.
  std::vector<std::unique_ptr<Table>> dropped_tables_;
  std::vector<std::unique_ptr<Index>> dropped_indexes_;
};

}  // namespace softdb

#endif  // SOFTDB_STORAGE_CATALOG_H_
