#include "storage/table.h"

#include "common/str_util.h"

namespace softdb {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.NumColumns());
  for (const ColumnDef& def : schema_.columns()) {
    columns_.emplace_back(def.type);
  }
}

Result<RowId> Table::Append(const std::vector<Value>& values) {
  if (values.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(StrFormat(
        "table %s expects %zu values, got %zu", name_.c_str(),
        schema_.NumColumns(), values.size()));
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null() && !schema_.Column(i).nullable) {
      return Status::ConstraintViolation(
          "NULL in non-nullable column " + schema_.Column(i).name);
    }
  }
  // Validate all cells before mutating any column so a type error cannot
  // leave columns with unequal lengths.
  for (std::size_t i = 0; i < values.size(); ++i) {
    ColumnVector probe(columns_[i].type());
    SOFTDB_RETURN_IF_ERROR(probe.Append(values[i]));
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    Status st = columns_[i].Append(values[i]);
    (void)st;  // Cannot fail: validated above.
  }
  live_.push_back(1);
  ++live_count_;
  ++version_;
  return static_cast<RowId>(live_.size() - 1);
}

std::vector<Value> Table::GetRow(RowId row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const ColumnVector& col : columns_) {
    out.push_back(col.Get(row));
  }
  return out;
}

Status Table::Set(RowId row, ColumnIdx col, const Value& v) {
  if (!IsLive(row)) return Status::NotFound("row not live");
  if (col >= columns_.size()) return Status::OutOfRange("bad column index");
  if (v.is_null() && !schema_.Column(col).nullable) {
    return Status::ConstraintViolation("NULL in non-nullable column " +
                                       schema_.Column(col).name);
  }
  SOFTDB_RETURN_IF_ERROR(columns_[col].Set(row, v));
  ++version_;
  return Status::OK();
}

Status Table::Delete(RowId row) {
  if (row >= live_.size()) return Status::OutOfRange("bad row id");
  if (live_[row]) {
    live_[row] = 0;
    --live_count_;
    ++version_;
  }
  return Status::OK();
}

void Table::Reserve(std::size_t rows) {
  live_.reserve(rows);
  for (ColumnVector& col : columns_) col.Reserve(rows);
}

}  // namespace softdb
