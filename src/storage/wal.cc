#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <memory>

#include "common/failpoint.h"

namespace softdb {

namespace fs = std::filesystem;

namespace {

constexpr char kSegmentMagic[8] = {'S', 'D', 'B', 'W', 'A', 'L', '0', '1'};
// Per-record frame header: u32 length + u32 crc.
constexpr std::size_t kFrameHeader = 8;
// Sanity bound on one record; a corrupt length field larger than this is
// treated like any other length overrun.
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;
// Unsynced frames accumulate in a user-space buffer (group commit); once
// it grows past this, it is written out early to bound memory.
constexpr std::size_t kFlushBytes = 256u << 10;

const std::uint32_t* Crc32Table() {
  static const auto table = [] {
    static std::array<std::uint32_t, 256> t;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t.data();
  }();
  return table;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

std::uint32_t Crc32Feed(std::uint32_t crc, const void* data,
                        std::size_t size) {
  const std::uint32_t* table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace

const char* WalRecordKindName(WalRecordKind kind) {
  switch (kind) {
    case WalRecordKind::kDdl:
      return "ddl";
    case WalRecordKind::kInsert:
      return "insert";
    case WalRecordKind::kUpdate:
      return "update";
    case WalRecordKind::kDelete:
      return "delete";
    case WalRecordKind::kScRegister:
      return "sc-register";
    case WalRecordKind::kScDrop:
      return "sc-drop";
    case WalRecordKind::kScTransition:
      return "sc-transition";
    case WalRecordKind::kScArmCommit:
      return "sc-arm-commit";
    case WalRecordKind::kScAudit:
      return "sc-audit";
    case WalRecordKind::kCheckpointBegin:
      return "checkpoint-begin";
    case WalRecordKind::kCheckpointEnd:
      return "checkpoint-end";
    case WalRecordKind::kExceptionAst:
      return "exception-ast";
  }
  return "unknown";
}

std::uint32_t Crc32(const void* data, std::size_t size) {
  return Crc32Feed(0xFFFFFFFFu, data, size) ^ 0xFFFFFFFFu;
}

void BinWriter::PutU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void BinWriter::PutU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void BinWriter::PutDouble(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinWriter::PutString(const std::string& s) {
  PutU32(static_cast<std::uint32_t>(s.size()));
  out_.append(s);
}

void BinWriter::PutValue(const Value& v) {
  PutU8(static_cast<std::uint8_t>(v.type()));
  PutU8(v.is_null() ? 1 : 0);
  if (v.is_null()) return;
  switch (v.type()) {
    case TypeId::kInt64:
    case TypeId::kDate:
      PutI64(v.AsInt64());
      break;
    case TypeId::kBool:
      PutI64(v.AsBool() ? 1 : 0);
      break;
    case TypeId::kDouble:
      PutDouble(v.AsDouble());
      break;
    case TypeId::kString:
      PutString(v.AsString());
      break;
  }
}

Result<std::uint8_t> BinReader::GetU8() {
  if (remaining() < 1) return Status::DataLoss("wal decode: u8 underrun");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

Result<std::uint32_t> BinReader::GetU32() {
  if (remaining() < 4) return Status::DataLoss("wal decode: u32 underrun");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<std::uint64_t> BinReader::GetU64() {
  if (remaining() < 8) return Status::DataLoss("wal decode: u64 underrun");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::int64_t> BinReader::GetI64() {
  SOFTDB_ASSIGN_OR_RETURN(std::uint64_t v, GetU64());
  return static_cast<std::int64_t>(v);
}

Result<double> BinReader::GetDouble() {
  SOFTDB_ASSIGN_OR_RETURN(std::uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinReader::GetString() {
  SOFTDB_ASSIGN_OR_RETURN(std::uint32_t len, GetU32());
  if (remaining() < len) return Status::DataLoss("wal decode: string underrun");
  std::string s(data_ + pos_, len);
  pos_ += len;
  return s;
}

Result<Value> BinReader::GetValue() {
  SOFTDB_ASSIGN_OR_RETURN(std::uint8_t type_tag, GetU8());
  SOFTDB_ASSIGN_OR_RETURN(std::uint8_t null_flag, GetU8());
  if (type_tag > static_cast<std::uint8_t>(TypeId::kBool)) {
    return Status::DataLoss("wal decode: bad value type tag");
  }
  const TypeId type = static_cast<TypeId>(type_tag);
  if (null_flag != 0) return Value::Null(type);
  switch (type) {
    case TypeId::kInt64: {
      SOFTDB_ASSIGN_OR_RETURN(std::int64_t v, GetI64());
      return Value::Int64(v);
    }
    case TypeId::kDate: {
      SOFTDB_ASSIGN_OR_RETURN(std::int64_t v, GetI64());
      return Value::Date(v);
    }
    case TypeId::kBool: {
      SOFTDB_ASSIGN_OR_RETURN(std::int64_t v, GetI64());
      return Value::Bool(v != 0);
    }
    case TypeId::kDouble: {
      SOFTDB_ASSIGN_OR_RETURN(double v, GetDouble());
      return Value::Double(v);
    }
    case TypeId::kString: {
      SOFTDB_ASSIGN_OR_RETURN(std::string v, GetString());
      return Value::String(std::move(v));
    }
  }
  return Status::DataLoss("wal decode: bad value type tag");
}

std::string WalSegmentPath(const std::string& dir, std::uint64_t seq) {
  return dir + "/wal." + std::to_string(seq) + ".log";
}

std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.bin";
}

std::string CheckpointTmpPath(const std::string& dir) {
  return dir + "/checkpoint.tmp";
}

WalWriter::~WalWriter() {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ >= 0) {
    // Best-effort durability of the tail on clean shutdown.
    if (!buffer_.empty()) {
      (void)::write(fd_, buffer_.data(), buffer_.size());
    }
    (void)::fsync(fd_);
    (void)::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                   std::uint64_t seq,
                                                   std::size_t sync_every_n) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create wal dir " + dir + ": " +
                           ec.message());
  }
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(dir, sync_every_n == 0 ? 1 : sync_every_n));
  std::lock_guard<std::mutex> lk(writer->mu_);
  SOFTDB_RETURN_IF_ERROR(writer->OpenSegmentLocked(seq));
  return writer;
}

Status WalWriter::OpenSegmentLocked(std::uint64_t seq) {
  const std::string path = WalSegmentPath(dir_, seq);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot create wal segment", path));
  }
  std::string bytes(kSegmentMagic, sizeof(kSegmentMagic));
  BinWriter seq_writer;
  seq_writer.PutU64(seq);
  bytes += seq_writer.Take();
  if (::write(fd, bytes.data(), bytes.size()) !=
      static_cast<ssize_t>(bytes.size())) {
    const Status st =
        Status::IOError(ErrnoMessage("cannot write wal header", path));
    ::close(fd);
    return st;
  }
  fd_ = fd;
  seq_ = seq;
  unsynced_records_ = 0;
  return Status::OK();
}

Status WalWriter::Append(WalRecordKind kind, const std::string& payload) {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return Status::IOError("wal writer is closed");
  SOFTDB_INJECT_FAULT("wal.append",
                      Status::IOError("injected fault: wal.append"));
  // Frame the record straight into the group-commit buffer: unsynced
  // records were never durable anyway, so deferring the write() to the
  // fsync (or the size threshold) costs nothing in crash semantics and
  // saves a syscall per record.
  const char kind_byte = static_cast<char>(kind);
  const auto length = static_cast<std::uint32_t>(1 + payload.size());
  std::uint32_t crc = Crc32Feed(0xFFFFFFFFu, &kind_byte, 1);
  crc = Crc32Feed(crc, payload.data(), payload.size()) ^ 0xFFFFFFFFu;
  buffer_.reserve(buffer_.size() + kFrameHeader + length);
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((length >> (8 * i)) & 0xFF));
  }
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  buffer_.push_back(kind_byte);
  buffer_.append(payload);
  stats_.records_appended += 1;
  stats_.bytes_appended += kFrameHeader + length;
  unsynced_records_ += 1;
  if (unsynced_records_ >= sync_every_n_) {
    SOFTDB_RETURN_IF_ERROR(SyncLocked());
  } else if (buffer_.size() >= kFlushBytes) {
    SOFTDB_RETURN_IF_ERROR(FlushLocked());
  }
  return Status::OK();
}

Status WalWriter::FlushLocked() {
  if (buffer_.empty()) return Status::OK();
  if (::write(fd_, buffer_.data(), buffer_.size()) !=
      static_cast<ssize_t>(buffer_.size())) {
    return Status::IOError(
        ErrnoMessage("wal append failed", WalSegmentPath(dir_, seq_)));
  }
  buffer_.clear();
  return Status::OK();
}

Status WalWriter::SyncLocked() {
  if (unsynced_records_ == 0) return Status::OK();
  SOFTDB_RETURN_IF_ERROR(FlushLocked());
  SOFTDB_INJECT_FAULT("wal.fsync",
                      Status::IOError("injected fault: wal.fsync"));
  if (::fsync(fd_) != 0) {
    return Status::IOError(
        ErrnoMessage("wal fsync failed", WalSegmentPath(dir_, seq_)));
  }
  stats_.fsyncs += 1;
  if (unsynced_records_ > stats_.max_commit_batch) {
    stats_.max_commit_batch = unsynced_records_;
  }
  unsynced_records_ = 0;
  return Status::OK();
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return Status::IOError("wal writer is closed");
  return SyncLocked();
}

Status WalWriter::Roll(std::uint64_t new_seq) {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return Status::IOError("wal writer is closed");
  SOFTDB_RETURN_IF_ERROR(SyncLocked());
  ::close(fd_);
  fd_ = -1;
  return OpenSegmentLocked(new_seq);
}

WalStats WalWriter::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void WalWriter::AdoptRecoveryStats(const WalStats& recovery) {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.recovery_checkpoint_loaded = recovery.recovery_checkpoint_loaded;
  stats_.recovery_records_replayed = recovery.recovery_records_replayed;
  stats_.recovery_torn_records_dropped =
      recovery.recovery_torn_records_dropped;
}

void WalWriter::BumpCheckpointCount() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.checkpoints += 1;
}

Result<std::vector<std::uint64_t>> ListWalSegments(const std::string& dir) {
  std::vector<std::uint64_t> seqs;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return seqs;  // Missing directory: nothing to recover.
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= 8 || name.compare(0, 4, "wal.") != 0 ||
        name.compare(name.size() - 4, 4, ".log") != 0) {
      continue;
    }
    const std::string digits = name.substr(4, name.size() - 8);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    seqs.push_back(std::stoull(digits));
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

Result<WalSegment> ReadWalSegment(const std::string& path,
                                  bool is_last_segment) {
  std::string bytes;
  {
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (ec) {
      return Status::IOError("cannot stat wal segment " + path + ": " +
                             ec.message());
    }
    bytes.resize(size);
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open wal segment", path));
    }
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::read(fd, bytes.data() + off, bytes.size() - off);
      if (n <= 0) {
        ::close(fd);
        return Status::IOError(ErrnoMessage("cannot read wal segment", path));
      }
      off += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }

  WalSegment segment;
  const std::size_t header_size = sizeof(kSegmentMagic) + 8;
  if (bytes.size() < header_size) {
    // A crash between segment creation and header write leaves a short
    // file; tolerable only as the very tail of the log.
    if (is_last_segment &&
        std::memcmp(bytes.data(), kSegmentMagic,
                    std::min(bytes.size(), sizeof(kSegmentMagic))) == 0) {
      segment.torn_records_dropped = bytes.empty() ? 0 : 1;
      return segment;
    }
    return Status::DataLoss("wal segment truncated header: " + path);
  }
  if (std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Status::DataLoss("wal segment bad magic: " + path);
  }
  {
    BinReader reader(bytes.data() + sizeof(kSegmentMagic), 8);
    segment.seq = *reader.GetU64();
  }

  std::size_t pos = header_size;
  while (pos < bytes.size()) {
    const std::size_t left = bytes.size() - pos;
    const bool tail_ok = is_last_segment;
    if (left < kFrameHeader) {
      if (tail_ok) {
        segment.torn_records_dropped += 1;
        return segment;
      }
      return Status::DataLoss("wal record frame truncated mid-log: " + path);
    }
    BinReader frame(bytes.data() + pos, kFrameHeader);
    const std::uint32_t length = *frame.GetU32();
    const std::uint32_t crc = *frame.GetU32();
    if (length == 0 || length > kMaxRecordBytes) {
      if (tail_ok && pos + kFrameHeader + length >= bytes.size()) {
        segment.torn_records_dropped += 1;
        return segment;
      }
      return Status::DataLoss("wal record bad length mid-log: " + path);
    }
    if (left - kFrameHeader < length) {
      if (tail_ok) {
        segment.torn_records_dropped += 1;
        return segment;
      }
      return Status::DataLoss("wal record body truncated mid-log: " + path);
    }
    const char* body = bytes.data() + pos + kFrameHeader;
    const bool record_ends_at_eof = pos + kFrameHeader + length == bytes.size();
    if (Crc32(body, length) != crc) {
      // A bad CRC is only tolerable for the final record of the final
      // segment (a torn write of the tail); anywhere else durable data
      // has been corrupted and replay must not guess past it.
      if (tail_ok && record_ends_at_eof) {
        segment.torn_records_dropped += 1;
        return segment;
      }
      return Status::DataLoss("wal record crc mismatch mid-log: " + path);
    }
    WalRecord record;
    record.kind = static_cast<WalRecordKind>(static_cast<std::uint8_t>(*body));
    record.payload.assign(body + 1, length - 1);
    segment.records.push_back(std::move(record));
    pos += kFrameHeader + length;
  }
  return segment;
}

}  // namespace softdb
