#ifndef SOFTDB_STORAGE_COLUMN_VECTOR_H_
#define SOFTDB_STORAGE_COLUMN_VECTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace softdb {

/// Typed columnar storage for one column. Int-like types (BIGINT, DATE,
/// BOOLEAN) share an int64 buffer, DOUBLE has its own, VARCHAR owns strings.
/// NULLs are a parallel byte-bitmap. This is the storage layout the page
/// cost model is defined over: a "page" is a fixed run of consecutive rows.
class ColumnVector {
 public:
  explicit ColumnVector(TypeId type) : type_(type) {}

  TypeId type() const { return type_; }
  std::size_t size() const { return nulls_.size(); }

  /// Appends a value; the value's family must match the column type
  /// (int-like widens into the int64 buffer, numeric literals coerce).
  Status Append(const Value& v);

  /// Replaces the value at `row`.
  Status Set(std::size_t row, const Value& v);

  /// Materializes the value at `row` as a Value of the column's type.
  Value Get(std::size_t row) const;

  bool IsNull(std::size_t row) const { return nulls_[row] != 0; }

  /// Direct typed access for hot loops (no Value boxing). Only valid for
  /// the matching physical buffer and non-null rows.
  std::int64_t GetInt64(std::size_t row) const { return ints_[row]; }
  double GetDouble(std::size_t row) const { return doubles_[row]; }
  const std::string& GetString(std::size_t row) const { return strings_[row]; }

  /// Numeric view used by miners and the estimator (0.0 for strings/null).
  double GetNumeric(std::size_t row) const;

  /// Raw buffer spans for the vectorized engine: a ColumnBatch views a
  /// contiguous run of rows directly in these buffers, so batch predicate
  /// evaluation never boxes a Value. Only the buffer matching the column's
  /// physical layout is populated (int-like types share `RawInts`).
  const std::int64_t* RawInts() const { return ints_.data(); }
  const double* RawDoubles() const { return doubles_.data(); }
  const std::string* RawStrings() const { return strings_.data(); }
  const std::uint8_t* RawNulls() const { return nulls_.data(); }

  /// Dictionary encoding (VARCHAR columns only). Every distinct string is
  /// interned into an append-only per-column dictionary; `codes_[row]` is
  /// the row's dictionary code (kNullCode for NULL rows). `strings_` stays
  /// the authoritative materialized buffer — codes are a parallel index
  /// that lets equality/IN kernels and hash joins compare int32 ids
  /// instead of std::string. Codes are assigned in first-appearance order
  /// and never reused, so code equality ⇔ string equality (codes carry no
  /// ordering information; range predicates must use the strings).
  static constexpr std::int32_t kNullCode = -1;
  const std::int32_t* RawCodes() const { return codes_.data(); }
  std::int32_t GetCode(std::size_t row) const { return codes_[row]; }
  /// Code for `s` if some row ever held it (absent ⇒ no current row equals
  /// `s`, since codes are never garbage-collected the reverse can admit
  /// stale codes — sound for equality kernels, which compare per row).
  std::optional<std::int32_t> FindCode(const std::string& s) const;
  std::size_t DictSize() const { return dict_.size(); }
  /// The interned string for `code` (valid for the column's lifetime).
  const std::string& DictString(std::int32_t code) const {
    return *dict_[static_cast<std::size_t>(code)];
  }

  void Reserve(std::size_t n);

 private:
  /// Interns `s`, returning its (possibly new) dictionary code.
  std::int32_t CodeFor(const std::string& s);

  TypeId type_;
  std::vector<std::int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<std::uint8_t> nulls_;
  // Dictionary layer (VARCHAR only): per-row codes plus the intern table.
  // dict_ points at the map's keys (unordered_map nodes are stable).
  std::vector<std::int32_t> codes_;
  std::vector<const std::string*> dict_;
  std::unordered_map<std::string, std::int32_t> dict_map_;
};

}  // namespace softdb

#endif  // SOFTDB_STORAGE_COLUMN_VECTOR_H_
