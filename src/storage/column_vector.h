#ifndef SOFTDB_STORAGE_COLUMN_VECTOR_H_
#define SOFTDB_STORAGE_COLUMN_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace softdb {

/// Typed columnar storage for one column. Int-like types (BIGINT, DATE,
/// BOOLEAN) share an int64 buffer, DOUBLE has its own, VARCHAR owns strings.
/// NULLs are a parallel byte-bitmap. This is the storage layout the page
/// cost model is defined over: a "page" is a fixed run of consecutive rows.
class ColumnVector {
 public:
  explicit ColumnVector(TypeId type) : type_(type) {}

  TypeId type() const { return type_; }
  std::size_t size() const { return nulls_.size(); }

  /// Appends a value; the value's family must match the column type
  /// (int-like widens into the int64 buffer, numeric literals coerce).
  Status Append(const Value& v);

  /// Replaces the value at `row`.
  Status Set(std::size_t row, const Value& v);

  /// Materializes the value at `row` as a Value of the column's type.
  Value Get(std::size_t row) const;

  bool IsNull(std::size_t row) const { return nulls_[row] != 0; }

  /// Direct typed access for hot loops (no Value boxing). Only valid for
  /// the matching physical buffer and non-null rows.
  std::int64_t GetInt64(std::size_t row) const { return ints_[row]; }
  double GetDouble(std::size_t row) const { return doubles_[row]; }
  const std::string& GetString(std::size_t row) const { return strings_[row]; }

  /// Numeric view used by miners and the estimator (0.0 for strings/null).
  double GetNumeric(std::size_t row) const;

  /// Raw buffer spans for the vectorized engine: a ColumnBatch views a
  /// contiguous run of rows directly in these buffers, so batch predicate
  /// evaluation never boxes a Value. Only the buffer matching the column's
  /// physical layout is populated (int-like types share `RawInts`).
  const std::int64_t* RawInts() const { return ints_.data(); }
  const double* RawDoubles() const { return doubles_.data(); }
  const std::string* RawStrings() const { return strings_.data(); }
  const std::uint8_t* RawNulls() const { return nulls_.data(); }

  void Reserve(std::size_t n);

 private:
  TypeId type_;
  std::vector<std::int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<std::uint8_t> nulls_;
};

}  // namespace softdb

#endif  // SOFTDB_STORAGE_COLUMN_VECTOR_H_
