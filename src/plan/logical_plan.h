#ifndef SOFTDB_PLAN_LOGICAL_PLAN_H_
#define SOFTDB_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "plan/predicate.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace softdb {

class PlanNode;
using PlanPtr = std::unique_ptr<PlanNode>;

enum class PlanKind : std::uint8_t {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kUnionAll,
  kLimit,
};

const char* PlanKindName(PlanKind kind);

/// A node of the logical query plan. The rewrite engine transforms these
/// trees; the physical planner lowers them to executor operators. Output
/// schemas are computed at construction so every expression above a node
/// binds against `output_schema()`.
class PlanNode {
 public:
  PlanNode(PlanKind kind, Schema output_schema)
      : kind_(kind), output_schema_(std::move(output_schema)) {}
  virtual ~PlanNode() = default;

  PlanKind kind() const { return kind_; }
  const Schema& output_schema() const { return output_schema_; }

  const std::vector<PlanPtr>& children() const { return children_; }
  std::vector<PlanPtr>& mutable_children() { return children_; }

  /// Deep copy of the subtree.
  virtual PlanPtr Clone() const = 0;

  /// One-line description of this node (no children).
  virtual std::string Describe() const = 0;

  /// Multi-line indented tree rendering (EXPLAIN).
  std::string ToString(int indent = 0) const;

 protected:
  void CloneChildrenInto(PlanNode* dst) const {
    for (const PlanPtr& c : children_) dst->children_.push_back(c->Clone());
  }

  PlanKind kind_;
  Schema output_schema_;
  std::vector<PlanPtr> children_;
};

/// Base-table scan with pushed-down predicates. `predicates` may include
/// estimation-only twins; the physical planner decides between sequential
/// and index-range access using the applicable (non-estimation-only)
/// simple predicates.
class ScanNode final : public PlanNode {
 public:
  ScanNode(std::string table_name, Schema schema)
      : PlanNode(PlanKind::kScan, std::move(schema)),
        table_name_(std::move(table_name)) {}

  const std::string& table_name() const { return table_name_; }
  std::vector<Predicate>& predicates() { return predicates_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }

  /// When set, the scan reads this table object directly instead of
  /// resolving `table_name` through the catalog — used for exception-table
  /// AST branches (§4.4), whose contents live in the MV registry.
  const Table* external_table() const { return external_table_; }
  void set_external_table(const Table* t) { external_table_ = t; }

  PlanPtr Clone() const override;
  std::string Describe() const override;

 private:
  std::string table_name_;
  std::vector<Predicate> predicates_;
  const Table* external_table_ = nullptr;
};

/// Residual filter above any child.
class FilterNode final : public PlanNode {
 public:
  FilterNode(PlanPtr child, std::vector<Predicate> predicates)
      : PlanNode(PlanKind::kFilter, child->output_schema()),
        predicates_(std::move(predicates)) {
    children_.push_back(std::move(child));
  }

  std::vector<Predicate>& predicates() { return predicates_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }

  PlanPtr Clone() const override;
  std::string Describe() const override;

 private:
  std::vector<Predicate> predicates_;
};

/// Inner join. `condition` binds over Concat(left schema, right schema);
/// `equi_keys` are the extracted equality pairs (left column index in left
/// schema, right column index in right schema) enabling hash join.
class JoinNode final : public PlanNode {
 public:
  struct EquiKey {
    ColumnIdx left;
    ColumnIdx right;
  };

  JoinNode(PlanPtr left, PlanPtr right, std::vector<Predicate> conditions,
           std::vector<EquiKey> equi_keys)
      : PlanNode(PlanKind::kJoin, Schema::Concat(left->output_schema(),
                                                 right->output_schema())),
        conditions_(std::move(conditions)), equi_keys_(std::move(equi_keys)) {
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }

  std::vector<Predicate>& conditions() { return conditions_; }
  const std::vector<Predicate>& conditions() const { return conditions_; }
  const std::vector<EquiKey>& equi_keys() const { return equi_keys_; }

  PlanPtr Clone() const override;
  std::string Describe() const override;

 private:
  std::vector<Predicate> conditions_;
  std::vector<EquiKey> equi_keys_;
};

/// Projection: computes `exprs`, naming outputs `names`.
class ProjectNode final : public PlanNode {
 public:
  ProjectNode(PlanPtr child, std::vector<ExprPtr> exprs,
              std::vector<std::string> names);

  const std::vector<ExprPtr>& exprs() const { return exprs_; }

  PlanPtr Clone() const override;
  std::string Describe() const override;

 private:
  std::vector<ExprPtr> exprs_;
  std::vector<std::string> names_;
};

/// Aggregate functions.
enum class AggFn : std::uint8_t { kCountStar, kCount, kSum, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

struct AggregateItem {
  AggFn fn = AggFn::kCountStar;
  ExprPtr arg;  // Null for COUNT(*).
  std::string name;

  AggregateItem Clone() const {
    AggregateItem out;
    out.fn = fn;
    out.arg = arg ? arg->Clone() : nullptr;
    out.name = name;
    return out;
  }
};

/// Hash aggregation with optional grouping. Output schema: group columns
/// then aggregates. `group_by` may shrink under the FD rewrite (§2 / [29]):
/// removed columns are still *carried* in the output (functionally
/// determined ⇒ any row of the group supplies the value).
class AggregateNode final : public PlanNode {
 public:
  AggregateNode(PlanPtr child, std::vector<ExprPtr> group_by,
                std::vector<AggregateItem> aggregates);

  const std::vector<ExprPtr>& group_by() const { return group_by_; }
  std::vector<ExprPtr>& mutable_group_by() { return group_by_; }
  const std::vector<AggregateItem>& aggregates() const { return aggregates_; }

  /// key_flags()[i] tells whether group_by()[i] participates in the
  /// grouping *key*. The FD rewrite clears the flag of functionally
  /// determined columns: they are still computed and carried in the output
  /// (any row of the group supplies the value), but no longer hashed or
  /// compared — the §2/[29] "superfluous group by attribute" optimization
  /// without disturbing the output schema.
  const std::vector<bool>& key_flags() const { return key_flags_; }
  void ClearKeyFlag(std::size_t i) { key_flags_[i] = false; }

  PlanPtr Clone() const override;
  std::string Describe() const override;

 private:
  std::vector<ExprPtr> group_by_;
  std::vector<AggregateItem> aggregates_;
  std::vector<bool> key_flags_;
};

/// Sort keys. The FD rewrite may drop keys; the physical planner elides the
/// sort entirely when the input is already ordered by a prefix.
struct SortKey {
  ExprPtr expr;
  bool ascending = true;

  SortKey Clone() const { return SortKey{expr->Clone(), ascending}; }
};

class SortNode final : public PlanNode {
 public:
  SortNode(PlanPtr child, std::vector<SortKey> keys)
      : PlanNode(PlanKind::kSort, child->output_schema()),
        keys_(std::move(keys)) {
    children_.push_back(std::move(child));
  }

  const std::vector<SortKey>& keys() const { return keys_; }
  std::vector<SortKey>& mutable_keys() { return keys_; }

  PlanPtr Clone() const override;
  std::string Describe() const override;

 private:
  std::vector<SortKey> keys_;
};

/// UNION ALL over children with identical arity. Each branch may carry a
/// branch constraint (the range predicate that defines the branch in a
/// partitioned union-all view); the optimizer knocks off branches whose
/// constraint contradicts the query predicate (§5).
class UnionAllNode final : public PlanNode {
 public:
  UnionAllNode(std::vector<PlanPtr> children,
               std::vector<std::optional<Predicate>> branch_constraints);

  const std::vector<std::optional<Predicate>>& branch_constraints() const {
    return branch_constraints_;
  }

  PlanPtr Clone() const override;
  std::string Describe() const override;

 private:
  std::vector<std::optional<Predicate>> branch_constraints_;
};

/// LIMIT n.
class LimitNode final : public PlanNode {
 public:
  LimitNode(PlanPtr child, std::size_t limit)
      : PlanNode(PlanKind::kLimit, child->output_schema()), limit_(limit) {
    children_.push_back(std::move(child));
  }

  std::size_t limit() const { return limit_; }

  PlanPtr Clone() const override;
  std::string Describe() const override;

 private:
  std::size_t limit_;
};

}  // namespace softdb

#endif  // SOFTDB_PLAN_LOGICAL_PLAN_H_
