#ifndef SOFTDB_PLAN_PREDICATE_H_
#define SOFTDB_PLAN_PREDICATE_H_

#include <optional>
#include <string>
#include <vector>

#include "plan/expr.h"

namespace softdb {

/// A predicate attached to a plan node, with the soft-constraint metadata
/// §5.1 introduces:
///
/// * `estimation_only` — a *twinned* predicate: the optimizer uses it for
///   cardinality estimation but the executor never applies it (it may admit
///   false positives, being derived from a statistical soft constraint).
/// * `confidence` — the SSC confidence factor backing the twin (1.0 for
///   ordinary predicates and ASC-derived rewrites).
/// * `origin` — provenance for EXPLAIN ("user", "sc:<name>", "ast:<name>"),
///   and the hook plan invalidation uses when an ASC is overturned.
struct Predicate {
  ExprPtr expr;
  bool estimation_only = false;
  double confidence = 1.0;
  std::string origin = "user";
  /// For twins: the column of the original predicate this twin was derived
  /// from. §5.1's estimation substitutes the twin for the original — "two
  /// predicates on the start_date column ... essentially reducing the range
  /// predicates on two columns to a pair of range predicates on a single
  /// column" — so the estimator drops the source column's range when it
  /// evaluates the twinned alternative.
  std::optional<ColumnIdx> source_column;

  Predicate() = default;
  explicit Predicate(ExprPtr e) : expr(std::move(e)) {}
  Predicate(ExprPtr e, bool est_only, double conf, std::string org)
      : expr(std::move(e)), estimation_only(est_only), confidence(conf),
        origin(std::move(org)) {}

  Predicate Clone() const {
    Predicate p(expr->Clone(), estimation_only, confidence, origin);
    p.source_column = source_column;
    return p;
  }

  std::string ToString() const;
};

/// A normalized single-column range/equality predicate `col <op> const`,
/// the shape the estimator, index matcher and union-all pruner consume.
struct SimplePredicate {
  ColumnIdx column = 0;
  CompareOp op = CompareOp::kEq;
  Value constant;
};

/// `left_col <op> right_col` (join conditions, intra-table column
/// comparisons such as `ship_date > order_date`).
struct ColumnPairPredicate {
  ColumnIdx left = 0;
  CompareOp op = CompareOp::kEq;
  ColumnIdx right = 0;
};

/// Splits a (bound or unbound) expression into its top-level conjuncts,
/// transferring ownership.
std::vector<ExprPtr> FlattenConjuncts(ExprPtr expr);

/// Attempts to fold `expr` to a constant (literals and arithmetic over
/// literals). Returns true and sets *out on success.
bool TryConstantFold(const Expr& expr, Value* out);

/// Matches `col op const` / `const op col` (op flipped) / `col BETWEEN a
/// AND b` is NOT matched here (it expands to two SimplePredicates via
/// ExpandSimplePredicates). Requires a bound expression.
bool MatchSimplePredicate(const Expr& expr, SimplePredicate* out);

/// Expands `expr` into zero or more SimplePredicates: comparisons and
/// BETWEEN both qualify. Returns false when the expression has any
/// non-simple structure (then callers must treat it opaquely).
bool ExpandSimplePredicates(const Expr& expr, std::vector<SimplePredicate>* out);

/// Matches `colA op colB` between two bound column refs.
bool MatchColumnPair(const Expr& expr, ColumnPairPredicate* out);

/// A predicate over a column difference: `(minuend - subtrahend) <op> c`,
/// the shape of duration queries like `end_date - start_date <= 5` (§5's
/// second example). The estimator resolves these against the virtual-column
/// statistics kept by column-offset SCs.
struct ColumnDiffPredicate {
  ColumnIdx minuend = 0;
  ColumnIdx subtrahend = 0;
  CompareOp op = CompareOp::kEq;
  Value constant;
};

/// Matches `(col - col) op const` and `const op (col - col)` (op flipped).
bool MatchColumnDiffPredicate(const Expr& expr, ColumnDiffPredicate* out);

}  // namespace softdb

#endif  // SOFTDB_PLAN_PREDICATE_H_
