#include "plan/expr.h"

#include "common/str_util.h"

namespace softdb {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

CompareOp NegateCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

// ---------------------------------------------------------------- ColumnRef

Status ColumnRefExpr::Bind(const Schema& schema) {
  SOFTDB_ASSIGN_OR_RETURN(ColumnIdx idx, schema.Resolve(name_));
  index_ = idx;
  result_type_ = schema.Column(idx).type;
  bound_ = true;
  return Status::OK();
}

Result<Value> ColumnRefExpr::Eval(const std::vector<Value>& row) const {
  if (!bound_) return Status::Internal("unbound column ref: " + name_);
  if (index_ >= row.size()) return Status::Internal("row too narrow");
  return row[index_];
}

ExprPtr ColumnRefExpr::Clone() const {
  if (bound_) {
    return std::make_unique<ColumnRefExpr>(name_, index_, result_type_);
  }
  return std::make_unique<ColumnRefExpr>(name_);
}

// --------------------------------------------------------------- Comparison

Status ComparisonExpr::Bind(const Schema& schema) {
  SOFTDB_RETURN_IF_ERROR(left_->Bind(schema));
  return right_->Bind(schema);
}

Result<Value> ComparisonExpr::Eval(const std::vector<Value>& row) const {
  SOFTDB_ASSIGN_OR_RETURN(Value l, left_->Eval(row));
  SOFTDB_ASSIGN_OR_RETURN(Value r, right_->Eval(row));
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
  SOFTDB_ASSIGN_OR_RETURN(int cmp, l.Compare(r));
  switch (op_) {
    case CompareOp::kEq:
      return Value::Bool(cmp == 0);
    case CompareOp::kNe:
      return Value::Bool(cmp != 0);
    case CompareOp::kLt:
      return Value::Bool(cmp < 0);
    case CompareOp::kLe:
      return Value::Bool(cmp <= 0);
    case CompareOp::kGt:
      return Value::Bool(cmp > 0);
    case CompareOp::kGe:
      return Value::Bool(cmp >= 0);
  }
  return Status::Internal("bad compare op");
}

ExprPtr ComparisonExpr::Clone() const {
  return std::make_unique<ComparisonExpr>(op_, left_->Clone(), right_->Clone());
}

std::string ComparisonExpr::ToString() const {
  return left_->ToString() + " " + CompareOpName(op_) + " " +
         right_->ToString();
}

// ------------------------------------------------------------------ Logical

Status LogicalExpr::Bind(const Schema& schema) {
  for (ExprPtr& c : children_) SOFTDB_RETURN_IF_ERROR(c->Bind(schema));
  return Status::OK();
}

Result<Value> LogicalExpr::Eval(const std::vector<Value>& row) const {
  // Kleene three-valued AND/OR.
  const bool is_and = kind_ == ExprKind::kAnd;
  bool saw_null = false;
  for (const ExprPtr& c : children_) {
    SOFTDB_ASSIGN_OR_RETURN(Value v, c->Eval(row));
    if (v.is_null()) {
      saw_null = true;
      continue;
    }
    const bool b = v.AsBool();
    if (is_and && !b) return Value::Bool(false);
    if (!is_and && b) return Value::Bool(true);
  }
  if (saw_null) return Value::Null(TypeId::kBool);
  return Value::Bool(is_and);
}

ExprPtr LogicalExpr::Clone() const {
  std::vector<ExprPtr> kids;
  kids.reserve(children_.size());
  for (const ExprPtr& c : children_) kids.push_back(c->Clone());
  return std::make_unique<LogicalExpr>(kind_, std::move(kids));
}

std::string LogicalExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(children_.size());
  for (const ExprPtr& c : children_) parts.push_back("(" + c->ToString() + ")");
  return Join(parts, kind_ == ExprKind::kAnd ? " AND " : " OR ");
}

// ---------------------------------------------------------------------- Not

Result<Value> NotExpr::Eval(const std::vector<Value>& row) const {
  SOFTDB_ASSIGN_OR_RETURN(Value v, child_->Eval(row));
  if (v.is_null()) return Value::Null(TypeId::kBool);
  return Value::Bool(!v.AsBool());
}

// --------------------------------------------------------------- Arithmetic

Status ArithmeticExpr::Bind(const Schema& schema) {
  SOFTDB_RETURN_IF_ERROR(left_->Bind(schema));
  SOFTDB_RETURN_IF_ERROR(right_->Bind(schema));
  const TypeId lt = left_->result_type();
  const TypeId rt = right_->result_type();
  if (lt == TypeId::kString || rt == TypeId::kString) {
    return Status::TypeMismatch("arithmetic on VARCHAR");
  }
  if (lt == TypeId::kDouble || rt == TypeId::kDouble ||
      op_ == ArithOp::kDiv) {
    result_type_ = TypeId::kDouble;
  } else if (lt == TypeId::kDate && rt == TypeId::kDate) {
    // date - date = day count; other date/date ops are nonsensical but
    // reduce to int anyway.
    result_type_ = TypeId::kInt64;
  } else if (lt == TypeId::kDate || rt == TypeId::kDate) {
    result_type_ = TypeId::kDate;  // date +/- days.
  } else {
    result_type_ = TypeId::kInt64;
  }
  return Status::OK();
}

Result<Value> ArithmeticExpr::Eval(const std::vector<Value>& row) const {
  SOFTDB_ASSIGN_OR_RETURN(Value l, left_->Eval(row));
  SOFTDB_ASSIGN_OR_RETURN(Value r, right_->Eval(row));
  if (l.is_null() || r.is_null()) return Value::Null(result_type_);
  if (result_type_ == TypeId::kDouble) {
    const double a = l.NumericValue();
    const double b = r.NumericValue();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Double(a + b);
      case ArithOp::kSub:
        return Value::Double(a - b);
      case ArithOp::kMul:
        return Value::Double(a * b);
      case ArithOp::kDiv:
        if (b == 0.0) return Value::Null(TypeId::kDouble);
        return Value::Double(a / b);
    }
  }
  const std::int64_t a = static_cast<std::int64_t>(l.NumericValue());
  const std::int64_t b = static_cast<std::int64_t>(r.NumericValue());
  std::int64_t out = 0;
  switch (op_) {
    case ArithOp::kAdd:
      out = a + b;
      break;
    case ArithOp::kSub:
      out = a - b;
      break;
    case ArithOp::kMul:
      out = a * b;
      break;
    case ArithOp::kDiv:
      if (b == 0) return Value::Null(result_type_);
      out = a / b;
      break;
  }
  if (result_type_ == TypeId::kDate) return Value::Date(out);
  return Value::Int64(out);
}

ExprPtr ArithmeticExpr::Clone() const {
  auto e = std::make_unique<ArithmeticExpr>(op_, left_->Clone(),
                                            right_->Clone());
  e->result_type_ = result_type_;
  return e;
}

std::string ArithmeticExpr::ToString() const {
  return "(" + left_->ToString() + " " + ArithOpName(op_) + " " +
         right_->ToString() + ")";
}

// ------------------------------------------------------------------ Between

Status BetweenExpr::Bind(const Schema& schema) {
  SOFTDB_RETURN_IF_ERROR(input_->Bind(schema));
  SOFTDB_RETURN_IF_ERROR(lo_->Bind(schema));
  return hi_->Bind(schema);
}

Result<Value> BetweenExpr::Eval(const std::vector<Value>& row) const {
  SOFTDB_ASSIGN_OR_RETURN(Value v, input_->Eval(row));
  SOFTDB_ASSIGN_OR_RETURN(Value lo, lo_->Eval(row));
  SOFTDB_ASSIGN_OR_RETURN(Value hi, hi_->Eval(row));
  if (v.is_null() || lo.is_null() || hi.is_null()) {
    return Value::Null(TypeId::kBool);
  }
  SOFTDB_ASSIGN_OR_RETURN(int cl, v.Compare(lo));
  SOFTDB_ASSIGN_OR_RETURN(int ch, v.Compare(hi));
  return Value::Bool(cl >= 0 && ch <= 0);
}

ExprPtr BetweenExpr::Clone() const {
  return std::make_unique<BetweenExpr>(input_->Clone(), lo_->Clone(),
                                       hi_->Clone());
}

std::string BetweenExpr::ToString() const {
  return input_->ToString() + " BETWEEN " + lo_->ToString() + " AND " +
         hi_->ToString();
}

// ------------------------------------------------------------------- InList

Status InListExpr::Bind(const Schema& schema) {
  SOFTDB_RETURN_IF_ERROR(input_->Bind(schema));
  for (ExprPtr& e : list_) SOFTDB_RETURN_IF_ERROR(e->Bind(schema));
  return Status::OK();
}

Result<Value> InListExpr::Eval(const std::vector<Value>& row) const {
  SOFTDB_ASSIGN_OR_RETURN(Value v, input_->Eval(row));
  if (v.is_null()) return Value::Null(TypeId::kBool);
  bool saw_null = false;
  for (const ExprPtr& e : list_) {
    SOFTDB_ASSIGN_OR_RETURN(Value item, e->Eval(row));
    if (item.is_null()) {
      saw_null = true;
      continue;
    }
    SOFTDB_ASSIGN_OR_RETURN(int cmp, v.Compare(item));
    if (cmp == 0) return Value::Bool(true);
  }
  if (saw_null) return Value::Null(TypeId::kBool);
  return Value::Bool(false);
}

ExprPtr InListExpr::Clone() const {
  std::vector<ExprPtr> list;
  list.reserve(list_.size());
  for (const ExprPtr& e : list_) list.push_back(e->Clone());
  return std::make_unique<InListExpr>(input_->Clone(), std::move(list));
}

std::string InListExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(list_.size());
  for (const ExprPtr& e : list_) parts.push_back(e->ToString());
  return input_->ToString() + " IN (" + Join(parts, ", ") + ")";
}

// ------------------------------------------------------------------- IsNull

Result<Value> IsNullExpr::Eval(const std::vector<Value>& row) const {
  SOFTDB_ASSIGN_OR_RETURN(Value v, input_->Eval(row));
  return Value::Bool(negated_ ? !v.is_null() : v.is_null());
}

// ----------------------------------------------------------------- Builders

ExprPtr MakeLiteral(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }

ExprPtr MakeColumnRef(std::string name) {
  return std::make_unique<ColumnRefExpr>(std::move(name));
}

ExprPtr MakeCompare(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_unique<ComparisonExpr>(op, std::move(left), std::move(right));
}

ExprPtr MakeAnd(std::vector<ExprPtr> children) {
  if (children.size() == 1) return std::move(children[0]);
  return std::make_unique<LogicalExpr>(ExprKind::kAnd, std::move(children));
}

ExprPtr MakeOr(std::vector<ExprPtr> children) {
  if (children.size() == 1) return std::move(children[0]);
  return std::make_unique<LogicalExpr>(ExprKind::kOr, std::move(children));
}

ExprPtr MakeBetween(ExprPtr input, ExprPtr lo, ExprPtr hi) {
  return std::make_unique<BetweenExpr>(std::move(input), std::move(lo),
                                       std::move(hi));
}

}  // namespace softdb
