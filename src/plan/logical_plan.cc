#include "plan/logical_plan.h"

#include "common/str_util.h"

namespace softdb {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kUnionAll:
      return "UnionAll";
    case PlanKind::kLimit:
      return "Limit";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCountStar:
      return "COUNT(*)";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "?";
}

std::string PlanNode::ToString(int indent) const {
  std::string out(static_cast<std::size_t>(indent) * 2, ' ');
  out += Describe();
  out += "\n";
  for (const PlanPtr& c : children_) out += c->ToString(indent + 1);
  return out;
}

namespace {

std::string DescribePredicates(const std::vector<Predicate>& preds) {
  std::vector<std::string> parts;
  parts.reserve(preds.size());
  for (const Predicate& p : preds) parts.push_back(p.ToString());
  return Join(parts, " AND ");
}

}  // namespace

// --------------------------------------------------------------------- Scan

PlanPtr ScanNode::Clone() const {
  auto node = std::make_unique<ScanNode>(table_name_, output_schema_);
  for (const Predicate& p : predicates_) node->predicates_.push_back(p.Clone());
  node->external_table_ = external_table_;
  return node;
}

std::string ScanNode::Describe() const {
  std::string out = "Scan " + table_name_;
  if (!predicates_.empty()) out += " [" + DescribePredicates(predicates_) + "]";
  return out;
}

// ------------------------------------------------------------------- Filter

PlanPtr FilterNode::Clone() const {
  std::vector<Predicate> preds;
  preds.reserve(predicates_.size());
  for (const Predicate& p : predicates_) preds.push_back(p.Clone());
  return std::make_unique<FilterNode>(children_[0]->Clone(), std::move(preds));
}

std::string FilterNode::Describe() const {
  return "Filter [" + DescribePredicates(predicates_) + "]";
}

// --------------------------------------------------------------------- Join

PlanPtr JoinNode::Clone() const {
  std::vector<Predicate> conds;
  conds.reserve(conditions_.size());
  for (const Predicate& p : conditions_) conds.push_back(p.Clone());
  return std::make_unique<JoinNode>(children_[0]->Clone(),
                                    children_[1]->Clone(), std::move(conds),
                                    equi_keys_);
}

std::string JoinNode::Describe() const {
  std::string out = "Join";
  if (!equi_keys_.empty()) {
    out += StrFormat(" (%zu equi keys)", equi_keys_.size());
  }
  if (!conditions_.empty()) out += " [" + DescribePredicates(conditions_) + "]";
  return out;
}

// ------------------------------------------------------------------ Project

ProjectNode::ProjectNode(PlanPtr child, std::vector<ExprPtr> exprs,
                         std::vector<std::string> names)
    : PlanNode(PlanKind::kProject, Schema()), exprs_(std::move(exprs)),
      names_(std::move(names)) {
  Schema schema;
  for (std::size_t i = 0; i < exprs_.size(); ++i) {
    ColumnDef def;
    def.name = i < names_.size() && !names_[i].empty()
                   ? names_[i]
                   : exprs_[i]->ToString();
    def.type = exprs_[i]->result_type();
    def.nullable = true;
    schema.AddColumn(std::move(def));
  }
  output_schema_ = std::move(schema);
  children_.push_back(std::move(child));
}

PlanPtr ProjectNode::Clone() const {
  std::vector<ExprPtr> exprs;
  exprs.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) exprs.push_back(e->Clone());
  return std::make_unique<ProjectNode>(children_[0]->Clone(), std::move(exprs),
                                       names_);
}

std::string ProjectNode::Describe() const {
  std::vector<std::string> parts;
  parts.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) parts.push_back(e->ToString());
  return "Project [" + Join(parts, ", ") + "]";
}

// ---------------------------------------------------------------- Aggregate

AggregateNode::AggregateNode(PlanPtr child, std::vector<ExprPtr> group_by,
                             std::vector<AggregateItem> aggregates)
    : PlanNode(PlanKind::kAggregate, Schema()), group_by_(std::move(group_by)),
      aggregates_(std::move(aggregates)) {
  Schema schema;
  const Schema& input = child->output_schema();
  for (const ExprPtr& g : group_by_) {
    ColumnDef def;
    // Bound column refs keep their source name and qualifier so select-list
    // references resolve against the aggregate output naturally.
    if (g->kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(*g);
      if (ref.bound() && ref.index() < input.NumColumns()) {
        def = input.Column(ref.index());
        schema.AddColumn(std::move(def));
        continue;
      }
    }
    def.name = g->ToString();
    def.type = g->result_type();
    schema.AddColumn(std::move(def));
  }
  for (const AggregateItem& a : aggregates_) {
    ColumnDef def;
    def.name = a.name.empty()
                   ? std::string(AggFnName(a.fn)) +
                         (a.arg ? "(" + a.arg->ToString() + ")" : "")
                   : a.name;
    switch (a.fn) {
      case AggFn::kCountStar:
      case AggFn::kCount:
        def.type = TypeId::kInt64;
        break;
      case AggFn::kAvg:
        def.type = TypeId::kDouble;
        break;
      default:
        def.type = a.arg ? a.arg->result_type() : TypeId::kInt64;
    }
    schema.AddColumn(std::move(def));
  }
  output_schema_ = std::move(schema);
  key_flags_.assign(group_by_.size(), true);
  children_.push_back(std::move(child));
}

PlanPtr AggregateNode::Clone() const {
  std::vector<ExprPtr> groups;
  groups.reserve(group_by_.size());
  for (const ExprPtr& g : group_by_) groups.push_back(g->Clone());
  std::vector<AggregateItem> aggs;
  aggs.reserve(aggregates_.size());
  for (const AggregateItem& a : aggregates_) aggs.push_back(a.Clone());
  auto node = std::make_unique<AggregateNode>(
      children_[0]->Clone(), std::move(groups), std::move(aggs));
  node->key_flags_ = key_flags_;
  return node;
}

std::string AggregateNode::Describe() const {
  std::vector<std::string> groups;
  groups.reserve(group_by_.size());
  for (const ExprPtr& g : group_by_) groups.push_back(g->ToString());
  std::vector<std::string> aggs;
  aggs.reserve(aggregates_.size());
  for (const AggregateItem& a : aggregates_) {
    aggs.push_back(std::string(AggFnName(a.fn)) +
                   (a.arg ? "(" + a.arg->ToString() + ")" : ""));
  }
  return "Aggregate group=[" + Join(groups, ", ") + "] aggs=[" +
         Join(aggs, ", ") + "]";
}

// --------------------------------------------------------------------- Sort

PlanPtr SortNode::Clone() const {
  std::vector<SortKey> keys;
  keys.reserve(keys_.size());
  for (const SortKey& k : keys_) keys.push_back(k.Clone());
  return std::make_unique<SortNode>(children_[0]->Clone(), std::move(keys));
}

std::string SortNode::Describe() const {
  std::vector<std::string> parts;
  parts.reserve(keys_.size());
  for (const SortKey& k : keys_) {
    parts.push_back(k.expr->ToString() + (k.ascending ? " ASC" : " DESC"));
  }
  return "Sort [" + Join(parts, ", ") + "]";
}

// ----------------------------------------------------------------- UnionAll

UnionAllNode::UnionAllNode(
    std::vector<PlanPtr> children,
    std::vector<std::optional<Predicate>> branch_constraints)
    : PlanNode(PlanKind::kUnionAll,
               children.empty() ? Schema() : children[0]->output_schema()),
      branch_constraints_(std::move(branch_constraints)) {
  children_ = std::move(children);
  branch_constraints_.resize(children_.size());
}

PlanPtr UnionAllNode::Clone() const {
  std::vector<PlanPtr> kids;
  kids.reserve(children_.size());
  for (const PlanPtr& c : children_) kids.push_back(c->Clone());
  std::vector<std::optional<Predicate>> constraints;
  constraints.reserve(branch_constraints_.size());
  for (const auto& bc : branch_constraints_) {
    constraints.push_back(bc.has_value() ? std::optional<Predicate>(bc->Clone())
                                         : std::nullopt);
  }
  return std::make_unique<UnionAllNode>(std::move(kids),
                                        std::move(constraints));
}

std::string UnionAllNode::Describe() const {
  return StrFormat("UnionAll (%zu branches)", children_.size());
}

// -------------------------------------------------------------------- Limit

PlanPtr LimitNode::Clone() const {
  return std::make_unique<LimitNode>(children_[0]->Clone(), limit_);
}

std::string LimitNode::Describe() const {
  return StrFormat("Limit %zu", limit_);
}

}  // namespace softdb
