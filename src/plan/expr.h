#ifndef SOFTDB_PLAN_EXPR_H_
#define SOFTDB_PLAN_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/schema.h"

namespace softdb {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Node kinds in the bound expression tree.
enum class ExprKind : std::uint8_t {
  kLiteral,
  kColumnRef,
  kComparison,
  kAnd,
  kOr,
  kNot,
  kArithmetic,
  kBetween,
  kInList,
  kIsNull,
};

/// Comparison operators.
enum class CompareOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Arithmetic operators.
enum class ArithOp : std::uint8_t { kAdd, kSub, kMul, kDiv };

const char* CompareOpName(CompareOp op);
const char* ArithOpName(ArithOp op);
/// kLt -> kGt etc., for normalizing `const op col` to `col op const`.
CompareOp FlipCompare(CompareOp op);
/// kLt -> kGe etc. (logical negation).
CompareOp NegateCompare(CompareOp op);

/// A scalar SQL expression. Expressions are built unbound (column refs hold
/// names) and become evaluable after Bind() resolves names against a schema
/// and infers result types. Evaluation uses SQL three-valued logic: any
/// Value of type kBool may also be NULL ("unknown").
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }
  /// Result type; meaningful after Bind().
  TypeId result_type() const { return result_type_; }

  /// Resolves column references and infers types. Idempotent.
  virtual Status Bind(const Schema& schema) = 0;

  /// Evaluates against one row laid out per the bound schema.
  virtual Result<Value> Eval(const std::vector<Value>& row) const = 0;

  /// Deep copy (preserves binding state).
  virtual ExprPtr Clone() const = 0;

  virtual std::string ToString() const = 0;

  /// Appends the column indexes this expression reads (bound exprs only).
  virtual void CollectColumns(std::vector<ColumnIdx>* out) const = 0;

 protected:
  ExprKind kind_;
  TypeId result_type_ = TypeId::kInt64;
};

/// A constant.
class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value_(std::move(value)) {
    result_type_ = value_.type();
  }
  const Value& value() const { return value_; }

  Status Bind(const Schema&) override { return Status::OK(); }
  Result<Value> Eval(const std::vector<Value>&) const override { return value_; }
  ExprPtr Clone() const override { return std::make_unique<LiteralExpr>(value_); }
  std::string ToString() const override { return value_.ToString(); }
  void CollectColumns(std::vector<ColumnIdx>*) const override {}

 private:
  Value value_;
};

/// A (possibly qualified) column reference.
class ColumnRefExpr final : public Expr {
 public:
  explicit ColumnRefExpr(std::string name)
      : Expr(ExprKind::kColumnRef), name_(std::move(name)) {}
  /// Pre-bound reference (used by code that builds plans directly).
  ColumnRefExpr(std::string name, ColumnIdx index, TypeId type)
      : Expr(ExprKind::kColumnRef), name_(std::move(name)), index_(index),
        bound_(true) {
    result_type_ = type;
  }

  const std::string& name() const { return name_; }
  ColumnIdx index() const { return index_; }
  bool bound() const { return bound_; }

  Status Bind(const Schema& schema) override;
  Result<Value> Eval(const std::vector<Value>& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override { return name_; }
  void CollectColumns(std::vector<ColumnIdx>* out) const override {
    if (bound_) out->push_back(index_);
  }

 private:
  std::string name_;
  ColumnIdx index_ = 0;
  bool bound_ = false;
};

/// left <op> right.
class ComparisonExpr final : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kComparison), op_(op), left_(std::move(left)),
        right_(std::move(right)) {
    result_type_ = TypeId::kBool;
  }

  CompareOp op() const { return op_; }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

  Status Bind(const Schema& schema) override;
  Result<Value> Eval(const std::vector<Value>& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<ColumnIdx>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// N-ary conjunction / disjunction with Kleene logic.
class LogicalExpr final : public Expr {
 public:
  LogicalExpr(ExprKind kind, std::vector<ExprPtr> children)
      : Expr(kind), children_(std::move(children)) {
    result_type_ = TypeId::kBool;
  }

  const std::vector<ExprPtr>& children() const { return children_; }

  Status Bind(const Schema& schema) override;
  Result<Value> Eval(const std::vector<Value>& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<ColumnIdx>* out) const override {
    for (const ExprPtr& c : children_) c->CollectColumns(out);
  }

 private:
  std::vector<ExprPtr> children_;
};

/// NOT child.
class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr child)
      : Expr(ExprKind::kNot), child_(std::move(child)) {
    result_type_ = TypeId::kBool;
  }

  const Expr* child() const { return child_.get(); }

  Status Bind(const Schema& schema) override { return child_->Bind(schema); }
  Result<Value> Eval(const std::vector<Value>& row) const override;
  ExprPtr Clone() const override {
    return std::make_unique<NotExpr>(child_->Clone());
  }
  std::string ToString() const override {
    return "NOT (" + child_->ToString() + ")";
  }
  void CollectColumns(std::vector<ColumnIdx>* out) const override {
    child_->CollectColumns(out);
  }

 private:
  ExprPtr child_;
};

/// left <op> right over numerics; dates support +/- integer days, and
/// date - date yields an integer day count (the paper's
/// `end_date - start_date <= 5` predicate).
class ArithmeticExpr final : public Expr {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kArithmetic), op_(op), left_(std::move(left)),
        right_(std::move(right)) {}

  ArithOp op() const { return op_; }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

  Status Bind(const Schema& schema) override;
  Result<Value> Eval(const std::vector<Value>& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<ColumnIdx>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }

 private:
  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// input BETWEEN lo AND hi (inclusive both ends, as in SQL).
class BetweenExpr final : public Expr {
 public:
  BetweenExpr(ExprPtr input, ExprPtr lo, ExprPtr hi)
      : Expr(ExprKind::kBetween), input_(std::move(input)), lo_(std::move(lo)),
        hi_(std::move(hi)) {
    result_type_ = TypeId::kBool;
  }

  const Expr* input() const { return input_.get(); }
  const Expr* lo() const { return lo_.get(); }
  const Expr* hi() const { return hi_.get(); }

  Status Bind(const Schema& schema) override;
  Result<Value> Eval(const std::vector<Value>& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<ColumnIdx>* out) const override {
    input_->CollectColumns(out);
    lo_->CollectColumns(out);
    hi_->CollectColumns(out);
  }

 private:
  ExprPtr input_;
  ExprPtr lo_;
  ExprPtr hi_;
};

/// input IN (v1, v2, ...).
class InListExpr final : public Expr {
 public:
  InListExpr(ExprPtr input, std::vector<ExprPtr> list)
      : Expr(ExprKind::kInList), input_(std::move(input)),
        list_(std::move(list)) {
    result_type_ = TypeId::kBool;
  }

  const Expr* input() const { return input_.get(); }
  const std::vector<ExprPtr>& list() const { return list_; }

  Status Bind(const Schema& schema) override;
  Result<Value> Eval(const std::vector<Value>& row) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<ColumnIdx>* out) const override {
    input_->CollectColumns(out);
    for (const ExprPtr& e : list_) e->CollectColumns(out);
  }

 private:
  ExprPtr input_;
  std::vector<ExprPtr> list_;
};

/// input IS [NOT] NULL.
class IsNullExpr final : public Expr {
 public:
  IsNullExpr(ExprPtr input, bool negated)
      : Expr(ExprKind::kIsNull), input_(std::move(input)), negated_(negated) {
    result_type_ = TypeId::kBool;
  }

  const Expr* input() const { return input_.get(); }
  bool negated() const { return negated_; }

  Status Bind(const Schema& schema) override { return input_->Bind(schema); }
  Result<Value> Eval(const std::vector<Value>& row) const override;
  ExprPtr Clone() const override {
    return std::make_unique<IsNullExpr>(input_->Clone(), negated_);
  }
  std::string ToString() const override {
    return input_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
  }
  void CollectColumns(std::vector<ColumnIdx>* out) const override {
    input_->CollectColumns(out);
  }

 private:
  ExprPtr input_;
  bool negated_;
};

/// Convenience builders used across the optimizer and tests.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string name);
ExprPtr MakeCompare(CompareOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeAnd(std::vector<ExprPtr> children);
ExprPtr MakeOr(std::vector<ExprPtr> children);
ExprPtr MakeBetween(ExprPtr input, ExprPtr lo, ExprPtr hi);

}  // namespace softdb

#endif  // SOFTDB_PLAN_EXPR_H_
