#include "plan/predicate.h"

#include "common/str_util.h"

namespace softdb {

std::string Predicate::ToString() const {
  std::string s = expr->ToString();
  if (estimation_only) {
    s += StrFormat(" [estimate-only, conf=%.2f, from %s]", confidence,
                   origin.c_str());
  } else if (origin != "user") {
    s += " [from " + origin + "]";
  }
  return s;
}

std::vector<ExprPtr> FlattenConjuncts(ExprPtr expr) {
  std::vector<ExprPtr> out;
  if (expr->kind() == ExprKind::kAnd) {
    auto* logical = static_cast<LogicalExpr*>(expr.get());
    // Clone children out (LogicalExpr owns them; we rebuild).
    for (const ExprPtr& c : logical->children()) {
      for (ExprPtr& sub : FlattenConjuncts(c->Clone())) {
        out.push_back(std::move(sub));
      }
    }
  } else {
    out.push_back(std::move(expr));
  }
  return out;
}

bool TryConstantFold(const Expr& expr, Value* out) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      *out = static_cast<const LiteralExpr&>(expr).value();
      return true;
    case ExprKind::kArithmetic: {
      const auto& arith = static_cast<const ArithmeticExpr&>(expr);
      Value l, r;
      if (!TryConstantFold(*arith.left(), &l) ||
          !TryConstantFold(*arith.right(), &r)) {
        return false;
      }
      // Evaluate with an empty row; literals need no columns.
      auto v = expr.Eval({});
      if (!v.ok()) return false;
      *out = *std::move(v);
      return true;
    }
    default:
      return false;
  }
}

namespace {

// Returns the bound column ref if expr is exactly a column reference.
const ColumnRefExpr* AsColumnRef(const Expr& expr) {
  if (expr.kind() != ExprKind::kColumnRef) return nullptr;
  const auto& ref = static_cast<const ColumnRefExpr&>(expr);
  return ref.bound() ? &ref : nullptr;
}

}  // namespace

bool MatchSimplePredicate(const Expr& expr, SimplePredicate* out) {
  if (expr.kind() != ExprKind::kComparison) return false;
  const auto& cmp = static_cast<const ComparisonExpr&>(expr);
  Value constant;
  if (const ColumnRefExpr* ref = AsColumnRef(*cmp.left());
      ref && TryConstantFold(*cmp.right(), &constant)) {
    out->column = ref->index();
    out->op = cmp.op();
    out->constant = std::move(constant);
    return true;
  }
  if (const ColumnRefExpr* ref = AsColumnRef(*cmp.right());
      ref && TryConstantFold(*cmp.left(), &constant)) {
    out->column = ref->index();
    out->op = FlipCompare(cmp.op());
    out->constant = std::move(constant);
    return true;
  }
  return false;
}

bool ExpandSimplePredicates(const Expr& expr,
                            std::vector<SimplePredicate>* out) {
  SimplePredicate simple;
  if (MatchSimplePredicate(expr, &simple)) {
    out->push_back(std::move(simple));
    return true;
  }
  if (expr.kind() == ExprKind::kBetween) {
    const auto& between = static_cast<const BetweenExpr&>(expr);
    const ColumnRefExpr* ref = AsColumnRef(*between.input());
    Value lo, hi;
    if (ref && TryConstantFold(*between.lo(), &lo) &&
        TryConstantFold(*between.hi(), &hi)) {
      out->push_back(SimplePredicate{ref->index(), CompareOp::kGe, lo});
      out->push_back(SimplePredicate{ref->index(), CompareOp::kLe, hi});
      return true;
    }
    return false;
  }
  if (expr.kind() == ExprKind::kAnd) {
    const auto& logical = static_cast<const LogicalExpr&>(expr);
    for (const ExprPtr& c : logical.children()) {
      if (!ExpandSimplePredicates(*c, out)) return false;
    }
    return true;
  }
  return false;
}

namespace {

// Matches a bound `colA - colB` arithmetic node.
bool AsColumnDiff(const Expr& expr, ColumnIdx* minuend,
                  ColumnIdx* subtrahend) {
  if (expr.kind() != ExprKind::kArithmetic) return false;
  const auto& arith = static_cast<const ArithmeticExpr&>(expr);
  if (arith.op() != ArithOp::kSub) return false;
  const ColumnRefExpr* l = AsColumnRef(*arith.left());
  const ColumnRefExpr* r = AsColumnRef(*arith.right());
  if (l == nullptr || r == nullptr) return false;
  *minuend = l->index();
  *subtrahend = r->index();
  return true;
}

}  // namespace

bool MatchColumnDiffPredicate(const Expr& expr, ColumnDiffPredicate* out) {
  if (expr.kind() != ExprKind::kComparison) return false;
  const auto& cmp = static_cast<const ComparisonExpr&>(expr);
  Value constant;
  ColumnIdx minuend, subtrahend;
  if (AsColumnDiff(*cmp.left(), &minuend, &subtrahend) &&
      TryConstantFold(*cmp.right(), &constant)) {
    out->minuend = minuend;
    out->subtrahend = subtrahend;
    out->op = cmp.op();
    out->constant = std::move(constant);
    return true;
  }
  if (AsColumnDiff(*cmp.right(), &minuend, &subtrahend) &&
      TryConstantFold(*cmp.left(), &constant)) {
    out->minuend = minuend;
    out->subtrahend = subtrahend;
    out->op = FlipCompare(cmp.op());
    out->constant = std::move(constant);
    return true;
  }
  return false;
}

bool MatchColumnPair(const Expr& expr, ColumnPairPredicate* out) {
  if (expr.kind() != ExprKind::kComparison) return false;
  const auto& cmp = static_cast<const ComparisonExpr&>(expr);
  const ColumnRefExpr* l = AsColumnRef(*cmp.left());
  const ColumnRefExpr* r = AsColumnRef(*cmp.right());
  if (!l || !r) return false;
  out->left = l->index();
  out->op = cmp.op();
  out->right = r->index();
  return true;
}

}  // namespace softdb
