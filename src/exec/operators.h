#ifndef SOFTDB_EXEC_OPERATORS_H_
#define SOFTDB_EXEC_OPERATORS_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "plan/logical_plan.h"
#include "plan/predicate.h"
#include "storage/index.h"
#include "storage/table.h"

namespace softdb {

/// A §4.2 runtime plan parameter: predicates_[predicate_index] folds to
/// `simple`, which is re-checked against `index`'s maintained min/max at
/// every Open. Shared by the row and vectorized sequential scans.
struct ScanRuntimeParameter {
  std::size_t predicate_index;
  const Index* index;
  SimplePredicate simple;
};

/// Plan-time zone-map skip set for one sequential scan: element b == 1
/// means slot block [b*kZoneMapBlockRows, (b+1)*kZoneMapBlockRows) is
/// provably predicate-free — no live row in it can satisfy the scan's
/// conjunction — and every engine drops its rows without evaluation.
/// Blocks past the vector's end (appended after planning) are never
/// skipped. Computed once per physical planning by the PhysicalPlanner
/// from armed kBlockZoneMap SCs and shared by whichever engine (row,
/// batch, morsel) executes the scan, so rows_scanned and the
/// blocks_total/blocks_skipped counters are identical across engines.
using ZoneMapSkips = std::shared_ptr<const std::vector<std::uint8_t>>;

/// Charges the scan-wide block counters for one consulted skip set.
/// Called exactly once per scan execution, by the operator that owns the
/// whole-table accounting (serial scans at Open; the parallel coordinator
/// before fanning out morsels).
void ChargeZoneMapBlocks(const ZoneMapSkips& skips, ExecContext* ctx);

/// Resolves `params` against the indexes' current domains at Open time.
/// Tautologies on non-nullable columns set the predicate's `skip` flag and
/// count a runtime_param_skip; the first contradiction sets
/// *provably_empty and returns immediately (no further params are
/// examined, and the caller must not charge any pages). `skip` must be
/// pre-sized to the predicate count.
void ResolveScanRuntimeParams(const std::vector<ScanRuntimeParameter>& params,
                              const Schema& schema, ExecContext* ctx,
                              std::vector<bool>* skip, bool* provably_empty);

/// Full-table scan applying non-estimation-only predicates. Charges the
/// whole table's pages at Open (a sequential scan touches every page).
///
/// Supports §4.2 runtime plan parameterization: a predicate may be tagged
/// with an index whose maintained min/max (the Sybase-style "SC") is
/// consulted at Open — if the current domain makes the predicate a
/// tautology it is skipped for this execution; if a contradiction, the
/// scan produces nothing without touching a page. The plan itself never
/// changes, so it stays valid across updates ("the actual values in the
/// ASC are not important ... the availability of this information at
/// runtime is").
class SeqScanOp final : public Operator {
 public:
  SeqScanOp(const Table* table, Schema schema, std::vector<Predicate> preds);

  /// Tags predicates_[predicate_index] (which folds to `simple`) for
  /// runtime evaluation against `index`'s current min/max.
  void AddRuntimeParameter(std::size_t predicate_index, const Index* index,
                           SimplePredicate simple);

  /// Attaches a plan-time zone-map skip set (may be null: no zone maps
  /// armed). Rows in skipped blocks are passed over without liveness or
  /// predicate evaluation.
  void SetZoneMapSkips(ZoneMapSkips skips) { zone_skips_ = std::move(skips); }
  const ZoneMapSkips& zone_map_skips() const { return zone_skips_; }

  const char* name() const override { return "SeqScan"; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  const std::vector<ScanRuntimeParameter>& runtime_params() const {
    return runtime_params_;
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  const Table* table_;
  std::vector<Predicate> predicates_;
  std::vector<ScanRuntimeParameter> runtime_params_;
  std::vector<const Predicate*> effective_;  // Predicates applied this run.
  ZoneMapSkips zone_skips_;
  bool provably_empty_ = false;
  RowId next_ = 0;
};

/// Index range scan: touches only the leaf range plus the data pages of
/// qualifying rows; applies residual predicates afterwards. Output order is
/// the index key order (the planner uses this to elide sorts).
class IndexRangeScanOp final : public Operator {
 public:
  IndexRangeScanOp(const Table* table, const Index* index, Schema schema,
                   std::optional<Value> lo, bool lo_inclusive,
                   std::optional<Value> hi, bool hi_inclusive,
                   std::vector<Predicate> residual);

  const char* name() const override { return "IndexRangeScan"; }
  const std::vector<Predicate>& residual() const { return residual_; }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  const Table* table_;
  const Index* index_;
  std::optional<Value> lo_, hi_;
  bool lo_inclusive_, hi_inclusive_;
  std::vector<Predicate> residual_;
  std::vector<RowId> rows_;
  std::size_t next_ = 0;
};

/// Residual filter.
class FilterOp final : public Operator {
 public:
  FilterOp(OperatorPtr child, std::vector<Predicate> preds);

  const char* name() const override { return "Filter"; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  void AppendChildren(std::vector<const Operator*>* out) const override {
    out->push_back(child_.get());
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  OperatorPtr child_;
  std::vector<Predicate> predicates_;
};

/// Expression projection.
class ProjectOp final : public Operator {
 public:
  ProjectOp(OperatorPtr child, Schema schema, std::vector<ExprPtr> exprs);

  const char* name() const override { return "Project"; }
  void AppendChildren(std::vector<const Operator*>* out) const override {
    out->push_back(child_.get());
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
};

/// Hash join on equi keys with residual conditions; builds on the right
/// input, probes with the left. NULL keys never match.
class HashJoinOp final : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right,
             std::vector<JoinNode::EquiKey> keys,
             std::vector<Predicate> residual);

  const char* name() const override { return "HashJoin"; }
  const std::vector<Predicate>& residual() const { return residual_; }
  void AppendChildren(std::vector<const Operator*>* out) const override {
    out->push_back(left_.get());
    out->push_back(right_.get());
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  struct KeyHash {
    std::size_t operator()(const std::vector<Value>& key) const;
  };
  struct KeyEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };

  Result<bool> AdvanceProbe(ExecContext* ctx);

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<JoinNode::EquiKey> keys_;
  std::vector<Predicate> residual_;
  std::unordered_map<std::vector<Value>, std::vector<std::vector<Value>>,
                     KeyHash, KeyEq>
      build_;
  std::vector<Value> probe_row_;
  const std::vector<std::vector<Value>>* matches_ = nullptr;
  std::size_t match_idx_ = 0;
  bool probe_open_ = false;
};

/// Sort-merge join on equi keys: materializes and sorts both inputs by the
/// key columns, then merges duplicate groups. Output is ordered by the
/// left key columns, which lets the planner elide a downstream sort on
/// them (the classic interesting-order optimization). NULL keys never
/// match.
class SortMergeJoinOp final : public Operator {
 public:
  SortMergeJoinOp(OperatorPtr left, OperatorPtr right,
                  std::vector<JoinNode::EquiKey> keys,
                  std::vector<Predicate> residual);

  const char* name() const override { return "SortMergeJoin"; }
  const std::vector<Predicate>& residual() const { return residual_; }
  void AppendChildren(std::vector<const Operator*>* out) const override {
    out->push_back(left_.get());
    out->push_back(right_.get());
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<JoinNode::EquiKey> keys_;
  std::vector<Predicate> residual_;
  std::vector<std::vector<Value>> results_;
  std::size_t next_ = 0;
};

/// Nested-loop join for non-equi conditions; materializes the right input.
class NestedLoopJoinOp final : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                   std::vector<Predicate> conditions);

  const char* name() const override { return "NestedLoopJoin"; }
  const std::vector<Predicate>& conditions() const { return conditions_; }
  void AppendChildren(std::vector<const Operator*>* out) const override {
    out->push_back(left_.get());
    out->push_back(right_.get());
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<Predicate> conditions_;
  std::vector<std::vector<Value>> right_rows_;
  std::vector<Value> left_row_;
  std::size_t right_idx_ = 0;
  bool left_valid_ = false;
};

/// Hash aggregation; materializes groups at Open. `key_flags` mirrors
/// AggregateNode::key_flags(): exprs with a cleared flag are carried in the
/// output but excluded from the grouping key (FD-pruned columns).
class HashAggregateOp final : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, Schema schema,
                  std::vector<ExprPtr> group_by,
                  std::vector<AggregateItem> aggregates,
                  std::vector<bool> key_flags = {});

  const char* name() const override { return "HashAggregate"; }
  void AppendChildren(std::vector<const Operator*>* out) const override {
    out->push_back(child_.get());
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<AggregateItem> aggregates_;
  std::vector<bool> key_flags_;
  std::vector<std::vector<Value>> results_;
  std::size_t next_ = 0;
};

/// Full in-memory sort. `presorted` (set by the planner when the input
/// already carries the needed order) turns it into a pass-through while
/// still letting EXPLAIN show where a sort *would* be.
class SortOp final : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys, bool presorted);

  const char* name() const override { return "Sort"; }
  void AppendChildren(std::vector<const Operator*>* out) const override {
    out->push_back(child_.get());
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  bool presorted_;
  std::vector<std::vector<Value>> rows_;
  std::size_t next_ = 0;
};

/// Concatenation of children.
class UnionAllOp final : public Operator {
 public:
  UnionAllOp(Schema schema, std::vector<OperatorPtr> children);

  const char* name() const override { return "UnionAll"; }
  void AppendChildren(std::vector<const Operator*>* out) const override {
    for (const OperatorPtr& c : children_) out->push_back(c.get());
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  std::vector<OperatorPtr> children_;
  std::size_t current_ = 0;
};

/// LIMIT n.
class LimitOp final : public Operator {
 public:
  LimitOp(OperatorPtr child, std::size_t limit);

  const char* name() const override { return "Limit"; }
  void AppendChildren(std::vector<const Operator*>* out) const override {
    out->push_back(child_.get());
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  OperatorPtr child_;
  std::size_t limit_;
  std::size_t produced_ = 0;
};

/// An operator producing zero rows (used when a branch is pruned away by a
/// contradiction, §5's union-all knock-off).
class EmptyOp final : public Operator {
 public:
  explicit EmptyOp(Schema schema) : Operator(std::move(schema)) {}
  const char* name() const override { return "Empty"; }
  Status Open(ExecContext*) override { return Status::OK(); }
  Result<bool> Next(ExecContext*, std::vector<Value>*) override {
    return false;
  }
};

/// Evaluates `predicates` (skipping estimation-only ones) against a row;
/// true only when every predicate evaluates to TRUE.
Result<bool> EvalPredicates(const std::vector<Predicate>& predicates,
                            const std::vector<Value>& row);

}  // namespace softdb

#endif  // SOFTDB_EXEC_OPERATORS_H_
