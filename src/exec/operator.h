#ifndef SOFTDB_EXEC_OPERATOR_H_
#define SOFTDB_EXEC_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/result.h"
#include "common/value.h"
#include "storage/schema.h"

namespace softdb {

/// Runtime counters for one query execution. `pages_read` is the simulated
/// I/O metric the experiments report (the paper's join-hole and
/// predicate-introduction wins are measured in pages scanned).
struct ExecStats {
  std::uint64_t rows_scanned = 0;   // Rows examined by scans.
  std::uint64_t rows_emitted = 0;   // Rows surviving scan predicates.
  std::uint64_t pages_read = 0;     // Simulated page fetches.
  std::uint64_t rows_output = 0;    // Rows produced by the root.
  std::uint64_t rows_sorted = 0;    // Rows passing through Sort operators.
  std::uint64_t index_lookups = 0;  // Index range scans performed.
  std::uint64_t rows_joined = 0;    // Probe-side comparisons in joins.
  std::uint64_t runtime_param_skips = 0;  // §4.2 predicates skipped at Open.
  // Block-zone-map pruning: 1024-row blocks whose SMA interval provably
  // excludes every scan predicate, skipped without touching the rows, and
  // the number of blocks the scan covered in total. Every engine (row,
  // batch, parallel) consults the same plan-time skip decisions, so both
  // counters ARE part of the cross-engine stat-equality invariant.
  std::uint64_t blocks_skipped = 0;
  std::uint64_t blocks_total = 0;
  // Morsels executed by the parallel engine. An execution-strategy
  // detail: 0 on serial paths, so it is excluded from the cross-engine
  // stat-equality invariant the differential fuzzer checks.
  std::uint64_t morsels = 0;
  // Transparent re-executions after a mid-query overturn of a
  // rewrite-consumed absolute SC (see DESIGN.md "Failure model"). Like
  // `morsels`, a robustness detail excluded from the cross-engine
  // stat-equality invariant; 0 on every undisturbed execution.
  std::uint64_t degraded_retries = 0;
  // Rewrite-certificate checking (DESIGN.md §13): proof obligations the
  // post-planning CertificateChecker re-validated for this query, and how
  // many did not prove their conclusion (kInvalid verdicts — always 0
  // unless the rewriter mis-derived; debug builds abort the query
  // instead). Certificates are emitted at plan time, so both counters are
  // engine-independent and part of the cross-engine equality invariant.
  std::uint64_t certificates_checked = 0;
  std::uint64_t certificates_failed = 0;
  // Write-ahead-log activity attributed to this statement: records and
  // bytes appended, fsyncs issued (DESIGN.md §14). Durability
  // bookkeeping, not query work — 0 with the WAL off and on every SELECT,
  // and, like `morsels`, excluded from the cross-engine stat-equality
  // invariant.
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t wal_fsyncs = 0;

  void Reset() { *this = ExecStats{}; }

  /// Adds another counter set into this one. The parallel coordinator
  /// aggregates per-worker counters with this, in morsel order, so
  /// per-query totals are deterministic and equal to serial execution.
  void Accumulate(const ExecStats& other) {
    rows_scanned += other.rows_scanned;
    rows_emitted += other.rows_emitted;
    pages_read += other.pages_read;
    rows_output += other.rows_output;
    rows_sorted += other.rows_sorted;
    index_lookups += other.index_lookups;
    rows_joined += other.rows_joined;
    runtime_param_skips += other.runtime_param_skips;
    blocks_skipped += other.blocks_skipped;
    blocks_total += other.blocks_total;
    morsels += other.morsels;
    degraded_retries += other.degraded_retries;
    certificates_checked += other.certificates_checked;
    certificates_failed += other.certificates_failed;
    wal_records += other.wal_records;
    wal_bytes += other.wal_bytes;
    wal_fsyncs += other.wal_fsyncs;
  }
};

class TaskScheduler;

/// Shared execution context; owns the counters operators update. The
/// scheduler is borrowed from the engine (null: run everything inline on
/// the calling thread).
struct ExecContext {
  ExecStats stats;
  TaskScheduler* scheduler = nullptr;
  // Borrowed per-query limits; null means uncancellable with no deadline.
  const QueryContext* query = nullptr;
  // Route batch filters/projections through the branch-free kernels in
  // exec/kernels.h where eligible. The scalar expression walker is the
  // always-correct fallback; this flag exists so benches and the
  // differential fuzzer can A/B the two paths. Must be copied into
  // morsel-local contexts by the parallel coordinator.
  bool use_kernels = true;

  /// Full cancellation/deadline check. Called at batch and morsel
  /// boundaries, where the clock read is amortized over many rows.
  Status CheckInterrupt() const {
    return query == nullptr ? Status::OK() : query->Check();
  }

  /// Strided check for per-row loops: the cancellation token (one atomic
  /// load) is consulted every call, the deadline clock only every
  /// `kInterruptStride` calls.
  Status CheckInterruptStrided() {
    if (query == nullptr) return Status::OK();
    if (query->cancel != nullptr && query->cancel->cancelled()) {
      return Status::Cancelled("query cancelled");
    }
    if (++interrupt_tick_ % kInterruptStride == 0) return query->Check();
    return Status::OK();
  }

 private:
  static constexpr std::uint32_t kInterruptStride = 1024;
  std::uint32_t interrupt_tick_ = 0;
};

/// A pull-based physical operator (Volcano-style iterator).
class Operator {
 public:
  explicit Operator(Schema schema) : schema_(std::move(schema)) {}
  virtual ~Operator() = default;

  const Schema& schema() const { return schema_; }

  /// Stable operator name for diagnostics ("SeqScan", "HashJoin", ...).
  virtual const char* name() const { return "Operator"; }

  /// Appends this operator's direct children, letting analysis passes walk
  /// physical trees without knowing every subclass. Leaves append nothing.
  virtual void AppendChildren(std::vector<const Operator*>* out) const {
    (void)out;
  }

  /// Prepares for iteration (builds hash tables, sorts, ...). Must be
  /// called before Next; may be called again to re-run.
  virtual Status Open(ExecContext* ctx) = 0;

  /// Produces the next row into *row. Returns false at end of stream.
  virtual Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) = 0;

 protected:
  Schema schema_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// A fully materialized query result.
struct RowSet {
  Schema schema;
  std::vector<std::vector<Value>> rows;

  std::size_t NumRows() const { return rows.size(); }
  /// Tabular rendering for examples and benches.
  std::string ToString(std::size_t max_rows = 20) const;
};

/// Runs `root` to completion, collecting all rows and updating ctx->stats.
Result<RowSet> ExecuteToCompletion(Operator* root, ExecContext* ctx);

}  // namespace softdb

#endif  // SOFTDB_EXEC_OPERATOR_H_
