#include "exec/kernels.h"

#include "storage/column_vector.h"

#if defined(SOFTDB_SIMD) && defined(__x86_64__)
#define SOFTDB_SIMD_X86 1
#include <immintrin.h>
#endif

namespace softdb {
namespace kernels {

namespace {

/// Generic branch-free compare loop; the compiler specializes one copy per
/// (type, comparator) pair and autovectorizes it. `mask` bytes are 0/1.
template <typename T, typename Load, typename Cmp>
void CmpLoop(const T* data, const std::uint8_t* nulls, std::size_t n,
             std::uint8_t* mask, Load load, Cmp cmp) {
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] =
        static_cast<std::uint8_t>(cmp(load(data[i])) & (nulls[i] == 0));
  }
}

template <typename T, typename Load>
void CmpDispatch(const T* data, const std::uint8_t* nulls, std::size_t n,
                 CompareOp op, decltype(Load{}(T{})) c, std::uint8_t* mask,
                 Load load) {
  using V = decltype(Load{}(T{}));
  switch (op) {
    case CompareOp::kEq:
      CmpLoop(data, nulls, n, mask, load, [c](V v) { return v == c; });
      break;
    case CompareOp::kNe:
      CmpLoop(data, nulls, n, mask, load, [c](V v) { return v != c; });
      break;
    case CompareOp::kLt:
      CmpLoop(data, nulls, n, mask, load, [c](V v) { return v < c; });
      break;
    case CompareOp::kLe:
      CmpLoop(data, nulls, n, mask, load, [c](V v) { return v <= c; });
      break;
    case CompareOp::kGt:
      CmpLoop(data, nulls, n, mask, load, [c](V v) { return v > c; });
      break;
    case CompareOp::kGe:
      CmpLoop(data, nulls, n, mask, load, [c](V v) { return v >= c; });
      break;
  }
}

struct LoadI64 {
  std::int64_t operator()(std::int64_t v) const { return v; }
};
struct LoadI64AsF64 {
  double operator()(std::int64_t v) const { return static_cast<double>(v); }
};
struct LoadF64 {
  double operator()(double v) const { return v; }
};

#if defined(SOFTDB_SIMD_X86)

bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

/// AVX2 int64 compare: 4 lanes per iteration, compare result collapsed to
/// per-byte 0/1 via movemask, NULLs masked scalar (cheap, byte loads).
/// Equality/ordering on two's-complement int64 matches the scalar loops
/// exactly; kNe/kLe/kGe are complements of the supported primitives *on
/// non-NULL rows*, and the null mask is applied after the complement.
__attribute__((target("avx2"))) void CompareMaskI64Avx2(
    const std::int64_t* data, const std::uint8_t* nulls, std::size_t n,
    CompareOp op, std::int64_t constant, std::uint8_t* mask) {
  const __m256i c = _mm256_set1_epi64x(constant);
  const bool invert =
      op == CompareOp::kNe || op == CompareOp::kLe || op == CompareOp::kGe;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    __m256i r;
    switch (op) {
      case CompareOp::kEq:
      case CompareOp::kNe:
        r = _mm256_cmpeq_epi64(v, c);
        break;
      case CompareOp::kGt:
      case CompareOp::kLe:
        r = _mm256_cmpgt_epi64(v, c);
        break;
      case CompareOp::kLt:
      case CompareOp::kGe:
        r = _mm256_cmpgt_epi64(c, v);
        break;
      default:
        r = _mm256_setzero_si256();
        break;
    }
    unsigned bits =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(r)));
    if (invert) bits = ~bits;
    for (std::size_t j = 0; j < 4; ++j) {
      mask[i + j] = static_cast<std::uint8_t>(((bits >> j) & 1u) &
                                              (nulls[i + j] == 0));
    }
  }
  for (; i < n; ++i) {
    bool hit = false;
    switch (op) {
      case CompareOp::kEq:
        hit = data[i] == constant;
        break;
      case CompareOp::kNe:
        hit = data[i] != constant;
        break;
      case CompareOp::kLt:
        hit = data[i] < constant;
        break;
      case CompareOp::kLe:
        hit = data[i] <= constant;
        break;
      case CompareOp::kGt:
        hit = data[i] > constant;
        break;
      case CompareOp::kGe:
        hit = data[i] >= constant;
        break;
    }
    mask[i] = static_cast<std::uint8_t>(hit & (nulls[i] == 0));
  }
}

/// AVX2 double compare. The ordered/unordered predicate choice mirrors the
/// scalar operators bit-for-bit: <, <=, >, >=, == are false on NaN
/// (ordered, non-signalling), != is true on NaN (unordered).
__attribute__((target("avx2"))) void CompareMaskF64Avx2(
    const double* data, const std::uint8_t* nulls, std::size_t n,
    CompareOp op, double constant, std::uint8_t* mask) {
  const __m256d c = _mm256_set1_pd(constant);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(data + i);
    __m256d r;
    switch (op) {
      case CompareOp::kEq:
        r = _mm256_cmp_pd(v, c, _CMP_EQ_OQ);
        break;
      case CompareOp::kNe:
        r = _mm256_cmp_pd(v, c, _CMP_NEQ_UQ);
        break;
      case CompareOp::kLt:
        r = _mm256_cmp_pd(v, c, _CMP_LT_OQ);
        break;
      case CompareOp::kLe:
        r = _mm256_cmp_pd(v, c, _CMP_LE_OQ);
        break;
      case CompareOp::kGt:
        r = _mm256_cmp_pd(v, c, _CMP_GT_OQ);
        break;
      case CompareOp::kGe:
        r = _mm256_cmp_pd(v, c, _CMP_GE_OQ);
        break;
      default:
        r = _mm256_setzero_pd();
        break;
    }
    const unsigned bits = static_cast<unsigned>(_mm256_movemask_pd(r));
    for (std::size_t j = 0; j < 4; ++j) {
      mask[i + j] = static_cast<std::uint8_t>(((bits >> j) & 1u) &
                                              (nulls[i + j] == 0));
    }
  }
  if (i < n) {
    CmpDispatch(data + i, nulls + i, n - i, op, constant, mask + i,
                LoadF64{});
  }
}

/// SSE2 double compare (x86-64 baseline; used when AVX2 is absent at
/// runtime). Same predicate/NaN contract as the AVX2 variant.
void CompareMaskF64Sse2(const double* data, const std::uint8_t* nulls,
                        std::size_t n, CompareOp op, double constant,
                        std::uint8_t* mask) {
  const __m128d c = _mm_set1_pd(constant);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v = _mm_loadu_pd(data + i);
    __m128d r;
    switch (op) {
      case CompareOp::kEq:
        r = _mm_cmpeq_pd(v, c);
        break;
      case CompareOp::kNe:
        r = _mm_cmpneq_pd(v, c);
        break;
      case CompareOp::kLt:
        r = _mm_cmplt_pd(v, c);
        break;
      case CompareOp::kLe:
        r = _mm_cmple_pd(v, c);
        break;
      case CompareOp::kGt:
        r = _mm_cmpgt_pd(v, c);
        break;
      case CompareOp::kGe:
        r = _mm_cmpge_pd(v, c);
        break;
      default:
        r = _mm_setzero_pd();
        break;
    }
    const unsigned bits = static_cast<unsigned>(_mm_movemask_pd(r));
    mask[i] = static_cast<std::uint8_t>((bits & 1u) & (nulls[i] == 0));
    mask[i + 1] =
        static_cast<std::uint8_t>(((bits >> 1) & 1u) & (nulls[i + 1] == 0));
  }
  if (i < n) {
    CmpDispatch(data + i, nulls + i, n - i, op, constant, mask + i,
                LoadF64{});
  }
}

#endif  // SOFTDB_SIMD_X86

}  // namespace

void CompareMaskI64(const std::int64_t* data, const std::uint8_t* nulls,
                    std::size_t n, CompareOp op, std::int64_t constant,
                    std::uint8_t* mask) {
#if defined(SOFTDB_SIMD_X86)
  if (HasAvx2()) {
    CompareMaskI64Avx2(data, nulls, n, op, constant, mask);
    return;
  }
#endif
  CmpDispatch(data, nulls, n, op, constant, mask, LoadI64{});
}

void CompareMaskI64AsF64(const std::int64_t* data, const std::uint8_t* nulls,
                         std::size_t n, CompareOp op, double constant,
                         std::uint8_t* mask) {
  // The int→double widening dominates; the autovectorizer handles the
  // cvtqq path well enough that no intrinsic variant is warranted.
  CmpDispatch(data, nulls, n, op, constant, mask, LoadI64AsF64{});
}

void CompareMaskF64(const double* data, const std::uint8_t* nulls,
                    std::size_t n, CompareOp op, double constant,
                    std::uint8_t* mask) {
#if defined(SOFTDB_SIMD_X86)
  if (HasAvx2()) {
    CompareMaskF64Avx2(data, nulls, n, op, constant, mask);
  } else {
    CompareMaskF64Sse2(data, nulls, n, op, constant, mask);
  }
  return;
#endif
  CmpDispatch(data, nulls, n, op, constant, mask, LoadF64{});
}

void CodeEqMask(const std::int32_t* codes, std::size_t n, bool negated,
                std::int32_t target, std::uint8_t* mask) {
  constexpr std::int32_t kNull = ColumnVector::kNullCode;
  if (!negated) {
    // target is never kNullCode (callers map absent strings to
    // kAbsentCode), so NULL rows cannot match.
    for (std::size_t i = 0; i < n; ++i) {
      mask[i] = static_cast<std::uint8_t>(codes[i] == target);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      mask[i] =
          static_cast<std::uint8_t>((codes[i] != target) & (codes[i] != kNull));
    }
  }
}

void CodeInMask(const std::int32_t* codes, std::size_t n,
                const std::int32_t* targets, std::size_t k,
                std::uint8_t* mask) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t hit = 0;
    for (std::size_t t = 0; t < k; ++t) {
      hit |= static_cast<std::uint8_t>(codes[i] == targets[t]);
    }
    mask[i] = hit;
  }
}

void IsNullMask(const std::uint8_t* nulls, std::size_t n, bool negated,
                std::uint8_t* mask) {
  if (negated) {
    for (std::size_t i = 0; i < n; ++i) {
      mask[i] = static_cast<std::uint8_t>(nulls[i] == 0);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      mask[i] = static_cast<std::uint8_t>(nulls[i] != 0);
    }
  }
}

void AndMask(const std::uint8_t* other, std::size_t n, std::uint8_t* mask) {
  for (std::size_t i = 0; i < n; ++i) mask[i] &= other[i];
}

void NullOrMask(const std::uint8_t* a, const std::uint8_t* b, std::size_t n,
                std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(a[i] | b[i]);
  }
}

std::size_t FilterSelByMask(const std::uint8_t* mask, SelIdx* sel,
                            std::size_t n) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const SelIdx s = sel[i];
    sel[kept] = s;
    kept += mask[s];
  }
  return kept;
}

void ArithF64(ArithOp op, const double* a, const double* b, std::size_t n,
              double* out) {
  switch (op) {
    case ArithOp::kAdd:
      for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
      break;
    case ArithOp::kSub:
      for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
      break;
    case ArithOp::kMul:
      for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
      break;
    case ArithOp::kDiv:
      break;  // kDiv keeps the scalar loop (divide-by-zero → NULL).
  }
}

void ArithI64ViaDouble(ArithOp op, const std::int64_t* a,
                       const std::int64_t* b, std::size_t n,
                       std::int64_t* out) {
  // Exactly the row engine's cast chain (NumericValue widens through
  // double), preserved for bit-identical results on |v| ≥ 2^53.
  auto rt = [](std::int64_t v) {
    return static_cast<std::int64_t>(static_cast<double>(v));
  };
  switch (op) {
    case ArithOp::kAdd:
      for (std::size_t i = 0; i < n; ++i) out[i] = rt(a[i]) + rt(b[i]);
      break;
    case ArithOp::kSub:
      for (std::size_t i = 0; i < n; ++i) out[i] = rt(a[i]) - rt(b[i]);
      break;
    case ArithOp::kMul:
      for (std::size_t i = 0; i < n; ++i) out[i] = rt(a[i]) * rt(b[i]);
      break;
    case ArithOp::kDiv:
      break;  // kDiv keeps the scalar loop (divide-by-zero → NULL).
  }
}

std::string SimdCapability() {
#if defined(SOFTDB_SIMD_X86)
  return HasAvx2() ? "avx2" : "sse2";
#else
  return "scalar";
#endif
}

}  // namespace kernels
}  // namespace softdb
