#ifndef SOFTDB_EXEC_SCHEDULER_H_
#define SOFTDB_EXEC_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"

namespace softdb {

/// A fixed pool of worker threads with per-worker task deques and work
/// stealing, used by the morsel-driven parallel operators (DESIGN.md §8).
///
/// Each `Run` call submits one task group: tasks are dealt round-robin
/// across the worker deques, workers drain their own deque FIFO and steal
/// from the back of other deques when idle, and the calling thread blocks
/// until every task in the group has finished (the group barrier). The
/// first failure — by task index, so the result is deterministic — is
/// returned; exceptions escaping a task are captured as internal errors.
///
/// `Run` may be called concurrently from many threads (one group per
/// caller); groups share the pool. Tasks must not call `Run` themselves:
/// a worker blocked inside a nested barrier could deadlock the pool.
class TaskScheduler {
 public:
  using Task = std::function<Status()>;

  /// Spawns `num_threads` workers (at least one).
  explicit TaskScheduler(std::size_t num_threads);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Executes all tasks on the pool and blocks until the last one
  /// finishes. Returns OK iff every task returned OK; otherwise the
  /// non-OK status of the lowest-indexed failing task.
  Status Run(std::vector<Task> tasks);

  std::size_t num_threads() const { return workers_.size(); }

  /// Total tasks executed by a worker other than the one whose deque
  /// they were submitted to. Monotonic; for tests and diagnostics.
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  /// One submitted group: the barrier state for a single Run call.
  struct TaskGroup {
    std::vector<Task> tasks;
    std::vector<Status> statuses;          // One slot per task.
    std::atomic<std::size_t> remaining{0};  // Tasks not yet finished.
  };

  /// A task reference living in a worker deque.
  struct TaskItem {
    std::shared_ptr<TaskGroup> group;
    std::size_t index = 0;
  };

  /// A worker's deque. Owners pop the front (submission order preserves
  /// morsel locality); thieves pop the back to minimize contention.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<TaskItem> items;
  };

  void WorkerLoop(std::size_t self);
  bool TryGetTask(std::size_t self, TaskItem* out);
  void ExecuteItem(const TaskItem& item);
  static Status RunTask(const Task& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // Guards sleep/wake and shutdown.
  std::condition_variable cv_;     // Workers wait here for new tasks.
  std::condition_variable done_cv_;  // Run callers wait here for barriers.
  std::atomic<std::size_t> queued_{0};  // Items across all deques.
  std::atomic<std::uint64_t> steals_{0};
  std::size_t next_queue_ = 0;  // Round-robin submission cursor (mu_).
  bool shutdown_ = false;       // Guarded by mu_.
};

}  // namespace softdb

#endif  // SOFTDB_EXEC_SCHEDULER_H_
