#include "exec/scheduler.h"

#include <exception>
#include <string>
#include <utility>

#include "common/failpoint.h"

namespace softdb {

TaskScheduler::TaskScheduler(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

Status TaskScheduler::Run(std::vector<Task> tasks) {
  if (tasks.empty()) return Status::OK();
  auto group = std::make_shared<TaskGroup>();
  group->tasks = std::move(tasks);
  const std::size_t n = group->tasks.size();
  group->statuses.resize(n);
  group->remaining.store(n, std::memory_order_relaxed);
  {
    // Deal tasks round-robin across worker deques. The pool mutex also
    // serializes the submission cursor between concurrent Run callers.
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < n; ++i) {
      WorkerQueue& q = *queues_[next_queue_];
      next_queue_ = (next_queue_ + 1) % queues_.size();
      std::lock_guard<std::mutex> qlk(q.mu);
      q.items.push_back(TaskItem{group, i});
    }
    queued_.fetch_add(n, std::memory_order_release);
  }
  cv_.notify_all();

  // Group barrier: wait until every task has run. Workers notify done_cv_
  // when a group's remaining count reaches zero.
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return group->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  for (const Status& st : group->statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

void TaskScheduler::WorkerLoop(std::size_t self) {
  while (true) {
    TaskItem item;
    if (TryGetTask(self, &item)) {
      ExecuteItem(item);
      item.group.reset();
      continue;
    }
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
      return shutdown_ || queued_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_) return;
  }
}

bool TaskScheduler::TryGetTask(std::size_t self, TaskItem* out) {
  // Own deque first, oldest task first.
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.items.empty()) {
      *out = std::move(q.items.front());
      q.items.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  // Steal from the back of the other deques.
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    WorkerQueue& q = *queues_[(self + i) % queues_.size()];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.items.empty()) {
      *out = std::move(q.items.back());
      q.items.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void TaskScheduler::ExecuteItem(const TaskItem& item) {
  Status status = RunTask(item.group->tasks[item.index]);
  item.group->statuses[item.index] = std::move(status);
  if (item.group->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the group: wake its Run caller. Taking the pool mutex
    // pairs with the caller's wait and prevents a lost wakeup.
    std::lock_guard<std::mutex> lk(mu_);
    done_cv_.notify_all();
  }
}

Status TaskScheduler::RunTask(const Task& task) {
  SOFTDB_INJECT_FAULT(
      "scheduler.task",
      Status::ResourceExhausted("injected worker task failure"));
  try {
    return task();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("worker task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("worker task threw a non-std exception");
  }
}

}  // namespace softdb
