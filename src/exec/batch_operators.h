#ifndef SOFTDB_EXEC_BATCH_OPERATORS_H_
#define SOFTDB_EXEC_BATCH_OPERATORS_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "exec/column_batch.h"
#include "exec/expr_eval.h"
#include "exec/operator.h"
#include "exec/operators.h"
#include "plan/logical_plan.h"
#include "plan/predicate.h"
#include "storage/index.h"
#include "storage/table.h"

namespace softdb {

/// A pull-based vectorized operator producing ColumnBatches instead of
/// rows. Every batch operator maintains ExecStats exactly as its row twin
/// does, so a fully-drained query reports identical counters on either
/// engine (the invariant the differential fuzzer checks).
class BatchOperator {
 public:
  explicit BatchOperator(Schema schema) : schema_(std::move(schema)) {}
  virtual ~BatchOperator() = default;

  const Schema& schema() const { return schema_; }

  /// Stable operator name for diagnostics ("BatchSeqScan", ...).
  virtual const char* name() const { return "BatchOperator"; }

  /// Appends this operator's direct children for analysis-pass walks.
  virtual void AppendChildren(std::vector<const BatchOperator*>* out) const {
    (void)out;
  }

  virtual Status Open(ExecContext* ctx) = 0;

  /// Produces the next non-empty batch into *batch (columns, size, and
  /// selection vector all set). Returns false at end of stream.
  virtual Result<bool> NextBatch(ExecContext* ctx, ColumnBatch* batch) = 0;

 protected:
  Schema schema_;
};

using BatchOperatorPtr = std::unique_ptr<BatchOperator>;

/// Vectorized full-table scan: binds zero-copy column views over each run
/// of kBatchCapacity slots, builds the selection vector from the live
/// bitmap, and narrows it predicate-at-a-time. Page accounting and the
/// §4.2 runtime-parameter checks are identical to SeqScanOp.
class BatchSeqScanOp final : public BatchOperator {
 public:
  BatchSeqScanOp(const Table* table, Schema schema,
                 std::vector<Predicate> preds);

  /// Same contract as SeqScanOp::AddRuntimeParameter.
  void AddRuntimeParameter(std::size_t predicate_index, const Index* index,
                           SimplePredicate simple);

  /// Morsel mode (parallel engine): restricts the scan to slots
  /// [base, base+rows) with a pre-resolved §4.2 skip set (`skip` may be
  /// null: apply every predicate). Open then performs no page or
  /// runtime-parameter accounting — the parallel coordinator resolved the
  /// parameters once and charged the whole table up front, so per-query
  /// stats still match serial execution exactly. `skip` must outlive the
  /// scan's use.
  void BindMorsel(std::size_t base, std::size_t rows,
                  const std::vector<bool>* skip);

  /// Same contract as SeqScanOp::SetZoneMapSkips. In morsel mode the block
  /// counters are NOT charged here (the coordinator charged them once);
  /// rows of skipped blocks are simply dropped from the selection vector,
  /// so straddling morsels scan exactly the rows serial engines scan.
  void SetZoneMapSkips(ZoneMapSkips skips) { zone_skips_ = std::move(skips); }
  const ZoneMapSkips& zone_map_skips() const { return zone_skips_; }

  const char* name() const override { return "BatchSeqScan"; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  const std::vector<ScanRuntimeParameter>& runtime_params() const {
    return runtime_params_;
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(ExecContext* ctx, ColumnBatch* batch) override;

 private:
  const Table* table_;
  std::vector<Predicate> predicates_;
  std::vector<ScanRuntimeParameter> runtime_params_;
  std::vector<const Predicate*> effective_;  // Predicates applied this run.
  ZoneMapSkips zone_skips_;
  bool provably_empty_ = false;
  RowId next_ = 0;
  // Morsel mode state; end_ is NumSlots() outside morsel mode.
  bool morsel_mode_ = false;
  std::size_t morsel_base_ = 0;
  std::size_t morsel_end_ = 0;
  const std::vector<bool>* morsel_skip_ = nullptr;
};

/// Vectorized index range scan: gathers qualifying rows (which are not
/// contiguous) into owned batch columns, then filters residuals. Open-time
/// accounting matches IndexRangeScanOp.
class BatchIndexRangeScanOp final : public BatchOperator {
 public:
  BatchIndexRangeScanOp(const Table* table, const Index* index, Schema schema,
                        std::optional<Value> lo, bool lo_inclusive,
                        std::optional<Value> hi, bool hi_inclusive,
                        std::vector<Predicate> residual);

  const char* name() const override { return "BatchIndexRangeScan"; }
  const std::vector<Predicate>& residual() const { return residual_; }

  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(ExecContext* ctx, ColumnBatch* batch) override;

 private:
  const Table* table_;
  const Index* index_;
  std::optional<Value> lo_, hi_;
  bool lo_inclusive_, hi_inclusive_;
  std::vector<Predicate> residual_;
  std::vector<const Predicate*> effective_;
  std::vector<RowId> rows_;
  std::size_t next_ = 0;
};

/// Vectorized residual filter: narrows the child's selection in place —
/// no data movement at all.
class BatchFilterOp final : public BatchOperator {
 public:
  BatchFilterOp(BatchOperatorPtr child, std::vector<Predicate> preds);

  const char* name() const override { return "BatchFilter"; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  void AppendChildren(std::vector<const BatchOperator*>* out) const override {
    out->push_back(child_.get());
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(ExecContext* ctx, ColumnBatch* batch) override;

 private:
  BatchOperatorPtr child_;
  std::vector<Predicate> predicates_;
  std::vector<const Predicate*> effective_;
};

/// Vectorized projection: evaluates each output expression over the
/// selected rows and emits a dense owned batch. Output column types follow
/// the expressions' static result types (as the row engine's Values do).
class BatchProjectOp final : public BatchOperator {
 public:
  BatchProjectOp(BatchOperatorPtr child, Schema schema,
                 std::vector<ExprPtr> exprs);

  const char* name() const override { return "BatchProject"; }
  void AppendChildren(std::vector<const BatchOperator*>* out) const override {
    out->push_back(child_.get());
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(ExecContext* ctx, ColumnBatch* batch) override;

 private:
  BatchOperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  ColumnBatch input_;
};

/// Vectorized hash join on equi keys; builds on the right input, probes
/// with the left, NULL keys never match. Matches may overflow a batch, so
/// probe progress (batch, position, match index) carries across NextBatch
/// calls. rows_joined counts enumerated pairs before residual filtering,
/// exactly as HashJoinOp does.
class BatchHashJoinOp final : public BatchOperator {
 public:
  BatchHashJoinOp(BatchOperatorPtr left, BatchOperatorPtr right,
                  std::vector<JoinNode::EquiKey> keys,
                  std::vector<Predicate> residual);

  const char* name() const override { return "BatchHashJoin"; }
  const std::vector<Predicate>& residual() const { return residual_; }
  void AppendChildren(std::vector<const BatchOperator*>* out) const override {
    out->push_back(left_.get());
    out->push_back(right_.get());
  }

  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(ExecContext* ctx, ColumnBatch* batch) override;

 private:
  BatchOperatorPtr left_;
  BatchOperatorPtr right_;
  std::vector<JoinNode::EquiKey> keys_;
  std::vector<Predicate> residual_;
  std::unordered_map<std::vector<Value>, std::vector<std::vector<Value>>,
                     ValueVecHash, ValueVecEq>
      build_;
  // Probe carry state.
  ColumnBatch probe_batch_;
  bool probe_valid_ = false;
  std::size_t probe_idx_ = 0;
  std::vector<Value> probe_row_;
  const std::vector<std::vector<Value>>* matches_ = nullptr;
  std::size_t match_idx_ = 0;
  // Dictionary fast path for a single VARCHAR key over a view-mode probe
  // column: memoizes probe-code → build-bucket lookups, so each distinct
  // probe string is boxed and hashed once per join instead of once per
  // row. Code equality ⇔ string equality, so results are identical to the
  // generic path. Keyed by the probe column's backing ColumnVector.
  const ColumnVector* probe_dict_source_ = nullptr;
  std::vector<const std::vector<std::vector<Value>>*> code_buckets_;
  std::vector<std::uint8_t> code_cached_;
};

/// Bridges a vectorized subtree into the row engine: materializes each
/// selected batch position as a row, on demand. Adds no stats of its own.
class BatchAdapterOp final : public Operator {
 public:
  explicit BatchAdapterOp(BatchOperatorPtr child)
      : Operator(child->schema()), child_(std::move(child)) {}

  const char* name() const override { return "BatchAdapter"; }
  const BatchOperator& batch_child() const { return *child_; }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  BatchOperatorPtr child_;
  ColumnBatch batch_;
  bool batch_valid_ = false;
  std::size_t idx_ = 0;
};

}  // namespace softdb

#endif  // SOFTDB_EXEC_BATCH_OPERATORS_H_
