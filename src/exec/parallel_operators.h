#ifndef SOFTDB_EXEC_PARALLEL_OPERATORS_H_
#define SOFTDB_EXEC_PARALLEL_OPERATORS_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "exec/batch_operators.h"
#include "exec/morsel.h"
#include "exec/operator.h"
#include "exec/operators.h"
#include "plan/logical_plan.h"
#include "plan/predicate.h"
#include "storage/table.h"

namespace softdb {

/// One stage stacked above the scan leaf of a parallel pipeline.
struct PipelineStage {
  enum class Kind { kFilter, kProject };

  Kind kind = Kind::kFilter;
  std::vector<Predicate> predicates;  // kFilter.
  Schema schema;                      // kProject output schema.
  std::vector<ExprPtr> exprs;         // kProject expressions.

  PipelineStage Clone() const;
};

/// A parallel-safe scan pipeline: a sequential-scan leaf (with its §4.2
/// runtime parameters) plus a chain of filter/project stages. The planner
/// builds one spec per parallel subtree; each worker instantiates its own
/// executable chain from it, so no operator state is shared across
/// threads.
struct PipelineSpec {
  const Table* table = nullptr;
  Schema scan_schema;
  std::vector<Predicate> scan_predicates;
  std::vector<ScanRuntimeParameter> runtime_params;
  /// Plan-time zone-map skip set (may be null). The coordinator charges
  /// blocks_total/blocks_skipped once per query; worker chains drop rows
  /// of skipped blocks from their selection vectors without charging.
  ZoneMapSkips zone_skips;
  std::vector<PipelineStage> stages;

  /// Output schema of the full chain (top project, else the scan).
  const Schema& output_schema() const;

  PipelineSpec Clone() const;

  /// WireRuntimeParams compatibility (same surface as the scan ops).
  const std::vector<Predicate>& predicates() const { return scan_predicates; }
  void AddRuntimeParameter(std::size_t predicate_index, const Index* index,
                           SimplePredicate simple) {
    runtime_params.push_back(
        ScanRuntimeParameter{predicate_index, index, std::move(simple)});
  }
};

/// A per-worker executable instantiation of a PipelineSpec: the batch
/// operator chain, its morsel-bindable scan leaf, and the reused
/// ColumnBatch scratch. Leased from an ExecPool, one per live worker.
struct PipelineChain {
  BatchOperatorPtr root;
  BatchSeqScanOp* leaf = nullptr;
  ColumnBatch scratch;
};

std::unique_ptr<PipelineChain> BuildPipelineChain(const PipelineSpec& spec);

/// Morsel-driven parallel scan pipeline (scan → filter* → project?).
///
/// Open resolves the §4.2 runtime parameters exactly once — every morsel
/// sees the same consistent SC snapshot and the per-query accounting
/// matches the serial scan — then runs one task per morsel on
/// ExecContext::scheduler (inline when absent). Workers drain a pooled
/// chain bound to their morsel's slot range into a per-morsel result
/// buffer with per-morsel ExecStats; the coordinator concatenates both in
/// morsel order, so output and stats are bit-identical to serial
/// execution.
class ParallelPipelineOp final : public Operator {
 public:
  ParallelPipelineOp(PipelineSpec spec, std::size_t morsel_rows);

  const char* name() const override { return "ParallelPipeline"; }
  const PipelineSpec& spec() const { return spec_; }
  std::size_t morsel_rows() const { return morsel_rows_; }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  PipelineSpec spec_;
  std::size_t morsel_rows_;
  std::vector<bool> skip_;  // Resolved §4.2 skip set, shared by morsels.
  std::vector<std::vector<std::vector<Value>>> results_;  // Per morsel.
  std::size_t cursor_morsel_ = 0;
  std::size_t cursor_row_ = 0;
};

/// Parallel hash join on equi keys over two pipeline inputs.
///
/// Three phases, each ending at a scheduler barrier: (1) build-side
/// morsels run in parallel, producing per-morsel (key, row) vectors;
/// (2) partition tasks fold those vectors — in morsel order, so per-key
/// row order matches the serial build — into hash-partitioned tables;
/// (3) probe-side morsels run in parallel, each probing the read-only
/// partitions and emitting matched rows (residual applied after
/// rows_joined counting, exactly like BatchHashJoinOp) into per-morsel
/// buffers merged in morsel order. NULL keys never build or match.
class ParallelHashJoinOp final : public Operator {
 public:
  ParallelHashJoinOp(PipelineSpec probe, PipelineSpec build,
                     std::vector<JoinNode::EquiKey> keys,
                     std::vector<Predicate> residual,
                     std::size_t morsel_rows);

  const char* name() const override { return "ParallelHashJoin"; }
  const PipelineSpec& probe_spec() const { return probe_; }
  const PipelineSpec& build_spec() const { return build_; }
  const std::vector<Predicate>& residual() const { return residual_; }
  std::size_t morsel_rows() const { return morsel_rows_; }

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, std::vector<Value>* row) override;

 private:
  using BuildMap =
      std::unordered_map<std::vector<Value>, std::vector<std::vector<Value>>,
                         ValueVecHash, ValueVecEq>;

  Status RunBuildPhase(ExecContext* ctx);
  Status RunProbePhase(ExecContext* ctx);

  PipelineSpec probe_;
  PipelineSpec build_;
  std::vector<JoinNode::EquiKey> keys_;
  std::vector<Predicate> residual_;
  std::size_t morsel_rows_;

  std::vector<bool> probe_skip_;
  std::vector<bool> build_skip_;
  std::vector<BuildMap> partitions_;
  std::vector<std::vector<std::vector<Value>>> results_;  // Per probe morsel.
  std::size_t cursor_morsel_ = 0;
  std::size_t cursor_row_ = 0;
};

}  // namespace softdb

#endif  // SOFTDB_EXEC_PARALLEL_OPERATORS_H_
