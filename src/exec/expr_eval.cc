#include "exec/expr_eval.h"

#include <array>
#include <numeric>

#include "exec/kernels.h"
#include "storage/column_vector.h"

namespace softdb {

namespace {

bool IsIntLike(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDate || t == TypeId::kBool;
}

bool SameFamily(TypeId a, TypeId b) {
  if (a == b) return true;
  return IsNumericType(a) && IsNumericType(b);
}

Status CompareMismatch(TypeId a, TypeId b) {
  return Status::TypeMismatch(std::string("cannot compare ") + TypeName(a) +
                              " with " + TypeName(b));
}

/// Three-way compare of two vec entries (caller has checked both non-null
/// and family-compatible). Mirrors Value::Compare's type dispatch: string
/// vs string lexicographic, int-like pairs in int64, anything else via the
/// double view.
int CompareAt(const BatchVec& l, std::size_t i, const BatchVec& r,
              std::size_t j) {
  if (l.type == TypeId::kString) {
    const std::string& a = *l.str[i];
    const std::string& b = *r.str[j];
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (IsIntLike(l.type) && IsIntLike(r.type)) {
    const std::int64_t a = l.i64[i];
    const std::int64_t b = r.i64[j];
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  const double a = l.NumericAt(i);
  const double b = r.NumericAt(j);
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

bool ApplyCompareOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

Status EvalColumnRef(const ColumnRefExpr& e, const ColumnBatch& batch,
                     const SelIdx* sel, std::size_t n, BatchVec* out) {
  if (!e.bound()) {
    return Status::Internal("unbound column ref: " + e.name());
  }
  if (e.index() >= batch.NumColumns()) {
    return Status::Internal("row too narrow");
  }
  const BatchColumn& col = batch.column(e.index());
  out->Resize(col.type(), n);
  if (col.type() == TypeId::kDouble) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pos = sel[i];
      out->null[i] = col.IsNull(pos) ? 1 : 0;
      out->f64[i] = col.Double(pos);
    }
  } else if (col.type() == TypeId::kString) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pos = sel[i];
      out->null[i] = col.IsNull(pos) ? 1 : 0;
      out->str[i] = &col.String(pos);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pos = sel[i];
      out->null[i] = col.IsNull(pos) ? 1 : 0;
      out->i64[i] = col.Int64(pos);
    }
  }
  return Status::OK();
}

Status EvalLiteral(const LiteralExpr& e, std::size_t n, BatchVec* out) {
  const Value& v = e.value();
  out->Resize(v.type(), n);
  if (v.is_null()) {
    out->null.assign(n, 1);
    return Status::OK();
  }
  if (v.type() == TypeId::kDouble) {
    std::fill(out->f64.begin(), out->f64.end(), v.AsDouble());
  } else if (v.type() == TypeId::kString) {
    std::fill(out->str.begin(), out->str.end(), &v.AsString());
  } else {
    std::fill(out->i64.begin(), out->i64.end(), v.AsInt64());
  }
  return Status::OK();
}

Status EvalComparison(const ComparisonExpr& e, const ColumnBatch& batch,
                      const SelIdx* sel, std::size_t n, BatchVec* out) {
  BatchVec l, r;
  SOFTDB_RETURN_IF_ERROR(EvalExprBatch(*e.left(), batch, sel, n, &l));
  SOFTDB_RETURN_IF_ERROR(EvalExprBatch(*e.right(), batch, sel, n, &r));
  out->Resize(TypeId::kBool, n);
  if (!SameFamily(l.type, r.type)) {
    // The row engine only reaches Value::Compare — and its error — for rows
    // where both sides are non-null; rows with a NULL side yield NULL first.
    for (std::size_t i = 0; i < n; ++i) {
      if (l.null[i] || r.null[i]) {
        out->null[i] = 1;
        continue;
      }
      return CompareMismatch(l.type, r.type);
    }
    return Status::OK();
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (l.null[i] || r.null[i]) {
      out->null[i] = 1;
      continue;
    }
    out->i64[i] = ApplyCompareOp(e.op(), CompareAt(l, i, r, i)) ? 1 : 0;
  }
  return Status::OK();
}

Status EvalLogical(const LogicalExpr& e, const ColumnBatch& batch,
                   const SelIdx* sel, std::size_t n, BatchVec* out) {
  const bool is_and = e.kind() == ExprKind::kAnd;
  out->Resize(TypeId::kBool, n);
  // Kleene AND/OR with the row engine's per-row short-circuit: child k is
  // evaluated only for rows no earlier child already decided (false for
  // AND, true for OR) — this keeps error reachability identical, not just
  // values. `live` holds result indexes still undecided.
  std::vector<std::uint32_t> live(n);
  std::iota(live.begin(), live.end(), 0u);
  std::vector<std::uint8_t> saw_null(n, 0);
  std::vector<SelIdx> sub(n);
  std::vector<std::uint32_t> next_live;
  BatchVec cv;
  for (const ExprPtr& child : e.children()) {
    if (live.empty()) break;
    for (std::size_t j = 0; j < live.size(); ++j) sub[j] = sel[live[j]];
    SOFTDB_RETURN_IF_ERROR(
        EvalExprBatch(*child, batch, sub.data(), live.size(), &cv));
    next_live.clear();
    for (std::size_t j = 0; j < live.size(); ++j) {
      const std::uint32_t idx = live[j];
      if (cv.null[j]) {
        saw_null[idx] = 1;
        next_live.push_back(idx);
        continue;
      }
      const bool b = cv.i64[j] != 0;
      if (b == is_and) {
        next_live.push_back(idx);  // Non-deciding; keep evaluating.
      } else {
        out->i64[idx] = b ? 1 : 0;  // Decided (false for AND, true for OR).
        out->null[idx] = 0;
      }
    }
    live.swap(next_live);
  }
  for (std::uint32_t idx : live) {
    if (saw_null[idx]) {
      out->null[idx] = 1;
    } else {
      out->i64[idx] = is_and ? 1 : 0;
      out->null[idx] = 0;
    }
  }
  return Status::OK();
}

Status EvalNot(const NotExpr& e, const ColumnBatch& batch, const SelIdx* sel,
               std::size_t n, BatchVec* out) {
  BatchVec child;
  SOFTDB_RETURN_IF_ERROR(EvalExprBatch(*e.child(), batch, sel, n, &child));
  out->Resize(TypeId::kBool, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (child.null[i]) {
      out->null[i] = 1;
    } else {
      out->i64[i] = child.i64[i] != 0 ? 0 : 1;
    }
  }
  return Status::OK();
}

Status EvalArithmetic(const ArithmeticExpr& e, const ColumnBatch& batch,
                      const SelIdx* sel, std::size_t n, BatchVec* out) {
  BatchVec l, r;
  SOFTDB_RETURN_IF_ERROR(EvalExprBatch(*e.left(), batch, sel, n, &l));
  SOFTDB_RETURN_IF_ERROR(EvalExprBatch(*e.right(), batch, sel, n, &r));
  const TypeId rt = e.result_type();
  out->Resize(rt, n);
  // Kernel fast paths for the homogeneous-type cases: hoist the op switch
  // out of the loop, merge NULLs branch-free, and let the payload loop
  // autovectorize. kDiv keeps the scalar loop (divide-by-zero → NULL is a
  // per-row decision), as do mixed-type operand combinations.
  if (e.op() != ArithOp::kDiv && n > 0) {
    if (rt == TypeId::kDouble && l.type == TypeId::kDouble &&
        r.type == TypeId::kDouble) {
      kernels::NullOrMask(l.null.data(), r.null.data(), n,
                          out->null.data());
      kernels::ArithF64(e.op(), l.f64.data(), r.f64.data(), n,
                        out->f64.data());
      return Status::OK();
    }
    if (rt != TypeId::kDouble && rt != TypeId::kString &&
        IsIntLike(l.type) && IsIntLike(r.type)) {
      kernels::NullOrMask(l.null.data(), r.null.data(), n,
                          out->null.data());
      kernels::ArithI64ViaDouble(e.op(), l.i64.data(), r.i64.data(), n,
                                 out->i64.data());
      return Status::OK();
    }
  }
  if (rt == TypeId::kDouble) {
    for (std::size_t i = 0; i < n; ++i) {
      if (l.null[i] || r.null[i]) {
        out->null[i] = 1;
        continue;
      }
      const double a = l.NumericAt(i);
      const double b = r.NumericAt(i);
      switch (e.op()) {
        case ArithOp::kAdd:
          out->f64[i] = a + b;
          break;
        case ArithOp::kSub:
          out->f64[i] = a - b;
          break;
        case ArithOp::kMul:
          out->f64[i] = a * b;
          break;
        case ArithOp::kDiv:
          if (b == 0.0) {
            out->null[i] = 1;
          } else {
            out->f64[i] = a / b;
          }
          break;
      }
    }
    return Status::OK();
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (l.null[i] || r.null[i]) {
      out->null[i] = 1;
      continue;
    }
    // The row engine routes int arithmetic through NumericValue() (a double
    // round-trip); replicate the exact cast chain for bit-identical output.
    const std::int64_t a = static_cast<std::int64_t>(l.NumericAt(i));
    const std::int64_t b = static_cast<std::int64_t>(r.NumericAt(i));
    switch (e.op()) {
      case ArithOp::kAdd:
        out->i64[i] = a + b;
        break;
      case ArithOp::kSub:
        out->i64[i] = a - b;
        break;
      case ArithOp::kMul:
        out->i64[i] = a * b;
        break;
      case ArithOp::kDiv:
        if (b == 0) {
          out->null[i] = 1;
        } else {
          out->i64[i] = a / b;
        }
        break;
    }
  }
  return Status::OK();
}

Status EvalBetween(const BetweenExpr& e, const ColumnBatch& batch,
                   const SelIdx* sel, std::size_t n, BatchVec* out) {
  BatchVec v, lo, hi;
  SOFTDB_RETURN_IF_ERROR(EvalExprBatch(*e.input(), batch, sel, n, &v));
  SOFTDB_RETURN_IF_ERROR(EvalExprBatch(*e.lo(), batch, sel, n, &lo));
  SOFTDB_RETURN_IF_ERROR(EvalExprBatch(*e.hi(), batch, sel, n, &hi));
  out->Resize(TypeId::kBool, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (v.null[i] || lo.null[i] || hi.null[i]) {
      out->null[i] = 1;
      continue;
    }
    if (!SameFamily(v.type, lo.type)) return CompareMismatch(v.type, lo.type);
    const int cl = CompareAt(v, i, lo, i);
    if (!SameFamily(v.type, hi.type)) return CompareMismatch(v.type, hi.type);
    const int ch = CompareAt(v, i, hi, i);
    out->i64[i] = (cl >= 0 && ch <= 0) ? 1 : 0;
  }
  return Status::OK();
}

Status EvalInList(const InListExpr& e, const ColumnBatch& batch,
                  const SelIdx* sel, std::size_t n, BatchVec* out) {
  BatchVec v;
  SOFTDB_RETURN_IF_ERROR(EvalExprBatch(*e.input(), batch, sel, n, &v));
  std::vector<BatchVec> items(e.list().size());
  for (std::size_t k = 0; k < e.list().size(); ++k) {
    SOFTDB_RETURN_IF_ERROR(
        EvalExprBatch(*e.list()[k], batch, sel, n, &items[k]));
  }
  out->Resize(TypeId::kBool, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (v.null[i]) {
      out->null[i] = 1;
      continue;
    }
    bool saw_null = false;
    bool matched = false;
    for (const BatchVec& item : items) {
      if (item.null[i]) {
        saw_null = true;
        continue;
      }
      if (!SameFamily(v.type, item.type)) {
        return CompareMismatch(v.type, item.type);
      }
      if (CompareAt(v, i, item, i) == 0) {
        matched = true;
        break;
      }
    }
    if (matched) {
      out->i64[i] = 1;
    } else if (saw_null) {
      out->null[i] = 1;
    } else {
      out->i64[i] = 0;
    }
  }
  return Status::OK();
}

/// Fills `mask[0..batch.size())` for `sp` when it has kernel shape; false
/// means "not eligible, use the scalar path" (which also owns every case
/// that can raise a type error — kernels only run where no row can error).
bool KernelCompareMask(const SimplePredicate& sp, const ColumnBatch& batch,
                       std::uint8_t* mask) {
  if (sp.column >= batch.NumColumns()) return false;
  const BatchColumn& col = batch.column(sp.column);
  const Value& c = sp.constant;
  if (c.is_null()) return false;  // NULL constant: result NULL everywhere.
  const BatchColumn::RawSpans raw = col.RawData();
  const std::size_t size = batch.size();
  if (col.type() == TypeId::kString) {
    // Dictionary-code equality; ordering predicates need the strings.
    if (c.type() != TypeId::kString) return false;
    if (sp.op != CompareOp::kEq && sp.op != CompareOp::kNe) return false;
    if (raw.codes == nullptr || col.view_source() == nullptr) return false;
    const auto code = col.view_source()->FindCode(c.AsString());
    kernels::CodeEqMask(raw.codes, size, sp.op == CompareOp::kNe,
                        code.value_or(kernels::kAbsentCode), mask);
    return true;
  }
  if (c.type() == TypeId::kString) return false;  // Family mismatch: error.
  if (raw.i64 != nullptr) {
    if (IsIntLike(c.type())) {
      kernels::CompareMaskI64(raw.i64, raw.nulls, size, sp.op, c.AsInt64(),
                              mask);
    } else {
      kernels::CompareMaskI64AsF64(raw.i64, raw.nulls, size, sp.op,
                                   c.AsDouble(), mask);
    }
    return true;
  }
  if (raw.f64 != nullptr) {
    kernels::CompareMaskF64(raw.f64, raw.nulls, size, sp.op,
                            c.NumericValue(), mask);
    return true;
  }
  return false;
}

/// Kernel dispatch for one filter conjunct: true iff `expr` was fully
/// evaluated into `mask` (over the whole batch). `tmp` is scratch for
/// multi-part shapes (BETWEEN = two compares ANDed).
bool TryKernelFilter(const Expr& expr, const ColumnBatch& batch,
                     std::uint8_t* mask, std::uint8_t* tmp) {
  switch (expr.kind()) {
    case ExprKind::kComparison: {
      SimplePredicate sp;
      if (!MatchSimplePredicate(expr, &sp)) return false;
      return KernelCompareMask(sp, batch, mask);
    }
    case ExprKind::kBetween: {
      std::vector<SimplePredicate> sps;
      if (!ExpandSimplePredicates(expr, &sps) || sps.empty()) return false;
      if (!KernelCompareMask(sps[0], batch, mask)) return false;
      for (std::size_t k = 1; k < sps.size(); ++k) {
        if (!KernelCompareMask(sps[k], batch, tmp)) return false;
        kernels::AndMask(tmp, batch.size(), mask);
      }
      return true;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      if (in.input()->kind() != ExprKind::kColumnRef) return false;
      const auto& cr = static_cast<const ColumnRefExpr&>(*in.input());
      if (!cr.bound() || cr.index() >= batch.NumColumns()) return false;
      const BatchColumn& col = batch.column(cr.index());
      if (col.type() != TypeId::kString) return false;
      const BatchColumn::RawSpans raw = col.RawData();
      if (raw.codes == nullptr || col.view_source() == nullptr) return false;
      std::vector<std::int32_t> targets;
      targets.reserve(in.list().size());
      for (const ExprPtr& item : in.list()) {
        if (item->kind() != ExprKind::kLiteral) return false;
        const Value& v = static_cast<const LiteralExpr&>(*item).value();
        // A NULL item flips non-matches to NULL (scalar semantics) and a
        // non-string item is a per-row type error; both fall back.
        if (v.is_null() || v.type() != TypeId::kString) return false;
        const auto code = col.view_source()->FindCode(v.AsString());
        if (code.has_value()) targets.push_back(*code);
      }
      kernels::CodeInMask(raw.codes, batch.size(), targets.data(),
                          targets.size(), mask);
      return true;
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      if (e.input()->kind() != ExprKind::kColumnRef) return false;
      const auto& cr = static_cast<const ColumnRefExpr&>(*e.input());
      if (!cr.bound() || cr.index() >= batch.NumColumns()) return false;
      kernels::IsNullMask(batch.column(cr.index()).RawData().nulls,
                          batch.size(), e.negated(), mask);
      return true;
    }
    default:
      return false;
  }
}

Status EvalIsNull(const IsNullExpr& e, const ColumnBatch& batch,
                  const SelIdx* sel, std::size_t n, BatchVec* out) {
  BatchVec child;
  SOFTDB_RETURN_IF_ERROR(EvalExprBatch(*e.input(), batch, sel, n, &child));
  out->Resize(TypeId::kBool, n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool is_null = child.null[i] != 0;
    out->i64[i] = (e.negated() ? !is_null : is_null) ? 1 : 0;
  }
  return Status::OK();
}

}  // namespace

void BatchVec::Resize(TypeId t, std::size_t n) {
  type = t;
  null.assign(n, 0);
  i64.clear();
  f64.clear();
  str.clear();
  if (t == TypeId::kDouble) {
    f64.resize(n);
  } else if (t == TypeId::kString) {
    str.resize(n);
  } else {
    i64.resize(n);
  }
}

Status EvalExprBatch(const Expr& expr, const ColumnBatch& batch,
                     const SelIdx* sel, std::size_t n, BatchVec* out) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return EvalLiteral(static_cast<const LiteralExpr&>(expr), n, out);
    case ExprKind::kColumnRef:
      return EvalColumnRef(static_cast<const ColumnRefExpr&>(expr), batch,
                           sel, n, out);
    case ExprKind::kComparison:
      return EvalComparison(static_cast<const ComparisonExpr&>(expr), batch,
                            sel, n, out);
    case ExprKind::kAnd:
    case ExprKind::kOr:
      return EvalLogical(static_cast<const LogicalExpr&>(expr), batch, sel, n,
                         out);
    case ExprKind::kNot:
      return EvalNot(static_cast<const NotExpr&>(expr), batch, sel, n, out);
    case ExprKind::kArithmetic:
      return EvalArithmetic(static_cast<const ArithmeticExpr&>(expr), batch,
                            sel, n, out);
    case ExprKind::kBetween:
      return EvalBetween(static_cast<const BetweenExpr&>(expr), batch, sel, n,
                         out);
    case ExprKind::kInList:
      return EvalInList(static_cast<const InListExpr&>(expr), batch, sel, n,
                        out);
    case ExprKind::kIsNull:
      return EvalIsNull(static_cast<const IsNullExpr&>(expr), batch, sel, n,
                        out);
  }
  return Status::Internal("unknown expression kind in batch evaluator");
}

Result<std::size_t> FilterSelection(
    const std::vector<const Predicate*>& predicates, const ColumnBatch& batch,
    SelIdx* sel, std::size_t n, bool use_kernels) {
  BatchVec v;
  std::array<std::uint8_t, kBatchCapacity> mask;
  std::array<std::uint8_t, kBatchCapacity> tmp;
  for (const Predicate* p : predicates) {
    if (p->estimation_only) continue;
    if (n == 0) break;
    if (use_kernels && batch.size() <= kBatchCapacity &&
        TryKernelFilter(*p->expr, batch, mask.data(), tmp.data())) {
      n = kernels::FilterSelByMask(mask.data(), sel, n);
      continue;
    }
    SOFTDB_RETURN_IF_ERROR(EvalExprBatch(*p->expr, batch, sel, n, &v));
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!v.null[i] && v.i64[i] != 0) sel[kept++] = sel[i];
    }
    n = kept;
  }
  return n;
}

}  // namespace softdb
