#include "exec/column_batch.h"

#include <cmath>

namespace softdb {

namespace {

bool IntBacked(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDate || t == TypeId::kBool;
}

}  // namespace

Value BatchColumn::GetValue(std::size_t pos) const {
  if (view_ != nullptr) return view_->Get(base_ + pos);
  if (nulls_[pos]) return Value::Null(type_);
  switch (type_) {
    case TypeId::kInt64:
      return Value::Int64(ints_[pos]);
    case TypeId::kDate:
      return Value::Date(ints_[pos]);
    case TypeId::kBool:
      return Value::Bool(ints_[pos] != 0);
    case TypeId::kDouble:
      return Value::Double(doubles_[pos]);
    case TypeId::kString:
      return Value::String(strings_[pos]);
  }
  return Value::Null(type_);
}

BatchColumn::RawSpans BatchColumn::RawData() const {
  RawSpans s;
  if (view_ != nullptr) {
    s.nulls = view_->RawNulls() + base_;
    if (IntBacked(type_)) {
      s.i64 = view_->RawInts() + base_;
    } else if (type_ == TypeId::kDouble) {
      s.f64 = view_->RawDoubles() + base_;
    } else {
      s.str = view_->RawStrings() + base_;
      s.codes = view_->RawCodes() + base_;
    }
    return s;
  }
  s.nulls = nulls_.data();
  if (IntBacked(type_)) {
    s.i64 = ints_.data();
  } else if (type_ == TypeId::kDouble) {
    s.f64 = doubles_.data();
  } else {
    s.str = strings_.data();
  }
  return s;
}

void BatchColumn::AppendValue(const Value& v) {
  nulls_.push_back(v.is_null() ? 1 : 0);
  if (IntBacked(type_)) {
    if (v.is_null()) {
      ints_.push_back(0);
    } else if (v.type() == TypeId::kDouble) {
      ints_.push_back(static_cast<std::int64_t>(std::llround(v.AsDouble())));
    } else {
      ints_.push_back(v.AsInt64());
    }
  } else if (type_ == TypeId::kDouble) {
    doubles_.push_back(v.is_null() ? 0.0 : v.NumericValue());
  } else {
    if (v.is_null()) {
      strings_.emplace_back();
    } else {
      strings_.push_back(v.AsString());
    }
  }
}

void BatchColumn::AppendFrom(const BatchColumn& src, std::size_t pos) {
  const bool null = src.IsNull(pos);
  nulls_.push_back(null ? 1 : 0);
  if (IntBacked(type_)) {
    ints_.push_back(null ? 0 : src.Int64(pos));
  } else if (type_ == TypeId::kDouble) {
    doubles_.push_back(null ? 0.0 : src.Double(pos));
  } else {
    if (null) {
      strings_.emplace_back();
    } else {
      strings_.push_back(src.String(pos));
    }
  }
}

void BatchColumn::GatherFrom(const ColumnVector& src, const RowId* rows,
                             std::size_t n) {
  ResetOwned(src.type());
  nulls_.reserve(n);
  const std::uint8_t* src_nulls = src.RawNulls();
  if (IntBacked(type_)) {
    ints_.reserve(n);
    const std::int64_t* buf = src.RawInts();
    for (std::size_t i = 0; i < n; ++i) {
      nulls_.push_back(src_nulls[rows[i]]);
      ints_.push_back(buf[rows[i]]);
    }
  } else if (type_ == TypeId::kDouble) {
    doubles_.reserve(n);
    const double* buf = src.RawDoubles();
    for (std::size_t i = 0; i < n; ++i) {
      nulls_.push_back(src_nulls[rows[i]]);
      doubles_.push_back(buf[rows[i]]);
    }
  } else {
    strings_.reserve(n);
    const std::string* buf = src.RawStrings();
    for (std::size_t i = 0; i < n; ++i) {
      nulls_.push_back(src_nulls[rows[i]]);
      strings_.push_back(buf[rows[i]]);
    }
  }
}

void ColumnBatch::Reset(const Schema& schema) {
  columns_.resize(schema.NumColumns());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].ResetOwned(schema.Column(static_cast<ColumnIdx>(i)).type);
  }
  size_ = 0;
  sel_size_ = 0;
}

void ColumnBatch::BindTableView(const Table& table, std::size_t base,
                                std::size_t n) {
  const std::size_t cols = table.schema().NumColumns();
  columns_.resize(cols);
  for (std::size_t i = 0; i < cols; ++i) {
    columns_[i].SetView(&table.ColumnData(static_cast<ColumnIdx>(i)), base);
  }
  size_ = n;
  sel_size_ = 0;
}

std::vector<Value> ColumnBatch::MaterializeRow(std::size_t pos) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const BatchColumn& col : columns_) out.push_back(col.GetValue(pos));
  return out;
}

}  // namespace softdb
