#include "exec/batch_operators.h"

#include <algorithm>
#include <set>

#include "common/failpoint.h"

namespace softdb {

namespace {

std::vector<const Predicate*> PredicatePointers(
    const std::vector<Predicate>& preds) {
  std::vector<const Predicate*> out;
  out.reserve(preds.size());
  for (const Predicate& p : preds) out.push_back(&p);
  return out;
}

}  // namespace

// ------------------------------------------------------------- BatchSeqScan

BatchSeqScanOp::BatchSeqScanOp(const Table* table, Schema schema,
                               std::vector<Predicate> preds)
    : BatchOperator(std::move(schema)), table_(table),
      predicates_(std::move(preds)) {}

void BatchSeqScanOp::AddRuntimeParameter(std::size_t predicate_index,
                                         const Index* index,
                                         SimplePredicate simple) {
  runtime_params_.push_back(
      ScanRuntimeParameter{predicate_index, index, std::move(simple)});
}

void BatchSeqScanOp::BindMorsel(std::size_t base, std::size_t rows,
                                const std::vector<bool>* skip) {
  morsel_mode_ = true;
  morsel_base_ = base;
  morsel_end_ = base + rows;
  morsel_skip_ = skip;
}

Status BatchSeqScanOp::Open(ExecContext* ctx) {
  provably_empty_ = false;
  effective_.clear();

  if (morsel_mode_) {
    // The coordinator already resolved the §4.2 parameters and charged
    // page + skip accounting once for the whole table.
    next_ = morsel_base_;
    for (std::size_t i = 0; i < predicates_.size(); ++i) {
      if (morsel_skip_ == nullptr || !(*morsel_skip_)[i]) {
        effective_.push_back(&predicates_[i]);
      }
    }
    return Status::OK();
  }

  next_ = 0;
  std::vector<bool> skip(predicates_.size(), false);
  ResolveScanRuntimeParams(runtime_params_, schema_, ctx, &skip,
                           &provably_empty_);
  if (provably_empty_) return Status::OK();  // No pages touched at all.
  for (std::size_t i = 0; i < predicates_.size(); ++i) {
    if (!skip[i]) effective_.push_back(&predicates_[i]);
  }
  ctx->stats.pages_read += table_->NumPages();
  ChargeZoneMapBlocks(zone_skips_, ctx);
  return Status::OK();
}

Result<bool> BatchSeqScanOp::NextBatch(ExecContext* ctx, ColumnBatch* batch) {
  if (provably_empty_) return false;
  const std::uint8_t* live = table_->LiveBitmap();
  const std::size_t end = morsel_mode_ ? morsel_end_ : table_->NumSlots();
  // Slot -> "its zone-map block is skippable". Serial batches are
  // kZoneMapBlockRows-aligned so whole batches drop; morsel batches may
  // straddle a block boundary and drop rows from the selection vector
  // instead — either way exactly the rows SeqScanOp skips are skipped.
  const auto block_skipped = [this](std::size_t slot) {
    const std::size_t blk = slot / kZoneMapBlockRows;
    return blk < zone_skips_->size() && (*zone_skips_)[blk] != 0;
  };
  while (next_ < end) {
    // Batch granularity: one full interrupt check and one failpoint
    // evaluation per batch produced.
    SOFTDB_RETURN_IF_ERROR(ctx->CheckInterrupt());
    SOFTDB_INJECT_FAULT("exec.batch_scan",
                        Status::Internal("injected batch-scan fault"));
    const std::size_t base = next_;
    const std::size_t n = std::min(kBatchCapacity, end - base);
    next_ += n;
    if (zone_skips_ != nullptr && block_skipped(base) &&
        block_skipped(base + n - 1)) {
      continue;  // Every overlapped block is skippable: drop the batch.
    }
    batch->BindTableView(*table_, base, n);
    SelIdx* sel = batch->mutable_sel();
    std::size_t count = 0;
    if (zone_skips_ == nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        if (live[base + i]) sel[count++] = static_cast<SelIdx>(i);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (live[base + i] && !block_skipped(base + i)) {
          sel[count++] = static_cast<SelIdx>(i);
        }
      }
    }
    ctx->stats.rows_scanned += count;
    SOFTDB_ASSIGN_OR_RETURN(
        std::size_t kept,
        FilterSelection(effective_, *batch, sel, count, ctx->use_kernels));
    batch->set_sel_size(kept);
    ctx->stats.rows_emitted += kept;
    if (kept > 0) return true;
  }
  return false;
}

// ------------------------------------------------------ BatchIndexRangeScan

BatchIndexRangeScanOp::BatchIndexRangeScanOp(
    const Table* table, const Index* index, Schema schema,
    std::optional<Value> lo, bool lo_inclusive, std::optional<Value> hi,
    bool hi_inclusive, std::vector<Predicate> residual)
    : BatchOperator(std::move(schema)), table_(table), index_(index),
      lo_(std::move(lo)), hi_(std::move(hi)), lo_inclusive_(lo_inclusive),
      hi_inclusive_(hi_inclusive), residual_(std::move(residual)) {
  effective_ = PredicatePointers(residual_);
}

Status BatchIndexRangeScanOp::Open(ExecContext* ctx) {
  next_ = 0;
  rows_ = index_->RangeScan(lo_, lo_inclusive_, hi_, hi_inclusive_);
  ++ctx->stats.index_lookups;
  // Leaf pages of the index range plus the distinct data pages fetched
  // (same model as IndexRangeScanOp).
  ctx->stats.pages_read += (rows_.size() + kRowsPerPage - 1) / kRowsPerPage;
  std::set<std::uint64_t> data_pages;
  for (RowId r : rows_) data_pages.insert(r / kRowsPerPage);
  ctx->stats.pages_read += data_pages.size();
  return Status::OK();
}

Result<bool> BatchIndexRangeScanOp::NextBatch(ExecContext* ctx,
                                              ColumnBatch* batch) {
  while (next_ < rows_.size()) {
    SOFTDB_RETURN_IF_ERROR(ctx->CheckInterrupt());
    SOFTDB_INJECT_FAULT("exec.batch_scan",
                        Status::Internal("injected batch-scan fault"));
    const std::size_t n = std::min(kBatchCapacity, rows_.size() - next_);
    batch->Reset(schema_);
    for (std::size_t c = 0; c < batch->NumColumns(); ++c) {
      batch->column(c).GatherFrom(
          table_->ColumnData(static_cast<ColumnIdx>(c)), rows_.data() + next_,
          n);
    }
    batch->SelectAll(n);
    next_ += n;
    ctx->stats.rows_scanned += n;
    SOFTDB_ASSIGN_OR_RETURN(
        std::size_t kept,
        FilterSelection(effective_, *batch, batch->mutable_sel(), n,
                        ctx->use_kernels));
    batch->set_sel_size(kept);
    ctx->stats.rows_emitted += kept;
    if (kept > 0) return true;
  }
  return false;
}

// -------------------------------------------------------------- BatchFilter

BatchFilterOp::BatchFilterOp(BatchOperatorPtr child,
                             std::vector<Predicate> preds)
    : BatchOperator(child->schema()), child_(std::move(child)),
      predicates_(std::move(preds)) {
  effective_ = PredicatePointers(predicates_);
}

Status BatchFilterOp::Open(ExecContext* ctx) { return child_->Open(ctx); }

Result<bool> BatchFilterOp::NextBatch(ExecContext* ctx, ColumnBatch* batch) {
  while (true) {
    SOFTDB_ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, batch));
    if (!has) return false;
    SOFTDB_ASSIGN_OR_RETURN(
        std::size_t kept,
        FilterSelection(effective_, *batch, batch->mutable_sel(),
                        batch->sel_size(), ctx->use_kernels));
    batch->set_sel_size(kept);
    if (kept > 0) return true;
  }
}

// ------------------------------------------------------------- BatchProject

BatchProjectOp::BatchProjectOp(BatchOperatorPtr child, Schema schema,
                               std::vector<ExprPtr> exprs)
    : BatchOperator(std::move(schema)), child_(std::move(child)),
      exprs_(std::move(exprs)) {}

Status BatchProjectOp::Open(ExecContext* ctx) { return child_->Open(ctx); }

Result<bool> BatchProjectOp::NextBatch(ExecContext* ctx, ColumnBatch* batch) {
  while (true) {
    SOFTDB_ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, &input_));
    if (!has) return false;
    const std::size_t n = input_.sel_size();
    if (n == 0) continue;
    batch->Reset(schema_);
    BatchVec vec;
    for (std::size_t j = 0; j < exprs_.size(); ++j) {
      SOFTDB_RETURN_IF_ERROR(
          EvalExprBatch(*exprs_[j], input_, input_.sel(), n, &vec));
      BatchColumn& col = batch->column(j);
      // Output columns take the expressions' static result types — the same
      // types the row engine's output Values carry — not the plan schema's,
      // so NULLs round-trip with identical type affinity.
      col.ResetOwned(vec.type);
      if (vec.type == TypeId::kDouble) {
        for (std::size_t i = 0; i < n; ++i) {
          col.AppendRawDouble(vec.f64[i], vec.null[i] != 0);
        }
      } else if (vec.type == TypeId::kString) {
        for (std::size_t i = 0; i < n; ++i) {
          col.AppendRawString(vec.str[i], vec.null[i] != 0);
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          col.AppendRawInt64(vec.i64[i], vec.null[i] != 0);
        }
      }
    }
    batch->SelectAll(n);
    return true;
  }
}

// ------------------------------------------------------------ BatchHashJoin

BatchHashJoinOp::BatchHashJoinOp(BatchOperatorPtr left, BatchOperatorPtr right,
                                 std::vector<JoinNode::EquiKey> keys,
                                 std::vector<Predicate> residual)
    : BatchOperator(Schema::Concat(left->schema(), right->schema())),
      left_(std::move(left)), right_(std::move(right)), keys_(std::move(keys)),
      residual_(std::move(residual)) {}

Status BatchHashJoinOp::Open(ExecContext* ctx) {
  SOFTDB_INJECT_FAULT("exec.hash_join_build",
                      Status::ResourceExhausted(
                          "injected hash-join build allocation failure"));
  build_.clear();
  probe_valid_ = false;
  probe_idx_ = 0;
  matches_ = nullptr;
  match_idx_ = 0;
  probe_dict_source_ = nullptr;
  code_buckets_.clear();
  code_cached_.clear();
  SOFTDB_RETURN_IF_ERROR(right_->Open(ctx));
  ColumnBatch rb;
  while (true) {
    SOFTDB_RETURN_IF_ERROR(ctx->CheckInterrupt());
    auto has = right_->NextBatch(ctx, &rb);
    if (!has.ok()) return has.status();
    if (!*has) break;
    for (std::size_t i = 0; i < rb.sel_size(); ++i) {
      const std::size_t pos = rb.sel()[i];
      std::vector<Value> key;
      key.reserve(keys_.size());
      bool null_key = false;
      for (const JoinNode::EquiKey& k : keys_) {
        if (rb.column(k.right).IsNull(pos)) {
          null_key = true;
          break;
        }
        key.push_back(rb.column(k.right).GetValue(pos));
      }
      if (null_key) continue;
      build_[std::move(key)].push_back(rb.MaterializeRow(pos));
    }
  }
  return left_->Open(ctx);
}

Result<bool> BatchHashJoinOp::NextBatch(ExecContext* ctx, ColumnBatch* batch) {
  batch->Reset(schema_);
  std::size_t emitted = 0;
  while (emitted < kBatchCapacity) {
    if (matches_ != nullptr && match_idx_ < matches_->size()) {
      const std::vector<Value>& right_row = (*matches_)[match_idx_++];
      ++ctx->stats.rows_joined;
      std::vector<Value> combined = probe_row_;
      combined.insert(combined.end(), right_row.begin(), right_row.end());
      SOFTDB_ASSIGN_OR_RETURN(bool pass, EvalPredicates(residual_, combined));
      if (pass) {
        for (std::size_t c = 0; c < combined.size(); ++c) {
          batch->column(c).AppendValue(combined[c]);
        }
        ++emitted;
      }
      continue;
    }
    matches_ = nullptr;
    if (!probe_valid_ || probe_idx_ >= probe_batch_.sel_size()) {
      auto has = left_->NextBatch(ctx, &probe_batch_);
      if (!has.ok()) return has.status();
      if (!*has) break;
      probe_valid_ = true;
      probe_idx_ = 0;
      continue;
    }
    const std::size_t pos = probe_batch_.sel()[probe_idx_++];
    if (keys_.size() == 1) {
      // Dictionary fast path: compare int32 codes, not std::string.
      const BatchColumn& pc = probe_batch_.column(keys_[0].left);
      if (pc.type() == TypeId::kString) {
        const BatchColumn::RawSpans raw = pc.RawData();
        const ColumnVector* src = pc.view_source();
        if (raw.codes != nullptr && src != nullptr) {
          const std::int32_t code = raw.codes[pos];
          if (code == ColumnVector::kNullCode) continue;
          if (src != probe_dict_source_) {
            probe_dict_source_ = src;
            code_buckets_.clear();
            code_cached_.clear();
          }
          const auto c = static_cast<std::size_t>(code);
          if (c >= code_cached_.size()) {
            code_cached_.resize(c + 1, 0);
            code_buckets_.resize(c + 1, nullptr);
          }
          if (!code_cached_[c]) {
            std::vector<Value> key;
            key.push_back(pc.GetValue(pos));
            auto it = build_.find(key);
            code_buckets_[c] = it == build_.end() ? nullptr : &it->second;
            code_cached_[c] = 1;
          }
          if (code_buckets_[c] == nullptr) continue;
          matches_ = code_buckets_[c];
          match_idx_ = 0;
          probe_row_ = probe_batch_.MaterializeRow(pos);
          continue;
        }
      }
    }
    std::vector<Value> key;
    key.reserve(keys_.size());
    bool null_key = false;
    for (const JoinNode::EquiKey& k : keys_) {
      if (probe_batch_.column(k.left).IsNull(pos)) {
        null_key = true;
        break;
      }
      key.push_back(probe_batch_.column(k.left).GetValue(pos));
    }
    if (null_key) continue;
    auto it = build_.find(key);
    if (it == build_.end()) continue;
    matches_ = &it->second;
    match_idx_ = 0;
    probe_row_ = probe_batch_.MaterializeRow(pos);
  }
  batch->SelectAll(emitted);
  return emitted > 0;
}

// ------------------------------------------------------------- BatchAdapter

Status BatchAdapterOp::Open(ExecContext* ctx) {
  batch_valid_ = false;
  idx_ = 0;
  return child_->Open(ctx);
}

Result<bool> BatchAdapterOp::Next(ExecContext* ctx, std::vector<Value>* row) {
  while (true) {
    if (!batch_valid_ || idx_ >= batch_.sel_size()) {
      SOFTDB_ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, &batch_));
      if (!has) return false;
      batch_valid_ = true;
      idx_ = 0;
      continue;
    }
    *row = batch_.MaterializeRow(batch_.sel()[idx_++]);
    return true;
  }
}

}  // namespace softdb
