#include "exec/operators.h"

#include <algorithm>
#include <set>

#include "common/failpoint.h"

namespace softdb {

Result<bool> EvalPredicates(const std::vector<Predicate>& predicates,
                            const std::vector<Value>& row) {
  for (const Predicate& p : predicates) {
    if (p.estimation_only) continue;
    SOFTDB_ASSIGN_OR_RETURN(Value v, p.expr->Eval(row));
    if (v.is_null() || !v.AsBool()) return false;
  }
  return true;
}

// ------------------------------------------------------------------ SeqScan

SeqScanOp::SeqScanOp(const Table* table, Schema schema,
                     std::vector<Predicate> preds)
    : Operator(std::move(schema)), table_(table), predicates_(std::move(preds)) {}

void SeqScanOp::AddRuntimeParameter(std::size_t predicate_index,
                                    const Index* index,
                                    SimplePredicate simple) {
  runtime_params_.push_back(
      ScanRuntimeParameter{predicate_index, index, std::move(simple)});
}

namespace {

// Classification of a simple predicate against the current [min, max]
// domain an index maintains — the §4.2 runtime check. 0 = undecided,
// 1 = tautology (skip the predicate), -1 = contradiction (empty scan).
int ClassifyAgainstDomain(const SimplePredicate& sp, const Value& min_key,
                          const Value& max_key) {
  if (sp.constant.is_null()) return -1;
  if (sp.constant.type() == TypeId::kString) return 0;
  const double c = sp.constant.NumericValue();
  const double lo = min_key.NumericValue();
  const double hi = max_key.NumericValue();
  switch (sp.op) {
    case CompareOp::kLe:
      return c >= hi ? 1 : (c < lo ? -1 : 0);
    case CompareOp::kLt:
      return c > hi ? 1 : (c <= lo ? -1 : 0);
    case CompareOp::kGe:
      return c <= lo ? 1 : (c > hi ? -1 : 0);
    case CompareOp::kGt:
      return c < lo ? 1 : (c >= hi ? -1 : 0);
    case CompareOp::kEq:
      return (c < lo || c > hi) ? -1 : 0;
    case CompareOp::kNe:
      return (c < lo || c > hi) ? 1 : 0;
  }
  return 0;
}

}  // namespace

void ChargeZoneMapBlocks(const ZoneMapSkips& skips, ExecContext* ctx) {
  if (skips == nullptr) return;
  ctx->stats.blocks_total += skips->size();
  for (const std::uint8_t s : *skips) ctx->stats.blocks_skipped += s;
}

void ResolveScanRuntimeParams(const std::vector<ScanRuntimeParameter>& params,
                              const Schema& schema, ExecContext* ctx,
                              std::vector<bool>* skip, bool* provably_empty) {
  for (const ScanRuntimeParameter& param : params) {
    // Runtime checks on nullable columns can only prove emptiness when the
    // predicate itself rejects NULLs — which simple comparisons do — so
    // both outcomes are sound: tautology-skip only skips row evaluation
    // for rows that would pass, and contradiction means no row passes.
    auto min_key = param.index->MinKey();
    auto max_key = param.index->MaxKey();
    if (!min_key.has_value() || !max_key.has_value()) continue;
    const int cls = ClassifyAgainstDomain(param.simple, *min_key, *max_key);
    if (cls > 0 && !schema.Column(param.simple.column).nullable) {
      (*skip)[param.predicate_index] = true;
      ++ctx->stats.runtime_param_skips;
    } else if (cls < 0) {
      *provably_empty = true;
      return;
    }
  }
}

Status SeqScanOp::Open(ExecContext* ctx) {
  next_ = 0;
  provably_empty_ = false;
  effective_.clear();

  // §4.2: resolve runtime parameters against the indexes' current min/max.
  std::vector<bool> skip(predicates_.size(), false);
  ResolveScanRuntimeParams(runtime_params_, schema_, ctx, &skip,
                           &provably_empty_);
  if (provably_empty_) return Status::OK();  // No pages touched at all.
  for (std::size_t i = 0; i < predicates_.size(); ++i) {
    if (!skip[i]) effective_.push_back(&predicates_[i]);
  }
  ctx->stats.pages_read += table_->NumPages();
  // Zone maps narrow rows evaluated, not pages: the block skip model saves
  // predicate work and row materialization, while the page accounting
  // stays that of a full sequential pass.
  ChargeZoneMapBlocks(zone_skips_, ctx);
  return Status::OK();
}

Result<bool> SeqScanOp::Next(ExecContext* ctx, std::vector<Value>* row) {
  if (provably_empty_) return false;
  while (next_ < table_->NumSlots()) {
    // Selective predicates can spin here across many rows per Next call,
    // so this loop is a cancellation point of its own.
    SOFTDB_RETURN_IF_ERROR(ctx->CheckInterruptStrided());
    if (zone_skips_ != nullptr) {
      const std::size_t blk = next_ / kZoneMapBlockRows;
      if (blk < zone_skips_->size() && (*zone_skips_)[blk] != 0) {
        // The whole block is provably predicate-free: jump past it without
        // touching liveness, rows_scanned, or the predicates.
        next_ = static_cast<RowId>((blk + 1) * kZoneMapBlockRows);
        continue;
      }
    }
    const RowId id = next_++;
    if (!table_->IsLive(id)) continue;
    ++ctx->stats.rows_scanned;
    std::vector<Value> candidate = table_->GetRow(id);
    bool pass = true;
    for (const Predicate* p : effective_) {
      if (p->estimation_only) continue;
      SOFTDB_ASSIGN_OR_RETURN(Value v, p->expr->Eval(candidate));
      if (v.is_null() || !v.AsBool()) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    ++ctx->stats.rows_emitted;
    *row = std::move(candidate);
    return true;
  }
  return false;
}

// ----------------------------------------------------------- IndexRangeScan

IndexRangeScanOp::IndexRangeScanOp(const Table* table, const Index* index,
                                   Schema schema, std::optional<Value> lo,
                                   bool lo_inclusive, std::optional<Value> hi,
                                   bool hi_inclusive,
                                   std::vector<Predicate> residual)
    : Operator(std::move(schema)), table_(table), index_(index),
      lo_(std::move(lo)), hi_(std::move(hi)), lo_inclusive_(lo_inclusive),
      hi_inclusive_(hi_inclusive), residual_(std::move(residual)) {}

Status IndexRangeScanOp::Open(ExecContext* ctx) {
  next_ = 0;
  rows_ = index_->RangeScan(lo_, lo_inclusive_, hi_, hi_inclusive_);
  ++ctx->stats.index_lookups;
  // Leaf pages of the index range plus the distinct data pages fetched.
  ctx->stats.pages_read += (rows_.size() + kRowsPerPage - 1) / kRowsPerPage;
  std::set<std::uint64_t> data_pages;
  for (RowId r : rows_) data_pages.insert(r / kRowsPerPage);
  ctx->stats.pages_read += data_pages.size();
  return Status::OK();
}

Result<bool> IndexRangeScanOp::Next(ExecContext* ctx, std::vector<Value>* row) {
  while (next_ < rows_.size()) {
    SOFTDB_RETURN_IF_ERROR(ctx->CheckInterruptStrided());
    const RowId id = rows_[next_++];
    ++ctx->stats.rows_scanned;
    std::vector<Value> candidate = table_->GetRow(id);
    SOFTDB_ASSIGN_OR_RETURN(bool pass, EvalPredicates(residual_, candidate));
    if (!pass) continue;
    ++ctx->stats.rows_emitted;
    *row = std::move(candidate);
    return true;
  }
  return false;
}

// ------------------------------------------------------------------- Filter

FilterOp::FilterOp(OperatorPtr child, std::vector<Predicate> preds)
    : Operator(child->schema()), child_(std::move(child)),
      predicates_(std::move(preds)) {}

Status FilterOp::Open(ExecContext* ctx) { return child_->Open(ctx); }

Result<bool> FilterOp::Next(ExecContext* ctx, std::vector<Value>* row) {
  while (true) {
    SOFTDB_ASSIGN_OR_RETURN(bool has, child_->Next(ctx, row));
    if (!has) return false;
    SOFTDB_ASSIGN_OR_RETURN(bool pass, EvalPredicates(predicates_, *row));
    if (pass) return true;
  }
}

// ------------------------------------------------------------------ Project

ProjectOp::ProjectOp(OperatorPtr child, Schema schema,
                     std::vector<ExprPtr> exprs)
    : Operator(std::move(schema)), child_(std::move(child)),
      exprs_(std::move(exprs)) {}

Status ProjectOp::Open(ExecContext* ctx) { return child_->Open(ctx); }

Result<bool> ProjectOp::Next(ExecContext* ctx, std::vector<Value>* row) {
  std::vector<Value> input;
  SOFTDB_ASSIGN_OR_RETURN(bool has, child_->Next(ctx, &input));
  if (!has) return false;
  row->clear();
  row->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    SOFTDB_ASSIGN_OR_RETURN(Value v, e->Eval(input));
    row->push_back(std::move(v));
  }
  return true;
}

// ----------------------------------------------------------------- HashJoin

std::size_t HashJoinOp::KeyHash::operator()(
    const std::vector<Value>& key) const {
  std::size_t h = 1469598103934665603ULL;
  for (const Value& v : key) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

bool HashJoinOp::KeyEq::operator()(const std::vector<Value>& a,
                                   const std::vector<Value>& b) const {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].GroupEquals(b[i])) return false;
  }
  return true;
}

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right,
                       std::vector<JoinNode::EquiKey> keys,
                       std::vector<Predicate> residual)
    : Operator(Schema::Concat(left->schema(), right->schema())),
      left_(std::move(left)), right_(std::move(right)), keys_(std::move(keys)),
      residual_(std::move(residual)) {}

Status HashJoinOp::Open(ExecContext* ctx) {
  SOFTDB_INJECT_FAULT("exec.hash_join_build",
                      Status::ResourceExhausted(
                          "injected hash-join build allocation failure"));
  build_.clear();
  matches_ = nullptr;
  match_idx_ = 0;
  probe_open_ = true;
  SOFTDB_RETURN_IF_ERROR(right_->Open(ctx));
  std::vector<Value> row;
  while (true) {
    SOFTDB_RETURN_IF_ERROR(ctx->CheckInterruptStrided());
    auto has = right_->Next(ctx, &row);
    if (!has.ok()) return has.status();
    if (!*has) break;
    std::vector<Value> key;
    key.reserve(keys_.size());
    bool null_key = false;
    for (const JoinNode::EquiKey& k : keys_) {
      if (row[k.right].is_null()) {
        null_key = true;
        break;
      }
      key.push_back(row[k.right]);
    }
    if (null_key) continue;
    build_[std::move(key)].push_back(std::move(row));
    row = {};
  }
  return left_->Open(ctx);
}

Result<bool> HashJoinOp::AdvanceProbe(ExecContext* ctx) {
  while (true) {
    SOFTDB_ASSIGN_OR_RETURN(bool has, left_->Next(ctx, &probe_row_));
    if (!has) return false;
    std::vector<Value> key;
    key.reserve(keys_.size());
    bool null_key = false;
    for (const JoinNode::EquiKey& k : keys_) {
      if (probe_row_[k.left].is_null()) {
        null_key = true;
        break;
      }
      key.push_back(probe_row_[k.left]);
    }
    if (null_key) continue;
    auto it = build_.find(key);
    if (it == build_.end()) continue;
    matches_ = &it->second;
    match_idx_ = 0;
    return true;
  }
}

Result<bool> HashJoinOp::Next(ExecContext* ctx, std::vector<Value>* row) {
  while (true) {
    if (matches_ == nullptr || match_idx_ >= matches_->size()) {
      SOFTDB_ASSIGN_OR_RETURN(bool has, AdvanceProbe(ctx));
      if (!has) return false;
    }
    const std::vector<Value>& right_row = (*matches_)[match_idx_++];
    ++ctx->stats.rows_joined;
    std::vector<Value> combined = probe_row_;
    combined.insert(combined.end(), right_row.begin(), right_row.end());
    SOFTDB_ASSIGN_OR_RETURN(bool pass, EvalPredicates(residual_, combined));
    if (!pass) continue;
    *row = std::move(combined);
    return true;
  }
}

// ------------------------------------------------------------ SortMergeJoin

namespace {

// Sorts rows by the given key columns (NULLs first, then value order).
void SortByColumns(std::vector<std::vector<Value>>* rows,
                   const std::vector<ColumnIdx>& cols) {
  std::stable_sort(rows->begin(), rows->end(),
                   [&](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
                     for (ColumnIdx c : cols) {
                       auto cmp = a[c].Compare(b[c]);
                       const int v = cmp.ok() ? *cmp : 0;
                       if (v != 0) return v < 0;
                     }
                     return false;
                   });
}

Result<std::vector<std::vector<Value>>> Materialize(Operator* op,
                                                    ExecContext* ctx) {
  std::vector<std::vector<Value>> rows;
  SOFTDB_RETURN_IF_ERROR(op->Open(ctx));
  std::vector<Value> row;
  while (true) {
    SOFTDB_RETURN_IF_ERROR(ctx->CheckInterruptStrided());
    SOFTDB_ASSIGN_OR_RETURN(bool has, op->Next(ctx, &row));
    if (!has) break;
    rows.push_back(std::move(row));
    row = {};
  }
  return rows;
}

}  // namespace

SortMergeJoinOp::SortMergeJoinOp(OperatorPtr left, OperatorPtr right,
                                 std::vector<JoinNode::EquiKey> keys,
                                 std::vector<Predicate> residual)
    : Operator(Schema::Concat(left->schema(), right->schema())),
      left_(std::move(left)), right_(std::move(right)),
      keys_(std::move(keys)), residual_(std::move(residual)) {}

Status SortMergeJoinOp::Open(ExecContext* ctx) {
  results_.clear();
  next_ = 0;
  SOFTDB_ASSIGN_OR_RETURN(std::vector<std::vector<Value>> left_rows,
                          Materialize(left_.get(), ctx));
  SOFTDB_ASSIGN_OR_RETURN(std::vector<std::vector<Value>> right_rows,
                          Materialize(right_.get(), ctx));
  std::vector<ColumnIdx> left_cols, right_cols;
  for (const JoinNode::EquiKey& k : keys_) {
    left_cols.push_back(k.left);
    right_cols.push_back(k.right);
  }
  SortByColumns(&left_rows, left_cols);
  SortByColumns(&right_rows, right_cols);
  ctx->stats.rows_sorted += left_rows.size() + right_rows.size();

  auto key_cmp = [&](const std::vector<Value>& l,
                     const std::vector<Value>& r) -> int {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      auto cmp = l[keys_[i].left].Compare(r[keys_[i].right]);
      const int v = cmp.ok() ? *cmp : 0;
      if (v != 0) return v;
    }
    return 0;
  };
  auto has_null_key = [&](const std::vector<Value>& row,
                          const std::vector<ColumnIdx>& cols) {
    for (ColumnIdx c : cols) {
      if (row[c].is_null()) return true;
    }
    return false;
  };

  std::size_t li = 0, ri = 0;
  while (li < left_rows.size() && ri < right_rows.size()) {
    if (has_null_key(left_rows[li], left_cols)) {
      ++li;
      continue;
    }
    if (has_null_key(right_rows[ri], right_cols)) {
      ++ri;
      continue;
    }
    const int cmp = key_cmp(left_rows[li], right_rows[ri]);
    if (cmp < 0) {
      ++li;
      continue;
    }
    if (cmp > 0) {
      ++ri;
      continue;
    }
    // Equal-key groups: [li, le) x [ri, re).
    std::size_t le = li;
    while (le < left_rows.size() &&
           key_cmp(left_rows[le], right_rows[ri]) == 0) {
      ++le;
    }
    std::size_t re = ri;
    while (re < right_rows.size() &&
           key_cmp(left_rows[li], right_rows[re]) == 0) {
      ++re;
    }
    for (std::size_t l = li; l < le; ++l) {
      for (std::size_t r = ri; r < re; ++r) {
        ++ctx->stats.rows_joined;
        std::vector<Value> combined = left_rows[l];
        combined.insert(combined.end(), right_rows[r].begin(),
                        right_rows[r].end());
        SOFTDB_ASSIGN_OR_RETURN(bool pass,
                                EvalPredicates(residual_, combined));
        if (pass) results_.push_back(std::move(combined));
      }
    }
    li = le;
    ri = re;
  }
  return Status::OK();
}

Result<bool> SortMergeJoinOp::Next(ExecContext*, std::vector<Value>* row) {
  if (next_ >= results_.size()) return false;
  *row = results_[next_++];
  return true;
}

// ----------------------------------------------------------- NestedLoopJoin

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   std::vector<Predicate> conditions)
    : Operator(Schema::Concat(left->schema(), right->schema())),
      left_(std::move(left)), right_(std::move(right)),
      conditions_(std::move(conditions)) {}

Status NestedLoopJoinOp::Open(ExecContext* ctx) {
  right_rows_.clear();
  right_idx_ = 0;
  left_valid_ = false;
  SOFTDB_RETURN_IF_ERROR(right_->Open(ctx));
  std::vector<Value> row;
  while (true) {
    SOFTDB_RETURN_IF_ERROR(ctx->CheckInterruptStrided());
    auto has = right_->Next(ctx, &row);
    if (!has.ok()) return has.status();
    if (!*has) break;
    right_rows_.push_back(std::move(row));
    row = {};
  }
  return left_->Open(ctx);
}

Result<bool> NestedLoopJoinOp::Next(ExecContext* ctx, std::vector<Value>* row) {
  while (true) {
    if (!left_valid_) {
      SOFTDB_ASSIGN_OR_RETURN(bool has, left_->Next(ctx, &left_row_));
      if (!has) return false;
      left_valid_ = true;
      right_idx_ = 0;
    }
    while (right_idx_ < right_rows_.size()) {
      const std::vector<Value>& right_row = right_rows_[right_idx_++];
      ++ctx->stats.rows_joined;
      std::vector<Value> combined = left_row_;
      combined.insert(combined.end(), right_row.begin(), right_row.end());
      SOFTDB_ASSIGN_OR_RETURN(bool pass, EvalPredicates(conditions_, combined));
      if (pass) {
        *row = std::move(combined);
        return true;
      }
    }
    left_valid_ = false;
  }
}

// -------------------------------------------------------------- HashAggregate

namespace {

struct GroupKeyHash {
  std::size_t operator()(const std::vector<Value>& key) const {
    std::size_t h = 1469598103934665603ULL;
    for (const Value& v : key) {
      h ^= v.Hash();
      h *= 1099511628211ULL;
    }
    return h;
  }
};

struct GroupKeyEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!a[i].GroupEquals(b[i])) return false;
    }
    return true;
  }
};

struct AggState {
  std::int64_t count = 0;
  double sum = 0.0;
  std::optional<Value> min;
  std::optional<Value> max;
  bool any = false;
  TypeId sum_type = TypeId::kInt64;
};

}  // namespace

HashAggregateOp::HashAggregateOp(OperatorPtr child, Schema schema,
                                 std::vector<ExprPtr> group_by,
                                 std::vector<AggregateItem> aggregates,
                                 std::vector<bool> key_flags)
    : Operator(std::move(schema)), child_(std::move(child)),
      group_by_(std::move(group_by)), aggregates_(std::move(aggregates)),
      key_flags_(std::move(key_flags)) {
  if (key_flags_.size() != group_by_.size()) {
    key_flags_.assign(group_by_.size(), true);
  }
}

Status HashAggregateOp::Open(ExecContext* ctx) {
  results_.clear();
  next_ = 0;
  SOFTDB_RETURN_IF_ERROR(child_->Open(ctx));

  struct GroupData {
    std::vector<Value> output_values;  // All group exprs, first row seen.
    std::vector<AggState> states;
  };
  std::unordered_map<std::vector<Value>, GroupData, GroupKeyHash, GroupKeyEq>
      groups;
  std::vector<std::vector<Value>> group_order;  // Keys in first-seen order.

  std::vector<Value> row;
  while (true) {
    SOFTDB_RETURN_IF_ERROR(ctx->CheckInterruptStrided());
    auto has = child_->Next(ctx, &row);
    if (!has.ok()) return has.status();
    if (!*has) break;

    std::vector<Value> all_values;
    all_values.reserve(group_by_.size());
    for (const ExprPtr& g : group_by_) {
      auto v = g->Eval(row);
      if (!v.ok()) return v.status();
      all_values.push_back(*std::move(v));
    }
    // Grouping key: only flagged exprs (FD-pruned columns are carried but
    // not compared).
    std::vector<Value> key;
    key.reserve(group_by_.size());
    for (std::size_t i = 0; i < group_by_.size(); ++i) {
      if (key_flags_[i]) key.push_back(all_values[i]);
    }
    auto it = groups.find(key);
    if (it == groups.end()) {
      GroupData data;
      data.output_values = std::move(all_values);
      data.states.resize(aggregates_.size());
      it = groups.emplace(key, std::move(data)).first;
      group_order.push_back(key);
    }
    std::vector<AggState>& states = it->second.states;
    for (std::size_t i = 0; i < aggregates_.size(); ++i) {
      const AggregateItem& agg = aggregates_[i];
      AggState& st = states[i];
      if (agg.fn == AggFn::kCountStar) {
        ++st.count;
        continue;
      }
      auto v = agg.arg->Eval(row);
      if (!v.ok()) return v.status();
      if (v->is_null()) continue;
      ++st.count;
      st.any = true;
      st.sum += v->NumericValue();
      st.sum_type = v->type();
      if (!st.min.has_value()) {
        st.min = *v;
        st.max = *v;
      } else {
        auto lt = v->Compare(*st.min);
        if (lt.ok() && *lt < 0) st.min = *v;
        auto gt = v->Compare(*st.max);
        if (gt.ok() && *gt > 0) st.max = *v;
      }
    }
  }

  // Grouped query with no groups at all: global aggregates still emit one
  // row (SQL semantics for aggregate queries without GROUP BY).
  if (group_order.empty() && group_by_.empty()) {
    GroupData data;
    data.states.resize(aggregates_.size());
    groups.emplace(std::vector<Value>{}, std::move(data));
    group_order.push_back({});
  }

  for (const std::vector<Value>& key : group_order) {
    const GroupData& group = groups[key];
    const std::vector<AggState>& states = group.states;
    std::vector<Value> out = group.output_values;
    for (std::size_t i = 0; i < aggregates_.size(); ++i) {
      const AggregateItem& agg = aggregates_[i];
      const AggState& st = states[i];
      switch (agg.fn) {
        case AggFn::kCountStar:
        case AggFn::kCount:
          out.push_back(Value::Int64(st.count));
          break;
        case AggFn::kSum:
          if (!st.any) {
            out.push_back(Value::Null(TypeId::kDouble));
          } else if (st.sum_type == TypeId::kDouble) {
            out.push_back(Value::Double(st.sum));
          } else {
            out.push_back(Value::Int64(static_cast<std::int64_t>(st.sum)));
          }
          break;
        case AggFn::kAvg:
          out.push_back(st.any ? Value::Double(st.sum /
                                               static_cast<double>(st.count))
                               : Value::Null(TypeId::kDouble));
          break;
        case AggFn::kMin:
          out.push_back(st.min.value_or(Value::Null()));
          break;
        case AggFn::kMax:
          out.push_back(st.max.value_or(Value::Null()));
          break;
      }
    }
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> HashAggregateOp::Next(ExecContext*, std::vector<Value>* row) {
  if (next_ >= results_.size()) return false;
  *row = results_[next_++];
  return true;
}

// --------------------------------------------------------------------- Sort

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys, bool presorted)
    : Operator(child->schema()), child_(std::move(child)),
      keys_(std::move(keys)), presorted_(presorted) {}

Status SortOp::Open(ExecContext* ctx) {
  rows_.clear();
  next_ = 0;
  SOFTDB_RETURN_IF_ERROR(child_->Open(ctx));
  std::vector<Value> row;
  while (true) {
    SOFTDB_RETURN_IF_ERROR(ctx->CheckInterruptStrided());
    auto has = child_->Next(ctx, &row);
    if (!has.ok()) return has.status();
    if (!*has) break;
    rows_.push_back(std::move(row));
    row = {};
  }
  if (presorted_) return Status::OK();

  ctx->stats.rows_sorted += rows_.size();
  // Precompute key values per row to keep the comparator cheap.
  std::vector<std::vector<Value>> key_values(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    key_values[i].reserve(keys_.size());
    for (const SortKey& k : keys_) {
      auto v = k.expr->Eval(rows_[i]);
      if (!v.ok()) return v.status();
      key_values[i].push_back(*std::move(v));
    }
  }
  std::vector<std::size_t> order(rows_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     for (std::size_t k = 0; k < keys_.size(); ++k) {
                       auto cmp = key_values[a][k].Compare(key_values[b][k]);
                       const int c = cmp.ok() ? *cmp : 0;
                       if (c != 0) return keys_[k].ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  std::vector<std::vector<Value>> sorted;
  sorted.reserve(rows_.size());
  for (std::size_t i : order) sorted.push_back(std::move(rows_[i]));
  rows_ = std::move(sorted);
  return Status::OK();
}

Result<bool> SortOp::Next(ExecContext*, std::vector<Value>* row) {
  if (next_ >= rows_.size()) return false;
  *row = rows_[next_++];
  return true;
}

// ----------------------------------------------------------------- UnionAll

UnionAllOp::UnionAllOp(Schema schema, std::vector<OperatorPtr> children)
    : Operator(std::move(schema)), children_(std::move(children)) {}

Status UnionAllOp::Open(ExecContext* ctx) {
  current_ = 0;
  for (OperatorPtr& c : children_) SOFTDB_RETURN_IF_ERROR(c->Open(ctx));
  return Status::OK();
}

Result<bool> UnionAllOp::Next(ExecContext* ctx, std::vector<Value>* row) {
  while (current_ < children_.size()) {
    SOFTDB_ASSIGN_OR_RETURN(bool has, children_[current_]->Next(ctx, row));
    if (has) return true;
    ++current_;
  }
  return false;
}

// -------------------------------------------------------------------- Limit

LimitOp::LimitOp(OperatorPtr child, std::size_t limit)
    : Operator(child->schema()), child_(std::move(child)), limit_(limit) {}

Status LimitOp::Open(ExecContext* ctx) {
  produced_ = 0;
  return child_->Open(ctx);
}

Result<bool> LimitOp::Next(ExecContext* ctx, std::vector<Value>* row) {
  if (produced_ >= limit_) return false;
  SOFTDB_ASSIGN_OR_RETURN(bool has, child_->Next(ctx, row));
  if (!has) return false;
  ++produced_;
  return true;
}

}  // namespace softdb
