#ifndef SOFTDB_EXEC_MORSEL_H_
#define SOFTDB_EXEC_MORSEL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace softdb {

/// A contiguous slot range of a table scan, the unit of parallel work.
/// `index` is the morsel's position in table order; the coordinator merges
/// per-morsel results by this index, which is what makes parallel output
/// bit-identical to serial execution.
struct MorselRange {
  std::size_t base = 0;
  std::size_t rows = 0;
  std::size_t index = 0;
};

/// Splits `total_rows` slots into morsels of `morsel_rows` (the last one
/// may be short). Returns no morsels for an empty input.
std::vector<MorselRange> SplitMorsels(std::size_t total_rows,
                                      std::size_t morsel_rows);

/// An atomic claim counter over the morsels of one scan, for claim-loop
/// style consumers (each call hands out the next morsel in table order).
class MorselSource {
 public:
  MorselSource(std::size_t total_rows, std::size_t morsel_rows)
      : morsels_(SplitMorsels(total_rows, morsel_rows)) {}

  /// Claims the next unclaimed morsel; false when the scan is exhausted.
  bool Next(MorselRange* out) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= morsels_.size()) return false;
    *out = morsels_[i];
    return true;
  }

  std::size_t NumMorsels() const { return morsels_.size(); }

 private:
  std::vector<MorselRange> morsels_;
  std::atomic<std::size_t> next_{0};
};

/// A freelist of per-worker execution resources (operator chains with
/// their ColumnBatch scratch). Workers lease one slot per morsel and
/// return it on completion, so each concurrently-live worker reuses a
/// single chain + batch allocation across all the morsels it executes
/// instead of re-allocating per morsel.
template <typename T>
class ExecPool {
 public:
  explicit ExecPool(std::function<std::unique_ptr<T>()> factory)
      : factory_(std::move(factory)) {}

  /// RAII lease: returns the resource to the pool on destruction.
  class Lease {
   public:
    Lease(ExecPool* pool, std::unique_ptr<T> item)
        : pool_(pool), item_(std::move(item)) {}
    ~Lease() {
      if (item_) pool_->Release(std::move(item_));
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), item_(std::move(other.item_)) {}

    T* get() const { return item_.get(); }
    T* operator->() const { return item_.get(); }

   private:
    ExecPool* pool_;
    std::unique_ptr<T> item_;
  };

  Lease Acquire() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!free_.empty()) {
        std::unique_ptr<T> item = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(item));
      }
    }
    created_.fetch_add(1, std::memory_order_relaxed);
    return Lease(this, factory_());
  }

  /// Number of distinct resources ever created (for tests: bounded by the
  /// number of concurrently-live workers, not the morsel count).
  std::size_t created() const { return created_.load(std::memory_order_relaxed); }

 private:
  void Release(std::unique_ptr<T> item) {
    std::lock_guard<std::mutex> lk(mu_);
    free_.push_back(std::move(item));
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<T>> free_;
  std::function<std::unique_ptr<T>()> factory_;
  std::atomic<std::size_t> created_{0};
};

}  // namespace softdb

#endif  // SOFTDB_EXEC_MORSEL_H_
