#include "exec/parallel_operators.h"

#include <utility>

#include "exec/scheduler.h"

namespace softdb {

namespace {

std::vector<Predicate> ClonePredicates(const std::vector<Predicate>& preds) {
  std::vector<Predicate> out;
  out.reserve(preds.size());
  for (const Predicate& p : preds) out.push_back(p.Clone());
  return out;
}

std::vector<ExprPtr> CloneExprs(const std::vector<ExprPtr>& exprs) {
  std::vector<ExprPtr> out;
  out.reserve(exprs.size());
  for (const ExprPtr& e : exprs) out.push_back(e->Clone());
  return out;
}

/// Runs one morsel through a pooled chain: binds the scan leaf to the
/// morsel's slot range, drains the chain into `rows` (in batch selection
/// order, which is table order), and reports the morsel's counters in
/// `stats`. Per-worker state only; safe to run concurrently.
Status RunPipelineMorsel(ExecPool<PipelineChain>* pool,
                         const MorselRange& morsel,
                         const std::vector<bool>* skip, bool use_kernels,
                         const QueryContext* query, ExecStats* stats,
                         std::vector<std::vector<Value>>* rows) {
  auto lease = pool->Acquire();
  lease->leaf->BindMorsel(morsel.base, morsel.rows, skip);
  ExecContext local;  // No scheduler: morsel tasks never nest parallelism.
  // Morsel granularity is the parallel engine's cancellation granularity:
  // the scan checks the shared token/deadline once per batch it produces.
  local.query = query;
  local.use_kernels = use_kernels;
  SOFTDB_RETURN_IF_ERROR(local.CheckInterrupt());
  SOFTDB_RETURN_IF_ERROR(lease->root->Open(&local));
  while (true) {
    auto has = lease->root->NextBatch(&local, &lease->scratch);
    if (!has.ok()) return has.status();
    if (!*has) break;
    const ColumnBatch& b = lease->scratch;
    for (std::size_t i = 0; i < b.sel_size(); ++i) {
      rows->push_back(b.MaterializeRow(b.sel()[i]));
    }
  }
  ++local.stats.morsels;
  *stats = local.stats;
  return Status::OK();
}

/// Runs `fn` over every morsel — on the scheduler when one is available,
/// inline otherwise. The scheduler's Run is the phase barrier.
Status ForEachMorsel(ExecContext* ctx, const std::vector<MorselRange>& morsels,
                     const std::function<Status(const MorselRange&)>& fn) {
  if (ctx->scheduler != nullptr && morsels.size() > 1) {
    std::vector<TaskScheduler::Task> tasks;
    tasks.reserve(morsels.size());
    for (const MorselRange& m : morsels) {
      tasks.push_back([&fn, m] { return fn(m); });
    }
    return ctx->scheduler->Run(std::move(tasks));
  }
  for (const MorselRange& m : morsels) SOFTDB_RETURN_IF_ERROR(fn(m));
  return Status::OK();
}

/// Deterministic per-query aggregation: per-morsel counters summed in
/// morsel order, regardless of which worker ran which morsel.
void MergeWorkerStats(const std::vector<ExecStats>& worker_stats,
                      ExecStats* total) {
  for (const ExecStats& s : worker_stats) total->Accumulate(s);
}

}  // namespace

// ------------------------------------------------------------ PipelineSpec

PipelineStage PipelineStage::Clone() const {
  PipelineStage out;
  out.kind = kind;
  out.predicates = ClonePredicates(predicates);
  out.schema = schema;
  out.exprs = CloneExprs(exprs);
  return out;
}

const Schema& PipelineSpec::output_schema() const {
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
    if (it->kind == PipelineStage::Kind::kProject) return it->schema;
  }
  return scan_schema;
}

PipelineSpec PipelineSpec::Clone() const {
  PipelineSpec out;
  out.table = table;
  out.scan_schema = scan_schema;
  out.scan_predicates = ClonePredicates(scan_predicates);
  out.runtime_params = runtime_params;
  out.zone_skips = zone_skips;
  out.stages.reserve(stages.size());
  for (const PipelineStage& s : stages) out.stages.push_back(s.Clone());
  return out;
}

std::unique_ptr<PipelineChain> BuildPipelineChain(const PipelineSpec& spec) {
  auto chain = std::make_unique<PipelineChain>();
  auto scan = std::make_unique<BatchSeqScanOp>(
      spec.table, spec.scan_schema, ClonePredicates(spec.scan_predicates));
  scan->SetZoneMapSkips(spec.zone_skips);
  chain->leaf = scan.get();
  BatchOperatorPtr op = std::move(scan);
  for (const PipelineStage& stage : spec.stages) {
    if (stage.kind == PipelineStage::Kind::kFilter) {
      op = std::make_unique<BatchFilterOp>(std::move(op),
                                           ClonePredicates(stage.predicates));
    } else {
      op = std::make_unique<BatchProjectOp>(std::move(op), stage.schema,
                                            CloneExprs(stage.exprs));
    }
  }
  chain->root = std::move(op);
  return chain;
}

// ------------------------------------------------------- ParallelPipeline

ParallelPipelineOp::ParallelPipelineOp(PipelineSpec spec,
                                       std::size_t morsel_rows)
    : Operator(spec.output_schema()), spec_(std::move(spec)),
      morsel_rows_(morsel_rows == 0 ? 1 : morsel_rows) {}

Status ParallelPipelineOp::Open(ExecContext* ctx) {
  results_.clear();
  cursor_morsel_ = 0;
  cursor_row_ = 0;

  // Resolve the §4.2 runtime parameters exactly once per query: every
  // morsel shares one consistent snapshot of the index-maintained SC
  // domains, and skip/page accounting matches the serial scan.
  skip_.assign(spec_.scan_predicates.size(), false);
  bool provably_empty = false;
  ResolveScanRuntimeParams(spec_.runtime_params, spec_.scan_schema, ctx,
                           &skip_, &provably_empty);
  if (provably_empty) return Status::OK();  // No pages, no morsels.
  ctx->stats.pages_read += spec_.table->NumPages();
  // Block accounting happens once here; the morsel-local scans skip
  // silently (their Open performs no whole-table accounting at all).
  ChargeZoneMapBlocks(spec_.zone_skips, ctx);

  const std::vector<MorselRange> morsels =
      SplitMorsels(spec_.table->NumSlots(), morsel_rows_);
  results_.resize(morsels.size());
  if (morsels.empty()) return Status::OK();

  ExecPool<PipelineChain> pool([this] { return BuildPipelineChain(spec_); });
  std::vector<ExecStats> worker_stats(morsels.size());
  SOFTDB_RETURN_IF_ERROR(ForEachMorsel(
      ctx, morsels, [this, ctx, &pool, &worker_stats](const MorselRange& m) {
        return RunPipelineMorsel(&pool, m, &skip_, ctx->use_kernels,
                                 ctx->query, &worker_stats[m.index],
                                 &results_[m.index]);
      }));
  MergeWorkerStats(worker_stats, &ctx->stats);
  return Status::OK();
}

Result<bool> ParallelPipelineOp::Next(ExecContext* ctx,
                                      std::vector<Value>* row) {
  (void)ctx;
  while (cursor_morsel_ < results_.size()) {
    std::vector<std::vector<Value>>& morsel_rows = results_[cursor_morsel_];
    if (cursor_row_ < morsel_rows.size()) {
      *row = std::move(morsel_rows[cursor_row_++]);
      return true;
    }
    morsel_rows.clear();
    morsel_rows.shrink_to_fit();
    ++cursor_morsel_;
    cursor_row_ = 0;
  }
  return false;
}

// ------------------------------------------------------- ParallelHashJoin

ParallelHashJoinOp::ParallelHashJoinOp(PipelineSpec probe, PipelineSpec build,
                                       std::vector<JoinNode::EquiKey> keys,
                                       std::vector<Predicate> residual,
                                       std::size_t morsel_rows)
    : Operator(Schema::Concat(probe.output_schema(), build.output_schema())),
      probe_(std::move(probe)), build_(std::move(build)),
      keys_(std::move(keys)), residual_(std::move(residual)),
      morsel_rows_(morsel_rows == 0 ? 1 : morsel_rows) {}

Status ParallelHashJoinOp::Open(ExecContext* ctx) {
  partitions_.clear();
  results_.clear();
  cursor_morsel_ = 0;
  cursor_row_ = 0;
  SOFTDB_RETURN_IF_ERROR(RunBuildPhase(ctx));
  SOFTDB_RETURN_IF_ERROR(RunProbePhase(ctx));
  return Status::OK();
}

Status ParallelHashJoinOp::RunBuildPhase(ExecContext* ctx) {
  build_skip_.assign(build_.scan_predicates.size(), false);
  bool provably_empty = false;
  ResolveScanRuntimeParams(build_.runtime_params, build_.scan_schema, ctx,
                           &build_skip_, &provably_empty);
  std::vector<MorselRange> morsels;
  if (!provably_empty) {
    ctx->stats.pages_read += build_.table->NumPages();
    ChargeZoneMapBlocks(build_.zone_skips, ctx);
    morsels = SplitMorsels(build_.table->NumSlots(), morsel_rows_);
  }

  // Phase 1: per-morsel (key, row) extraction, in parallel. NULL keys
  // never enter the build side (they cannot match).
  using KeyedRows = std::vector<std::pair<std::vector<Value>, std::vector<Value>>>;
  std::vector<KeyedRows> keyed(morsels.size());
  std::vector<ExecStats> worker_stats(morsels.size());
  ExecPool<PipelineChain> pool([this] { return BuildPipelineChain(build_); });
  SOFTDB_RETURN_IF_ERROR(ForEachMorsel(
      ctx, morsels,
      [this, ctx, &pool, &worker_stats, &keyed](const MorselRange& m) -> Status {
        std::vector<std::vector<Value>> rows;
        SOFTDB_RETURN_IF_ERROR(RunPipelineMorsel(&pool, m, &build_skip_,
                                                 ctx->use_kernels, ctx->query,
                                                 &worker_stats[m.index],
                                                 &rows));
        KeyedRows& out = keyed[m.index];
        out.reserve(rows.size());
        for (std::vector<Value>& row : rows) {
          std::vector<Value> key;
          key.reserve(keys_.size());
          bool null_key = false;
          for (const JoinNode::EquiKey& k : keys_) {
            if (row[k.right].is_null()) {
              null_key = true;
              break;
            }
            key.push_back(row[k.right]);
          }
          if (null_key) continue;
          out.emplace_back(std::move(key), std::move(row));
        }
        return Status::OK();
      }));
  MergeWorkerStats(worker_stats, &ctx->stats);

  // Phase 2 (after the phase-1 barrier): hash-partitioned merge. Each
  // partition is owned by exactly one task, and tasks fold morsels in
  // morsel order, so per-key row order equals the serial build's insertion
  // order — probe output is then bit-identical to serial.
  const std::size_t num_partitions =
      ctx->scheduler != nullptr ? ctx->scheduler->num_threads() : 1;
  partitions_.assign(num_partitions == 0 ? 1 : num_partitions, BuildMap{});
  std::vector<MorselRange> partition_ids;
  partition_ids.reserve(partitions_.size());
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    partition_ids.push_back(MorselRange{p, 1, p});
  }
  const ValueVecHash hasher;
  SOFTDB_RETURN_IF_ERROR(ForEachMorsel(
      ctx, partition_ids,
      [this, &keyed, &hasher](const MorselRange& pm) -> Status {
        BuildMap& map = partitions_[pm.index];
        for (const KeyedRows& morsel_entries : keyed) {
          for (const auto& entry : morsel_entries) {
            if (hasher(entry.first) % partitions_.size() != pm.index) continue;
            map[entry.first].push_back(entry.second);
          }
        }
        return Status::OK();
      }));
  return Status::OK();
}

Status ParallelHashJoinOp::RunProbePhase(ExecContext* ctx) {
  probe_skip_.assign(probe_.scan_predicates.size(), false);
  bool provably_empty = false;
  ResolveScanRuntimeParams(probe_.runtime_params, probe_.scan_schema, ctx,
                           &probe_skip_, &provably_empty);
  if (provably_empty) return Status::OK();  // Serial probe scans nothing.
  ctx->stats.pages_read += probe_.table->NumPages();
  ChargeZoneMapBlocks(probe_.zone_skips, ctx);

  const std::vector<MorselRange> morsels =
      SplitMorsels(probe_.table->NumSlots(), morsel_rows_);
  results_.resize(morsels.size());
  if (morsels.empty()) return Status::OK();

  std::vector<ExecStats> worker_stats(morsels.size());
  ExecPool<PipelineChain> pool([this] { return BuildPipelineChain(probe_); });
  const ValueVecHash hasher;
  SOFTDB_RETURN_IF_ERROR(ForEachMorsel(
      ctx, morsels,
      [this, ctx, &pool, &worker_stats, &hasher](const MorselRange& m) -> Status {
        auto lease = pool.Acquire();
        lease->leaf->BindMorsel(m.base, m.rows, &probe_skip_);
        ExecContext local;
        local.query = ctx->query;
        local.use_kernels = ctx->use_kernels;
        SOFTDB_RETURN_IF_ERROR(local.CheckInterrupt());
        SOFTDB_RETURN_IF_ERROR(lease->root->Open(&local));
        std::vector<std::vector<Value>>& out = results_[m.index];
        while (true) {
          auto has = lease->root->NextBatch(&local, &lease->scratch);
          if (!has.ok()) return has.status();
          if (!*has) break;
          const ColumnBatch& b = lease->scratch;
          for (std::size_t i = 0; i < b.sel_size(); ++i) {
            const std::size_t pos = b.sel()[i];
            std::vector<Value> key;
            key.reserve(keys_.size());
            bool null_key = false;
            for (const JoinNode::EquiKey& k : keys_) {
              if (b.column(k.left).IsNull(pos)) {
                null_key = true;
                break;
              }
              key.push_back(b.column(k.left).GetValue(pos));
            }
            if (null_key) continue;
            const BuildMap& map =
                partitions_[hasher(key) % partitions_.size()];
            auto it = map.find(key);
            if (it == map.end()) continue;
            std::vector<Value> probe_row;
            for (const std::vector<Value>& right_row : it->second) {
              // Counted before the residual, exactly as BatchHashJoinOp.
              ++local.stats.rows_joined;
              if (probe_row.empty()) probe_row = b.MaterializeRow(pos);
              std::vector<Value> combined = probe_row;
              combined.insert(combined.end(), right_row.begin(),
                              right_row.end());
              SOFTDB_ASSIGN_OR_RETURN(bool pass,
                                      EvalPredicates(residual_, combined));
              if (pass) out.push_back(std::move(combined));
            }
          }
        }
        ++local.stats.morsels;
        worker_stats[m.index] = local.stats;
        return Status::OK();
      }));
  MergeWorkerStats(worker_stats, &ctx->stats);
  return Status::OK();
}

Result<bool> ParallelHashJoinOp::Next(ExecContext* ctx,
                                      std::vector<Value>* row) {
  (void)ctx;
  while (cursor_morsel_ < results_.size()) {
    std::vector<std::vector<Value>>& morsel_rows = results_[cursor_morsel_];
    if (cursor_row_ < morsel_rows.size()) {
      *row = std::move(morsel_rows[cursor_row_++]);
      return true;
    }
    morsel_rows.clear();
    morsel_rows.shrink_to_fit();
    ++cursor_morsel_;
    cursor_row_ = 0;
  }
  return false;
}

}  // namespace softdb
