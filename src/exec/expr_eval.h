#ifndef SOFTDB_EXEC_EXPR_EVAL_H_
#define SOFTDB_EXEC_EXPR_EVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/column_batch.h"
#include "plan/expr.h"
#include "plan/predicate.h"

namespace softdb {

/// A dense, typed vector of expression results for the selected rows of a
/// batch: entry i is the value for batch position sel[i]. Every bound Expr
/// has a static result type, so one payload buffer per vec suffices:
/// int-like types (BIGINT/DATE/BOOL) use `i64`, DOUBLE uses `f64`, VARCHAR
/// uses `str` (non-owning pointers into batch storage or literal exprs —
/// valid only while the source batch and expr tree are alive). `null[i]`
/// set means SQL NULL; the payload entry is then meaningless but present.
struct BatchVec {
  TypeId type = TypeId::kInt64;
  std::vector<std::int64_t> i64;
  std::vector<double> f64;
  std::vector<const std::string*> str;
  std::vector<std::uint8_t> null;

  void Resize(TypeId t, std::size_t n);
  double NumericAt(std::size_t i) const {
    return type == TypeId::kDouble ? f64[i]
                                   : static_cast<double>(i64[i]);
  }
};

/// Evaluates `expr` column-at-a-time for the `n` batch positions listed in
/// `sel`, producing a dense BatchVec (result i belongs to batch position
/// sel[i]). Semantics — including Kleene AND/OR, NULL propagation, the
/// per-row short-circuit order that decides *whether* a type-mismatch
/// error is reachable, and error messages — are exactly those of
/// Expr::Eval, so the vectorized and row engines are interchangeable.
Status EvalExprBatch(const Expr& expr, const ColumnBatch& batch,
                     const SelIdx* sel, std::size_t n, BatchVec* out);

/// Applies `predicates` (skipping estimation-only twins) to the batch's
/// positions listed in sel[0..n), compacting `sel` in place to the
/// positions where every predicate is TRUE. Returns the surviving count.
/// Equivalent to EvalPredicates per row, batched predicate-at-a-time.
///
/// When `use_kernels` is set (ExecContext::use_kernels), predicates of
/// kernel shape — `col op literal`, BETWEEN over literals, string
/// equality/IN against a dictionary-coded view column, IS [NOT] NULL —
/// run through the branch-free mask kernels in exec/kernels.h (bitmask
/// over the full batch, then selection compaction). Everything else, and
/// every shape whose evaluation could raise a type error, falls back to
/// EvalExprBatch; results are bit-identical either way.
Result<std::size_t> FilterSelection(
    const std::vector<const Predicate*>& predicates, const ColumnBatch& batch,
    SelIdx* sel, std::size_t n, bool use_kernels = true);

}  // namespace softdb

#endif  // SOFTDB_EXEC_EXPR_EVAL_H_
