#ifndef SOFTDB_EXEC_COLUMN_BATCH_H_
#define SOFTDB_EXEC_COLUMN_BATCH_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"
#include "storage/column_vector.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace softdb {

/// Rows per batch in the vectorized engine. 1024 keeps a batch of a few
/// int64/double columns inside L2 while amortizing per-batch overheads
/// (virtual dispatch, selection bookkeeping) over enough rows to vanish.
inline constexpr std::size_t kBatchCapacity = 1024;

/// Selection-vector index type; kBatchCapacity must fit.
using SelIdx = std::uint16_t;
static_assert(kBatchCapacity <= 1u << 16);

/// One column of a batch: either a zero-copy *view* of a contiguous run of
/// a storage ColumnVector (sequential scans) or an *owned* buffer
/// (index-scan gathers, projections, join outputs). Accessors take batch
/// positions (0..size); view mode adds the base row offset internally.
class BatchColumn {
 public:
  TypeId type() const { return type_; }

  /// Points this column at rows [base, base+n) of `source` without copying.
  void SetView(const ColumnVector* source, std::size_t base) {
    type_ = source->type();
    view_ = source;
    base_ = base;
    ClearOwned();
  }

  /// Switches to owned mode with empty buffers of the given type.
  void ResetOwned(TypeId type) {
    type_ = type;
    view_ = nullptr;
    base_ = 0;
    ClearOwned();
  }

  bool IsNull(std::size_t pos) const {
    return view_ ? view_->RawNulls()[base_ + pos] != 0 : nulls_[pos] != 0;
  }
  std::int64_t Int64(std::size_t pos) const {
    return view_ ? view_->RawInts()[base_ + pos] : ints_[pos];
  }
  double Double(std::size_t pos) const {
    return view_ ? view_->RawDoubles()[base_ + pos] : doubles_[pos];
  }
  const std::string& String(std::size_t pos) const {
    return view_ ? view_->RawStrings()[base_ + pos] : strings_[pos];
  }

  /// Materializes one cell exactly as ColumnVector::Get / Table::GetRow
  /// would, so adapter output is byte-identical to the row engine's.
  Value GetValue(std::size_t pos) const;

  /// Contiguous raw spans for the kernel layer, uniform across view and
  /// owned mode (the view/owned asymmetry fix): every pointer is
  /// pre-offset so index 0 is batch position 0, and is valid for at least
  /// the enclosing batch's size() rows.
  ///
  /// Null-handling contract: `nulls[pos] != 0` marks SQL NULL, and the
  /// payload of a NULL row in the typed buffer is *unspecified* (storage
  /// happens to write 0 / "") — kernels must mask NULL rows out of every
  /// result rather than branch on payloads. Exactly the buffer matching
  /// the column's physical family is populated: `i64` for int-like types
  /// (BIGINT, DATE, BOOLEAN), `f64` for DOUBLE, `str` for VARCHAR; all
  /// others stay nullptr. `codes` carries the dictionary codes of a
  /// view-mode VARCHAR column (owned string buffers are materialized, so
  /// `codes` is nullptr there and code kernels fall back to `str`).
  struct RawSpans {
    const std::int64_t* i64 = nullptr;
    const double* f64 = nullptr;
    const std::string* str = nullptr;
    const std::int32_t* codes = nullptr;
    const std::uint8_t* nulls = nullptr;
  };
  RawSpans RawData() const;

  /// The storage column a view-mode column points at (nullptr in owned
  /// mode). Dictionary lookups (FindCode) go through this.
  const ColumnVector* view_source() const { return view_; }

  /// Owned-mode appends. AppendValue mirrors ColumnVector::Append's type
  /// coercion so join outputs built from row-path Values stay identical.
  void AppendValue(const Value& v);
  /// Raw typed appends (projection outputs). The payload of a null entry is
  /// ignored; null strings may pass nullptr.
  void AppendRawInt64(std::int64_t v, bool null) {
    nulls_.push_back(null ? 1 : 0);
    ints_.push_back(null ? 0 : v);
  }
  void AppendRawDouble(double v, bool null) {
    nulls_.push_back(null ? 1 : 0);
    doubles_.push_back(null ? 0.0 : v);
  }
  void AppendRawString(const std::string* v, bool null) {
    nulls_.push_back(null ? 1 : 0);
    if (null) {
      strings_.emplace_back();
    } else {
      strings_.push_back(*v);
    }
  }
  /// Copies one cell from another batch column (typed, no Value boxing).
  void AppendFrom(const BatchColumn& src, std::size_t pos);

  /// Gathers `n` arbitrary rows of `src` into owned buffers (index scans,
  /// whose qualifying rows are not contiguous).
  void GatherFrom(const ColumnVector& src, const RowId* rows, std::size_t n);

 private:
  void ClearOwned() {
    ints_.clear();
    doubles_.clear();
    strings_.clear();
    nulls_.clear();
  }

  TypeId type_ = TypeId::kInt64;
  const ColumnVector* view_ = nullptr;
  std::size_t base_ = 0;
  // Owned buffers (used when view_ == nullptr).
  std::vector<std::int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<std::uint8_t> nulls_;
};

/// A fixed-capacity batch of rows in columnar layout plus a selection
/// vector: `sel()[0..sel_size())` lists the positions (ascending) that are
/// logically present. Operators narrow the selection in place (filters)
/// or emit densely-packed batches with an identity selection (projections,
/// joins). Capacity is kBatchCapacity rows.
class ColumnBatch {
 public:
  /// Re-shapes for `schema` (column count + types) and clears rows and
  /// selection. Owned columns start empty.
  void Reset(const Schema& schema);

  /// Points every column at rows [base, base+n) of `table` (zero-copy) and
  /// sets size to n. Selection is left empty for the caller to fill.
  void BindTableView(const Table& table, std::size_t base, std::size_t n);

  std::size_t NumColumns() const { return columns_.size(); }
  BatchColumn& column(std::size_t i) { return columns_[i]; }
  const BatchColumn& column(std::size_t i) const { return columns_[i]; }

  std::size_t size() const { return size_; }
  void set_size(std::size_t n) { size_ = n; }

  const SelIdx* sel() const { return sel_.data(); }
  SelIdx* mutable_sel() { return sel_.data(); }
  std::size_t sel_size() const { return sel_size_; }
  void set_sel_size(std::size_t n) { sel_size_ = n; }

  /// Identity selection over the first n rows.
  void SelectAll(std::size_t n) {
    size_ = n;
    sel_size_ = n;
    for (std::size_t i = 0; i < n; ++i) sel_[i] = static_cast<SelIdx>(i);
  }

  /// True when the selection vector is well-formed: strictly ascending
  /// (hence duplicate-free), every entry in [0, size()), and no more
  /// entries than rows. Every operator must preserve this; PlanVerifier
  /// and the differential fuzzer check it.
  bool SelectionValid() const {
    if (sel_size_ > size_) return false;
    for (std::size_t i = 0; i < sel_size_; ++i) {
      if (sel_[i] >= size_) return false;
      if (i > 0 && sel_[i] <= sel_[i - 1]) return false;
    }
    return true;
  }

  /// Materializes one row as the row engine would (Table::GetRow order).
  std::vector<Value> MaterializeRow(std::size_t pos) const;

 private:
  std::vector<BatchColumn> columns_;
  std::size_t size_ = 0;
  std::array<SelIdx, kBatchCapacity> sel_{};
  std::size_t sel_size_ = 0;
};

}  // namespace softdb

#endif  // SOFTDB_EXEC_COLUMN_BATCH_H_
