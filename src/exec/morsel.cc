#include "exec/morsel.h"

namespace softdb {

std::vector<MorselRange> SplitMorsels(std::size_t total_rows,
                                      std::size_t morsel_rows) {
  std::vector<MorselRange> out;
  if (total_rows == 0) return out;
  if (morsel_rows == 0) morsel_rows = 1;
  out.reserve((total_rows + morsel_rows - 1) / morsel_rows);
  std::size_t index = 0;
  for (std::size_t base = 0; base < total_rows; base += morsel_rows) {
    const std::size_t rows =
        base + morsel_rows <= total_rows ? morsel_rows : total_rows - base;
    out.push_back(MorselRange{base, rows, index++});
  }
  return out;
}

}  // namespace softdb
