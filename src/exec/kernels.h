#ifndef SOFTDB_EXEC_KERNELS_H_
#define SOFTDB_EXEC_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "exec/column_batch.h"
#include "plan/expr.h"

namespace softdb {
namespace kernels {

/// Branch-free batch kernels for the hot scan→filter path. Each mask
/// kernel fills `mask[0..n)` with 1 where the row passes and 0 otherwise,
/// always computing over the FULL contiguous range (dead and NULL rows
/// included — their payloads are defined-but-unspecified, see
/// BatchColumn::RawData's contract) so the loop body has no data-dependent
/// branches and autovectorizes. NULL rows never pass: a filter keeps a row
/// only when the predicate is TRUE, and NULL is not TRUE.
///
/// The scalar loops below are written to autovectorize under -O2; when the
/// build enables SOFTDB_SIMD on x86-64, explicit SSE2/AVX2 intrinsic
/// variants are compiled with per-function target attributes and selected
/// at runtime via cpuid, so the binary stays safe on older hosts. Every
/// variant is bit-identical to the scalar evaluator's semantics (int-like
/// pairs compare in int64, mixed numeric in double via the same
/// NumericValue widening, NaN behaves as scalar <,==,!= do).

/// mask[i] = !null[i] && (data[i] op constant), int64 compare.
void CompareMaskI64(const std::int64_t* data, const std::uint8_t* nulls,
                    std::size_t n, CompareOp op, std::int64_t constant,
                    std::uint8_t* mask);

/// mask[i] = !null[i] && ((double)data[i] op constant) — an int-like
/// column against a DOUBLE constant, using the row engine's widening.
void CompareMaskI64AsF64(const std::int64_t* data, const std::uint8_t* nulls,
                         std::size_t n, CompareOp op, double constant,
                         std::uint8_t* mask);

/// mask[i] = !null[i] && (data[i] op constant), double compare.
void CompareMaskF64(const double* data, const std::uint8_t* nulls,
                    std::size_t n, CompareOp op, double constant,
                    std::uint8_t* mask);

/// Dictionary-code equality for VARCHAR: mask[i] = code[i] == target (kEq)
/// or !null && code[i] != target (kNe). NULL rows carry
/// ColumnVector::kNullCode and never pass either op. Pass a negative
/// `target` other than kNullCode (e.g. kAbsentCode) when the constant is
/// not in the dictionary: no row can equal it, every non-NULL row differs.
inline constexpr std::int32_t kAbsentCode = -2;
void CodeEqMask(const std::int32_t* codes, std::size_t n, bool negated,
                std::int32_t target, std::uint8_t* mask);

/// Dictionary-code IN list: mask[i] = codes[i] ∈ targets[0..k). Targets
/// must be ≥ 0 (absent constants are simply omitted — they can match no
/// row). NULL rows (kNullCode) never match.
void CodeInMask(const std::int32_t* codes, std::size_t n,
                const std::int32_t* targets, std::size_t k,
                std::uint8_t* mask);

/// IS [NOT] NULL: mask[i] = null[i] != 0 (or its negation).
void IsNullMask(const std::uint8_t* nulls, std::size_t n, bool negated,
                std::uint8_t* mask);

/// In-place AND of two masks (conjunct accumulation).
void AndMask(const std::uint8_t* other, std::size_t n, std::uint8_t* mask);

/// out[i] = a[i] | b[i] — the NULL-propagation merge of binary operators.
void NullOrMask(const std::uint8_t* a, const std::uint8_t* b, std::size_t n,
                std::uint8_t* out);

/// Branch-free selection compaction: keeps sel[i] iff mask[sel[i]], packs
/// survivors to the front preserving order, returns the new length. This
/// is the bitmask→selection-vector step every kernel filter ends with.
std::size_t FilterSelByMask(const std::uint8_t* mask, SelIdx* sel,
                            std::size_t n);

/// Arithmetic over dense vectors with NULL masking done by the caller
/// (NullOrMask); kAdd/kSub/kMul only — kDiv keeps its scalar loop for the
/// divide-by-zero→NULL rule. The int64 variant replicates the row
/// engine's exact NumericValue() double round-trip on each operand.
void ArithF64(ArithOp op, const double* a, const double* b, std::size_t n,
              double* out);
void ArithI64ViaDouble(ArithOp op, const std::int64_t* a,
                       const std::int64_t* b, std::size_t n,
                       std::int64_t* out);

/// Host capability the bench records next to host_threads: "avx2", "sse2"
/// or "scalar" (reflects both the SOFTDB_SIMD build toggle and runtime
/// cpuid, i.e. what the kernels above will actually execute).
std::string SimdCapability();

}  // namespace kernels
}  // namespace softdb

#endif  // SOFTDB_EXEC_KERNELS_H_
