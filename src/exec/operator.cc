#include "exec/operator.h"

#include "common/failpoint.h"
#include "common/str_util.h"

namespace softdb {

std::string RowSet::ToString(std::size_t max_rows) const {
  std::string out;
  std::vector<std::string> headers;
  headers.reserve(schema.NumColumns());
  for (const ColumnDef& c : schema.columns()) headers.push_back(c.name);
  out += Join(headers, " | ") + "\n";
  out += std::string(out.size() > 1 ? out.size() - 1 : 0, '-') + "\n";
  std::size_t shown = 0;
  for (const std::vector<Value>& row : rows) {
    if (shown++ >= max_rows) {
      out += StrFormat("... (%zu rows total)\n", rows.size());
      break;
    }
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Value& v : row) cells.push_back(v.ToString());
    out += Join(cells, " | ") + "\n";
  }
  return out;
}

Result<RowSet> ExecuteToCompletion(Operator* root, ExecContext* ctx) {
  RowSet result;
  result.schema = root->schema();
  SOFTDB_RETURN_IF_ERROR(root->Open(ctx));
  std::vector<Value> row;
  while (true) {
    // Action-only chaos site: fires between output rows, where tests mutate
    // engine state (overturn an SC, cancel the query) mid-execution.
    SOFTDB_FAILPOINT_HIT("exec.drain");
    SOFTDB_RETURN_IF_ERROR(ctx->CheckInterruptStrided());
    SOFTDB_ASSIGN_OR_RETURN(bool has, root->Next(ctx, &row));
    if (!has) break;
    ++ctx->stats.rows_output;
    result.rows.push_back(std::move(row));
    row = {};
  }
  return result;
}

}  // namespace softdb
