#ifndef SOFTDB_SERVER_SESSION_H_
#define SOFTDB_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/result.h"
#include "common/rng.h"
#include "server/dispatcher.h"
#include "server/server_options.h"

namespace softdb {

class SessionManager;

/// One client connection to a served SoftDb. A session owns a sticky
/// cancellation token (Cancel() aborts every outstanding and future
/// statement), a priority (admission shedding evicts lower priorities
/// first), per-session stats, and the retry/backoff loop around transient
/// dispatcher/engine failures.
///
/// Sessions are created by SessionManager::OpenSession and owned by the
/// manager; one session is single-client (its owner issues statements
/// sequentially or takes responsibility for interleaving), but distinct
/// sessions execute concurrently.
class Session {
 public:
  /// Executes one statement with the session retry policy: retryable
  /// statuses (IsRetryableStatus — admission rejections, shed evictions,
  /// transient exhaustion) are retried with exponential backoff and
  /// deterministic jitter, up to RetryPolicy::max_attempts total tries.
  /// Non-retryable statuses (semantic errors, deadline, cancel) return
  /// immediately.
  Result<QueryResult> Execute(const std::string& sql);

  /// Same, honoring the caller's deadline/token. Backoff never sleeps past
  /// the caller's deadline: when the remaining budget cannot cover the
  /// next backoff, the last error returns instead.
  Result<QueryResult> Execute(const std::string& sql,
                              const QueryContext* caller);

  /// Single attempt, no retry loop.
  Result<QueryResult> ExecuteOnce(const std::string& sql,
                                  const QueryContext* caller);

  /// Cancels the session token: every outstanding statement observes
  /// kCancelled at its next cooperative check, and every future statement
  /// is rejected on arrival. Irreversible for this session.
  void Cancel() { token_->Cancel(); }

  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  int priority() const { return priority_.load(std::memory_order_relaxed); }
  void set_priority(int priority) {
    priority_.store(priority, std::memory_order_relaxed);
  }
  const SessionStats& stats() const { return stats_; }
  std::shared_ptr<CancellationToken> cancel_token() { return token_; }

 private:
  friend class SessionManager;

  Session(Dispatcher* dispatcher, const ServerOptions& options,
          std::uint64_t id, std::string name, int priority);

  Dispatcher* dispatcher_;
  const RetryPolicy retry_;
  const std::uint64_t id_;
  const std::string name_;
  std::atomic<int> priority_;
  std::shared_ptr<CancellationToken> token_;
  SessionStats stats_;

  std::mutex backoff_mu_;  // Guards backoff_rng_ (Execute may race).
  Rng backoff_rng_;
};

/// Owner of all sessions serving one SoftDb, and of the Dispatcher they
/// share. Construction spins up the worker pool; Drain() (or destruction)
/// shuts it down. See DESIGN.md §15 for the serving state machine.
class SessionManager {
 public:
  explicit SessionManager(SoftDb* db, ServerOptions options = {});

  /// Opens a new session. `name` is diagnostic only; `priority` orders
  /// dispatch and shedding (higher = served first, shed last). Fails with
  /// kResourceExhausted {draining=1} once draining.
  Result<Session*> OpenSession(std::string name = "", int priority = 0);

  /// Closes one session. The caller must have no statements in flight on
  /// it (outstanding Execute calls would dangle). Outstanding work is the
  /// client's to quiesce; Cancel() first if unsure.
  Status CloseSession(std::uint64_t id);

  /// Graceful drain: closes admissions, rejects queued statements, lets
  /// in-flight work finish within the drain deadline then cancels it, and
  /// checkpoints the WAL. Idempotent.
  Status Drain() { return dispatcher_.Drain(); }

  bool draining() const { return dispatcher_.draining(); }

  Dispatcher& dispatcher() { return dispatcher_; }
  ServerStats& stats() { return dispatcher_.stats(); }
  SoftDb* db() { return dispatcher_.db(); }

  std::size_t session_count() const;
  /// Live sessions, id-ordered (diagnostics; pointers stay manager-owned).
  std::vector<Session*> sessions();

 private:
  ServerOptions options_;
  Dispatcher dispatcher_;

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;
};

}  // namespace softdb

#endif  // SOFTDB_SERVER_SESSION_H_
