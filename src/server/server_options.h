#ifndef SOFTDB_SERVER_SERVER_OPTIONS_H_
#define SOFTDB_SERVER_SERVER_OPTIONS_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstddef>

#include "common/rng.h"

namespace softdb {

/// Retry budget and backoff shape applied by a Session around transient
/// (IsRetryableStatus) failures — the client-side mirror of the repair
/// path's RepairPolicy algebra: exponential backoff, capped, with
/// deterministic ±25% jitter so concurrent sessions desynchronize without
/// losing test reproducibility.
struct RetryPolicy {
  /// Total tries including the first (1 = never retry).
  std::size_t max_attempts = 3;
  std::chrono::milliseconds base_backoff{5};
  std::chrono::milliseconds max_backoff{250};
  std::uint64_t jitter_seed = 0x5EEDULL;
};

/// Backoff before retry number `attempt` (1-based: the wait after the
/// attempt'th failure): base * 2^(attempt-1), capped at max_backoff, with
/// ±25% jitter drawn from `rng`. Exposed so tests can reproduce a
/// session's exact backoff schedule from the policy seed.
inline std::chrono::milliseconds ComputeBackoff(const RetryPolicy& policy,
                                                std::size_t attempt,
                                                Rng* rng) {
  const std::size_t shift =
      attempt == 0 ? 0 : std::min<std::size_t>(attempt - 1, 20);
  double ms = static_cast<double>(policy.base_backoff.count()) *
              static_cast<double>(std::uint64_t{1} << shift);
  ms = std::min(ms, static_cast<double>(policy.max_backoff.count()));
  ms *= 0.75 + 0.5 * rng->NextDouble();
  return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
}

/// Configuration for the serving layer (SessionManager + Dispatcher).
struct ServerOptions {
  /// Dispatcher worker threads executing admitted statements. The pool is
  /// intentionally separate from the engine's morsel TaskScheduler: a
  /// serving thread blocks for a whole statement, and parking long-lived
  /// serve loops inside the barrier-style scheduler would starve the
  /// morsel groups queries submit to the same pool (DESIGN.md §15).
  std::size_t worker_threads = 2;
  /// Bounded admission queue: statements waiting for a worker. Admission
  /// past this depth is rejected with kResourceExhausted {queue_depth=N
  /// retry_after_ms=H} unless load shedding can evict a lower-priority
  /// entry to make room.
  std::size_t max_queue_depth = 64;
  /// Load-shedding high-water mark (<= max_queue_depth). At or above this
  /// depth the dispatcher starts shedding the lowest-priority queued
  /// request to admit strictly higher-priority work, and applies
  /// overload_deadline_ms backpressure to everything it still admits.
  std::size_t high_water_depth = 48;
  /// Backpressure deadline cap under overload: when the queue is at or
  /// above high_water_depth, an admitted statement's effective deadline is
  /// tightened to at most this budget, so queued work cannot wait longer
  /// than it is allowed to run. 0 disables the cap.
  std::uint64_t overload_deadline_ms = 0;
  /// Per-statement deadline armed when neither the caller nor the session
  /// supplies one. 0 = no deadline.
  std::uint64_t default_deadline_ms = 0;
  /// Grace period Drain() gives in-flight statements before cancelling
  /// them through their session tokens.
  std::uint64_t drain_deadline_ms = 1000;
  /// Checkpoint the engine's WAL at the end of a successful drain, so a
  /// drained server restarts from a checkpoint instead of a long replay.
  bool checkpoint_on_drain = true;
  /// Session-level retry/backoff policy for retryable statuses.
  RetryPolicy retry;
};

/// Serving-layer counters. All atomics: sessions, workers and the drain
/// path update them concurrently; tests and ops read them racily.
struct ServerStats {
  std::atomic<std::uint64_t> submitted{0};  // Statements offered to admit.
  std::atomic<std::uint64_t> admitted{0};   // Entered the queue.
  std::atomic<std::uint64_t> executed{0};   // Reached the engine.
  std::atomic<std::uint64_t> succeeded{0};  // Engine returned OK.
  std::atomic<std::uint64_t> failed{0};     // Engine returned an error.
  /// Rejections, by reason. queue_full includes the case where shedding
  /// found no lower-priority victim.
  std::atomic<std::uint64_t> rejected_queue_full{0};
  std::atomic<std::uint64_t> rejected_expired_deadline{0};  // On arrival.
  std::atomic<std::uint64_t> rejected_draining{0};
  std::atomic<std::uint64_t> rejected_injected{0};  // server.admit fault.
  /// Queued requests evicted by load shedding (kResourceExhausted
  /// {shed=1}) to admit higher-priority work.
  std::atomic<std::uint64_t> shed{0};
  /// Requests whose deadline expired while queued: completed with
  /// kDeadlineExceeded at dequeue, never executed doomed.
  std::atomic<std::uint64_t> expired_in_queue{0};
  /// Statements whose effective deadline was tightened by the overload
  /// backpressure cap at admission.
  std::atomic<std::uint64_t> deadline_tightened{0};
  /// Session-level retries performed (per extra attempt, not per
  /// statement) and the backoff wall-clock they consumed.
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> backoff_ms_total{0};
  /// Drain bookkeeping: queued statements rejected by Drain, in-flight
  /// statements cancelled at the drain deadline, drains completed.
  std::atomic<std::uint64_t> drain_rejected{0};
  std::atomic<std::uint64_t> drain_cancelled{0};
  std::atomic<std::uint64_t> drains{0};
  /// High-water mark of observed queue depth.
  std::atomic<std::uint64_t> queue_depth_high_water{0};
  /// Rollups of per-statement ExecStats across all sessions.
  std::atomic<std::uint64_t> rows_output{0};
  std::atomic<std::uint64_t> wal_records{0};
  std::atomic<std::uint64_t> degraded_retries{0};
};

/// Per-session counters (one Session = one client). Atomics for the same
/// reason as ServerStats: the owning client thread writes, observers read.
struct SessionStats {
  std::atomic<std::uint64_t> statements{0};  // Execute calls.
  std::atomic<std::uint64_t> succeeded{0};
  std::atomic<std::uint64_t> failed{0};      // Final (post-retry) failures.
  std::atomic<std::uint64_t> retries{0};     // Extra attempts consumed.
  std::atomic<std::uint64_t> backoff_ms_total{0};  // Planned backoff waits.
  std::atomic<std::uint64_t> rows_output{0};
  std::atomic<std::uint64_t> wal_records{0};
  std::atomic<std::uint64_t> wal_fsyncs{0};
};

}  // namespace softdb

#endif  // SOFTDB_SERVER_SERVER_OPTIONS_H_
