#include "server/dispatcher.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "server/session.h"

namespace softdb {

namespace {

/// Rough admission backoff hint: one base backoff per queued statement a
/// worker must clear first. Deterministic, so tests can pin it.
std::int64_t RetryAfterHintMs(const ServerOptions& options,
                              std::size_t queue_depth) {
  const std::size_t workers = std::max<std::size_t>(1, options.worker_threads);
  const std::size_t waves = queue_depth / workers + 1;
  return static_cast<std::int64_t>(options.retry.base_backoff.count()) *
         static_cast<std::int64_t>(waves);
}

void BumpHighWater(std::atomic<std::uint64_t>* high_water,
                   std::uint64_t depth) {
  std::uint64_t seen = high_water->load(std::memory_order_relaxed);
  while (depth > seen &&
         !high_water->compare_exchange_weak(seen, depth,
                                            std::memory_order_relaxed)) {
  }
}

}  // namespace

Dispatcher::Dispatcher(SoftDb* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {
  const std::size_t n = std::max<std::size_t>(1, options_.worker_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Dispatcher::~Dispatcher() {
  // Hard shutdown for servers that never drained: close admissions,
  // reject queued work, cancel in-flight statements, join. No checkpoint
  // — that is Drain()'s contract; an undrained engine recovers from its
  // WAL tail instead.
  std::vector<RequestPtr> doomed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
    shutdown_ = true;
    paused_ = false;
    doomed.assign(queue_.begin(), queue_.end());
    queue_.clear();
    for (const RequestPtr& r : running_) {
      if (r->ctx.cancel != nullptr) r->ctx.cancel->Cancel();
    }
  }
  work_cv_.notify_all();
  for (const RequestPtr& r : doomed) {
    stats_.drain_rejected.fetch_add(1, std::memory_order_relaxed);
    Complete(r, WithStatusDetail(
                    Status::ResourceExhausted("server shutting down"),
                    "draining", 1));
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

QueryContext Dispatcher::EffectiveContext(const QueryContext* caller,
                                          Session* session) const {
  QueryContext ctx;
  // Precedence for the token: the caller's own, else the session token
  // (Session::Cancel aborts everything outstanding), else a fresh one —
  // every in-flight statement must be cancellable by Drain.
  if (caller != nullptr && caller->cancel != nullptr) {
    ctx.cancel = caller->cancel;
  } else if (session != nullptr) {
    ctx.cancel = session->cancel_token();
  } else {
    ctx.cancel = std::make_shared<CancellationToken>();
  }
  if (caller != nullptr && caller->has_deadline) {
    ctx.has_deadline = true;
    ctx.deadline = caller->deadline;
  }
  // The server default only ever tightens.
  if (options_.default_deadline_ms > 0) {
    const auto cap = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(options_.default_deadline_ms);
    if (!ctx.has_deadline || cap < ctx.deadline) {
      ctx.has_deadline = true;
      ctx.deadline = cap;
    }
  }
  return ctx;
}

Result<QueryResult> Dispatcher::Execute(Session* session,
                                        const std::string& sql,
                                        const QueryContext* caller) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);

  if (SOFTDB_FAILPOINT_FIRED("server.admit")) {
    stats_.rejected_injected.fetch_add(1, std::memory_order_relaxed);
    return WithStatusDetail(
        Status::ResourceExhausted("injected admission rejection"),
        "retry_after_ms", RetryAfterHintMs(options_, queue_depth()));
  }

  RequestPtr req = std::make_shared<Request>();
  req->sql = sql;
  req->session = session;
  req->priority = session != nullptr ? session->priority() : 0;
  req->ctx = EffectiveContext(caller, session);

  // Deadline-aware admission: a statement that cannot finish — its
  // deadline predates arrival — is rejected before it consumes a queue
  // slot or a worker (§15; satellite of SoftDb::Execute's defensive
  // check).
  if (req->ctx.DeadlineExpired()) {
    stats_.rejected_expired_deadline.fetch_add(1, std::memory_order_relaxed);
    const auto lag = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - req->ctx.deadline);
    return WithStatusDetail(
        Status::DeadlineExceeded("deadline unsatisfiable at admission"),
        "deadline_lag_ms", lag.count());
  }

  RequestPtr shed_victim;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (draining_ || shutdown_) {
      stats_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
      return WithStatusDetail(
          Status::ResourceExhausted("server draining, admissions closed"),
          "draining", 1);
    }

    // Load shedding: from the high-water mark on, lowest-priority queued
    // work is evicted to admit strictly higher-priority statements.
    if (queue_.size() >= options_.high_water_depth) {
      shed_victim = ShedVictimLocked(req->priority);
    }
    if (queue_.size() >= options_.max_queue_depth) {
      const std::size_t depth = queue_.size();
      stats_.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
      lk.unlock();
      if (shed_victim != nullptr) {
        // Unreachable by construction (shedding freed a slot), but kept
        // defensive: never leave a victim pending.
        Complete(shed_victim,
                 WithStatusDetail(
                     Status::ResourceExhausted("shed under overload"),
                     "shed", 1));
      }
      Status st = WithStatusDetail(
          Status::ResourceExhausted("admission queue full"), "queue_depth",
          static_cast<std::int64_t>(depth));
      return WithStatusDetail(std::move(st), "retry_after_ms",
                              RetryAfterHintMs(options_, depth));
    }

    // Backpressure: above the high-water mark, an admitted statement's
    // deadline is tightened so it cannot out-wait its own budget in
    // queue.
    if (queue_.size() >= options_.high_water_depth &&
        options_.overload_deadline_ms > 0) {
      const auto cap =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(options_.overload_deadline_ms);
      if (!req->ctx.has_deadline || cap < req->ctx.deadline) {
        req->ctx.has_deadline = true;
        req->ctx.deadline = cap;
        stats_.deadline_tightened.fetch_add(1, std::memory_order_relaxed);
      }
    }

    req->seq = next_seq_++;
    req->enqueued_at = std::chrono::steady_clock::now();
    queue_.push_back(req);
    stats_.admitted.fetch_add(1, std::memory_order_relaxed);
    BumpHighWater(&stats_.queue_depth_high_water, queue_.size());
  }
  work_cv_.notify_one();

  if (shed_victim != nullptr) {
    stats_.shed.fetch_add(1, std::memory_order_relaxed);
    Status st = WithStatusDetail(
        Status::ResourceExhausted("shed under overload"), "shed", 1);
    Complete(shed_victim,
             WithStatusDetail(std::move(st), "retry_after_ms",
                              RetryAfterHintMs(options_, queue_depth())));
  }

  std::unique_lock<std::mutex> rlk(req->mu);
  req->cv.wait(rlk, [&req] { return req->done; });
  return *req->result;
}

std::list<Dispatcher::RequestPtr>::iterator Dispatcher::BestLocked() {
  auto best = queue_.begin();
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    if ((*it)->priority > (*best)->priority ||
        ((*it)->priority == (*best)->priority &&
         (*it)->seq < (*best)->seq)) {
      best = it;
    }
  }
  return best;
}

Dispatcher::RequestPtr Dispatcher::ShedVictimLocked(int incoming_priority) {
  auto victim = queue_.end();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->priority >= incoming_priority) continue;
    if (victim == queue_.end() || (*it)->priority < (*victim)->priority ||
        ((*it)->priority == (*victim)->priority &&
         (*it)->seq > (*victim)->seq)) {
      // Lowest priority first; among equals the newest goes, preserving
      // the oldest request's queue progress.
      victim = it;
    }
  }
  if (victim == queue_.end()) return nullptr;
  RequestPtr out = *victim;
  queue_.erase(victim);
  return out;
}

void Dispatcher::WorkerLoop() {
  for (;;) {
    RequestPtr req;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      if (shutdown_) return;
      auto it = BestLocked();
      req = *it;
      queue_.erase(it);
      running_.push_back(req);
    }
    ServeRequest(req);
    {
      std::lock_guard<std::mutex> lk(mu_);
      running_.erase(std::find(running_.begin(), running_.end(), req));
      if (running_.empty()) idle_cv_.notify_all();
    }
  }
}

void Dispatcher::ServeRequest(const RequestPtr& req) {
  if (SOFTDB_FAILPOINT_FIRED("server.dequeue")) {
    Complete(req, WithStatusDetail(
                      Status::ResourceExhausted("injected dequeue fault"),
                      "retry_after_ms",
                      static_cast<std::int64_t>(
                          options_.retry.base_backoff.count())));
    return;
  }

  // Deadline-aware dequeue: work whose budget expired while it waited is
  // never executed doomed.
  if (req->ctx.DeadlineExpired()) {
    stats_.expired_in_queue.fetch_add(1, std::memory_order_relaxed);
    const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - req->enqueued_at);
    Complete(req, WithStatusDetail(
                      Status::DeadlineExceeded("deadline expired in queue"),
                      "queued_ms", waited.count()));
    return;
  }

  stats_.executed.fetch_add(1, std::memory_order_relaxed);

  if (SOFTDB_FAILPOINT_FIRED("server.session_execute")) {
    stats_.failed.fetch_add(1, std::memory_order_relaxed);
    Complete(req,
             WithStatusDetail(
                 Status::ResourceExhausted("injected execution fault"),
                 "retry_after_ms",
                 static_cast<std::int64_t>(
                     options_.retry.base_backoff.count())));
    return;
  }

  Result<QueryResult> result = db_->Execute(req->sql, &req->ctx);
  if (result.ok()) {
    stats_.succeeded.fetch_add(1, std::memory_order_relaxed);
    stats_.rows_output.fetch_add(result->exec_stats.rows_output,
                                 std::memory_order_relaxed);
    stats_.wal_records.fetch_add(result->exec_stats.wal_records,
                                 std::memory_order_relaxed);
    stats_.degraded_retries.fetch_add(result->exec_stats.degraded_retries,
                                      std::memory_order_relaxed);
  } else {
    stats_.failed.fetch_add(1, std::memory_order_relaxed);
  }
  Complete(req, std::move(result));
}

void Dispatcher::Complete(const RequestPtr& req, Result<QueryResult> result) {
  {
    std::lock_guard<std::mutex> lk(req->mu);
    req->result.emplace(std::move(result));
    req->done = true;
  }
  req->cv.notify_all();
}

Status Dispatcher::Drain() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (draining_) {
      // Someone else is draining (or drained): wait for their verdict.
      drain_cv_.wait(lk, [this] { return drained_; });
      return drain_status_;
    }
    draining_ = true;
  }
  const Status st = DrainLocked();
  {
    std::lock_guard<std::mutex> lk(mu_);
    drained_ = true;
    drain_status_ = st;
  }
  drain_cv_.notify_all();
  return st;
}

Status Dispatcher::DrainLocked() {
  SOFTDB_FAILPOINT_HIT("server.drain");

  // 1. Admissions are closed (draining_). Reject everything still queued:
  // a draining server must not start new work.
  std::vector<RequestPtr> doomed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    doomed.assign(queue_.begin(), queue_.end());
    queue_.clear();
    paused_ = false;  // Frozen workers must wake to observe shutdown.
  }
  for (const RequestPtr& r : doomed) {
    stats_.drain_rejected.fetch_add(1, std::memory_order_relaxed);
    Complete(r, WithStatusDetail(
                    Status::ResourceExhausted("server draining"),
                    "draining", 1));
  }

  // 2. Give in-flight statements the drain grace period, then cancel the
  // stragglers through their tokens (cooperative: they observe the token
  // within a batch/morsel).
  {
    std::unique_lock<std::mutex> lk(mu_);
    const auto grace_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.drain_deadline_ms);
    idle_cv_.wait_until(lk, grace_deadline,
                        [this] { return running_.empty(); });
    for (const RequestPtr& r : running_) {
      if (r->ctx.cancel != nullptr) {
        r->ctx.cancel->Cancel();
        stats_.drain_cancelled.fetch_add(1, std::memory_order_relaxed);
      }
    }
    idle_cv_.wait(lk, [this] { return running_.empty(); });
    // 3. Stop and join the pool.
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }

  // 4. Leave durable state checkpointed: a drained server restarts from a
  // checkpoint, not a replay. (Crashes before/inside this step stay
  // recoverable — Checkpoint is crash-consistent at every step.)
  Status st = Status::OK();
  if (options_.checkpoint_on_drain && db_->wal() != nullptr) {
    st = db_->Checkpoint();
  }
  stats_.drains.fetch_add(1, std::memory_order_relaxed);
  return st;
}

void Dispatcher::PauseWorkers() {
  std::lock_guard<std::mutex> lk(mu_);
  paused_ = true;
}

void Dispatcher::ResumeWorkers() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

}  // namespace softdb
