#include "server/session.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace softdb {

Session::Session(Dispatcher* dispatcher, const ServerOptions& options,
                 std::uint64_t id, std::string name, int priority)
    : dispatcher_(dispatcher),
      retry_(options.retry),
      id_(id),
      name_(std::move(name)),
      priority_(priority),
      token_(std::make_shared<CancellationToken>()),
      // Distinct per-session jitter streams from one policy seed, so N
      // sessions desynchronize deterministically.
      backoff_rng_(options.retry.jitter_seed ^ (id * 0x9E3779B97F4A7C15ULL)) {}

Result<QueryResult> Session::ExecuteOnce(const std::string& sql,
                                         const QueryContext* caller) {
  // Session statements always run under the session token, so Cancel()
  // reaches them; a caller-supplied context takes precedence wholesale.
  QueryContext session_ctx;
  if (caller == nullptr) {
    session_ctx.cancel = token_;
    caller = &session_ctx;
  }
  return dispatcher_->Execute(this, sql, caller);
}

Result<QueryResult> Session::Execute(const std::string& sql) {
  return Execute(sql, nullptr);
}

Result<QueryResult> Session::Execute(const std::string& sql,
                                     const QueryContext* caller) {
  stats_.statements.fetch_add(1, std::memory_order_relaxed);
  Result<QueryResult> result = ExecuteOnce(sql, caller);
  std::size_t attempt = 1;
  while (!result.ok() && IsRetryableStatus(result.status()) &&
         attempt < retry_.max_attempts &&
         !token_->cancelled()) {
    std::chrono::milliseconds backoff;
    {
      std::lock_guard<std::mutex> lk(backoff_mu_);
      backoff = ComputeBackoff(retry_, attempt, &backoff_rng_);
    }
    // A producer hint (retry_after_ms) can only lengthen the wait.
    if (const auto hint = StatusDetail(result.status(), "retry_after_ms")) {
      backoff = std::max(backoff, std::chrono::milliseconds(*hint));
    }
    // Never back off past the caller's deadline: returning the transient
    // error beats burning the rest of the budget asleep.
    if (caller != nullptr) {
      const auto budget = caller->RemainingBudget();
      if (budget.has_value() && *budget <= backoff) break;
    }
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
    stats_.backoff_ms_total.fetch_add(
        static_cast<std::uint64_t>(backoff.count()),
        std::memory_order_relaxed);
    ServerStats& server = dispatcher_->stats();
    server.retries.fetch_add(1, std::memory_order_relaxed);
    server.backoff_ms_total.fetch_add(
        static_cast<std::uint64_t>(backoff.count()),
        std::memory_order_relaxed);
    // Sleep in short slices so session cancellation and server drain cut
    // the wait short instead of stalling a drain for a full backoff.
    auto remaining = backoff;
    while (remaining.count() > 0 && !token_->cancelled() &&
           !dispatcher_->draining()) {
      const auto slice = std::min(remaining, std::chrono::milliseconds(5));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
    ++attempt;
    result = ExecuteOnce(sql, caller);
  }

  if (result.ok()) {
    stats_.succeeded.fetch_add(1, std::memory_order_relaxed);
    stats_.rows_output.fetch_add(result->exec_stats.rows_output,
                                 std::memory_order_relaxed);
    stats_.wal_records.fetch_add(result->exec_stats.wal_records,
                                 std::memory_order_relaxed);
    stats_.wal_fsyncs.fetch_add(result->exec_stats.wal_fsyncs,
                                std::memory_order_relaxed);
  } else {
    stats_.failed.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

SessionManager::SessionManager(SoftDb* db, ServerOptions options)
    : options_(options), dispatcher_(db, options) {}

Result<Session*> SessionManager::OpenSession(std::string name, int priority) {
  if (dispatcher_.draining()) {
    return WithStatusDetail(
        Status::ResourceExhausted("server draining, no new sessions"),
        "draining", 1);
  }
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t id = next_session_id_++;
  if (name.empty()) name = "session-" + std::to_string(id);
  auto session = std::unique_ptr<Session>(
      new Session(&dispatcher_, options_, id, std::move(name), priority));
  Session* out = session.get();
  sessions_.emplace(id, std::move(session));
  return out;
}

Status SessionManager::CloseSession(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session with id " + std::to_string(id));
  }
  it->second->Cancel();  // Future statements on a stale handle fail fast.
  sessions_.erase(it);
  return Status::OK();
}

std::size_t SessionManager::session_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sessions_.size();
}

std::vector<Session*> SessionManager::sessions() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Session*> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session.get());
  return out;
}

}  // namespace softdb
