#ifndef SOFTDB_SERVER_DISPATCHER_H_
#define SOFTDB_SERVER_DISPATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/query_context.h"
#include "common/result.h"
#include "engine/softdb.h"
#include "server/server_options.h"

namespace softdb {

class Session;

/// Admission-controlled statement dispatcher: a bounded priority queue in
/// front of a fixed pool of serving workers, all executing against one
/// shared SoftDb (DESIGN.md §15).
///
/// Robustness semantics:
///   - Admission control: the queue is bounded at max_queue_depth and a
///     rejection is typed kResourceExhausted with {queue_depth,
///     retry_after_ms} details — clients classify by code + detail, never
///     by message prose.
///   - Load shedding + backpressure: at high_water_depth the dispatcher
///     evicts the lowest-priority queued request to admit strictly
///     higher-priority work (victims complete with {shed=1}), and tightens
///     admitted statements' effective deadlines to overload_deadline_ms so
///     queued work can never wait longer than it may run.
///   - Deadline-aware queueing: a statement whose deadline is already
///     unsatisfiable is rejected at admission, and one whose deadline
///     expires while queued is completed with kDeadlineExceeded at dequeue
///     — it is never executed doomed.
///   - Graceful drain: Drain() stops admissions, rejects queued work,
///     gives in-flight statements drain_deadline_ms to finish, cancels
///     stragglers through their cancellation tokens, then checkpoints the
///     WAL so a drained server restarts from a checkpoint. The engine
///     stays recoverable via SoftDb::Recover if the process dies mid-serve
///     instead.
///
/// The worker pool deliberately mirrors (rather than reuses) the exec
/// TaskScheduler discipline: serving workers block for whole statements,
/// and statements themselves submit morsel task groups to the engine's
/// scheduler — parking serve loops inside that barrier-style pool would
/// starve the very groups they spawn.
///
/// Failpoint sites: server.admit (typed rejection), server.dequeue
/// (transient, retryable), server.session_execute (transient before the
/// engine runs the statement), server.drain (action-only hook).
class Dispatcher {
 public:
  Dispatcher(SoftDb* db, ServerOptions options);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Admits and executes one statement on behalf of `session`, blocking
  /// the calling (client) thread until completion or typed rejection.
  /// `caller` may carry the client's own deadline/token; the effective
  /// context also honors session priority and the server deadline knobs.
  /// Single attempt: the retry loop lives in Session::Execute.
  Result<QueryResult> Execute(Session* session, const std::string& sql,
                              const QueryContext* caller);

  /// Graceful drain (see class comment). Idempotent: concurrent and
  /// repeated calls wait for the first drain and return its result.
  Status Drain();

  bool draining() const {
    std::lock_guard<std::mutex> lk(mu_);
    return draining_;
  }

  std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size();
  }

  std::size_t in_flight() const {
    std::lock_guard<std::mutex> lk(mu_);
    return running_.size();
  }

  ServerStats& stats() { return stats_; }
  const ServerOptions& options() const { return options_; }
  SoftDb* db() { return db_; }

  /// Test hooks: freeze/unfreeze the worker pool so admission-control and
  /// queue-state assertions are deterministic. Paused workers finish their
  /// current statement and stop dequeuing.
  void PauseWorkers();
  void ResumeWorkers();

 private:
  /// One admitted (or rejected-after-shed) statement. Clients block on
  /// `cv` until a worker (or the shedding/drain path) completes it.
  struct Request {
    std::string sql;
    Session* session = nullptr;
    int priority = 0;
    std::uint64_t seq = 0;  // FIFO tiebreak within a priority.
    QueryContext ctx;       // Effective context; owns token for the run.
    std::chrono::steady_clock::time_point enqueued_at{};

    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::optional<Result<QueryResult>> result;
  };
  using RequestPtr = std::shared_ptr<Request>;

  void WorkerLoop();
  /// Runs one dequeued request end to end (deadline triage, failpoints,
  /// engine execution) and completes it.
  void ServeRequest(const RequestPtr& req);
  /// Completes `req` with `result` and wakes its waiting client.
  static void Complete(const RequestPtr& req, Result<QueryResult> result);
  /// Picks the dequeue candidate: highest priority, then lowest seq.
  /// Requires mu_ held and a non-empty queue.
  std::list<RequestPtr>::iterator BestLocked();
  /// Sheds the lowest-priority queued request strictly below
  /// `incoming_priority` (newest victim among equals). Requires mu_ held;
  /// returns the victim (already removed) or null.
  RequestPtr ShedVictimLocked(int incoming_priority);
  /// Builds the effective QueryContext for a statement: caller token,
  /// else session token, else a fresh one (so drain can always cancel),
  /// with the caller deadline tightened by the server default. No lock.
  QueryContext EffectiveContext(const QueryContext* caller,
                                Session* session) const;
  Status DrainLocked();  // The single-drain body; called by Drain().

  SoftDb* db_;
  const ServerOptions options_;
  ServerStats stats_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Workers wait for work here.
  std::condition_variable idle_cv_;   // Drain waits for running_ empty.
  std::list<RequestPtr> queue_;       // Admitted, waiting for a worker.
  std::vector<RequestPtr> running_;   // In-flight on a worker.
  std::vector<std::thread> workers_;
  std::uint64_t next_seq_ = 0;
  bool paused_ = false;
  bool draining_ = false;   // Admissions closed.
  bool shutdown_ = false;   // Workers must exit.
  bool drained_ = false;    // Drain completed (drain_status_ valid).
  Status drain_status_;
  std::condition_variable drain_cv_;  // Later Drain() callers wait here.
};

}  // namespace softdb

#endif  // SOFTDB_SERVER_DISPATCHER_H_
