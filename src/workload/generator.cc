#include "workload/generator.h"

#include <algorithm>
#include <vector>

#include "common/date.h"
#include "common/str_util.h"

namespace softdb {

namespace {

constexpr const char* kSegments[] = {"BUILDING", "AUTOMOBILE", "MACHINERY",
                                     "HOUSEHOLD", "FURNITURE"};
constexpr const char* kStatuses[] = {"OPEN", "SHIPPED", "DELIVERED",
                                     "RETURNED"};

std::int64_t BaseDate() { return Date::FromYmd(1999, 1, 1); }

Schema MakeSchema(std::initializer_list<ColumnDef> cols) {
  Schema s;
  for (const ColumnDef& c : cols) s.AddColumn(c);
  return s;
}

ColumnDef Col(const char* name, TypeId type, bool nullable = true) {
  ColumnDef def;
  def.name = name;
  def.type = type;
  def.nullable = nullable;
  return def;
}

Status AddPk(SoftDb* db, const std::string& table, ColumnIdx col) {
  return db->ics().Add(
      std::make_unique<UniqueConstraint>("pk_" + table, table,
                                         std::vector<ColumnIdx>{col},
                                         /*is_primary=*/true,
                                         ConstraintMode::kEnforced),
      db->catalog());
}

Status AddFk(SoftDb* db, const std::string& child, ColumnIdx child_col,
             const std::string& parent, ColumnIdx parent_col,
             const std::string& name) {
  return db->ics().Add(
      std::make_unique<ForeignKeyConstraint>(
          name, child, std::vector<ColumnIdx>{child_col}, parent,
          std::vector<ColumnIdx>{parent_col}, ConstraintMode::kEnforced),
      db->catalog());
}

}  // namespace

Status GeneratePartTable(SoftDb* db, const WorkloadOptions& options) {
  Rng rng(options.seed ^ 0x9A97ULL);
  SOFTDB_ASSIGN_OR_RETURN(
      Table * part,
      db->catalog().CreateTable(
          "part", MakeSchema({Col("p_partkey", TypeId::kInt64, false),
                              Col("p_retailprice", TypeId::kDouble, false),
                              Col("p_weight", TypeId::kDouble, false),
                              Col("p_category", TypeId::kInt64, false)})));
  part->Reserve(options.parts);
  for (std::size_t i = 0; i < options.parts; ++i) {
    const double price = 100.0 + rng.NextDouble() * 1900.0;
    // Linear correlation with a bounded-noise envelope ([10]): weight =
    // 0.05 * price + 2 ± 3.
    const double noise = std::clamp(rng.NextGaussian(0.0, 1.0), -3.0, 3.0);
    const double weight = 0.05 * price + 2.0 + noise;
    SOFTDB_RETURN_IF_ERROR(
        part->Append({Value::Int64(static_cast<std::int64_t>(i)),
                      Value::Double(price), Value::Double(weight),
                      Value::Int64(rng.Uniform(0, 9))})
            .status());
  }
  if (options.with_constraints) SOFTDB_RETURN_IF_ERROR(AddPk(db, "part", 0));
  if (options.with_indexes) {
    SOFTDB_RETURN_IF_ERROR(
        db->catalog().CreateIndex("idx_part_weight", "part", "p_weight")
            .status());
  }
  return Status::OK();
}

Status GeneratePurchaseTable(SoftDb* db, const WorkloadOptions& options) {
  Rng rng(options.seed ^ 0xB00CULL);
  SOFTDB_ASSIGN_OR_RETURN(
      Table * purchase,
      db->catalog().CreateTable(
          "purchase",
          MakeSchema({Col("pu_key", TypeId::kInt64, false),
                      Col("pu_orderkey", TypeId::kInt64, false),
                      Col("pu_partkey", TypeId::kInt64, false),
                      Col("order_date", TypeId::kDate, false),
                      Col("ship_date", TypeId::kDate, false),
                      Col("receipt_date", TypeId::kDate, false),
                      Col("quantity", TypeId::kInt64, false),
                      Col("price", TypeId::kDouble, false),
                      Col("discount", TypeId::kDouble, false)})));
  purchase->Reserve(options.purchases);
  const std::int64_t base = BaseDate();
  for (std::size_t i = 0; i < options.purchases; ++i) {
    // Orders arrive in time order, so the table is physically clustered by
    // order_date (as real order tables are) — this is what makes an
    // order_date index range scan touch few data pages.
    const std::int64_t order_date =
        base + static_cast<std::int64_t>(i * 730 / options.purchases) +
        rng.Uniform(0, 1);
    std::int64_t lag;
    if (rng.NextDouble() < options.ship_conf) {
      lag = rng.Uniform(0, options.ship_window);
    } else {
      // The §4.4 late shipments: beyond the three-week business rule.
      lag = rng.Uniform(options.ship_window + 1, options.late_max);
    }
    const std::int64_t ship_date = order_date + lag;
    const std::int64_t receipt_date = ship_date + rng.Uniform(0, 7);
    SOFTDB_RETURN_IF_ERROR(
        purchase
            ->Append({Value::Int64(static_cast<std::int64_t>(i)),
                      Value::Int64(rng.Uniform(
                          0, static_cast<std::int64_t>(options.orders) - 1)),
                      Value::Int64(rng.Uniform(
                          0, static_cast<std::int64_t>(options.parts) - 1)),
                      Value::Date(order_date), Value::Date(ship_date),
                      Value::Date(receipt_date), Value::Int64(rng.Uniform(1, 50)),
                      Value::Double(1.0 + rng.NextDouble() * 999.0),
                      Value::Double(rng.NextDouble() * 0.1)})
            .status());
  }
  if (options.with_constraints) {
    SOFTDB_RETURN_IF_ERROR(AddPk(db, "purchase", 0));
  }
  if (options.with_indexes) {
    // Index on order_date but NOT on ship_date: the exact asymmetry the
    // paper's predicate-introduction examples exploit.
    SOFTDB_RETURN_IF_ERROR(db->catalog()
                               .CreateIndex("idx_purchase_order_date",
                                            "purchase", "order_date")
                               .status());
  }
  return Status::OK();
}

Status GenerateProjectTable(SoftDb* db, const WorkloadOptions& options) {
  Rng rng(options.seed ^ 0x9403ULL);
  SOFTDB_ASSIGN_OR_RETURN(
      Table * project,
      db->catalog().CreateTable(
          "project", MakeSchema({Col("proj_id", TypeId::kInt64, false),
                                 Col("start_date", TypeId::kDate, false),
                                 Col("end_date", TypeId::kDate, false),
                                 Col("budget", TypeId::kDouble, false),
                                 Col("dept", TypeId::kInt64, false)})));
  project->Reserve(options.projects);
  const std::int64_t base = BaseDate();
  for (std::size_t i = 0; i < options.projects; ++i) {
    // Projects are recorded as they start: clustered by start_date.
    const std::int64_t start =
        base + static_cast<std::int64_t>(i * 730 / options.projects) +
        rng.Uniform(0, 1);
    std::int64_t duration;
    if (rng.NextDouble() < options.project_conf) {
      duration = rng.Uniform(0, options.project_window);
    } else {
      duration = rng.Uniform(options.project_window + 1, options.project_max);
    }
    SOFTDB_RETURN_IF_ERROR(
        project
            ->Append({Value::Int64(static_cast<std::int64_t>(i)),
                      Value::Date(start), Value::Date(start + duration),
                      Value::Double(1000.0 + rng.NextDouble() * 99000.0),
                      Value::Int64(rng.Uniform(0, 19))})
            .status());
  }
  if (options.with_constraints) {
    SOFTDB_RETURN_IF_ERROR(AddPk(db, "project", 0));
  }
  if (options.with_indexes) {
    SOFTDB_RETURN_IF_ERROR(
        db->catalog()
            .CreateIndex("idx_project_start", "project", "start_date")
            .status());
  }
  return Status::OK();
}

Status GenerateCustomerOrders(SoftDb* db, const WorkloadOptions& options) {
  Rng rng(options.seed ^ 0xC057ULL);

  SOFTDB_ASSIGN_OR_RETURN(
      Table * region,
      db->catalog().CreateTable(
          "region", MakeSchema({Col("r_regionkey", TypeId::kInt64, false),
                                Col("r_name", TypeId::kString, false)})));
  static constexpr const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA",
                                             "EUROPE", "MIDDLE EAST"};
  for (std::int64_t r = 0; r < 5; ++r) {
    SOFTDB_RETURN_IF_ERROR(
        region->Append({Value::Int64(r), Value::String(kRegions[r])})
            .status());
  }

  SOFTDB_ASSIGN_OR_RETURN(
      Table * nation,
      db->catalog().CreateTable(
          "nation", MakeSchema({Col("n_nationkey", TypeId::kInt64, false),
                                Col("n_name", TypeId::kString, false),
                                Col("n_regionkey", TypeId::kInt64, false)})));
  for (std::int64_t n = 0; n < 25; ++n) {
    SOFTDB_RETURN_IF_ERROR(
        nation
            ->Append({Value::Int64(n), Value::String(StrFormat("NATION_%02lld",
                                                               static_cast<long long>(n))),
                      Value::Int64(n / 5)})
            .status());
  }

  SOFTDB_ASSIGN_OR_RETURN(
      Table * customer,
      db->catalog().CreateTable(
          "customer",
          MakeSchema({Col("c_custkey", TypeId::kInt64, false),
                      Col("c_nationkey", TypeId::kInt64, false),
                      // Denormalized: c_nationkey -> c_regionkey exactly
                      // (the mined FD of E6).
                      Col("c_regionkey", TypeId::kInt64, false),
                      Col("c_acctbal", TypeId::kDouble, false),
                      Col("c_mktsegment", TypeId::kString, false)})));
  customer->Reserve(options.customers);
  std::vector<double> balances(options.customers);
  for (std::size_t i = 0; i < options.customers; ++i) {
    const std::int64_t nationkey = rng.Uniform(0, 24);
    const double balance = rng.NextDouble() * 10000.0;
    balances[i] = balance;
    SOFTDB_RETURN_IF_ERROR(
        customer
            ->Append({Value::Int64(static_cast<std::int64_t>(i)),
                      Value::Int64(nationkey), Value::Int64(nationkey / 5),
                      Value::Double(balance),
                      Value::String(kSegments[rng.Uniform(0, 4)])})
            .status());
  }

  SOFTDB_ASSIGN_OR_RETURN(
      Table * orders,
      db->catalog().CreateTable(
          "orders", MakeSchema({Col("o_orderkey", TypeId::kInt64, false),
                                Col("o_custkey", TypeId::kInt64, false),
                                Col("o_orderdate", TypeId::kDate, false),
                                Col("o_totalprice", TypeId::kDouble, false),
                                Col("o_status", TypeId::kString, false)})));
  orders->Reserve(options.orders);
  const std::int64_t base = BaseDate();
  const bool hole_in_balance_range = true;
  for (std::size_t i = 0; i < options.orders; ++i) {
    const std::int64_t custkey =
        rng.Uniform(0, static_cast<std::int64_t>(options.customers) - 1);
    double totalprice = 100.0 + rng.NextDouble() * 19900.0;
    // Plant the two-dimensional join hole ([8]): low-balance customers
    // never place orders in the hole's price band.
    if (hole_in_balance_range &&
        balances[static_cast<std::size_t>(custkey)] >= options.hole_bal_lo &&
        balances[static_cast<std::size_t>(custkey)] <= options.hole_bal_hi) {
      while (totalprice >= options.hole_price_lo &&
             totalprice <= options.hole_price_hi) {
        totalprice = 100.0 + rng.NextDouble() * 19900.0;
      }
    }
    SOFTDB_RETURN_IF_ERROR(
        orders
            ->Append({Value::Int64(static_cast<std::int64_t>(i)),
                      Value::Int64(custkey), Value::Date(base + rng.Uniform(0, 730)),
                      Value::Double(totalprice),
                      Value::String(kStatuses[rng.Uniform(0, 3)])})
            .status());
  }

  if (options.with_constraints) {
    SOFTDB_RETURN_IF_ERROR(AddPk(db, "region", 0));
    SOFTDB_RETURN_IF_ERROR(AddPk(db, "nation", 0));
    SOFTDB_RETURN_IF_ERROR(AddPk(db, "customer", 0));
    SOFTDB_RETURN_IF_ERROR(AddPk(db, "orders", 0));
    SOFTDB_RETURN_IF_ERROR(
        AddFk(db, "nation", 2, "region", 0, "fk_nation_region"));
    SOFTDB_RETURN_IF_ERROR(
        AddFk(db, "customer", 1, "nation", 0, "fk_customer_nation"));
    SOFTDB_RETURN_IF_ERROR(
        AddFk(db, "orders", 1, "customer", 0, "fk_orders_customer"));
  }
  if (options.with_indexes) {
    SOFTDB_RETURN_IF_ERROR(
        db->catalog()
            .CreateIndex("idx_orders_totalprice", "orders", "o_totalprice")
            .status());
    SOFTDB_RETURN_IF_ERROR(
        db->catalog()
            .CreateIndex("idx_customer_acctbal", "customer", "c_acctbal")
            .status());
  }
  return Status::OK();
}

Status GenerateSalesPartitions(SoftDb* db, const WorkloadOptions& options) {
  Rng rng(options.seed ^ 0x5A1EULL);
  for (int month = 1; month <= 12; ++month) {
    const std::string name = StrFormat("sales_m%d", month);
    SOFTDB_ASSIGN_OR_RETURN(
        Table * sales,
        db->catalog().CreateTable(
            name, MakeSchema({Col("sale_id", TypeId::kInt64, false),
                              Col("sale_date", TypeId::kDate, false),
                              Col("amount", TypeId::kDouble, false)})));
    const std::int64_t lo = Date::FromYmd(1999, month, 1);
    const std::int64_t hi =
        Date::FromYmd(1999, month, Date::DaysInMonth(1999, month));
    sales->Reserve(options.sales_per_month);
    for (std::size_t i = 0; i < options.sales_per_month; ++i) {
      SOFTDB_RETURN_IF_ERROR(
          sales
              ->Append({Value::Int64(static_cast<std::int64_t>(
                            month * 1000000 + static_cast<std::int64_t>(i))),
                        Value::Date(rng.Uniform(lo, hi)),
                        Value::Double(rng.NextDouble() * 1000.0)})
              .status());
    }
    if (options.with_constraints) {
      // The branch constraint: data loading is done by loader applications
      // that already guarantee the range, so the check is *informational*
      // (§1's data-warehouse scenario) — never checked, yet the optimizer
      // can knock off branches with it (§5).
      ExprPtr check = MakeAnd([&] {
        std::vector<ExprPtr> parts;
        parts.push_back(MakeCompare(
            CompareOp::kGe, MakeColumnRef("sale_date"),
            MakeLiteral(Value::Date(lo))));
        parts.push_back(MakeCompare(
            CompareOp::kLe, MakeColumnRef("sale_date"),
            MakeLiteral(Value::Date(hi))));
        return parts;
      }());
      SOFTDB_RETURN_IF_ERROR(check->Bind(sales->schema()));
      SOFTDB_RETURN_IF_ERROR(db->ics().Add(
          std::make_unique<CheckConstraint>("chk_" + name, name,
                                            std::move(check),
                                            ConstraintMode::kInformational),
          db->catalog()));
    }
  }
  return Status::OK();
}

Status GenerateWorkload(SoftDb* db, const WorkloadOptions& options) {
  SOFTDB_RETURN_IF_ERROR(GenerateCustomerOrders(db, options));
  SOFTDB_RETURN_IF_ERROR(GeneratePartTable(db, options));
  SOFTDB_RETURN_IF_ERROR(GeneratePurchaseTable(db, options));
  SOFTDB_RETURN_IF_ERROR(GenerateProjectTable(db, options));
  SOFTDB_RETURN_IF_ERROR(GenerateSalesPartitions(db, options));
  if (options.analyze) SOFTDB_RETURN_IF_ERROR(db->Analyze());
  return Status::OK();
}

}  // namespace softdb
