#ifndef SOFTDB_WORKLOAD_SC_KIT_H_
#define SOFTDB_WORKLOAD_SC_KIT_H_

#include <string>

#include "common/result.h"
#include "engine/softdb.h"

namespace softdb {

/// Column indexes of the generated workload tables (see generator.cc).
struct WorkloadColumns {
  // purchase
  static constexpr ColumnIdx kPurchaseOrderDate = 3;
  static constexpr ColumnIdx kPurchaseShipDate = 4;
  // project
  static constexpr ColumnIdx kProjectStart = 1;
  static constexpr ColumnIdx kProjectEnd = 2;
  // part
  static constexpr ColumnIdx kPartPrice = 1;
  static constexpr ColumnIdx kPartWeight = 2;
  // customer
  static constexpr ColumnIdx kCustomerKey = 0;
  static constexpr ColumnIdx kCustomerNation = 1;
  static constexpr ColumnIdx kCustomerRegion = 2;
  static constexpr ColumnIdx kCustomerBalance = 3;
  // orders
  static constexpr ColumnIdx kOrderKey = 0;
  static constexpr ColumnIdx kOrderCustomer = 1;
  static constexpr ColumnIdx kOrderPrice = 3;
};

/// Registers the paper's canonical soft constraints over the generated
/// workload (each returns the SC name). These are the hand-declared
/// versions; the miners in src/mining discover the same ones from data —
/// tests cross-check that.

/// purchase: ship_date - order_date ∈ [0, window]. With the default
/// generator (ship_conf < 1) this verifies as an SSC; with ship_conf = 1.0
/// it is an ASC usable in rewrite.
Result<std::string> RegisterShipWindowSc(SoftDb* db, int window = 21);

/// project: end_date - start_date ∈ [0, window] (the §5 SSC, ~90%).
Result<std::string> RegisterProjectWindowSc(SoftDb* db, int window = 30);

/// part: p_weight ≈ 0.05 * p_retailprice + 2 ± epsilon (ASC when epsilon
/// covers the generator's clipped noise).
Result<std::string> RegisterPartCorrelationSc(SoftDb* db,
                                              double epsilon = 3.01);

/// customer: c_nationkey -> c_regionkey (exact FD).
Result<std::string> RegisterCustomerRegionFd(SoftDb* db);

/// orders ⋈ customer: the planted (o_totalprice × c_acctbal) hole.
Result<std::string> RegisterOrdersHoleSc(SoftDb* db,
                                         double price_lo = 8000.0,
                                         double price_hi = 10000.0,
                                         double bal_lo = 0.0,
                                         double bal_hi = 2000.0);

/// orders.o_custkey ⊆ customer.c_custkey as a *soft* inclusion (the E3
/// variant where the FK was never declared).
Result<std::string> RegisterOrdersInclusionSc(SoftDb* db);

/// orders.o_totalprice min/max domain from current data (Sybase-style).
Result<std::string> RegisterOrderPriceDomainSc(SoftDb* db);

}  // namespace softdb

#endif  // SOFTDB_WORKLOAD_SC_KIT_H_
