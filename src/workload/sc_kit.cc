#include "workload/sc_kit.h"

#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "constraints/fd_sc.h"
#include "constraints/inclusion_sc.h"
#include "constraints/join_hole_sc.h"
#include "constraints/linear_correlation_sc.h"

namespace softdb {

Result<std::string> RegisterShipWindowSc(SoftDb* db, int window) {
  const std::string name = "sc_ship_window";
  SOFTDB_RETURN_IF_ERROR(db->scs().Add(
      std::make_unique<ColumnOffsetSc>(
          name, "purchase", WorkloadColumns::kPurchaseOrderDate,
          WorkloadColumns::kPurchaseShipDate, 0, window),
      db->catalog()));
  return name;
}

Result<std::string> RegisterProjectWindowSc(SoftDb* db, int window) {
  const std::string name = "sc_project_window";
  SOFTDB_RETURN_IF_ERROR(db->scs().Add(
      std::make_unique<ColumnOffsetSc>(
          name, "project", WorkloadColumns::kProjectStart,
          WorkloadColumns::kProjectEnd, 0, window),
      db->catalog()));
  return name;
}

Result<std::string> RegisterPartCorrelationSc(SoftDb* db, double epsilon) {
  const std::string name = "sc_part_weight";
  SOFTDB_RETURN_IF_ERROR(db->scs().Add(
      std::make_unique<LinearCorrelationSc>(
          name, "part", WorkloadColumns::kPartWeight,
          WorkloadColumns::kPartPrice, 0.05, 2.0, epsilon),
      db->catalog()));
  return name;
}

Result<std::string> RegisterCustomerRegionFd(SoftDb* db) {
  const std::string name = "sc_customer_region_fd";
  SOFTDB_RETURN_IF_ERROR(db->scs().Add(
      std::make_unique<FunctionalDependencySc>(
          name, "customer",
          std::vector<ColumnIdx>{WorkloadColumns::kCustomerNation},
          std::vector<ColumnIdx>{WorkloadColumns::kCustomerRegion}),
      db->catalog()));
  return name;
}

Result<std::string> RegisterOrdersHoleSc(SoftDb* db, double price_lo,
                                         double price_hi, double bal_lo,
                                         double bal_hi) {
  const std::string name = "sc_orders_hole";
  HoleRect hole;
  hole.a_lo = price_lo;
  hole.a_hi = price_hi;
  hole.b_lo = bal_lo;
  hole.b_hi = bal_hi;
  SOFTDB_RETURN_IF_ERROR(db->scs().Add(
      std::make_unique<JoinHoleSc>(
          name, "orders", WorkloadColumns::kOrderCustomer,
          WorkloadColumns::kOrderPrice, "customer",
          WorkloadColumns::kCustomerKey, WorkloadColumns::kCustomerBalance,
          std::vector<HoleRect>{hole}),
      db->catalog()));
  return name;
}

Result<std::string> RegisterOrdersInclusionSc(SoftDb* db) {
  const std::string name = "sc_orders_customer_inclusion";
  SOFTDB_RETURN_IF_ERROR(db->scs().Add(
      std::make_unique<InclusionSc>(
          name, "orders",
          std::vector<ColumnIdx>{WorkloadColumns::kOrderCustomer}, "customer",
          std::vector<ColumnIdx>{WorkloadColumns::kCustomerKey}),
      db->catalog()));
  return name;
}

Result<std::string> RegisterOrderPriceDomainSc(SoftDb* db) {
  const std::string name = "sc_order_price_domain";
  SOFTDB_ASSIGN_OR_RETURN(Table * orders, db->catalog().GetTable("orders"));
  const ColumnVector& prices =
      orders->ColumnData(WorkloadColumns::kOrderPrice);
  double lo = 0.0, hi = 0.0;
  bool any = false;
  for (RowId r = 0; r < orders->NumSlots(); ++r) {
    if (!orders->IsLive(r) || prices.IsNull(r)) continue;
    const double v = prices.GetNumeric(r);
    if (!any) {
      lo = hi = v;
      any = true;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  SOFTDB_RETURN_IF_ERROR(db->scs().Add(
      std::make_unique<DomainSc>(name, "orders", WorkloadColumns::kOrderPrice,
                                 Value::Double(lo), Value::Double(hi)),
      db->catalog()));
  return name;
}

}  // namespace softdb
