#ifndef SOFTDB_WORKLOAD_GENERATOR_H_
#define SOFTDB_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "engine/softdb.h"

namespace softdb {

/// Deterministic TPC-H-inspired data generator with the paper's data
/// characteristics *planted* at configurable rates, so every experiment can
/// verify what the miners and the optimizer should find:
///
/// * `purchase(order_date, ship_date, receipt_date, ...)` — ship_date lands
///   within `ship_window` days of order_date for `ship_conf` of rows (the
///   §4.4 late_shipments rule); the rest are late by up to `late_max` days.
/// * `project(start_date, end_date, ...)` — duration ≤ `project_window`
///   days for `project_conf` of rows (the §5 example).
/// * `part(p_retailprice, p_weight, ...)` — weight is linear in price with
///   bounded noise (the [10] linear correlation).
/// * `orders ⋈ customer` — a planted two-dimensional join hole: no order
///   with o_totalprice in [hole_price_lo, hole_price_hi] belongs to a
///   customer with c_acctbal in [hole_bal_lo, hole_bal_hi] (the [8] holes).
/// * `customer(c_nationkey, c_regionkey)` — denormalized: c_nationkey →
///   c_regionkey is an exact FD (the [29] case).
/// * `sales_m1..sales_m12` — a month-partitioned family for the §5
///   union-all branch knock-off.
struct WorkloadOptions {
  std::uint64_t seed = 42;
  std::size_t customers = 1000;
  std::size_t orders = 10000;
  std::size_t purchases = 20000;
  std::size_t parts = 2000;
  std::size_t projects = 5000;
  std::size_t sales_per_month = 500;

  double ship_conf = 0.99;       // Fraction shipping within the window.
  int ship_window = 21;          // Days (three weeks, §4.4).
  int late_max = 60;             // Worst lateness for violating rows.
  double project_conf = 0.90;    // Fraction of projects within the window.
  int project_window = 30;       // Days (§5's "a month or less").
  int project_max = 120;         // Worst project duration.

  double hole_price_lo = 8000.0;  // Planted join hole on orders.o_totalprice
  double hole_price_hi = 10000.0;
  double hole_bal_lo = 0.0;       // ... versus customer.c_acctbal.
  double hole_bal_hi = 2000.0;

  bool with_indexes = true;   // Secondary indexes used by the experiments.
  bool with_constraints = true;  // PKs + FKs (enforced).
  bool analyze = true;        // Run ANALYZE after load.
};

/// Populates `db` with the full workload schema and data. Tables created:
/// region, nation, customer, part, orders, purchase, project,
/// sales_m1..sales_m12.
Status GenerateWorkload(SoftDb* db, const WorkloadOptions& options = {});

/// Smaller helpers for focused tests: each creates (and fills) just one of
/// the schema's tables plus its dependencies.
Status GeneratePurchaseTable(SoftDb* db, const WorkloadOptions& options);
Status GenerateProjectTable(SoftDb* db, const WorkloadOptions& options);
Status GeneratePartTable(SoftDb* db, const WorkloadOptions& options);
Status GenerateCustomerOrders(SoftDb* db, const WorkloadOptions& options);
Status GenerateSalesPartitions(SoftDb* db, const WorkloadOptions& options);

}  // namespace softdb

#endif  // SOFTDB_WORKLOAD_GENERATOR_H_
