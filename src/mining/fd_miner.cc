#include "mining/fd_miner.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/hash.h"

namespace softdb {

namespace {

/// Composite key for the per-(group, dependent-value) counting pass. Values
/// within one column share a type, so GroupEquals-based equality partitions
/// rows exactly as the old per-cell ToString() images did — without
/// rendering a string per cell.
struct GroupValueKey {
  std::uint32_t group;
  Value value;
};

struct GroupValueKeyHash {
  std::size_t operator()(const GroupValueKey& k) const {
    return HashCombine(k.group, k.value.Hash());
  }
};

struct GroupValueKeyEq {
  bool operator()(const GroupValueKey& a, const GroupValueKey& b) const {
    return a.group == b.group && a.value.GroupEquals(b.value);
  }
};

std::vector<Value> Image(const Table& table, RowId row,
                         const std::vector<ColumnIdx>& cols) {
  std::vector<Value> image;
  image.reserve(cols.size());
  for (ColumnIdx c : cols) image.push_back(table.Get(row, c));
  return image;
}

/// Evaluates all dependents for one determinant set in a single pass:
/// groups rows by X; within each group, counts the most common value of
/// each other column. Violations(y) = rows - sum(max count per group).
void EvaluateDeterminant(const Table& table,
                         const std::vector<ColumnIdx>& determinant,
                         const FdMinerOptions& options,
                         std::vector<FdCandidate>* out) {
  const std::size_t num_cols = table.schema().NumColumns();
  // group id per row.
  std::unordered_map<std::vector<Value>, std::uint32_t, ValueVecHash,
                     ValueVecEq>
      group_of;
  std::vector<std::uint32_t> row_group;
  row_group.reserve(table.NumRows());
  std::vector<RowId> live_rows;
  live_rows.reserve(table.NumRows());
  for (RowId r = 0; r < table.NumSlots(); ++r) {
    if (!table.IsLive(r)) continue;
    auto [it, _] = group_of.emplace(
        Image(table, r, determinant),
        static_cast<std::uint32_t>(group_of.size()));
    row_group.push_back(it->second);
    live_rows.push_back(r);
  }
  const std::uint64_t rows = live_rows.size();
  if (rows == 0) return;
  const std::uint64_t groups = group_of.size();
  if (static_cast<double>(groups) >
      options.max_group_fraction * static_cast<double>(rows)) {
    return;  // X is (nearly) a key; FDs from it are uninformative.
  }

  for (ColumnIdx y = 0; y < num_cols; ++y) {
    if (std::find(determinant.begin(), determinant.end(), y) !=
        determinant.end()) {
      continue;
    }
    // Per (group, y-value) counts; track per-group max.
    std::unordered_map<GroupValueKey, std::uint64_t, GroupValueKeyHash,
                       GroupValueKeyEq>
        counts;
    std::vector<std::uint64_t> group_max(groups, 0);
    for (std::size_t i = 0; i < live_rows.size(); ++i) {
      const std::uint64_t c =
          ++counts[GroupValueKey{row_group[i], table.Get(live_rows[i], y)}];
      if (c > group_max[row_group[i]]) group_max[row_group[i]] = c;
    }
    std::uint64_t kept = 0;
    for (std::uint64_t m : group_max) kept += m;
    const double confidence =
        static_cast<double>(kept) / static_cast<double>(rows);
    if (confidence < options.min_confidence) continue;
    FdCandidate cand;
    cand.determinants = determinant;
    cand.dependent = y;
    cand.confidence = confidence;
    cand.determinant_groups = groups;
    out->push_back(std::move(cand));
  }
}

}  // namespace

std::vector<FdCandidate> MineFunctionalDependencies(
    const Table& table, const FdMinerOptions& options) {
  std::vector<FdCandidate> out;
  const std::size_t num_cols = table.schema().NumColumns();

  // Level 1: single-column determinants.
  for (ColumnIdx x = 0; x < num_cols; ++x) {
    EvaluateDeterminant(table, {x}, options, &out);
  }
  if (options.max_determinant_size >= 2) {
    // Level 2: pairs — but prune pairs where a single column already
    // determines the dependent exactly (minimality, as in TANE).
    auto exact_single = [&](ColumnIdx x, ColumnIdx y) {
      for (const FdCandidate& c : out) {
        if (c.determinants.size() == 1 && c.determinants[0] == x &&
            c.dependent == y && c.confidence >= 1.0) {
          return true;
        }
      }
      return false;
    };
    for (ColumnIdx x1 = 0; x1 < num_cols; ++x1) {
      for (ColumnIdx x2 = x1 + 1; x2 < num_cols; ++x2) {
        std::vector<FdCandidate> pair_fds;
        EvaluateDeterminant(table, {x1, x2}, options, &pair_fds);
        for (FdCandidate& c : pair_fds) {
          if (exact_single(x1, c.dependent) || exact_single(x2, c.dependent)) {
            continue;  // Not minimal.
          }
          out.push_back(std::move(c));
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FdCandidate& a, const FdCandidate& b) {
              return a.confidence > b.confidence;
            });
  return out;
}

}  // namespace softdb
