#include "mining/fd_miner.h"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace softdb {

namespace {

std::string Image(const Table& table, RowId row,
                  const std::vector<ColumnIdx>& cols) {
  std::string image;
  for (ColumnIdx c : cols) {
    image += table.Get(row, c).ToString();
    image += '\x1f';
  }
  return image;
}

/// Evaluates all dependents for one determinant set in a single pass:
/// groups rows by X; within each group, counts the most common value of
/// each other column. Violations(y) = rows - sum(max count per group).
void EvaluateDeterminant(const Table& table,
                         const std::vector<ColumnIdx>& determinant,
                         const FdMinerOptions& options,
                         std::vector<FdCandidate>* out) {
  const std::size_t num_cols = table.schema().NumColumns();
  // group id per row.
  std::unordered_map<std::string, std::uint32_t> group_of;
  std::vector<std::uint32_t> row_group;
  row_group.reserve(table.NumRows());
  std::vector<RowId> live_rows;
  live_rows.reserve(table.NumRows());
  for (RowId r = 0; r < table.NumSlots(); ++r) {
    if (!table.IsLive(r)) continue;
    const std::string img = Image(table, r, determinant);
    auto [it, _] = group_of.emplace(
        img, static_cast<std::uint32_t>(group_of.size()));
    row_group.push_back(it->second);
    live_rows.push_back(r);
  }
  const std::uint64_t rows = live_rows.size();
  if (rows == 0) return;
  const std::uint64_t groups = group_of.size();
  if (static_cast<double>(groups) >
      options.max_group_fraction * static_cast<double>(rows)) {
    return;  // X is (nearly) a key; FDs from it are uninformative.
  }

  for (ColumnIdx y = 0; y < num_cols; ++y) {
    if (std::find(determinant.begin(), determinant.end(), y) !=
        determinant.end()) {
      continue;
    }
    // Per (group, y-value) counts; track per-group max.
    std::unordered_map<std::string, std::uint64_t> counts;
    std::vector<std::uint64_t> group_max(groups, 0);
    for (std::size_t i = 0; i < live_rows.size(); ++i) {
      std::string key = std::to_string(row_group[i]);
      key += '\x1e';
      key += table.Get(live_rows[i], y).ToString();
      const std::uint64_t c = ++counts[key];
      if (c > group_max[row_group[i]]) group_max[row_group[i]] = c;
    }
    std::uint64_t kept = 0;
    for (std::uint64_t m : group_max) kept += m;
    const double confidence =
        static_cast<double>(kept) / static_cast<double>(rows);
    if (confidence < options.min_confidence) continue;
    FdCandidate cand;
    cand.determinants = determinant;
    cand.dependent = y;
    cand.confidence = confidence;
    cand.determinant_groups = groups;
    out->push_back(std::move(cand));
  }
}

}  // namespace

std::vector<FdCandidate> MineFunctionalDependencies(
    const Table& table, const FdMinerOptions& options) {
  std::vector<FdCandidate> out;
  const std::size_t num_cols = table.schema().NumColumns();

  // Level 1: single-column determinants.
  for (ColumnIdx x = 0; x < num_cols; ++x) {
    EvaluateDeterminant(table, {x}, options, &out);
  }
  if (options.max_determinant_size >= 2) {
    // Level 2: pairs — but prune pairs where a single column already
    // determines the dependent exactly (minimality, as in TANE).
    auto exact_single = [&](ColumnIdx x, ColumnIdx y) {
      for (const FdCandidate& c : out) {
        if (c.determinants.size() == 1 && c.determinants[0] == x &&
            c.dependent == y && c.confidence >= 1.0) {
          return true;
        }
      }
      return false;
    };
    for (ColumnIdx x1 = 0; x1 < num_cols; ++x1) {
      for (ColumnIdx x2 = x1 + 1; x2 < num_cols; ++x2) {
        std::vector<FdCandidate> pair_fds;
        EvaluateDeterminant(table, {x1, x2}, options, &pair_fds);
        for (FdCandidate& c : pair_fds) {
          if (exact_single(x1, c.dependent) || exact_single(x2, c.dependent)) {
            continue;  // Not minimal.
          }
          out.push_back(std::move(c));
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FdCandidate& a, const FdCandidate& b) {
              return a.confidence > b.confidence;
            });
  return out;
}

}  // namespace softdb
