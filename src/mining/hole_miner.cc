#include "mining/hole_miner.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"

namespace softdb {

bool LargestEmptyRectangle(const std::vector<std::vector<std::uint8_t>>& grid,
                           std::size_t* r0, std::size_t* c0, std::size_t* r1,
                           std::size_t* c1) {
  // Classic max-rectangle-in-binary-matrix via histogram of empty-run
  // heights per row + a monotonic stack, O(rows * cols).
  const std::size_t rows = grid.size();
  if (rows == 0) return false;
  const std::size_t cols = grid[0].size();
  std::vector<std::size_t> heights(cols, 0);
  std::size_t best_area = 0;

  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      heights[c] = grid[r][c] ? 0 : heights[c] + 1;
    }
    // Max rectangle in histogram.
    std::vector<std::size_t> stack;  // Indices with increasing heights.
    for (std::size_t c = 0; c <= cols; ++c) {
      const std::size_t h = c < cols ? heights[c] : 0;
      std::size_t start = c;
      while (!stack.empty() && heights[stack.back()] >= h) {
        const std::size_t idx = stack.back();
        stack.pop_back();
        const std::size_t width =
            stack.empty() ? c : c - stack.back() - 1;
        const std::size_t area = heights[idx] * width;
        if (area > best_area) {
          best_area = area;
          const std::size_t left = stack.empty() ? 0 : stack.back() + 1;
          *r0 = r + 1 - heights[idx];
          *r1 = r;
          *c0 = left;
          *c1 = c - 1;
        }
        start = idx;
      }
      (void)start;
      if (c < cols) stack.push_back(c);
    }
  }
  return best_area > 0;
}

Result<HoleMinerResult> MineJoinHoles(const Table& left, ColumnIdx left_join,
                                      ColumnIdx attr_a, const Table& right,
                                      ColumnIdx right_join, ColumnIdx attr_b,
                                      const HoleMinerOptions& options) {
  const ColumnVector& la = left.ColumnData(attr_a);
  const ColumnVector& lj = left.ColumnData(left_join);
  const ColumnVector& rb = right.ColumnData(attr_b);
  const ColumnVector& rj = right.ColumnData(right_join);
  if (!IsNumericType(la.type()) || !IsNumericType(rb.type())) {
    return Status::InvalidArgument("hole mining needs numeric attributes");
  }

  // Attribute ranges (over base tables; holes snap within these).
  double a_min = 0, a_max = 0, b_min = 0, b_max = 0;
  bool a_any = false, b_any = false;
  for (RowId r = 0; r < left.NumSlots(); ++r) {
    if (!left.IsLive(r) || la.IsNull(r)) continue;
    const double v = la.GetNumeric(r);
    if (!a_any) {
      a_min = a_max = v;
      a_any = true;
    } else {
      a_min = std::min(a_min, v);
      a_max = std::max(a_max, v);
    }
  }
  for (RowId r = 0; r < right.NumSlots(); ++r) {
    if (!right.IsLive(r) || rb.IsNull(r)) continue;
    const double v = rb.GetNumeric(r);
    if (!b_any) {
      b_min = b_max = v;
      b_any = true;
    } else {
      b_min = std::min(b_min, v);
      b_max = std::max(b_max, v);
    }
  }
  if (!a_any || !b_any || a_max <= a_min || b_max <= b_min) {
    return Status::InvalidArgument("degenerate attribute ranges");
  }

  const std::size_t res = options.grid_resolution;
  const double a_step = (a_max - a_min) / static_cast<double>(res);
  const double b_step = (b_max - b_min) / static_cast<double>(res);
  // grid[a_cell][b_cell] = occupied.
  std::vector<std::vector<std::uint8_t>> grid(
      res, std::vector<std::uint8_t>(res, 0));

  // Hash join: build on right, probe left; mark occupied cells. Keys hash
  // by value (GroupEquals semantics), not by rendered ToString() images.
  std::unordered_multimap<Value, double, ValueHash, ValueEq> build;
  for (RowId r = 0; r < right.NumSlots(); ++r) {
    if (!right.IsLive(r) || rj.IsNull(r) || rb.IsNull(r)) continue;
    build.emplace(rj.Get(r), rb.GetNumeric(r));
  }
  HoleMinerResult result;
  auto cell_of = [res](double v, double lo, double step) {
    std::size_t c = static_cast<std::size_t>((v - lo) / step);
    return c >= res ? res - 1 : c;
  };
  for (RowId r = 0; r < left.NumSlots(); ++r) {
    if (!left.IsLive(r) || lj.IsNull(r) || la.IsNull(r)) continue;
    const double a = la.GetNumeric(r);
    auto [lo, hi] = build.equal_range(lj.Get(r));
    for (auto it = lo; it != hi; ++it) {
      ++result.join_pairs;
      grid[cell_of(a, a_min, a_step)][cell_of(it->second, b_min, b_step)] = 1;
    }
  }

  // Greedy extraction of the largest empty rectangles.
  const double min_area =
      options.min_area_fraction * static_cast<double>(res) *
      static_cast<double>(res);
  double covered_cells = 0;
  while (result.holes.size() < options.max_holes) {
    std::size_t r0, c0, r1, c1;
    if (!LargestEmptyRectangle(grid, &r0, &c0, &r1, &c1)) break;
    const double area = static_cast<double>((r1 - r0 + 1) * (c1 - c0 + 1));
    if (area < min_area) break;
    HoleRect hole;
    hole.a_lo = a_min + static_cast<double>(r0) * a_step;
    hole.a_hi = a_min + static_cast<double>(r1 + 1) * a_step;
    hole.b_lo = b_min + static_cast<double>(c0) * b_step;
    hole.b_hi = b_min + static_cast<double>(c1 + 1) * b_step;
    result.holes.push_back(hole);
    covered_cells += area;
    // Mark extracted cells occupied so subsequent holes do not overlap.
    for (std::size_t r = r0; r <= r1; ++r) {
      for (std::size_t c = c0; c <= c1; ++c) grid[r][c] = 1;
    }
  }
  result.covered_fraction =
      covered_cells / (static_cast<double>(res) * static_cast<double>(res));
  return result;
}

}  // namespace softdb
