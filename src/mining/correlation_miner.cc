#include "mining/correlation_miner.h"

#include <algorithm>
#include <cmath>

namespace softdb {

Result<CorrelationCandidate> FitCorrelation(
    const Table& table, ColumnIdx col_a, ColumnIdx col_b,
    const CorrelationMinerOptions& options) {
  const ColumnVector& as = table.ColumnData(col_a);
  const ColumnVector& bs = table.ColumnData(col_b);
  if (!IsNumericType(as.type()) || !IsNumericType(bs.type())) {
    return Status::InvalidArgument("correlation mining needs numeric columns");
  }

  double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
  std::uint64_t n = 0;
  double a_min = 0, a_max = 0;
  for (RowId r = 0; r < table.NumSlots(); ++r) {
    if (!table.IsLive(r) || as.IsNull(r) || bs.IsNull(r)) continue;
    const double a = as.GetNumeric(r);
    const double b = bs.GetNumeric(r);
    if (n == 0) {
      a_min = a_max = a;
    } else {
      a_min = std::min(a_min, a);
      a_max = std::max(a_max, a);
    }
    sum_a += a;
    sum_b += b;
    sum_aa += a * a;
    sum_bb += b * b;
    sum_ab += a * b;
    ++n;
  }
  if (n < options.min_rows) {
    return Status::InvalidArgument("too few rows for correlation fit");
  }

  const double nf = static_cast<double>(n);
  const double cov = sum_ab - sum_a * sum_b / nf;
  const double var_b = sum_bb - sum_b * sum_b / nf;
  const double var_a = sum_aa - sum_a * sum_a / nf;
  if (var_b < 1e-12 || var_a < 1e-12) {
    return Status::InvalidArgument("degenerate column (constant)");
  }

  CorrelationCandidate cand;
  cand.col_a = col_a;
  cand.col_b = col_b;
  cand.k = cov / var_b;
  cand.c = (sum_a - cand.k * sum_b) / nf;
  cand.r2 = (cov * cov) / (var_a * var_b);

  // Deviation envelope: full max and the partial quantile.
  std::vector<double> deviations;
  deviations.reserve(n);
  for (RowId r = 0; r < table.NumSlots(); ++r) {
    if (!table.IsLive(r) || as.IsNull(r) || bs.IsNull(r)) continue;
    deviations.push_back(std::abs(as.GetNumeric(r) -
                                  (cand.k * bs.GetNumeric(r) + cand.c)));
  }
  std::sort(deviations.begin(), deviations.end());
  cand.epsilon_full = deviations.back();
  const std::size_t q_idx = std::min(
      deviations.size() - 1,
      static_cast<std::size_t>(options.partial_quantile *
                               static_cast<double>(deviations.size())));
  cand.epsilon_partial = deviations[q_idx];
  cand.confidence = options.partial_quantile;
  const double a_range = a_max - a_min;
  cand.selectivity =
      a_range > 0 ? (2.0 * cand.epsilon_partial) / a_range : 1.0;
  return cand;
}

std::vector<CorrelationCandidate> MineLinearCorrelations(
    const Table& table, const CorrelationMinerOptions& options) {
  std::vector<CorrelationCandidate> out;
  const Schema& schema = table.schema();
  for (ColumnIdx a = 0; a < schema.NumColumns(); ++a) {
    if (!IsNumericType(schema.Column(a).type)) continue;
    for (ColumnIdx b = 0; b < schema.NumColumns(); ++b) {
      if (a == b || !IsNumericType(schema.Column(b).type)) continue;
      auto cand = FitCorrelation(table, a, b, options);
      if (!cand.ok()) continue;
      if (cand->r2 < options.min_r2) continue;
      if (cand->selectivity > options.max_selectivity) continue;
      out.push_back(*std::move(cand));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CorrelationCandidate& x, const CorrelationCandidate& y) {
              return x.selectivity < y.selectivity;
            });
  return out;
}

}  // namespace softdb
