#ifndef SOFTDB_MINING_SELECTION_H_
#define SOFTDB_MINING_SELECTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "constraints/sc_registry.h"
#include "mining/correlation_miner.h"
#include "mining/fd_miner.h"
#include "mining/offset_miner.h"
#include "storage/catalog.h"

namespace softdb {

/// Workload profile: how often each column appears in query predicates.
/// §3.2: "input from the optimizer, the database's statistics, and the
/// workload can be used to direct the search toward the characterizations
/// that would be most beneficial."
class WorkloadProfile {
 public:
  void RecordPredicate(const std::string& table, ColumnIdx column,
                       std::uint64_t times = 1) {
    counts_[{table, column}] += times;
  }

  std::uint64_t PredicateCount(const std::string& table,
                               ColumnIdx column) const {
    auto it = counts_.find({table, column});
    return it == counts_.end() ? 0 : it->second;
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& [_, c] : counts_) t += c;
    return t;
  }

 private:
  std::map<std::pair<std::string, ColumnIdx>, std::uint64_t> counts_;
};

/// A discovery candidate scored for the selection stage.
struct ScoredCandidate {
  double utility = 0.0;
  std::string rationale;
  std::size_t index = 0;  // Position in the source candidate vector.
};

/// Scores correlation candidates for a table: utility grows with workload
/// hits on the *cheap* column (B, the one queries constrain) and with the
/// envelope's selectivity; it requires an index on A for the rewrite to pay
/// off, and is zero when no index exists.
std::vector<ScoredCandidate> ScoreCorrelationCandidates(
    const std::vector<CorrelationCandidate>& candidates,
    const std::string& table, const WorkloadProfile& profile,
    const Catalog& catalog);

/// Scores offset candidates: twinning pays whenever either column appears
/// in predicates; absolute rewrite additionally wants an index on the
/// derived column.
std::vector<ScoredCandidate> ScoreOffsetCandidates(
    const std::vector<OffsetCandidate>& candidates, const std::string& table,
    const WorkloadProfile& profile, const Catalog& catalog);

/// Scores FD candidates: utility is confidence-weighted and prefers small
/// determinant sets (more queries match) and exact FDs (rewrite-eligible).
std::vector<ScoredCandidate> ScoreFdCandidates(
    const std::vector<FdCandidate>& candidates, const std::string& table,
    const WorkloadProfile& profile);

/// Keeps the top `budget` candidates by utility (dropping zero-utility
/// ones), mirroring the paper's "only some will in fact be useful".
std::vector<ScoredCandidate> SelectTop(std::vector<ScoredCandidate> scored,
                                       std::size_t budget);

/// Probation sweep (§3.2's dynamic selection): names of registered SCs
/// whose observed optimizer benefit per use stayed below the threshold
/// after at least `min_uses_observed` queries of exposure.
std::vector<std::string> ProbationSweep(const ScRegistry& registry,
                                        std::uint64_t min_uses_observed,
                                        double min_total_benefit);

}  // namespace softdb

#endif  // SOFTDB_MINING_SELECTION_H_
