#ifndef SOFTDB_MINING_SELECTION_H_
#define SOFTDB_MINING_SELECTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "constraints/ic_registry.h"
#include "constraints/sc_registry.h"
#include "mining/correlation_miner.h"
#include "mining/fd_miner.h"
#include "mining/offset_miner.h"
#include "plan/expr.h"
#include "storage/catalog.h"

namespace softdb {

/// Workload profile: how often each column appears in query predicates.
/// §3.2: "input from the optimizer, the database's statistics, and the
/// workload can be used to direct the search toward the characterizations
/// that would be most beneficial."
class WorkloadProfile {
 public:
  void RecordPredicate(const std::string& table, ColumnIdx column,
                       std::uint64_t times = 1) {
    counts_[{table, column}] += times;
  }

  std::uint64_t PredicateCount(const std::string& table,
                               ColumnIdx column) const {
    auto it = counts_.find({table, column});
    return it == counts_.end() ? 0 : it->second;
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& [_, c] : counts_) t += c;
    return t;
  }

 private:
  std::map<std::pair<std::string, ColumnIdx>, std::uint64_t> counts_;
};

/// A discovery candidate scored for the selection stage.
struct ScoredCandidate {
  double utility = 0.0;
  std::string rationale;
  std::size_t index = 0;  // Position in the source candidate vector.
};

/// Scores correlation candidates for a table: utility grows with workload
/// hits on the *cheap* column (B, the one queries constrain) and with the
/// envelope's selectivity; it requires an index on A for the rewrite to pay
/// off, and is zero when no index exists.
std::vector<ScoredCandidate> ScoreCorrelationCandidates(
    const std::vector<CorrelationCandidate>& candidates,
    const std::string& table, const WorkloadProfile& profile,
    const Catalog& catalog);

/// Scores offset candidates: twinning pays whenever either column appears
/// in predicates; absolute rewrite additionally wants an index on the
/// derived column.
std::vector<ScoredCandidate> ScoreOffsetCandidates(
    const std::vector<OffsetCandidate>& candidates, const std::string& table,
    const WorkloadProfile& profile, const Catalog& catalog);

/// Scores FD candidates: utility is confidence-weighted and prefers small
/// determinant sets (more queries match) and exact FDs (rewrite-eligible).
std::vector<ScoredCandidate> ScoreFdCandidates(
    const std::vector<FdCandidate>& candidates, const std::string& table,
    const WorkloadProfile& profile);

/// Keeps the top `budget` candidates by utility (dropping zero-utility
/// ones), mirroring the paper's "only some will in fact be useful".
std::vector<ScoredCandidate> SelectTop(std::vector<ScoredCandidate> scored,
                                       std::size_t budget);

/// A constraint candidate harvested statically from the application layer
/// (workload predicates, join shapes, grouping lists, DDL) per Liu et al.
/// — not yet validated against data. The harvester proposes, the mining
/// pipeline disposes: candidates are scored by workload support, selected
/// under a budget, and only arm after MaterializeCandidate + a verifying
/// ScRegistry::Add confirm them against the actual rows.
struct HarvestedCandidate {
  enum class Kind { kDomain, kInclusion, kFd, kPredicate };

  Kind kind = Kind::kDomain;
  std::string name;   // Suggested SC name ("hv_<table>_...", unique).
  std::string table;  // Owning table (the child table for inclusions).

  // kDomain: `column` ∈ [min_value, max_value].
  ColumnIdx column = 0;
  Value min_value;
  Value max_value;

  // kInclusion: table(columns) ⊆ parent_table(parent_columns).
  std::vector<ColumnIdx> columns;
  std::string parent_table;
  std::vector<ColumnIdx> parent_columns;

  // kFd: columns (determinants) -> dependents, both on `table`.
  std::vector<ColumnIdx> dependents;

  // kPredicate: `predicate` holds for every row (bound to table schema).
  ExprPtr predicate;

  std::uint64_t support = 0;  // Distinct workload statements backing it.
  std::string rationale;      // Which pattern produced it.
  std::string directive;      // `SOFT CONSTRAINT ...` rendering for reports.
};

const char* HarvestKindName(HarvestedCandidate::Kind kind);

/// Scores harvested candidates for the selection stage: utility grows with
/// the statement support that produced the pattern plus the workload's
/// predicate traffic on the involved columns. Never zero for a candidate
/// with support — harvesting already established demand.
std::vector<ScoredCandidate> ScoreHarvestedCandidates(
    const std::vector<HarvestedCandidate>& candidates,
    const WorkloadProfile& profile);

/// Turns a harvested candidate into a concrete (unverified) SC ready for
/// ScRegistry::Add(..., verify_now=true) — the validate-then-arm step that
/// keeps false candidates out of the catalog.
Result<ScPtr> MaterializeCandidate(const HarvestedCandidate& candidate,
                                   const Catalog& catalog);

/// True when the candidate duplicates an already-armed characterization:
/// an active SC covering the same shape, or (for inclusions) a declared
/// foreign key with the same column mapping. `ics` may be null.
bool CandidateAlreadyArmed(const HarvestedCandidate& candidate,
                           const ScRegistry& scs, const IcRegistry* ics);

/// Probation sweep (§3.2's dynamic selection): names of registered SCs
/// whose observed optimizer benefit per use stayed below the threshold
/// after at least `min_uses_observed` queries of exposure.
std::vector<std::string> ProbationSweep(const ScRegistry& registry,
                                        std::uint64_t min_uses_observed,
                                        double min_total_benefit);

}  // namespace softdb

#endif  // SOFTDB_MINING_SELECTION_H_
