#ifndef SOFTDB_MINING_CORRELATION_MINER_H_
#define SOFTDB_MINING_CORRELATION_MINER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace softdb {

/// A mined linear correlation candidate `A ≈ k·B + c ± ε`, per [10].
struct CorrelationCandidate {
  ColumnIdx col_a = 0;
  ColumnIdx col_b = 0;
  double k = 0.0;
  double c = 0.0;
  /// Envelope containing *all* rows (the ASC version; usable in rewrite).
  double epsilon_full = 0.0;
  /// Envelope containing `confidence` of rows (the SSC version).
  double epsilon_partial = 0.0;
  double confidence = 0.99;
  /// ε as a fraction of A's value range: the selectivity criterion of [10]
  /// ("this formula should be fairly selective, that is, ε is small").
  double selectivity = 1.0;
  /// Pearson correlation coefficient of the fit.
  double r2 = 0.0;
};

struct CorrelationMinerOptions {
  /// Keep candidates whose partial envelope spans at most this fraction of
  /// A's range (the [10] threshold bound on acceptable ε).
  double max_selectivity = 0.2;
  /// Quantile for the partial envelope (0.99 → 99% of rows inside).
  double partial_quantile = 0.99;
  /// Minimum |r| of the least-squares fit to even consider the pair.
  double min_r2 = 0.5;
  /// Minimum non-null row pairs required.
  std::uint64_t min_rows = 32;
};

/// Searches all ordered pairs of numeric columns of `table` for linear
/// correlations, least-squares fitting each pair and measuring the deviation
/// envelope. Returns candidates ordered by ascending selectivity (most
/// useful first). Runtime O(columns² · rows).
std::vector<CorrelationCandidate> MineLinearCorrelations(
    const Table& table, const CorrelationMinerOptions& options = {});

/// Fits a single ordered pair (useful when the workload already names the
/// interesting pair, as §3.2 suggests steering discovery by workload).
Result<CorrelationCandidate> FitCorrelation(
    const Table& table, ColumnIdx col_a, ColumnIdx col_b,
    const CorrelationMinerOptions& options = {});

}  // namespace softdb

#endif  // SOFTDB_MINING_CORRELATION_MINER_H_
