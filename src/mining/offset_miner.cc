#include "mining/offset_miner.h"

#include <algorithm>
#include <cmath>

namespace softdb {

namespace {

bool SamePairFamily(TypeId a, TypeId b) {
  if (a == TypeId::kDate || b == TypeId::kDate) return a == b;
  return IsNumericType(a) && IsNumericType(b);
}

}  // namespace

std::vector<OffsetCandidate> MineColumnOffsets(
    const Table& table, const OffsetMinerOptions& options) {
  std::vector<OffsetCandidate> out;
  const Schema& schema = table.schema();
  for (ColumnIdx x = 0; x < schema.NumColumns(); ++x) {
    if (!IsNumericType(schema.Column(x).type)) continue;
    for (ColumnIdx y = 0; y < schema.NumColumns(); ++y) {
      if (x == y) continue;
      if (!SamePairFamily(schema.Column(x).type, schema.Column(y).type)) {
        continue;
      }
      const ColumnVector& xs = table.ColumnData(x);
      const ColumnVector& ys = table.ColumnData(y);
      std::vector<double> diffs;
      double y_min = 0, y_max = 0;
      bool any = false;
      for (RowId r = 0; r < table.NumSlots(); ++r) {
        if (!table.IsLive(r) || xs.IsNull(r) || ys.IsNull(r)) continue;
        const double yv = ys.GetNumeric(r);
        diffs.push_back(yv - xs.GetNumeric(r));
        if (!any) {
          y_min = y_max = yv;
          any = true;
        } else {
          y_min = std::min(y_min, yv);
          y_max = std::max(y_max, yv);
        }
      }
      if (diffs.size() < options.min_rows) continue;
      std::sort(diffs.begin(), diffs.end());
      OffsetCandidate cand;
      cand.col_x = x;
      cand.col_y = y;
      cand.min_full = static_cast<std::int64_t>(std::floor(diffs.front()));
      cand.max_full = static_cast<std::int64_t>(std::ceil(diffs.back()));
      // Minimal-width window covering `quantile` of the mass: handles
      // one-sided violation tails (e.g. late shipments are only ever late,
      // never early) that a symmetric quantile cut would straddle.
      const std::size_t window = std::max<std::size_t>(
          1, static_cast<std::size_t>(options.quantile *
                                      static_cast<double>(diffs.size())));
      std::size_t best_lo = 0;
      double best_width = diffs[window - 1] - diffs[0];
      for (std::size_t lo = 1; lo + window <= diffs.size(); ++lo) {
        const double width = diffs[lo + window - 1] - diffs[lo];
        if (width < best_width) {
          best_width = width;
          best_lo = lo;
        }
      }
      cand.min_partial =
          static_cast<std::int64_t>(std::floor(diffs[best_lo]));
      cand.max_partial =
          static_cast<std::int64_t>(std::ceil(diffs[best_lo + window - 1]));
      cand.confidence = options.quantile;
      const double y_range = y_max - y_min;
      cand.selectivity =
          y_range > 0
              ? static_cast<double>(cand.max_partial - cand.min_partial) /
                    y_range
              : 1.0;
      if (cand.selectivity > options.max_selectivity) continue;
      out.push_back(cand);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const OffsetCandidate& a, const OffsetCandidate& b) {
              return a.selectivity < b.selectivity;
            });
  return out;
}

}  // namespace softdb
