#include "mining/selection.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"
#include "constraints/domain_sc.h"
#include "constraints/fd_sc.h"
#include "constraints/inclusion_sc.h"
#include "constraints/predicate_sc.h"

namespace softdb {

namespace {

bool HasIndexOn(const Catalog& catalog, const std::string& table,
                ColumnIdx column) {
  for (const Index* idx : catalog.IndexesOn(table)) {
    if (idx->column() == column) return true;
  }
  return false;
}

}  // namespace

std::vector<ScoredCandidate> ScoreCorrelationCandidates(
    const std::vector<CorrelationCandidate>& candidates,
    const std::string& table, const WorkloadProfile& profile,
    const Catalog& catalog) {
  std::vector<ScoredCandidate> out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const CorrelationCandidate& c = candidates[i];
    ScoredCandidate scored;
    scored.index = i;
    const bool indexed = HasIndexOn(catalog, table, c.col_a);
    const std::uint64_t hits = profile.PredicateCount(table, c.col_b);
    if (!indexed || hits == 0) {
      scored.utility = 0.0;
      scored.rationale = indexed ? "no workload predicates on B"
                                 : "no index on A: rewrite cannot pay off";
    } else {
      // Benefit model: each hit saves ~ (1 - selectivity) of a full scan.
      scored.utility =
          static_cast<double>(hits) * (1.0 - c.selectivity) * c.r2;
      scored.rationale = StrFormat(
          "%llu workload hits, selectivity %.3f, r2 %.3f",
          static_cast<unsigned long long>(hits), c.selectivity, c.r2);
    }
    out.push_back(std::move(scored));
  }
  return out;
}

std::vector<ScoredCandidate> ScoreOffsetCandidates(
    const std::vector<OffsetCandidate>& candidates, const std::string& table,
    const WorkloadProfile& profile, const Catalog& catalog) {
  std::vector<ScoredCandidate> out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const OffsetCandidate& c = candidates[i];
    ScoredCandidate scored;
    scored.index = i;
    const std::uint64_t hits_x = profile.PredicateCount(table, c.col_x);
    const std::uint64_t hits_y = profile.PredicateCount(table, c.col_y);
    double utility = static_cast<double>(hits_x + hits_y) *
                     (1.0 - c.selectivity);
    // Rewrite bonus when the derived side has an index.
    if (HasIndexOn(catalog, table, c.col_x) ||
        HasIndexOn(catalog, table, c.col_y)) {
      utility *= 2.0;
    }
    scored.utility = utility;
    scored.rationale = StrFormat(
        "hits x=%llu y=%llu, selectivity %.3f",
        static_cast<unsigned long long>(hits_x),
        static_cast<unsigned long long>(hits_y), c.selectivity);
    out.push_back(std::move(scored));
  }
  return out;
}

std::vector<ScoredCandidate> ScoreFdCandidates(
    const std::vector<FdCandidate>& candidates, const std::string& table,
    const WorkloadProfile& profile) {
  std::vector<ScoredCandidate> out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const FdCandidate& c = candidates[i];
    ScoredCandidate scored;
    scored.index = i;
    std::uint64_t hits = profile.PredicateCount(table, c.dependent);
    for (ColumnIdx d : c.determinants) {
      hits += profile.PredicateCount(table, d);
    }
    const double exactness_bonus = c.confidence >= 1.0 ? 2.0 : 1.0;
    scored.utility = static_cast<double>(1 + hits) * c.confidence *
                     exactness_bonus /
                     static_cast<double>(c.determinants.size());
    scored.rationale = StrFormat("conf %.4f, %zu determinants, %llu hits",
                                 c.confidence, c.determinants.size(),
                                 static_cast<unsigned long long>(hits));
    out.push_back(std::move(scored));
  }
  return out;
}

std::vector<ScoredCandidate> SelectTop(std::vector<ScoredCandidate> scored,
                                       std::size_t budget) {
  scored.erase(std::remove_if(scored.begin(), scored.end(),
                              [](const ScoredCandidate& s) {
                                return s.utility <= 0.0;
                              }),
               scored.end());
  std::sort(scored.begin(), scored.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              return a.utility > b.utility;
            });
  if (scored.size() > budget) scored.resize(budget);
  return scored;
}

const char* HarvestKindName(HarvestedCandidate::Kind kind) {
  switch (kind) {
    case HarvestedCandidate::Kind::kDomain:
      return "domain";
    case HarvestedCandidate::Kind::kInclusion:
      return "inclusion";
    case HarvestedCandidate::Kind::kFd:
      return "fd";
    case HarvestedCandidate::Kind::kPredicate:
      return "predicate";
  }
  return "unknown";
}

std::vector<ScoredCandidate> ScoreHarvestedCandidates(
    const std::vector<HarvestedCandidate>& candidates,
    const WorkloadProfile& profile) {
  std::vector<ScoredCandidate> out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const HarvestedCandidate& c = candidates[i];
    std::uint64_t hits = 0;
    switch (c.kind) {
      case HarvestedCandidate::Kind::kDomain:
        hits = profile.PredicateCount(c.table, c.column);
        break;
      case HarvestedCandidate::Kind::kInclusion:
        for (ColumnIdx col : c.columns) {
          hits += profile.PredicateCount(c.table, col);
        }
        for (ColumnIdx col : c.parent_columns) {
          hits += profile.PredicateCount(c.parent_table, col);
        }
        break;
      case HarvestedCandidate::Kind::kFd:
        for (ColumnIdx col : c.columns) {
          hits += profile.PredicateCount(c.table, col);
        }
        for (ColumnIdx col : c.dependents) {
          hits += profile.PredicateCount(c.table, col);
        }
        break;
      case HarvestedCandidate::Kind::kPredicate: {
        std::vector<ColumnIdx> cols;
        if (c.predicate != nullptr) c.predicate->CollectColumns(&cols);
        for (ColumnIdx col : cols) {
          hits += profile.PredicateCount(c.table, col);
        }
        break;
      }
    }
    ScoredCandidate scored;
    scored.index = i;
    scored.utility = static_cast<double>(c.support + hits);
    scored.rationale =
        StrFormat("%s candidate, support %llu, %llu predicate hits",
                  HarvestKindName(c.kind),
                  static_cast<unsigned long long>(c.support),
                  static_cast<unsigned long long>(hits));
    out.push_back(std::move(scored));
  }
  return out;
}

Result<ScPtr> MaterializeCandidate(const HarvestedCandidate& candidate,
                                   const Catalog& catalog) {
  switch (candidate.kind) {
    case HarvestedCandidate::Kind::kDomain:
      return ScPtr(std::make_unique<DomainSc>(
          candidate.name, candidate.table, candidate.column,
          candidate.min_value, candidate.max_value));
    case HarvestedCandidate::Kind::kInclusion:
      if (candidate.columns.size() != candidate.parent_columns.size() ||
          candidate.columns.empty()) {
        return Status::InvalidArgument(
            "inclusion candidate column lists must be non-empty and equal "
            "length");
      }
      return ScPtr(std::make_unique<InclusionSc>(
          candidate.name, candidate.table, candidate.columns,
          candidate.parent_table, candidate.parent_columns));
    case HarvestedCandidate::Kind::kFd:
      if (candidate.columns.empty() || candidate.dependents.empty()) {
        return Status::InvalidArgument(
            "fd candidate needs determinants and dependents");
      }
      return ScPtr(std::make_unique<FunctionalDependencySc>(
          candidate.name, candidate.table, candidate.columns,
          candidate.dependents));
    case HarvestedCandidate::Kind::kPredicate: {
      if (candidate.predicate == nullptr) {
        return Status::InvalidArgument("predicate candidate has no expr");
      }
      SOFTDB_ASSIGN_OR_RETURN(Table * t, catalog.GetTable(candidate.table));
      ExprPtr expr = candidate.predicate->Clone();
      SOFTDB_RETURN_IF_ERROR(expr->Bind(t->schema()));
      return ScPtr(std::make_unique<PredicateSc>(
          candidate.name, candidate.table, std::move(expr)));
    }
  }
  return Status::InvalidArgument("unknown harvest candidate kind");
}

bool CandidateAlreadyArmed(const HarvestedCandidate& candidate,
                           const ScRegistry& scs, const IcRegistry* ics) {
  const auto as_set = [](const std::vector<ColumnIdx>& v) {
    return std::set<ColumnIdx>(v.begin(), v.end());
  };
  switch (candidate.kind) {
    case HarvestedCandidate::Kind::kDomain:
      // Any active domain on the column already characterizes its range;
      // a second interval would only be redundant or contradictory.
      for (const SoftConstraint* sc : scs.ByKind(ScKind::kDomain)) {
        const auto* dom = static_cast<const DomainSc*>(sc);
        if (sc->active() && dom->table() == candidate.table &&
            dom->column() == candidate.column) {
          return true;
        }
      }
      return false;
    case HarvestedCandidate::Kind::kInclusion: {
      for (const SoftConstraint* sc : scs.ByKind(ScKind::kInclusion)) {
        const auto* inc = static_cast<const InclusionSc*>(sc);
        if (sc->active() && inc->child_table() == candidate.table &&
            inc->parent_table() == candidate.parent_table &&
            inc->child_columns() == candidate.columns &&
            inc->parent_columns() == candidate.parent_columns) {
          return true;
        }
      }
      if (ics != nullptr) {
        for (const ForeignKeyConstraint* fk :
             ics->ForeignKeysFrom(candidate.table)) {
          if (fk->parent_table() == candidate.parent_table &&
              fk->columns() == candidate.columns &&
              fk->parent_columns() == candidate.parent_columns) {
            return true;  // Hard FK subsumes the soft inclusion.
          }
        }
      }
      return false;
    }
    case HarvestedCandidate::Kind::kFd: {
      const std::set<ColumnIdx> dets = as_set(candidate.columns);
      const std::set<ColumnIdx> deps = as_set(candidate.dependents);
      for (const SoftConstraint* sc :
           scs.ByKind(ScKind::kFunctionalDependency)) {
        const auto* fd = static_cast<const FunctionalDependencySc*>(sc);
        if (!sc->active() || fd->table() != candidate.table) continue;
        if (as_set(fd->determinants()) != dets) continue;
        const std::set<ColumnIdx> have = as_set(fd->dependents());
        if (std::includes(have.begin(), have.end(), deps.begin(),
                          deps.end())) {
          return true;
        }
      }
      return false;
    }
    case HarvestedCandidate::Kind::kPredicate: {
      if (candidate.predicate == nullptr) return false;
      const std::string text = candidate.predicate->ToString();
      for (const SoftConstraint* sc : scs.ByKind(ScKind::kPredicate)) {
        const auto* pred = static_cast<const PredicateSc*>(sc);
        if (sc->active() && pred->table() == candidate.table &&
            pred->expr().ToString() == text) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

std::vector<std::string> ProbationSweep(const ScRegistry& registry,
                                        std::uint64_t min_uses_observed,
                                        double min_total_benefit) {
  std::vector<std::string> to_drop;
  for (const SoftConstraint* sc : registry.All()) {
    const std::uint64_t uses = registry.UseCount(sc->name());
    const double benefit = registry.TotalBenefit(sc->name());
    if (uses < min_uses_observed || benefit < min_total_benefit) {
      to_drop.push_back(sc->name());
    }
  }
  return to_drop;
}

}  // namespace softdb
