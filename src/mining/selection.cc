#include "mining/selection.h"

#include <algorithm>

#include "common/str_util.h"

namespace softdb {

namespace {

bool HasIndexOn(const Catalog& catalog, const std::string& table,
                ColumnIdx column) {
  for (const Index* idx : catalog.IndexesOn(table)) {
    if (idx->column() == column) return true;
  }
  return false;
}

}  // namespace

std::vector<ScoredCandidate> ScoreCorrelationCandidates(
    const std::vector<CorrelationCandidate>& candidates,
    const std::string& table, const WorkloadProfile& profile,
    const Catalog& catalog) {
  std::vector<ScoredCandidate> out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const CorrelationCandidate& c = candidates[i];
    ScoredCandidate scored;
    scored.index = i;
    const bool indexed = HasIndexOn(catalog, table, c.col_a);
    const std::uint64_t hits = profile.PredicateCount(table, c.col_b);
    if (!indexed || hits == 0) {
      scored.utility = 0.0;
      scored.rationale = indexed ? "no workload predicates on B"
                                 : "no index on A: rewrite cannot pay off";
    } else {
      // Benefit model: each hit saves ~ (1 - selectivity) of a full scan.
      scored.utility =
          static_cast<double>(hits) * (1.0 - c.selectivity) * c.r2;
      scored.rationale = StrFormat(
          "%llu workload hits, selectivity %.3f, r2 %.3f",
          static_cast<unsigned long long>(hits), c.selectivity, c.r2);
    }
    out.push_back(std::move(scored));
  }
  return out;
}

std::vector<ScoredCandidate> ScoreOffsetCandidates(
    const std::vector<OffsetCandidate>& candidates, const std::string& table,
    const WorkloadProfile& profile, const Catalog& catalog) {
  std::vector<ScoredCandidate> out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const OffsetCandidate& c = candidates[i];
    ScoredCandidate scored;
    scored.index = i;
    const std::uint64_t hits_x = profile.PredicateCount(table, c.col_x);
    const std::uint64_t hits_y = profile.PredicateCount(table, c.col_y);
    double utility = static_cast<double>(hits_x + hits_y) *
                     (1.0 - c.selectivity);
    // Rewrite bonus when the derived side has an index.
    if (HasIndexOn(catalog, table, c.col_x) ||
        HasIndexOn(catalog, table, c.col_y)) {
      utility *= 2.0;
    }
    scored.utility = utility;
    scored.rationale = StrFormat(
        "hits x=%llu y=%llu, selectivity %.3f",
        static_cast<unsigned long long>(hits_x),
        static_cast<unsigned long long>(hits_y), c.selectivity);
    out.push_back(std::move(scored));
  }
  return out;
}

std::vector<ScoredCandidate> ScoreFdCandidates(
    const std::vector<FdCandidate>& candidates, const std::string& table,
    const WorkloadProfile& profile) {
  std::vector<ScoredCandidate> out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const FdCandidate& c = candidates[i];
    ScoredCandidate scored;
    scored.index = i;
    std::uint64_t hits = profile.PredicateCount(table, c.dependent);
    for (ColumnIdx d : c.determinants) {
      hits += profile.PredicateCount(table, d);
    }
    const double exactness_bonus = c.confidence >= 1.0 ? 2.0 : 1.0;
    scored.utility = static_cast<double>(1 + hits) * c.confidence *
                     exactness_bonus /
                     static_cast<double>(c.determinants.size());
    scored.rationale = StrFormat("conf %.4f, %zu determinants, %llu hits",
                                 c.confidence, c.determinants.size(),
                                 static_cast<unsigned long long>(hits));
    out.push_back(std::move(scored));
  }
  return out;
}

std::vector<ScoredCandidate> SelectTop(std::vector<ScoredCandidate> scored,
                                       std::size_t budget) {
  scored.erase(std::remove_if(scored.begin(), scored.end(),
                              [](const ScoredCandidate& s) {
                                return s.utility <= 0.0;
                              }),
               scored.end());
  std::sort(scored.begin(), scored.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              return a.utility > b.utility;
            });
  if (scored.size() > budget) scored.resize(budget);
  return scored;
}

std::vector<std::string> ProbationSweep(const ScRegistry& registry,
                                        std::uint64_t min_uses_observed,
                                        double min_total_benefit) {
  std::vector<std::string> to_drop;
  for (const SoftConstraint* sc : registry.All()) {
    const std::uint64_t uses = registry.UseCount(sc->name());
    const double benefit = registry.TotalBenefit(sc->name());
    if (uses < min_uses_observed || benefit < min_total_benefit) {
      to_drop.push_back(sc->name());
    }
  }
  return to_drop;
}

}  // namespace softdb
