#ifndef SOFTDB_MINING_OFFSET_MINER_H_
#define SOFTDB_MINING_OFFSET_MINER_H_

#include <vector>

#include "storage/table.h"

namespace softdb {

/// A mined column-offset bound `col_y - col_x ∈ [min, max]`.
struct OffsetCandidate {
  ColumnIdx col_x = 0;
  ColumnIdx col_y = 0;
  /// Absolute bounds covering every row (ASC version).
  std::int64_t min_full = 0;
  std::int64_t max_full = 0;
  /// Tighter bounds covering `confidence` of rows (SSC version) — the
  /// "99% of shipments within three weeks" shape of §4.4.
  std::int64_t min_partial = 0;
  std::int64_t max_partial = 0;
  double confidence = 0.99;
  /// Partial width / column range: small is selective/useful.
  double selectivity = 1.0;
};

struct OffsetMinerOptions {
  double quantile = 0.99;        // Central mass for the partial bounds.
  double max_selectivity = 0.5;  // Discard diffuse pairs.
  std::uint64_t min_rows = 32;
};

/// Mines offset bounds for all ordered pairs of same-family numeric columns
/// (dates pair with dates, ints with ints — the shapes where `y - x` is
/// meaningful). Sorted by ascending selectivity.
std::vector<OffsetCandidate> MineColumnOffsets(
    const Table& table, const OffsetMinerOptions& options = {});

}  // namespace softdb

#endif  // SOFTDB_MINING_OFFSET_MINER_H_
