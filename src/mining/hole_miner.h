#ifndef SOFTDB_MINING_HOLE_MINER_H_
#define SOFTDB_MINING_HOLE_MINER_H_

#include <vector>

#include "common/result.h"
#include "constraints/join_hole_sc.h"
#include "storage/table.h"

namespace softdb {

struct HoleMinerOptions {
  /// Grid resolution per axis; the joint (A, B) distribution of the join
  /// result is discretized into res × res cells.
  std::size_t grid_resolution = 64;
  /// Stop once the best remaining empty rectangle covers less than this
  /// fraction of the grid area.
  double min_area_fraction = 0.01;
  /// Maximum number of holes to extract.
  std::size_t max_holes = 16;
};

/// Statistics reported by the miner (E9: discovery is linear in the size of
/// the resulting join table, as [8] claims).
struct HoleMinerResult {
  std::vector<HoleRect> holes;
  std::uint64_t join_pairs = 0;   // |left ⋈ right| examined.
  double covered_fraction = 0.0;  // Grid-area fraction covered by holes.
};

/// Discovers empty rectangles over the join
/// `left ⋈ right ON left.jl = right.jr` with respect to (left.attr_a,
/// right.attr_b): computes the join with a hash join (linear in input +
/// output), discretizes the joint distribution onto a grid, then repeatedly
/// extracts the largest maximal empty rectangle. Hole bounds snap to cell
/// boundaries, so reported holes are genuinely empty (conservative).
Result<HoleMinerResult> MineJoinHoles(const Table& left, ColumnIdx left_join,
                                      ColumnIdx attr_a, const Table& right,
                                      ColumnIdx right_join, ColumnIdx attr_b,
                                      const HoleMinerOptions& options = {});

/// Largest empty (all-zero) rectangle in a binary occupancy grid; exposed
/// for testing. Returns row/col index bounds [r0,r1]x[c0,c1] inclusive, and
/// false when the grid is fully occupied.
bool LargestEmptyRectangle(const std::vector<std::vector<std::uint8_t>>& grid,
                           std::size_t* r0, std::size_t* c0, std::size_t* r1,
                           std::size_t* c1);

}  // namespace softdb

#endif  // SOFTDB_MINING_HOLE_MINER_H_
