#ifndef SOFTDB_MINING_FD_MINER_H_
#define SOFTDB_MINING_FD_MINER_H_

#include <vector>

#include "storage/table.h"

namespace softdb {

/// A mined (possibly approximate) functional dependency candidate.
struct FdCandidate {
  std::vector<ColumnIdx> determinants;
  ColumnIdx dependent = 0;
  /// g3-style confidence: 1 - (minimum rows to delete for the FD to hold) /
  /// rows. 1.0 means the FD holds exactly (an ASC candidate).
  double confidence = 0.0;
  std::uint64_t determinant_groups = 0;
};

struct FdMinerOptions {
  /// Report only candidates at or above this confidence.
  double min_confidence = 0.95;
  /// Level-wise search depth: 1 = single-column determinants, 2 adds pairs
  /// (TANE-style lattice, truncated — enough for the optimizer's GROUP
  /// BY/ORDER BY pruning which keys on small determinant sets).
  std::size_t max_determinant_size = 2;
  /// Skip trivially-key-like determinants: if a determinant's group count
  /// exceeds this fraction of rows it determines everything vacuously.
  double max_group_fraction = 0.9;
};

/// Mines functional dependencies with partition refinement: for each
/// candidate determinant set X (levels 1..max size), partitions rows by X
/// and measures, per non-member column y, how consistently X fixes y.
/// Exact FDs (confidence 1.0) are ASC material; approximate ones are SSCs.
std::vector<FdCandidate> MineFunctionalDependencies(
    const Table& table, const FdMinerOptions& options = {});

}  // namespace softdb

#endif  // SOFTDB_MINING_FD_MINER_H_
