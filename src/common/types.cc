#include "common/types.h"

namespace softdb {

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "VARCHAR";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kBool:
      return "BOOLEAN";
  }
  return "UNKNOWN";
}

}  // namespace softdb
