#include "common/failpoint.h"

#include <cstdlib>

#include "common/str_util.h"

namespace softdb {

namespace {

// Parses "always", "off", "every(N)" or "prob(P[,S])" into a Policy.
Status ParsePolicy(const std::string& text, Failpoints::Policy* out) {
  if (text == "always") {
    out->trigger = Failpoints::Trigger::kAlways;
    return Status::OK();
  }
  if (text == "off") {
    out->trigger = Failpoints::Trigger::kOff;
    return Status::OK();
  }
  auto call = [&](const std::string& fn,
                  std::vector<std::string>* args) -> bool {
    if (text.size() < fn.size() + 2 || text.compare(0, fn.size(), fn) != 0 ||
        text[fn.size()] != '(' || text.back() != ')') {
      return false;
    }
    const std::string inner =
        text.substr(fn.size() + 1, text.size() - fn.size() - 2);
    for (const auto& piece : Split(inner, ',')) {
      args->push_back(Trim(piece));
    }
    return true;
  };
  std::vector<std::string> args;
  if (call("every", &args)) {
    if (args.size() != 1) {
      return Status::InvalidArgument("every() takes one argument: " + text);
    }
    char* end = nullptr;
    const unsigned long long n = std::strtoull(args[0].c_str(), &end, 10);
    if (end == args[0].c_str() || *end != '\0' || n == 0) {
      return Status::InvalidArgument("bad every() period: " + text);
    }
    out->trigger = Failpoints::Trigger::kEveryNth;
    out->n = n;
    return Status::OK();
  }
  if (call("prob", &args)) {
    if (args.empty() || args.size() > 2) {
      return Status::InvalidArgument("prob() takes one or two arguments: " +
                                     text);
    }
    char* end = nullptr;
    const double p = std::strtod(args[0].c_str(), &end);
    if (end == args[0].c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("bad prob() probability: " + text);
    }
    out->trigger = Failpoints::Trigger::kProbability;
    out->probability = p;
    out->seed = 0;
    if (args.size() == 2) {
      const unsigned long long s = std::strtoull(args[1].c_str(), &end, 10);
      if (end == args[1].c_str() || *end != '\0') {
        return Status::InvalidArgument("bad prob() seed: " + text);
      }
      out->seed = s;
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown failpoint policy: " + text);
}

}  // namespace

Failpoints& Failpoints::Instance() {
  // Leaked singleton: failpoints may be evaluated during static teardown
  // (e.g. a SoftDb destructor stopping its repair worker).
  static Failpoints* instance = new Failpoints();
  return *instance;
}

Failpoints::Failpoints() {
  // Arm the env profile once, at first use. A malformed entry stops the
  // parse at that entry; chaos harnesses that need validation call
  // ParseProfile directly.
  const char* profile = std::getenv("SOFTDB_FAILPOINTS");
  if (profile != nullptr && profile[0] != '\0') {
    ParseProfile(profile).ok();
  }
}

void Failpoints::Enable(const std::string& site, Policy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState state;
  state.policy = policy;
  state.rng = Rng(policy.seed);
  sites_[site] = state;
  any_armed_.store(true, std::memory_order_relaxed);
}

void Failpoints::SetAction(const std::string& site,
                           std::function<void()> action) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[site].action = std::move(action);
}

void Failpoints::Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.policy.trigger = Trigger::kOff;
}

void Failpoints::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  any_armed_.store(false, std::memory_order_relaxed);
}

Status Failpoints::ParseProfile(const std::string& profile) {
  for (const auto& piece : Split(profile, ';')) {
    const std::string entry = Trim(piece);
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("bad failpoint entry: " + entry);
    }
    const std::string site = Trim(entry.substr(0, eq));
    const std::string policy_text = Trim(entry.substr(eq + 1));
    Policy policy;
    SOFTDB_RETURN_IF_ERROR(ParsePolicy(policy_text, &policy));
    Enable(site, policy);
  }
  return Status::OK();
}

bool Failpoints::ShouldFail(const char* site) {
  std::function<void()> action;
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    SiteState& state = it->second;
    state.evaluations++;
    switch (state.policy.trigger) {
      case Trigger::kOff:
        break;
      case Trigger::kAlways:
        fired = true;
        break;
      case Trigger::kEveryNth:
        fired = state.evaluations % state.policy.n == 0;
        break;
      case Trigger::kProbability:
        fired = state.rng.NextBool(state.policy.probability);
        break;
    }
    if (fired) {
      state.fires++;
      action = state.action;
    }
  }
  // The action may re-enter the framework (e.g. Disable its own site), so
  // it runs without the lock.
  if (action) action();
  return fired;
}

std::uint64_t Failpoints::Evaluations(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.evaluations;
}

std::uint64_t Failpoints::Fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

}  // namespace softdb
