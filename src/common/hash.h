#ifndef SOFTDB_COMMON_HASH_H_
#define SOFTDB_COMMON_HASH_H_

#include <cstddef>
#include <vector>

#include "common/value.h"

namespace softdb {

/// Boost-style hash combiner (64-bit golden-ratio mix). Used wherever
/// composite keys are hashed — miner group keys, join keys, group-by keys —
/// instead of concatenating per-cell ToString() images.
inline std::size_t HashCombine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash/equality functors over Value compatible with Value::GroupEquals
/// (NULL == NULL, int/double family members that compare equal hash equal).
struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return a.GroupEquals(b);
  }
};

/// Composite-key variants for std::vector<Value> keys (join keys, FD
/// determinant images, group-by keys).
struct ValueVecHash {
  std::size_t operator()(const std::vector<Value>& key) const {
    std::size_t h = 1469598103934665603ULL;
    for (const Value& v : key) h = HashCombine(h, v.Hash());
    return h;
  }
};

struct ValueVecEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!a[i].GroupEquals(b[i])) return false;
    }
    return true;
  }
};

}  // namespace softdb

#endif  // SOFTDB_COMMON_HASH_H_
