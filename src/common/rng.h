#ifndef SOFTDB_COMMON_RNG_H_
#define SOFTDB_COMMON_RNG_H_

#include <cstdint>

namespace softdb {

/// Deterministic 64-bit RNG (xorshift128+). All workload generators and
/// miners take an explicit Rng so every experiment, test and bench is
/// reproducible from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5DEECE66DULL) {
    s0_ = seed ? seed : 0x9E3779B97F4A7C15ULL;
    s1_ = SplitMix(&s0_);
    s0_ = SplitMix(&s1_);
  }

  /// Uniform 64-bit value.
  std::uint64_t Next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t Uniform(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Gaussian via Box–Muller (one value per call; simple and sufficient for
  /// data generation).
  double NextGaussian(double mean, double stddev);

  /// Bernoulli(p).
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t SplitMix(std::uint64_t* state) {
    std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace softdb

#endif  // SOFTDB_COMMON_RNG_H_
