#include "common/status.h"

namespace softdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kConstraintViolation:
      return "constraint violation";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kBindError:
      return "bind error";
    case StatusCode::kTypeMismatch:
      return "type mismatch";
    case StatusCode::kNotImplemented:
      return "not implemented";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kDataLoss:
      return "data loss";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace softdb
