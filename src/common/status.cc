#include "common/status.h"

#include <cerrno>
#include <cstdlib>

namespace softdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kConstraintViolation:
      return "constraint violation";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kBindError:
      return "bind error";
    case StatusCode::kTypeMismatch:
      return "type mismatch";
    case StatusCode::kNotImplemented:
      return "not implemented";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kDataLoss:
      return "data loss";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace {

/// Locates the trailing ` {...}` detail block. Returns true and the open
/// brace's index when the message ends with a well-formed block.
bool FindDetailBlock(const std::string& message, std::size_t* open) {
  if (message.empty() || message.back() != '}') return false;
  const std::size_t pos = message.rfind('{');
  if (pos == std::string::npos) return false;
  *open = pos;
  return true;
}

}  // namespace

std::string AppendStatusDetail(std::string message, const std::string& key,
                               std::int64_t value) {
  const std::string pair = key + "=" + std::to_string(value);
  std::size_t open = 0;
  if (FindDetailBlock(message, &open)) {
    // Grow the existing block: "... {a=1}" -> "... {a=1 b=2}".
    message.insert(message.size() - 1,
                   (message.size() - open > 2 ? " " : "") + pair);
    return message;
  }
  if (!message.empty()) message += " ";
  message += "{" + pair + "}";
  return message;
}

std::optional<std::int64_t> ParseStatusDetail(const std::string& message,
                                              const std::string& key) {
  std::size_t open = 0;
  if (!FindDetailBlock(message, &open)) return std::nullopt;
  std::size_t pos = open + 1;
  const std::size_t end = message.size() - 1;  // Index of '}'.
  while (pos < end) {
    const std::size_t space = std::min(message.find(' ', pos), end);
    const std::size_t eq = message.find('=', pos);
    if (eq == std::string::npos || eq >= space) return std::nullopt;
    if (message.compare(pos, eq - pos, key) == 0) {
      errno = 0;
      char* parse_end = nullptr;
      const std::string value = message.substr(eq + 1, space - eq - 1);
      const long long v = std::strtoll(value.c_str(), &parse_end, 10);
      if (parse_end == nullptr || *parse_end != '\0' || value.empty()) {
        return std::nullopt;
      }
      return static_cast<std::int64_t>(v);
    }
    pos = space + 1;
  }
  return std::nullopt;
}

Status WithStatusDetail(Status status, const std::string& key,
                        std::int64_t value) {
  if (status.ok()) return status;
  return Status(status.code(),
                AppendStatusDetail(status.message(), key, value));
}

std::optional<std::int64_t> StatusDetail(const Status& status,
                                         const std::string& key) {
  return ParseStatusDetail(status.message(), key);
}

bool IsRetryableStatus(const Status& status) {
  if (status.ok()) return false;
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
      return true;
    // Deadline and cancellation mean the caller's budget or interest is
    // gone; semantic and data errors will fail identically on retry.
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
      return false;
    default:
      // Any producer may mark a transient with an explicit hint.
      return StatusDetail(status, "retry_after_ms").has_value();
  }
}

}  // namespace softdb
