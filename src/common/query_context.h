#ifndef SOFTDB_COMMON_QUERY_CONTEXT_H_
#define SOFTDB_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

#include "common/status.h"

namespace softdb {

/// Thread-safe cancellation flag shared between a query and whoever may
/// cancel it. Cancel() is sticky: once set, every subsequent Check at a
/// cancellation point in the executors returns kCancelled.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-query execution limits, passed to SoftDb::Execute. The executors
/// check it cooperatively at morsel/batch granularity (and strided inside
/// long row loops), so cancellation latency is bounded by one batch, not
/// one query. Copyable; the token is shared so the caller can keep a handle
/// and cancel from another thread.
struct QueryContext {
  std::shared_ptr<CancellationToken> cancel;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  /// Arms a deadline `budget` from now.
  void SetDeadlineAfter(std::chrono::milliseconds budget) {
    has_deadline = true;
    deadline = std::chrono::steady_clock::now() + budget;
  }

  /// True when a deadline is armed and already in the past: the query is
  /// unsatisfiable on arrival and must be failed fast, never dispatched
  /// (see SoftDb::Execute and Dispatcher admission).
  bool DeadlineExpired() const {
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  }

  /// Wall-clock budget left before the deadline (clamped at zero), or
  /// nullopt when no deadline is armed. The server's deadline-aware
  /// admission queue compares this against queue wait and backoff cost.
  std::optional<std::chrono::milliseconds> RemainingBudget() const {
    if (!has_deadline) return std::nullopt;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::chrono::milliseconds(0);
    return std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                 now);
  }

  /// kCancelled if the token fired, kDeadlineExceeded if past the deadline,
  /// OK otherwise. Reads the clock only when a deadline is armed.
  Status Check() const {
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::Cancelled("query cancelled");
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }
};

}  // namespace softdb

#endif  // SOFTDB_COMMON_QUERY_CONTEXT_H_
