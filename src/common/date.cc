#include "common/date.h"

#include <cstdio>

namespace softdb {

namespace {

// Days from 0000-03-01 to the civil date, using Howard Hinnant's algorithm.
// Shifting the year to start in March puts the leap day last, which makes
// the arithmetic branch-free.
std::int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void CivilFromDays(std::int64_t z, int* yy, int* mm, int* dd) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *yy = static_cast<int>(y + (m <= 2));
  *mm = static_cast<int>(m);
  *dd = static_cast<int>(d);
}

}  // namespace

std::int64_t Date::FromYmd(int year, int month, int day) {
  return DaysFromCivil(year, month, day);
}

bool Date::IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int Date::DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

Result<std::int64_t> Date::Parse(const std::string& text) {
  int y = 0, m = 0, d = 0;
  char extra = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d%c", &y, &m, &d, &extra) != 3) {
    return Status::InvalidArgument("malformed date: '" + text +
                                   "' (want YYYY-MM-DD)");
  }
  if (y < 1600 || y > 9999 || m < 1 || m > 12 || d < 1 ||
      d > DaysInMonth(y, m)) {
    return Status::InvalidArgument("date out of range: '" + text + "'");
  }
  return FromYmd(y, m, d);
}

std::string Date::ToString(std::int64_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

void Date::ToYmd(std::int64_t days, int* year, int* month, int* day) {
  CivilFromDays(days, year, month, day);
}

}  // namespace softdb
