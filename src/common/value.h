#ifndef SOFTDB_COMMON_VALUE_H_
#define SOFTDB_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/types.h"

namespace softdb {

/// A typed SQL scalar, including NULL. Values are small and freely
/// copyable; strings are the only heap-owning variant.
///
/// Ordering follows SQL semantics for non-null values of the same type
/// family; `Compare` reports an error on cross-family comparisons (e.g.
/// string vs int) so that type errors surface during binding rather than
/// silently at runtime.
class Value {
 public:
  /// Constructs SQL NULL (with unknown type affinity).
  Value() : type_(TypeId::kInt64), is_null_(true) {}

  static Value Null(TypeId type = TypeId::kInt64) {
    Value v;
    v.type_ = type;
    v.is_null_ = true;
    return v;
  }
  static Value Int64(std::int64_t v) { return Value(TypeId::kInt64, v); }
  static Value Double(double v) { return Value(TypeId::kDouble, v); }
  static Value String(std::string v) { return Value(std::move(v)); }
  static Value Date(std::int64_t days) { return Value(TypeId::kDate, days); }
  static Value Bool(bool v) {
    return Value(TypeId::kBool, static_cast<std::int64_t>(v));
  }

  TypeId type() const { return type_; }
  bool is_null() const { return is_null_; }

  /// Typed accessors; callers must check type()/is_null() first.
  std::int64_t AsInt64() const { return std::get<std::int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<std::int64_t>(data_) != 0; }

  /// Numeric view of any non-string value (int64, date and bool widen to
  /// double). Used by the estimator and histogram code.
  double NumericValue() const;

  /// Three-way comparison. Returns <0, 0, >0. NULLs compare before
  /// everything (consistent ordering for sorting; predicate evaluation
  /// treats NULL comparisons as unknown separately). Errors on incompatible
  /// type families.
  Result<int> Compare(const Value& other) const;

  /// Equality as used by hash joins and grouping: NULL equals NULL here
  /// (group-by semantics). Cross-family comparisons are simply unequal.
  bool GroupEquals(const Value& other) const;

  /// Hash compatible with GroupEquals.
  std::size_t Hash() const;

  /// Coerces this value to `target` (int<->double<->date widening, string
  /// passthrough). Errors if the conversion is lossy in kind (e.g. string to
  /// int).
  Result<Value> CastTo(TypeId target) const;

  /// SQL-literal-ish rendering ("NULL", "42", "3.14", "'abc'",
  /// "DATE '1999-12-15'").
  std::string ToString() const;

 private:
  Value(TypeId type, std::int64_t v) : type_(type), is_null_(false), data_(v) {}
  Value(TypeId type, double v) : type_(type), is_null_(false), data_(v) {}
  explicit Value(std::string v)
      : type_(TypeId::kString), is_null_(false), data_(std::move(v)) {}

  TypeId type_;
  bool is_null_;
  std::variant<std::int64_t, double, std::string> data_;
};

/// True when both values are non-null, same family, and equal.
bool operator==(const Value& a, const Value& b);
inline bool operator!=(const Value& a, const Value& b) { return !(a == b); }

}  // namespace softdb

#endif  // SOFTDB_COMMON_VALUE_H_
