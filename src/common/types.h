#ifndef SOFTDB_COMMON_TYPES_H_
#define SOFTDB_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace softdb {

/// Row identifier within a table. Row ids are stable across updates but are
/// recycled only by explicit compaction (which the engine never does behind
/// the caller's back).
using RowId = std::uint64_t;

constexpr RowId kInvalidRowId = ~RowId{0};

/// Column position within a schema.
using ColumnIdx = std::uint32_t;

/// Scalar types supported by the engine. Dates are stored as days since
/// 1970-01-01 (see common/date.h) so range arithmetic on them is integer
/// arithmetic, matching how the paper's date examples are evaluated.
enum class TypeId : std::uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kDate = 3,
  kBool = 4,
};

/// Returns the SQL-ish name of a type ("BIGINT", "DOUBLE", ...).
const char* TypeName(TypeId type);

/// True for types with a total numeric order usable in histograms and range
/// predicates (everything except kString, which orders lexicographically and
/// is handled separately).
inline bool IsNumericType(TypeId type) {
  return type == TypeId::kInt64 || type == TypeId::kDouble ||
         type == TypeId::kDate || type == TypeId::kBool;
}

}  // namespace softdb

#endif  // SOFTDB_COMMON_TYPES_H_
