#ifndef SOFTDB_COMMON_STR_UTIL_H_
#define SOFTDB_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace softdb {

/// ASCII lowercase copy (SQL identifiers and keywords are case-insensitive).
std::string ToLower(const std::string& s);

/// ASCII uppercase copy.
std::string ToUpper(const std::string& s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace softdb

#endif  // SOFTDB_COMMON_STR_UTIL_H_
