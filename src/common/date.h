#ifndef SOFTDB_COMMON_DATE_H_
#define SOFTDB_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace softdb {

/// Calendar date utilities. Dates are represented engine-wide as int64 days
/// since the Unix epoch (1970-01-01), so predicates like
/// `ship_date <= order_date + 21` are plain integer comparisons — exactly
/// the arithmetic the paper's shipment and project-duration examples rely
/// on.
class Date {
 public:
  /// Converts a proleptic Gregorian calendar date to days since epoch.
  /// Valid for years 1600..9999.
  static std::int64_t FromYmd(int year, int month, int day);

  /// Parses "YYYY-MM-DD". Returns InvalidArgument on malformed input or
  /// out-of-range fields.
  static Result<std::int64_t> Parse(const std::string& text);

  /// Formats days-since-epoch as "YYYY-MM-DD".
  static std::string ToString(std::int64_t days);

  /// Decomposes days-since-epoch into calendar fields.
  static void ToYmd(std::int64_t days, int* year, int* month, int* day);

  /// True when `year` is a Gregorian leap year.
  static bool IsLeapYear(int year);

  /// Number of days in `month` of `year` (month is 1-based).
  static int DaysInMonth(int year, int month);
};

}  // namespace softdb

#endif  // SOFTDB_COMMON_DATE_H_
