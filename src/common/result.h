#ifndef SOFTDB_COMMON_RESULT_H_
#define SOFTDB_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace softdb {

/// Either a value of type T or a non-OK Status, in the spirit of
/// arrow::Result / absl::StatusOr. A Result is never constructed from an OK
/// status without a value.
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` and `return status;` both work.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() &&
           "Result must not be built from an OK status without a value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns OK when a value is held, otherwise the held error.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Value accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace softdb

/// Evaluates `expr` (a Result<T>), propagating errors; on success assigns
/// the value into `lhs`, which may be a declaration.
#define SOFTDB_ASSIGN_OR_RETURN(lhs, expr)                    \
  SOFTDB_ASSIGN_OR_RETURN_IMPL(                               \
      SOFTDB_CONCAT_NAME(_softdb_result_, __LINE__), lhs, expr)

#define SOFTDB_CONCAT_NAME_INNER(x, y) x##y
#define SOFTDB_CONCAT_NAME(x, y) SOFTDB_CONCAT_NAME_INNER(x, y)

#define SOFTDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#endif  // SOFTDB_COMMON_RESULT_H_
