#include "common/rng.h"

#include <cmath>

namespace softdb {

double Rng::NextGaussian(double mean, double stddev) {
  // Box–Muller transform; u1 is kept away from zero to avoid log(0).
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

}  // namespace softdb
