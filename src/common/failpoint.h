#ifndef SOFTDB_COMMON_FAILPOINT_H_
#define SOFTDB_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace softdb {

/// Deterministic fault-injection framework. A *failpoint* is a named site in
/// engine code (e.g. "sc.repair_full", "exec.batch_scan") that can be armed
/// with a trigger policy; when the policy fires, the call site returns a
/// typed error instead of executing normally. Disarmed sites cost one
/// relaxed atomic load (see SOFTDB_FAILPOINT_FIRED), so they are safe to
/// leave compiled in on hot paths.
///
/// Policies:
///   - always:      every evaluation fires.
///   - every(N):    the Nth, 2Nth, 3Nth... evaluation fires (N >= 1).
///   - prob(P[,S]): each evaluation fires with probability P, driven by a
///                  per-site deterministic Rng seeded with S (default 0), so
///                  a given seed always yields the same fire sequence for a
///                  given evaluation order.
///   - off:         never fires (still counts evaluations).
///
/// Activation: programmatically via Enable()/Disable()/DisableAll(), or
/// through the environment variable SOFTDB_FAILPOINTS, parsed once on first
/// use, e.g.:
///
///   SOFTDB_FAILPOINTS='sc.repair_full=always;scheduler.task=every(3);
///                      exec.batch_scan=prob(0.05,42)'
///
/// Site catalog (kept current in DESIGN.md "Failure model"):
///   sc.repair_full        SoftConstraint repair execution
///   scheduler.task        TaskScheduler task body
///   exec.hash_join_build  hash-join build-side materialization
///   exec.batch_scan       vectorized scan batch production
///   plan_cache.insert     plan-cache Put (fires -> entry not cached)
///   wal.append            WAL record write (fires -> record not written)
///   wal.fsync             WAL group-commit fsync (record written, unsynced)
///   wal.checkpoint_begin  before the checkpoint-begin marker is logged
///   wal.checkpoint_end    before the checkpoint-end marker is logged
///   wal.truncate          before old segments are dropped post-checkpoint
///   server.admit          Dispatcher admission (fires -> typed rejection)
///   server.dequeue        worker dequeue (fires -> transient, retryable)
///   server.session_execute before a worker runs a session's statement
///   server.drain          action-only hook inside Dispatcher::Drain
class Failpoints {
 public:
  enum class Trigger { kOff, kAlways, kEveryNth, kProbability };

  struct Policy {
    Trigger trigger = Trigger::kOff;
    std::uint64_t n = 0;     // kEveryNth period.
    double probability = 0;  // kProbability fire chance in [0, 1].
    std::uint64_t seed = 0;  // kProbability Rng seed.
  };

  /// Process-wide instance; all call-site macros route through it.
  static Failpoints& Instance();

  /// Arms `site` with `policy`. Resets the site's counters.
  void Enable(const std::string& site, Policy policy);

  /// Disarms `site` (counters are kept for inspection).
  void Disable(const std::string& site);

  /// Disarms every site and clears all counters. Tests call this in
  /// SetUp/TearDown so profiles never leak across cases.
  void DisableAll();

  /// Parses a profile string of `site=policy` pairs separated by ';' (see
  /// class comment) and arms each site. Returns kInvalidArgument on a
  /// malformed entry; entries before the bad one stay armed.
  Status ParseProfile(const std::string& profile);

  /// Attaches an action to an armed site: each time the site *fires*, the
  /// action runs (without the framework lock held) before the call site
  /// reacts. Chaos tests use this to mutate engine state at a precise
  /// mid-query moment — e.g. overturning an SC between two batches.
  void SetAction(const std::string& site, std::function<void()> action);

  /// Evaluates `site`: counts the evaluation and returns true if the armed
  /// policy fires. Disarmed or unknown sites return false.
  bool ShouldFail(const char* site);

  /// Total evaluations / fires observed at `site` since it was last armed
  /// (0 for never-armed sites).
  std::uint64_t Evaluations(const std::string& site) const;
  std::uint64_t Fires(const std::string& site) const;

  /// True if any site is currently armed. Lock-free; the fast path for
  /// disarmed builds.
  bool AnyArmed() const { return any_armed_.load(std::memory_order_relaxed); }

 private:
  // Arms the SOFTDB_FAILPOINTS env profile, if set.
  Failpoints();

  struct SiteState {
    Policy policy;
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
    Rng rng{0};
    std::function<void()> action;  // Runs on fire, outside the lock.
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, SiteState> sites_;
  std::atomic<bool> any_armed_{false};
};

}  // namespace softdb

/// True when the named failpoint fires this evaluation. The disarmed fast
/// path is a single relaxed load.
#define SOFTDB_FAILPOINT_FIRED(site)                 \
  (::softdb::Failpoints::Instance().AnyArmed() &&    \
   ::softdb::Failpoints::Instance().ShouldFail(site))

/// Returns `status_expr` from the enclosing function when the failpoint
/// fires. Each site supplies its own typed error so chaos runs surface
/// clean, category-correct statuses.
#define SOFTDB_INJECT_FAULT(site, status_expr)            \
  do {                                                    \
    if (SOFTDB_FAILPOINT_FIRED(site)) return (status_expr); \
  } while (false)

/// Action-only site: evaluates the failpoint for its side effects (counters
/// and an attached SetAction callback) without erroring out.
#define SOFTDB_FAILPOINT_HIT(site) \
  do {                             \
    (void)SOFTDB_FAILPOINT_FIRED(site); \
  } while (false)

#endif  // SOFTDB_COMMON_FAILPOINT_H_
