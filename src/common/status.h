#ifndef SOFTDB_COMMON_STATUS_H_
#define SOFTDB_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace softdb {

/// Error categories used across the engine. `kOk` signals success; every
/// other code carries a human-readable message describing the failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kConstraintViolation,
  kParseError,
  kBindError,
  kTypeMismatch,
  kNotImplemented,
  kInternal,
  kOutOfRange,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
  kIOError,    // Filesystem/WAL write failure; durability not guaranteed.
  kDataLoss,   // Durable state unreadable (mid-log corruption, bad CRC).
};

/// Returns a stable, lowercase name for `code` (e.g. "constraint violation").
const char* StatusCodeName(StatusCode code);

/// Value-type error carrier, modeled on the Status idiom used by Arrow and
/// RocksDB. Functions that can fail return `Status` (or `Result<T>`); the
/// engine does not throw exceptions on its control paths.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Structured status details
/// -------------------------
/// Machine-readable key=value pairs carried in a trailing ` {k=v k2=v2}`
/// block of the status message. Producers attach details with
/// `WithStatusDetail` (repeatable; keys accumulate into one block) and
/// consumers read them back with `StatusDetail`, so policy code — the
/// server's retry classifier, admission backoff — keys off codes and
/// details, never off message prose. Well-known keys:
///
///   retry_after_ms   transient overload; retrying after this hint may
///                    succeed (admission rejections, load shedding)
///   queue_depth      admission queue depth observed at rejection
///   shed             1 when the request was evicted by load shedding
///   draining         1 when the server was draining at rejection
///   deadline_lag_ms  how far past its deadline a request arrived
///
/// Values are decimal int64. Unknown keys are preserved and ignored.

/// Returns `message` with `key=value` appended to its trailing detail
/// block (creating the block when absent).
std::string AppendStatusDetail(std::string message, const std::string& key,
                               std::int64_t value);

/// Parses `key` out of the message's trailing detail block; nullopt when
/// the block or key is absent (or the value is not an int64).
std::optional<std::int64_t> ParseStatusDetail(const std::string& message,
                                              const std::string& key);

class Status;

/// `status` with `key=value` attached to its detail block. Keeps the code.
Status WithStatusDetail(Status status, const std::string& key,
                        std::int64_t value);

/// Reads one structured detail off a status; nullopt when not present.
std::optional<std::int64_t> StatusDetail(const Status& status,
                                         const std::string& key);

/// True for statuses a client may retry after backoff: kResourceExhausted
/// (admission rejection, shed, transient worker/operator exhaustion), or
/// any status carrying an explicit retry_after_ms hint. Semantic errors
/// (parse/bind/type/constraint), deadline exhaustion and cancellation are
/// never retryable.
bool IsRetryableStatus(const Status& status);

}  // namespace softdb

/// Propagates a non-OK Status to the caller. Usable in any function that
/// returns Status.
#define SOFTDB_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::softdb::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (false)

#endif  // SOFTDB_COMMON_STATUS_H_
