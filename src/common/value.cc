#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "common/date.h"

namespace softdb {

namespace {

bool IsIntLike(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDate || t == TypeId::kBool;
}

bool SameFamily(TypeId a, TypeId b) {
  if (a == b) return true;
  const bool a_num = IsNumericType(a);
  const bool b_num = IsNumericType(b);
  return a_num && b_num;
}

}  // namespace

double Value::NumericValue() const {
  if (is_null_) return 0.0;
  switch (type_) {
    case TypeId::kDouble:
      return std::get<double>(data_);
    case TypeId::kString:
      return 0.0;
    default:
      return static_cast<double>(std::get<std::int64_t>(data_));
  }
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null_ || other.is_null_) {
    if (is_null_ && other.is_null_) return 0;
    return is_null_ ? -1 : 1;
  }
  if (!SameFamily(type_, other.type_)) {
    return Status::TypeMismatch(std::string("cannot compare ") +
                                TypeName(type_) + " with " +
                                TypeName(other.type_));
  }
  if (type_ == TypeId::kString) {
    const auto& a = std::get<std::string>(data_);
    const auto& b = std::get<std::string>(other.data_);
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (IsIntLike(type_) && IsIntLike(other.type_)) {
    const std::int64_t a = std::get<std::int64_t>(data_);
    const std::int64_t b = std::get<std::int64_t>(other.data_);
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  const double a = NumericValue();
  const double b = other.NumericValue();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

bool Value::GroupEquals(const Value& other) const {
  if (is_null_ || other.is_null_) return is_null_ && other.is_null_;
  if (!SameFamily(type_, other.type_)) return false;
  auto cmp = Compare(other);
  return cmp.ok() && *cmp == 0;
}

std::size_t Value::Hash() const {
  if (is_null_) return 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case TypeId::kString:
      return std::hash<std::string>()(std::get<std::string>(data_));
    case TypeId::kDouble: {
      const double d = std::get<double>(data_);
      // Hash integral doubles like their int64 counterparts so that mixed
      // int/double group keys collide as GroupEquals says they should.
      if (d == std::floor(d) && std::abs(d) < 9.0e18) {
        return std::hash<std::int64_t>()(static_cast<std::int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    default:
      return std::hash<std::int64_t>()(std::get<std::int64_t>(data_));
  }
}

Result<Value> Value::CastTo(TypeId target) const {
  if (is_null_) return Value::Null(target);
  if (type_ == target) return *this;
  if (type_ == TypeId::kString || target == TypeId::kString) {
    return Status::TypeMismatch(std::string("cannot cast ") + TypeName(type_) +
                                " to " + TypeName(target));
  }
  switch (target) {
    case TypeId::kDouble:
      return Value::Double(NumericValue());
    case TypeId::kInt64:
      if (type_ == TypeId::kDouble) {
        return Value::Int64(static_cast<std::int64_t>(
            std::llround(std::get<double>(data_))));
      }
      return Value::Int64(std::get<std::int64_t>(data_));
    case TypeId::kDate:
      if (type_ == TypeId::kDouble) {
        return Value::Date(static_cast<std::int64_t>(
            std::llround(std::get<double>(data_))));
      }
      return Value::Date(std::get<std::int64_t>(data_));
    case TypeId::kBool:
      return Value::Bool(NumericValue() != 0.0);
    case TypeId::kString:
      break;
  }
  return Status::TypeMismatch("unsupported cast");
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case TypeId::kInt64:
      return std::to_string(std::get<std::int64_t>(data_));
    case TypeId::kBool:
      return std::get<std::int64_t>(data_) ? "TRUE" : "FALSE";
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(data_));
      return buf;
    }
    case TypeId::kString:
      return "'" + std::get<std::string>(data_) + "'";
    case TypeId::kDate:
      return "DATE '" + Date::ToString(std::get<std::int64_t>(data_)) + "'";
  }
  return "?";
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  auto cmp = a.Compare(b);
  return cmp.ok() && *cmp == 0;
}

}  // namespace softdb
