#ifndef SOFTDB_STATS_COLUMN_STATS_H_
#define SOFTDB_STATS_COLUMN_STATS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "stats/histogram.h"

namespace softdb {

/// One frequent value and its count (DB2's "frequency statistics").
struct FrequentValue {
  Value value;
  std::uint64_t count = 0;
};

/// Catalog statistics for one column: the statistic classes §5 enumerates —
/// number of distinct values, high and low values, frequency and histogram
/// statistics.
struct ColumnStats {
  std::uint64_t row_count = 0;
  std::uint64_t null_count = 0;
  std::uint64_t distinct_count = 0;
  std::optional<Value> min;
  std::optional<Value> max;
  EquiDepthHistogram histogram;       // Numeric columns only.
  std::vector<FrequentValue> mcvs;    // Most-common values, descending count.

  /// Fraction of non-null rows (1.0 for an empty column to avoid 0/0).
  double NonNullFraction() const {
    if (row_count == 0) return 1.0;
    return static_cast<double>(row_count - null_count) /
           static_cast<double>(row_count);
  }
};

/// Statistics for one table plus the version they were computed at (used to
/// quantify staleness — the paper's "currency" measure for SSCs applies the
/// same way to runstats).
struct TableStats {
  std::uint64_t row_count = 0;
  std::uint64_t analyzed_version = 0;
  std::vector<ColumnStats> columns;

  bool HasColumn(std::size_t idx) const { return idx < columns.size(); }
};

}  // namespace softdb

#endif  // SOFTDB_STATS_COLUMN_STATS_H_
