#include "stats/analyzer.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace softdb {

namespace {

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return a.GroupEquals(b);
  }
};

ColumnStats AnalyzeColumn(const Table& table, ColumnIdx col,
                          const AnalyzeOptions& options) {
  const ColumnVector& data = table.ColumnData(col);
  ColumnStats stats;
  std::unordered_map<Value, std::uint64_t, ValueHash, ValueEq> counts;
  std::vector<double> numeric;
  const bool is_numeric = IsNumericType(data.type());
  if (is_numeric) numeric.reserve(table.NumRows());

  for (RowId row = 0; row < table.NumSlots(); ++row) {
    if (!table.IsLive(row)) continue;
    ++stats.row_count;
    if (data.IsNull(row)) {
      ++stats.null_count;
      continue;
    }
    Value v = data.Get(row);
    if (is_numeric) numeric.push_back(v.NumericValue());
    if (!stats.min.has_value()) {
      stats.min = v;
      stats.max = v;
    } else {
      auto lt = v.Compare(*stats.min);
      if (lt.ok() && *lt < 0) stats.min = v;
      auto gt = v.Compare(*stats.max);
      if (gt.ok() && *gt > 0) stats.max = v;
    }
    ++counts[std::move(v)];
  }

  stats.distinct_count = counts.size();
  if (is_numeric) {
    stats.histogram =
        EquiDepthHistogram::Build(std::move(numeric), options.histogram_buckets);
  }

  // Top-k most common values.
  std::vector<FrequentValue> mcvs;
  mcvs.reserve(counts.size());
  for (auto& [v, c] : counts) mcvs.push_back(FrequentValue{v, c});
  std::sort(mcvs.begin(), mcvs.end(),
            [](const FrequentValue& a, const FrequentValue& b) {
              return a.count > b.count;
            });
  if (mcvs.size() > options.num_mcvs) mcvs.resize(options.num_mcvs);
  stats.mcvs = std::move(mcvs);
  return stats;
}

}  // namespace

TableStats AnalyzeTable(const Table& table, const AnalyzeOptions& options) {
  TableStats stats;
  stats.row_count = table.NumRows();
  stats.analyzed_version = table.version();
  stats.columns.reserve(table.schema().NumColumns());
  for (ColumnIdx col = 0; col < table.schema().NumColumns(); ++col) {
    stats.columns.push_back(AnalyzeColumn(table, col, options));
  }
  return stats;
}

const TableStats& StatsCatalog::Analyze(const Table& table,
                                        const AnalyzeOptions& options) {
  // Compute outside the lock (a full table scan), then publish.
  auto fresh = std::make_unique<TableStats>(AnalyzeTable(table, options));
  std::unique_lock<std::shared_mutex> lk(mu_);
  std::unique_ptr<TableStats>& slot = stats_[table.name()];
  if (slot != nullptr) retired_.push_back(std::move(slot));
  slot = std::move(fresh);
  return *slot;
}

const TableStats* StatsCatalog::Get(const std::string& table_name) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = stats_.find(table_name);
  return it == stats_.end() ? nullptr : it->second.get();
}

std::uint64_t StatsCatalog::StalenessOf(const Table& table) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = stats_.find(table.name());
  if (it == stats_.end()) return table.version();
  return table.MutationsSince(it->second->analyzed_version);
}

void StatsCatalog::Clear() {
  std::unique_lock<std::shared_mutex> lk(mu_);
  for (auto& [_, slot] : stats_) retired_.push_back(std::move(slot));
  stats_.clear();
}

}  // namespace softdb
