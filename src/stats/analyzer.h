#ifndef SOFTDB_STATS_ANALYZER_H_
#define SOFTDB_STATS_ANALYZER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "stats/column_stats.h"
#include "storage/table.h"

namespace softdb {

/// ANALYZE options.
struct AnalyzeOptions {
  std::size_t histogram_buckets = 32;
  std::size_t num_mcvs = 8;
};

/// Computes full TableStats for `table` (exact NDV and frequencies; the
/// engine is in-memory so sampling is unnecessary, though the histogram
/// code accepts any subset).
TableStats AnalyzeTable(const Table& table, const AnalyzeOptions& options = {});

/// Statistics catalog: runstats storage keyed by table name.
class StatsCatalog {
 public:
  /// Runs ANALYZE and stores the result.
  const TableStats& Analyze(const Table& table,
                            const AnalyzeOptions& options = {});

  /// Returns stats if the table was analyzed, else nullptr.
  const TableStats* Get(const std::string& table_name) const;

  /// Mutations applied to `table` since it was last analyzed, or the full
  /// version counter if never analyzed.
  std::uint64_t StalenessOf(const Table& table) const;

  void Clear() { stats_.clear(); }

 private:
  std::map<std::string, TableStats> stats_;
};

}  // namespace softdb

#endif  // SOFTDB_STATS_ANALYZER_H_
