#ifndef SOFTDB_STATS_ANALYZER_H_
#define SOFTDB_STATS_ANALYZER_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "stats/column_stats.h"
#include "storage/table.h"

namespace softdb {

/// ANALYZE options.
struct AnalyzeOptions {
  std::size_t histogram_buckets = 32;
  std::size_t num_mcvs = 8;
};

/// Computes full TableStats for `table` (exact NDV and frequencies; the
/// engine is in-memory so sampling is unnecessary, though the histogram
/// code accepts any subset).
TableStats AnalyzeTable(const Table& table, const AnalyzeOptions& options = {});

/// Statistics catalog: runstats storage keyed by table name.
///
/// Thread-safe (DESIGN.md §8): the map is guarded by a shared mutex, and
/// each stored TableStats is immutable once published — re-ANALYZE installs
/// a fresh object and parks the old one in a graveyard, so `const
/// TableStats*` handed to concurrent planners stays valid for the catalog's
/// lifetime (a planner mid-query keeps costing against the snapshot it
/// read).
class StatsCatalog {
 public:
  /// Runs ANALYZE and stores the result.
  const TableStats& Analyze(const Table& table,
                            const AnalyzeOptions& options = {});

  /// Returns stats if the table was analyzed, else nullptr.
  const TableStats* Get(const std::string& table_name) const;

  /// Mutations applied to `table` since it was last analyzed, or the full
  /// version counter if never analyzed.
  std::uint64_t StalenessOf(const Table& table) const;

  void Clear();

  /// Names of every analyzed table (checkpoint serialization).
  std::vector<std::string> AnalyzedTables() const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    std::vector<std::string> names;
    names.reserve(stats_.size());
    for (const auto& [name, unused] : stats_) names.push_back(name);
    return names;
  }

  /// Installs previously-computed stats verbatim (checkpoint loading) —
  /// same publish-and-retire discipline as Analyze.
  void Restore(const std::string& table_name, TableStats stats) {
    auto fresh = std::make_unique<TableStats>(std::move(stats));
    std::unique_lock<std::shared_mutex> lk(mu_);
    auto& slot = stats_[table_name];
    if (slot) retired_.push_back(std::move(slot));
    slot = std::move(fresh);
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<TableStats>> stats_;
  std::vector<std::unique_ptr<TableStats>> retired_;  // Superseded versions.
};

}  // namespace softdb

#endif  // SOFTDB_STATS_ANALYZER_H_
