#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace softdb {

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<double> values,
                                             std::size_t num_buckets) {
  EquiDepthHistogram h;
  if (values.empty() || num_buckets == 0) return h;
  std::sort(values.begin(), values.end());
  h.total_ = values.size();

  const std::size_t target = (values.size() + num_buckets - 1) / num_buckets;
  std::size_t i = 0;
  while (i < values.size()) {
    Bucket b;
    b.lo = values[i];
    std::size_t end = std::min(values.size(), i + target);
    // Extend so a value never straddles buckets (keeps Eq estimates sane).
    while (end < values.size() && values[end] == values[end - 1]) ++end;
    b.hi = values[end - 1];
    b.count = end - i;
    b.distinct = 1;
    for (std::size_t j = i + 1; j < end; ++j) {
      if (values[j] != values[j - 1]) ++b.distinct;
    }
    h.buckets_.push_back(b);
    i = end;
  }
  return h;
}

double EquiDepthHistogram::SelectivityLessEq(double x) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (const Bucket& b : buckets_) {
    if (x >= b.hi) {
      below += b.count;
    } else if (x < b.lo) {
      break;
    } else {
      const double width = b.hi - b.lo;
      const double frac = width > 0 ? (x - b.lo) / width : 1.0;
      below += static_cast<std::uint64_t>(
          std::llround(frac * static_cast<double>(b.count)));
      break;
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double EquiDepthHistogram::SelectivityLess(double x) const {
  return std::max(0.0, SelectivityLessEq(x) - SelectivityEq(x));
}

double EquiDepthHistogram::SelectivityEq(double x) const {
  if (total_ == 0) return 0.0;
  for (const Bucket& b : buckets_) {
    if (x >= b.lo && x <= b.hi) {
      const double per_value = static_cast<double>(b.count) /
                               static_cast<double>(std::max<std::uint64_t>(
                                   1, b.distinct));
      return per_value / static_cast<double>(total_);
    }
  }
  return 0.0;
}

double EquiDepthHistogram::SelectivityRange(double lo, bool lo_inclusive,
                                            double hi,
                                            bool hi_inclusive) const {
  if (total_ == 0) return 0.0;
  const bool lo_unbounded = std::isnan(lo);
  const bool hi_unbounded = std::isnan(hi);
  double upper = hi_unbounded
                     ? 1.0
                     : (hi_inclusive ? SelectivityLessEq(hi)
                                     : SelectivityLess(hi));
  double lower = lo_unbounded
                     ? 0.0
                     : (lo_inclusive ? SelectivityLess(lo)
                                     : SelectivityLessEq(lo));
  return std::max(0.0, upper - lower);
}

std::string EquiDepthHistogram::ToString() const {
  std::string out = StrFormat("hist(total=%llu, buckets=%zu)",
                              static_cast<unsigned long long>(total_),
                              buckets_.size());
  return out;
}

}  // namespace softdb
