#ifndef SOFTDB_STATS_HISTOGRAM_H_
#define SOFTDB_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace softdb {

/// Equi-depth histogram over a numeric column (BIGINT, DOUBLE, DATE and
/// BOOLEAN all reduce to doubles). This is the "histogram statistics" class
/// §5 says DB2 keeps for filter-factor estimation. Buckets hold roughly
/// equal row counts; each bucket also records its distinct-value count so
/// equality selectivity can use per-bucket density rather than global NDV.
class EquiDepthHistogram {
 public:
  struct Bucket {
    double lo = 0.0;       // Inclusive lower bound.
    double hi = 0.0;       // Inclusive upper bound.
    std::uint64_t count = 0;
    std::uint64_t distinct = 0;
  };

  EquiDepthHistogram() = default;

  /// Builds from a sample of non-null numeric values. `num_buckets` is a
  /// target; fewer buckets result when the data has few distinct values.
  static EquiDepthHistogram Build(std::vector<double> values,
                                  std::size_t num_buckets);

  /// Reassembles a histogram from serialized parts (checkpoint loading).
  static EquiDepthHistogram FromParts(std::vector<Bucket> buckets,
                                      std::uint64_t total) {
    EquiDepthHistogram h;
    h.buckets_ = std::move(buckets);
    h.total_ = total;
    return h;
  }

  bool empty() const { return total_ == 0; }
  std::uint64_t total_count() const { return total_; }
  const std::vector<Bucket>& buckets() const { return buckets_; }

  /// Fraction of values <= x (0 when empty). Interpolates linearly within
  /// a bucket (continuous-values assumption).
  double SelectivityLessEq(double x) const;

  /// Fraction of values < x.
  double SelectivityLess(double x) const;

  /// Fraction of values = x, using the containing bucket's density.
  double SelectivityEq(double x) const;

  /// Fraction in [lo, hi] with the given bound inclusivities. Bounds with
  /// NaN are treated as unbounded.
  double SelectivityRange(double lo, bool lo_inclusive, double hi,
                          bool hi_inclusive) const;

  std::string ToString() const;

 private:
  std::vector<Bucket> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace softdb

#endif  // SOFTDB_STATS_HISTOGRAM_H_
