#ifndef SOFTDB_ENGINE_SOFTDB_H_
#define SOFTDB_ENGINE_SOFTDB_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/query_context.h"
#include "constraints/ic_registry.h"
#include "constraints/repair_worker.h"
#include "constraints/sc_registry.h"
#include "exec/operator.h"
#include "mv/materialized_view.h"
#include "optimizer/cardinality.h"
#include "optimizer/optimizer_context.h"
#include "optimizer/plan_cache.h"
#include "sql/statement.h"
#include "stats/analyzer.h"
#include "storage/catalog.h"

namespace softdb {

struct DmlImpact;
class DurabilityManager;
struct WalStats;

/// Engine-level configuration: optimizer rule switches (defaults match the
/// full soft-constraint pipeline) and execution knobs.
struct EngineOptions {
  bool use_plan_cache = true;
  bool enable_predicate_introduction = true;
  bool enable_twinning = true;
  bool enable_join_elimination = true;
  bool enable_fd_pruning = true;
  bool enable_hole_trimming = true;
  bool enable_domain_rules = true;
  bool enable_unionall_pruning = true;
  bool enable_exception_asts = true;
  /// Rewrite-time symbolic implication: prune predicates the SC/CHECK fact
  /// base proves redundant, and fold provably-empty scans.
  bool enable_implication = true;
  /// Static DML impact analysis: scope synchronous SC maintenance to the
  /// statically-impacted subset of the catalog.
  bool enable_impact_analysis = true;
  bool use_twins_in_estimation = true;
  /// Consult armed kBlockZoneMap SCs at physical-planning time: scans get
  /// per-block skip sets for blocks whose min/max/null-count envelope
  /// provably contradicts the predicates. Mid-query widenings degrade to a
  /// zone-map-free re-execution (see RunPlan).
  bool enable_zone_maps = true;
  /// Evaluate batch comparison filters through the branch-free SIMD
  /// kernels (exec/kernels.h) where types permit; OFF forces the scalar
  /// expression path everywhere. Results are bit-identical either way.
  bool use_kernels = true;
  bool prefer_sort_merge_join = false;
  bool enable_runtime_parameterization = true;
  /// Execute scans/filters/projections/equi hash joins on the vectorized
  /// batch engine. Row-engine fallback is per subtree; results and
  /// ExecStats are identical either way.
  bool use_vectorized = true;
  /// Run PlanVerifier after every bind/rewrite/planning phase. Debug
  /// builds verify regardless of this flag (see ShouldVerifyPlans).
  bool verify_plans = true;
  /// Re-validate every SC-driven rewrite's certificate with the
  /// independent CertificateChecker after planning (DESIGN.md §13). Debug
  /// builds certify regardless (see ShouldCertifyPlans) and fail the query
  /// on an invalid certificate; release builds count verdicts in
  /// ExecStats::certificates_{checked,failed}.
  bool certify_plans = true;
  /// Morsel-driven parallel execution (DESIGN.md §8): with more than one
  /// thread, parallel-safe vectorized subtrees run on a work-stealing
  /// worker pool, with results merged in morsel order so output and
  /// ExecStats stay bit-identical to serial execution. 1 = serial.
  /// Must not change while queries are in flight.
  std::size_t num_threads = 1;
  /// Slot-range size of one parallel scan morsel. Tests shrink this to
  /// exercise many-morsel schedules on small tables.
  std::size_t parallel_morsel_rows = 4096;
  /// Per-query wall-clock budget applied to Execute(sql) calls that do not
  /// bring their own QueryContext. 0 = no deadline. Exceeding it surfaces
  /// Status::DeadlineExceeded, checked cooperatively at batch/morsel
  /// granularity (row operators check on a stride).
  std::uint64_t default_deadline_ms = 0;
  /// Fail a statement that arrives with an already-expired deadline with
  /// kDeadlineExceeded (detail: deadline_lag_ms) before parsing or
  /// touching the WAL, instead of relying on the first cooperative check.
  /// The server's Dispatcher enforces the same rule at admission; this is
  /// the engine's defensive copy for direct Execute callers.
  bool reject_expired_deadlines = true;
  /// Start the background self-healing repair worker at construction: a
  /// dedicated thread that drains the SC async-repair queue with
  /// exponential backoff, quarantines poison SCs after the attempt budget,
  /// and re-arms cached plans when a repair lands.
  bool enable_repair_worker = false;
  /// Durability (DESIGN.md §14). Empty = in-memory only (the default).
  /// Non-empty: open a binary write-ahead log in this directory at
  /// construction. The directory must not already hold a log or checkpoint
  /// — recover an existing one with SoftDb::Recover instead.
  std::string wal_dir;
  /// Group commit: fsync the log once every N appended records (1 = every
  /// record). Larger N trades durability of the unsynced tail for
  /// throughput; recovery's torn-tail handling covers the gap.
  std::size_t wal_sync_every_n = 1;
};

/// Aggregate counters for the static DML impact analyzer (E7 companion to
/// ScMaintenanceStats: maintenance proportional to impact, not catalog
/// size).
/// Counters are atomic: concurrent sessions' DML statements aggregate
/// into one instance (plain ints raced; see DESIGN.md §8).
struct ImpactAnalysisStats {
  std::atomic<std::uint64_t> statements{0};     // DML statements analyzed.
  std::atomic<std::uint64_t> narrowed{0};       // Impact set < full catalog.
  std::atomic<std::uint64_t> candidate_scs{0};  // Sum of catalog sizes seen.
  std::atomic<std::uint64_t> impacted_scs{0};   // Sum of impact-set sizes.
};

/// Result of one executed statement.
struct QueryResult {
  RowSet rows;
  ExecStats exec_stats;
  std::vector<std::string> applied_rules;
  std::vector<std::string> used_scs;
  double estimated_rows = 0.0;   // Optimizer's estimate for the root.
  double estimated_cost = 0.0;   // Plan cost in simulated pages.
  std::string plan_text;
  bool from_plan_cache = false;
  bool used_backup_plan = false;
};

/// The top-level engine: catalog + statistics + integrity and soft
/// constraint registries + AST facility + optimizer + executor, wired the
/// way the paper's DB2 prototype wires them (SCs feed rewrite and
/// estimation; violations invalidate cached packages which flip to their
/// ASC-free backup plans).
class SoftDb {
 public:
  explicit SoftDb(EngineOptions options = {});
  ~SoftDb();  // Out-of-line: TaskScheduler is only forward-declared here.

  // Component access (tests, benches and examples drive these directly).
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  StatsCatalog& stats() { return stats_; }
  IcRegistry& ics() { return ics_; }
  ScRegistry& scs() { return scs_; }
  MvRegistry& mvs() { return mvs_; }
  PlanCache& plan_cache() { return plan_cache_; }
  EngineOptions& options() { return options_; }

  /// Parses and executes one SQL statement. When
  /// EngineOptions::default_deadline_ms is set, a deadline of that budget
  /// is armed for this statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Executes one SQL statement under the caller's cancellation token and
  /// deadline. `query` may be null (no interrupt checks); when non-null it
  /// overrides default_deadline_ms and must outlive the call. Interruption
  /// surfaces as Status::Cancelled / Status::DeadlineExceeded.
  Result<QueryResult> Execute(const std::string& sql,
                              const QueryContext* query);

  /// EXPLAIN: optimizes without executing; returns the annotated plan.
  Result<std::string> Explain(const std::string& sql);

  /// Inserts one row through the full pipeline: IC checks, append, index
  /// maintenance, SC maintenance (§3.2/§4.3), AST maintenance. When
  /// `sc_scope` is non-null, synchronous SC maintenance is restricted to
  /// the named SCs (a sound impact set from the static analyzer).
  Status InsertRow(const std::string& table, const std::vector<Value>& values,
                   const std::set<std::string>* sc_scope = nullptr);

  const ImpactAnalysisStats& impact_stats() const { return impact_stats_; }

  /// Registers an exception AST for a soft constraint (§4.4): creates a
  /// materialized view over the rows *violating* `sc_name` (which must be a
  /// PredicateSc or ColumnOffsetSc) and wires it into the optimizer.
  Result<MaterializedView*> CreateExceptionAst(const std::string& sc_name);

  /// Runs ANALYZE over one table or all tables.
  Status Analyze(const std::string& table = "");

  /// Mines one kBlockZoneMap SC per numeric column of `table` (named
  /// "zm_<table>_<col>") and registers them armed. Existing zone maps on
  /// the table are left alone; call again after bulk loads to re-tighten
  /// via RunMaintenance/RepairFull instead.
  Status MineZoneMaps(const std::string& table);

  /// Drains the SC async repair queue and re-arms cached plans whose SCs
  /// are active again.
  Status RunMaintenance();

  /// Starts the background repair worker (idempotent). The worker drains
  /// the repair queue with per-ticket exponential backoff, quarantines SCs
  /// that exhaust RepairPolicy::max_attempts, and re-arms cached plans
  /// after each successful repair.
  void StartRepairWorker(
      RepairWorker::Options worker_options = RepairWorker::Options());
  /// Stops and joins the repair worker; no-op when not running. Called by
  /// the destructor.
  void StopRepairWorker();
  /// The running worker, or null. Tests poll steps() on it.
  RepairWorker* repair_worker() { return repair_worker_.get(); }

  /// Builds the OptimizerContext for the current options (benches use this
  /// to drive the planner directly).
  OptimizerContext MakeContext();
  /// Estimator matching the current options.
  CardinalityEstimator MakeEstimator() const;

  /// The engine's worker pool, created lazily to match
  /// options().num_threads; null when num_threads <= 1. Do not change
  /// num_threads while queries are executing: resizing replaces the pool.
  TaskScheduler* scheduler();

  /// The WAL + checkpoint manager, or null when wal_dir is empty (or the
  /// log failed to open — see WalReady).
  DurabilityManager* wal() { return wal_.get(); }

  /// Snapshots the full engine state — catalog (tables, tombstones,
  /// versions, indexes), ICs, statistics, SCs (lifecycle, epochs, zone-map
  /// SMAs, envelopes, holes), repair queue/audit, use accounting, and
  /// exception-AST registrations — to <wal_dir>/checkpoint.bin and
  /// truncates the log (protocol in storage/recovery.h). Defined in
  /// storage/recovery.cc.
  Status Checkpoint();

  /// Rebuilds an engine from a WAL directory: loads the checkpoint if one
  /// exists, replays the log tail (torn-tail tolerant), disarms every SC
  /// whose last durable arm lacks its commit record (re-enqueued for
  /// revalidation, never trusted), bumps every SC epoch past its durable
  /// value so recovered epochs strictly dominate pre-crash plan stamps,
  /// and re-checkpoints. `options.wal_dir` is overwritten with `dir`.
  /// Defined in storage/recovery.cc.
  static Result<std::unique_ptr<SoftDb>> Recover(const std::string& dir,
                                                 EngineOptions options = {});

 private:
  using ScEpochSnapshot = std::vector<std::pair<std::string, std::uint64_t>>;

  /// Statement dispatch proper; Execute wraps it with the WAL health gate
  /// and per-statement WAL stats attribution.
  Result<QueryResult> Dispatch(const std::string& sql,
                               const QueryContext* query);
  Result<QueryResult> ExecuteSelect(const std::string& sql,
                                    const SelectStmt& stmt, bool explain_only,
                                    const QueryContext* query);
  Result<QueryResult> RunPlan(const PlanNode& plan, QueryResult result,
                              const QueryContext* query);
  /// Current epochs of the named (rewrite-consumed) SCs, deduplicated.
  ScEpochSnapshot SnapshotScEpochs(const std::vector<std::string>& names);

  /// Re-validates rewrite certificates with the independent checker
  /// (DESIGN.md §13), counting verdicts into `stats`. kStale verdicts are
  /// counted as checked only — the epoch-guarded retry machinery owns
  /// re-derivation. kInvalid means the rewriter proved something false:
  /// counted as failed, and a hard Internal error in debug builds.
  /// When `epoch_fast_path` is set (cache-hit re-validation), a
  /// certificate whose every premise SC epoch is unchanged since the full
  /// build-time check skips re-derivation: epoch-guarded SC state cannot
  /// have drifted, so the plan-time verdict still holds. Epoch drift falls
  /// back to the full check.
  Status CertifyCertificates(const std::vector<RewriteCertificate>& certs,
                             ExecStats* stats,
                             bool epoch_fast_path = false);
  /// True when any snapshotted SC has been dropped or had its epoch bumped
  /// (invalidation, repair, or parameter widening) since the snapshot.
  bool ScEpochsChanged(const ScEpochSnapshot& snapshot);
  /// Re-arms cached packages whose every used SC is active again.
  void RearmActivePlans();
  Status ExecuteInsert(const InsertStmt& stmt);
  Result<std::uint64_t> ExecuteUpdate(const UpdateStmt& stmt);
  Result<std::uint64_t> ExecuteDelete(const DeleteStmt& stmt);
  Status ExecuteCreateTable(const CreateTableStmt& stmt);
  void RecordImpact(const DmlImpact& impact);
  /// One row of an UPDATE: the full maintenance pipeline around replacing
  /// `old_row` with `new_row` at `rid` (IC bookkeeping, index + cell
  /// updates, SC folds, AST maintenance). Shared by ExecuteUpdate and WAL
  /// replay so both derive identical SC state.
  Status ApplyUpdateRow(Table* table, RowId rid,
                        const std::vector<Value>& old_row,
                        const std::vector<Value>& new_row,
                        const std::set<std::string>* sc_scope);
  /// One row of a DELETE (tombstone + index/IC/AST maintenance).
  Status ApplyDeleteRow(Table* table, RowId rid,
                        const std::vector<Value>& old_row);
  /// OK when the engine has no WAL or a healthy one; the stored open error
  /// otherwise (a wal_dir holding an existing log requires Recover).
  Status WalReady() const { return wal_error_; }

  EngineOptions options_;
  Catalog catalog_;
  StatsCatalog stats_;
  IcRegistry ics_;
  ScRegistry scs_;
  MvRegistry mvs_;
  PlanCache plan_cache_;
  ImpactAnalysisStats impact_stats_;
  std::uint64_t ic_name_counter_ = 0;
  std::map<std::string, std::string> exception_asts_;
  std::mutex scheduler_mu_;  // Guards lazy creation/resize of scheduler_.
  std::unique_ptr<TaskScheduler> scheduler_;
  std::unique_ptr<RepairWorker> repair_worker_;
  std::unique_ptr<DurabilityManager> wal_;
  Status wal_error_;        // Deferred wal_dir open failure (see WalReady).
  bool recovering_ = false;  // Replay in progress: suppress WAL appends.

  friend class DurabilityManager;
};

}  // namespace softdb

#endif  // SOFTDB_ENGINE_SOFTDB_H_
