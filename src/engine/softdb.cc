#include "engine/softdb.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "analysis/impact.h"
#include "analysis/plan_verifier.h"
#include "common/str_util.h"
#include "exec/scheduler.h"
#include "constraints/column_offset_sc.h"
#include "constraints/predicate_sc.h"
#include "constraints/zone_map_sc.h"
#include "optimizer/planner.h"
#include "optimizer/rewriter.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "storage/recovery.h"

namespace softdb {

SoftDb::SoftDb(EngineOptions options) : options_(options) {
  // §4.1: overturned SCs invalidate dependent packages, which revert to
  // their ASC-free backup plans.
  scs_.SetViolationListener([this](const SoftConstraint& sc) {
    plan_cache_.OnScViolated(sc.name());
  });
  if (!options_.wal_dir.empty()) {
    // A directory already holding a log (or checkpoint) is a crashed
    // engine's durable state: opening a fresh writer over it would orphan
    // that state, so refuse and point at Recover. The failure is deferred
    // (WalReady) so construction itself stays noexcept-ish.
    Result<std::vector<std::uint64_t>> seqs =
        ListWalSegments(options_.wal_dir);
    std::error_code ec;
    const bool has_checkpoint =
        std::filesystem::exists(CheckpointPath(options_.wal_dir), ec);
    if (!seqs.ok()) {
      wal_error_ = seqs.status();
    } else if (!seqs->empty() || has_checkpoint) {
      wal_error_ = Status::InvalidArgument(
          options_.wal_dir +
          " holds an existing log; recover it with SoftDb::Recover");
    } else {
      const std::size_t sync_every_n =
          options_.wal_sync_every_n == 0 ? 1 : options_.wal_sync_every_n;
      Result<std::unique_ptr<DurabilityManager>> wal =
          DurabilityManager::Open(options_.wal_dir, 1, sync_every_n);
      if (!wal.ok()) {
        wal_error_ = wal.status();
      } else {
        wal_ = std::move(*wal);
        scs_.SetWalLog(wal_.get());
      }
    }
  }
  if (options_.enable_repair_worker) StartRepairWorker();
}

SoftDb::~SoftDb() { StopRepairWorker(); }

void SoftDb::StartRepairWorker(RepairWorker::Options worker_options) {
  if (repair_worker_ != nullptr && repair_worker_->running()) return;
  repair_worker_ = std::make_unique<RepairWorker>(
      &scs_, &catalog_, worker_options, [this] { RearmActivePlans(); });
  repair_worker_->Start();
}

void SoftDb::StopRepairWorker() {
  if (repair_worker_ != nullptr) repair_worker_->Stop();
}

OptimizerContext SoftDb::MakeContext() {
  OptimizerContext ctx;
  ctx.catalog = &catalog_;
  ctx.stats = &stats_;
  ctx.ics = &ics_;
  ctx.scs = &scs_;
  ctx.mvs = &mvs_;
  ctx.exception_asts = exception_asts_;
  ctx.enable_predicate_introduction = options_.enable_predicate_introduction;
  ctx.enable_twinning = options_.enable_twinning;
  ctx.enable_join_elimination = options_.enable_join_elimination;
  ctx.enable_fd_pruning = options_.enable_fd_pruning;
  ctx.enable_hole_trimming = options_.enable_hole_trimming;
  ctx.enable_domain_rules = options_.enable_domain_rules;
  ctx.enable_unionall_pruning = options_.enable_unionall_pruning;
  ctx.enable_exception_asts = options_.enable_exception_asts;
  ctx.enable_implication = options_.enable_implication;
  ctx.use_twins_in_estimation = options_.use_twins_in_estimation;
  ctx.enable_zone_maps = options_.enable_zone_maps;
  ctx.prefer_sort_merge_join = options_.prefer_sort_merge_join;
  ctx.enable_runtime_parameterization =
      options_.enable_runtime_parameterization;
  ctx.use_vectorized = options_.use_vectorized;
  ctx.verify_plans = options_.verify_plans;
  ctx.num_threads = options_.num_threads;
  ctx.parallel_morsel_rows = options_.parallel_morsel_rows;
  return ctx;
}

TaskScheduler* SoftDb::scheduler() {
  std::lock_guard<std::mutex> lk(scheduler_mu_);
  if (options_.num_threads <= 1) return nullptr;
  if (scheduler_ == nullptr ||
      scheduler_->num_threads() != options_.num_threads) {
    scheduler_ = std::make_unique<TaskScheduler>(options_.num_threads);
  }
  return scheduler_.get();
}

CardinalityEstimator SoftDb::MakeEstimator() const {
  EstimatorOptions opts;
  opts.use_twinned_predicates = options_.use_twins_in_estimation;
  return CardinalityEstimator(&catalog_, &stats_, opts,
                              options_.use_twins_in_estimation ? &scs_
                                                               : nullptr);
}

Status SoftDb::InsertRow(const std::string& table_name,
                         const std::vector<Value>& values,
                         const std::set<std::string>* sc_scope) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(table_name));
  // Coerce values to the column types (int literals into DATE columns,
  // ints into DOUBLE, ...).
  std::vector<Value> row = values;
  const Schema& schema = table->schema();
  if (row.size() != schema.NumColumns()) {
    return Status::InvalidArgument(
        StrFormat("insert into %s: expected %zu values, got %zu",
                  table_name.c_str(), schema.NumColumns(), row.size()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null() || row[i].type() == schema.Column(i).type) continue;
    if (row[i].type() != TypeId::kString &&
        schema.Column(i).type != TypeId::kString) {
      SOFTDB_ASSIGN_OR_RETURN(row[i], row[i].CastTo(schema.Column(i).type));
    }
  }

  // Integrity enforcement: a violating insert aborts (hard constraints).
  SOFTDB_RETURN_IF_ERROR(ics_.CheckInsert(catalog_, table->name(), row));

  SOFTDB_ASSIGN_OR_RETURN(RowId rid, table->Append(row));
  catalog_.NotifyInsert(table, rid);
  ics_.AfterInsert(table->name(), row);

  // Soft-constraint maintenance never aborts the transaction — the SC is
  // the thing at risk, not the data (§2).
  SOFTDB_RETURN_IF_ERROR(scs_.OnInsert(catalog_, table->name(), row,
                                       sc_scope));
  // Positional SCs (zone maps) fold against the appended slot id: a widen
  // never bumps the epoch, so in-flight skip sets stay sound.
  SOFTDB_RETURN_IF_ERROR(scs_.OnRowAppended(catalog_, table->name(), rid,
                                            row));
  SOFTDB_RETURN_IF_ERROR(mvs_.OnBaseInsert(table->name(), row));
  // Apply-first, then log (see storage/recovery.h): the coerced row image
  // is what replay feeds back through this same pipeline.
  if (wal_ != nullptr && !recovering_) {
    SOFTDB_RETURN_IF_ERROR(wal_->LogInsert(table->name(), row));
  }
  return Status::OK();
}

Result<MaterializedView*> SoftDb::CreateExceptionAst(
    const std::string& sc_name) {
  SoftConstraint* sc = scs_.Find(sc_name);
  if (sc == nullptr) return Status::NotFound("no such SC: " + sc_name);
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(sc->table()));
  const Schema& schema = table->schema();

  ExprPtr violation;
  if (auto* offset = dynamic_cast<ColumnOffsetSc*>(sc)) {
    auto col = [&](ColumnIdx i) {
      return std::make_unique<ColumnRefExpr>(
          schema.Column(i).QualifiedName(), i, schema.Column(i).type);
    };
    auto diff_lo = std::make_unique<ArithmeticExpr>(
        ArithOp::kSub, col(offset->col_y()), col(offset->col_x()));
    SOFTDB_RETURN_IF_ERROR(diff_lo->Bind(schema));
    auto diff_hi = diff_lo->Clone();
    const auto [min_offset, max_offset] = offset->offset_range();
    std::vector<ExprPtr> branches;
    branches.push_back(MakeCompare(CompareOp::kLt, std::move(diff_lo),
                                   MakeLiteral(Value::Int64(min_offset))));
    branches.push_back(MakeCompare(CompareOp::kGt, std::move(diff_hi),
                                   MakeLiteral(Value::Int64(max_offset))));
    violation = MakeOr(std::move(branches));
    SOFTDB_RETURN_IF_ERROR(violation->Bind(schema));
  } else if (auto* pred = dynamic_cast<PredicateSc*>(sc)) {
    violation = std::make_unique<NotExpr>(pred->expr().Clone());
  } else {
    return Status::InvalidArgument(
        "exception ASTs support offset and predicate SCs only");
  }

  const std::string view_name = "exc_" + sc_name;
  SOFTDB_ASSIGN_OR_RETURN(
      MaterializedView * view,
      mvs_.Define(view_name, sc->table(), std::move(violation), catalog_));
  exception_asts_[sc_name] = view_name;
  if (wal_ != nullptr && !recovering_) {
    SOFTDB_RETURN_IF_ERROR(wal_->LogExceptionAst(sc_name));
  }
  return view;
}

Status SoftDb::Analyze(const std::string& table) {
  if (!table.empty()) {
    SOFTDB_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
    stats_.Analyze(*t);
    return Status::OK();
  }
  for (const std::string& name : catalog_.TableNames()) {
    SOFTDB_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(name));
    stats_.Analyze(*t);
  }
  return Status::OK();
}

Status SoftDb::MineZoneMaps(const std::string& table_name) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(table_name));
  const Schema& schema = table->schema();
  for (std::size_t c = 0; c < schema.NumColumns(); ++c) {
    const TypeId type = schema.Column(c).type;
    if (type != TypeId::kInt64 && type != TypeId::kDouble &&
        type != TypeId::kDate && type != TypeId::kBool) {
      continue;
    }
    const std::string name = StrFormat("zm_%s_%s", table->name().c_str(),
                                       schema.Column(c).name.c_str());
    if (scs_.Find(name) != nullptr) continue;  // Re-tighten via RepairFull.
    auto zm = std::make_unique<ZoneMapSc>(name, table->name(),
                                          static_cast<ColumnIdx>(c));
    SOFTDB_RETURN_IF_ERROR(zm->Mine(catalog_));
    SOFTDB_RETURN_IF_ERROR(scs_.Add(std::move(zm), catalog_,
                                    /*verify_now=*/true));
  }
  return Status::OK();
}

Status SoftDb::RunMaintenance() {
  SOFTDB_RETURN_IF_ERROR(scs_.RunRepairQueue(catalog_));
  RearmActivePlans();
  return Status::OK();
}

void SoftDb::RearmActivePlans() {
  ScEpochSnapshot active;
  for (const SoftConstraint* sc : scs_.All()) {
    if (sc->active()) active.emplace_back(sc->name(), sc->epoch());
  }
  // Epoch-aware re-arm: the repaired SCs become the re-armed packages' new
  // epoch baseline, so hit-time staleness checks accept the repair.
  plan_cache_.Rearm(active);
}

SoftDb::ScEpochSnapshot SoftDb::SnapshotScEpochs(
    const std::vector<std::string>& names) {
  ScEpochSnapshot snapshot;
  for (const std::string& name : names) {
    const auto seen = [&](const auto& entry) { return entry.first == name; };
    if (std::any_of(snapshot.begin(), snapshot.end(), seen)) continue;
    if (const SoftConstraint* sc = scs_.Find(name)) {
      snapshot.emplace_back(name, sc->epoch());
    }
  }
  return snapshot;
}

bool SoftDb::ScEpochsChanged(const ScEpochSnapshot& snapshot) {
  for (const auto& [name, epoch] : snapshot) {
    const SoftConstraint* sc = scs_.Find(name);
    if (sc == nullptr || sc->epoch() != epoch) return true;
  }
  return false;
}

Status SoftDb::CertifyCertificates(
    const std::vector<RewriteCertificate>& certs, ExecStats* stats,
    bool epoch_fast_path) {
  if (certs.empty() || !ShouldCertifyPlans(options_.certify_plans)) {
    return Status::OK();
  }
  const CertificateChecker checker(&catalog_, &ics_, &scs_);
  for (const RewriteCertificate& cert : certs) {
    ++stats->certificates_checked;
    if (epoch_fast_path && checker.EpochsCurrent(cert)) continue;
    const CertificateCheckResult res = checker.Check(cert);
    if (res.verdict == CertificateVerdict::kInvalid) {
      ++stats->certificates_failed;
#ifndef NDEBUG
      return Status::Internal(StrFormat(
          "rewrite certificate rejected [%s] %s: %s",
          CertificateKindName(cert.kind), cert.rule.c_str(),
          res.message.c_str()));
#endif
    }
    // kStale: the derivation was honest but a premise SC moved on; the
    // epoch-guarded staleness/degraded-retry machinery re-plans, so it is
    // counted as checked without failing the query.
  }
  return Status::OK();
}

Result<QueryResult> SoftDb::RunPlan(const PlanNode& plan, QueryResult result,
                                    const QueryContext* query) {
  OptimizerContext ctx = MakeContext();
  CardinalityEstimator estimator = MakeEstimator();
  PhysicalPlanner planner(&ctx, &estimator);
  result.estimated_rows = estimator.EstimateRows(plan);
  result.estimated_cost = planner.EstimateCost(plan);
  result.plan_text = plan.ToString();
  SOFTDB_ASSIGN_OR_RETURN(OperatorPtr root, planner.Plan(plan));
  // Physical planning emits its own certificates (zone-map skip sets);
  // check them against the live zone maps before any row is read.
  ExecStats cert_stats;
  SOFTDB_RETURN_IF_ERROR(CertifyCertificates(ctx.certificates, &cert_stats));
  // Zone maps are consumed at physical-planning time, so the rewrite-level
  // epoch snapshot in ExecuteSelect never sees them. Guard them here: a
  // mid-query widening (an out-of-envelope UPDATE bumps the SC epoch
  // before the cell mutates) invalidates the skip sets baked into `root`,
  // and the query re-plans without zone maps exactly once. The retry
  // consults nothing, so it cannot cascade.
  const ScEpochSnapshot zm_epochs = SnapshotScEpochs(ctx.rewrite_consumed_scs);
  ExecContext exec_ctx;
  exec_ctx.scheduler = scheduler();
  exec_ctx.query = query;
  exec_ctx.use_kernels = options_.use_kernels;
  SOFTDB_ASSIGN_OR_RETURN(result.rows, ExecuteToCompletion(root.get(),
                                                           &exec_ctx));
  result.exec_stats = exec_ctx.stats;
  if (!zm_epochs.empty() && ScEpochsChanged(zm_epochs)) {
    OptimizerContext retry_ctx = MakeContext();
    retry_ctx.enable_zone_maps = false;
    PhysicalPlanner retry_planner(&retry_ctx, &estimator);
    SOFTDB_ASSIGN_OR_RETURN(OperatorPtr retry_root, retry_planner.Plan(plan));
    // The retry consumes no zone maps, so this is normally a no-op; it
    // still re-checks whatever the retry planner emitted, so no stale
    // certificate survives the re-plan.
    cert_stats = ExecStats{};
    SOFTDB_RETURN_IF_ERROR(
        CertifyCertificates(retry_ctx.certificates, &cert_stats));
    ExecContext retry_exec;
    retry_exec.scheduler = scheduler();
    retry_exec.query = query;
    retry_exec.use_kernels = options_.use_kernels;
    SOFTDB_ASSIGN_OR_RETURN(
        result.rows, ExecuteToCompletion(retry_root.get(), &retry_exec));
    result.exec_stats = retry_exec.stats;
    result.exec_stats.degraded_retries = 1;
  }
  result.exec_stats.certificates_checked += cert_stats.certificates_checked;
  result.exec_stats.certificates_failed += cert_stats.certificates_failed;
  return result;
}

Result<QueryResult> SoftDb::ExecuteSelect(const std::string& sql,
                                          const SelectStmt& stmt,
                                          bool explain_only,
                                          const QueryContext* query) {
  if (options_.use_plan_cache && !explain_only) {
    // Get hands back a shared_ptr: a concurrent DROP TABLE may evict the
    // entry mid-execution, and the reference keeps the plan alive.
    if (std::shared_ptr<CachedPlan> cached = plan_cache_.Get(sql)) {
      ++cached->executions;
      QueryResult result;
      result.from_plan_cache = true;
      result.used_scs = cached->used_scs;
      // A package whose rewrite-consumed SCs have moved on since the
      // package's epoch baseline is stale even when `using_backup` never
      // flipped (e.g. a synchronous repair silently widened an SC). Run
      // the SC-free backup directly; no retry is needed because nothing
      // wrong ran. An epoch-aware Rearm resets the baseline after repair.
      const ScEpochSnapshot baseline = plan_cache_.ScEpochs(*cached);
      const bool stale_at_hit = ScEpochsChanged(baseline);
      const bool use_backup =
          cached->using_backup.load(std::memory_order_acquire) || stale_at_hit;
      result.used_backup_plan = use_backup;
      // A cached package's certificates are re-checked on every hit: the
      // plan may be arbitrarily old, so its transformations must re-prove
      // themselves against the live registries before the plan runs. Both
      // plans' sets are checked — mirroring the build-time pass — so the
      // per-execution count is identical whether the package was just
      // built or resurrected from the cache. The epoch fast path keeps
      // the steady-state cost to an epoch comparison per certificate.
      ExecStats hit_cert_stats;
      SOFTDB_RETURN_IF_ERROR(CertifyCertificates(
          cached->certificates, &hit_cert_stats, /*epoch_fast_path=*/true));
      SOFTDB_RETURN_IF_ERROR(
          CertifyCertificates(cached->backup_certificates, &hit_cert_stats,
                              /*epoch_fast_path=*/true));
      if (use_backup) {
        SOFTDB_ASSIGN_OR_RETURN(
            QueryResult backup_result,
            RunPlan(*cached->backup, std::move(result), query));
        backup_result.exec_stats.certificates_checked +=
            hit_cert_stats.certificates_checked;
        backup_result.exec_stats.certificates_failed +=
            hit_cert_stats.certificates_failed;
        return backup_result;
      }
      // Pre-execution live epochs: the completion check below detects
      // overturns that happen while the primary plan runs.
      ScEpochSnapshot pre_run;
      pre_run.reserve(baseline.size());
      for (const auto& [name, epoch] : baseline) {
        if (const SoftConstraint* sc = scs_.Find(name)) {
          pre_run.emplace_back(name, sc->epoch());
        }
      }
      SOFTDB_ASSIGN_OR_RETURN(QueryResult primary_result,
                              RunPlan(*cached->primary, std::move(result),
                                      query));
      if (!ScEpochsChanged(pre_run)) {
        primary_result.exec_stats.certificates_checked +=
            hit_cert_stats.certificates_checked;
        primary_result.exec_stats.certificates_failed +=
            hit_cert_stats.certificates_failed;
        return primary_result;
      }
      // Mid-query overturn of a consumed ASC: the rows just produced are in
      // jeopardy. Transparently re-execute exactly once on the SC-free
      // backup; the backup consumed no SCs, so it cannot retry again. The
      // backup's certificates are re-checked against the post-overturn
      // registries — a stale certificate never survives the re-plan.
      QueryResult retry;
      retry.from_plan_cache = true;
      retry.used_scs = cached->used_scs;
      retry.used_backup_plan = true;
      ExecStats retry_cert_stats;
      SOFTDB_RETURN_IF_ERROR(CertifyCertificates(cached->backup_certificates,
                                                 &retry_cert_stats));
      SOFTDB_ASSIGN_OR_RETURN(retry,
                              RunPlan(*cached->backup, std::move(retry),
                                      query));
      retry.exec_stats.degraded_retries = 1;
      retry.exec_stats.certificates_checked +=
          retry_cert_stats.certificates_checked;
      retry.exec_stats.certificates_failed +=
          retry_cert_stats.certificates_failed;
      return retry;
    }
  }

  Binder binder(&catalog_);
  SOFTDB_ASSIGN_OR_RETURN(PlanPtr bound, binder.BindSelect(stmt));

  if (ShouldVerifyPlans(options_.verify_plans)) {
    PlanVerifier verifier({&catalog_, &mvs_, &exception_asts_});
    SOFTDB_RETURN_IF_ERROR(verifier.VerifyLogical(*bound, "bind"));
  }

  // Backup plan: rewritten without any soft constraints (IC-driven rules
  // such as FK join elimination still apply — those cannot be overturned).
  OptimizerContext backup_ctx = MakeContext();
  backup_ctx.scs = nullptr;
  backup_ctx.enable_exception_asts = false;
  Rewriter backup_rewriter(&backup_ctx);
  SOFTDB_ASSIGN_OR_RETURN(PlanPtr backup,
                          backup_rewriter.Rewrite(bound->Clone()));

  OptimizerContext ctx = MakeContext();
  Rewriter rewriter(&ctx);
  SOFTDB_ASSIGN_OR_RETURN(PlanPtr primary, rewriter.Rewrite(std::move(bound)));

  // Translation validation (DESIGN.md §13): every SC-driven rewrite just
  // performed must prove itself to the independent checker before the plan
  // is cached or run.
  ExecStats rewrite_cert_stats;
  SOFTDB_RETURN_IF_ERROR(
      CertifyCertificates(ctx.certificates, &rewrite_cert_stats));
  SOFTDB_RETURN_IF_ERROR(
      CertifyCertificates(backup_ctx.certificates, &rewrite_cert_stats));

  QueryResult result;
  result.applied_rules = ctx.applied_rules;
  std::vector<std::string> used = ctx.used_scs;
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  result.used_scs = used;

  if (explain_only) {
    CardinalityEstimator estimator = MakeEstimator();
    PhysicalPlanner planner(&ctx, &estimator);
    result.estimated_rows = estimator.EstimateRows(*primary);
    result.estimated_cost = planner.EstimateCost(*primary);
    result.plan_text = primary->ToString();
    result.exec_stats.certificates_checked +=
        rewrite_cert_stats.certificates_checked;
    result.exec_stats.certificates_failed +=
        rewrite_cert_stats.certificates_failed;
    return result;
  }

  // Build-time epochs of the rewrite-consumed SCs (estimation-only twins
  // excluded): the plan's answers depend on these staying put.
  const ScEpochSnapshot sc_epochs = SnapshotScEpochs(ctx.rewrite_consumed_scs);

  if (options_.use_plan_cache) {
    auto clone_certs = [](const std::vector<RewriteCertificate>& certs) {
      std::vector<RewriteCertificate> out;
      out.reserve(certs.size());
      for (const RewriteCertificate& c : certs) out.push_back(c.Clone());
      return out;
    };
    plan_cache_.Put(sql, primary->Clone(), backup->Clone(), used, sc_epochs,
                    clone_certs(ctx.certificates),
                    clone_certs(backup_ctx.certificates));
  }
  SOFTDB_ASSIGN_OR_RETURN(QueryResult primary_result,
                          RunPlan(*primary, std::move(result), query));
  if (!ScEpochsChanged(sc_epochs)) {
    primary_result.exec_stats.certificates_checked +=
        rewrite_cert_stats.certificates_checked;
    primary_result.exec_stats.certificates_failed +=
        rewrite_cert_stats.certificates_failed;
    return primary_result;
  }
  // A consumed ASC was overturned (or repaired to different parameters)
  // while the primary plan ran: degrade once to the SC-free backup. The
  // backup's certificates are re-checked against the post-overturn
  // registries first — a certificate minted before the epoch moved must
  // never ride through a re-plan unexamined.
  SOFTDB_RETURN_IF_ERROR(
      CertifyCertificates(backup_ctx.certificates, &rewrite_cert_stats));
  QueryResult retry;
  retry.applied_rules = primary_result.applied_rules;
  retry.used_scs = primary_result.used_scs;
  retry.used_backup_plan = true;
  SOFTDB_ASSIGN_OR_RETURN(retry, RunPlan(*backup, std::move(retry), query));
  retry.exec_stats.degraded_retries = 1;
  retry.exec_stats.certificates_checked +=
      rewrite_cert_stats.certificates_checked;
  retry.exec_stats.certificates_failed +=
      rewrite_cert_stats.certificates_failed;
  return retry;
}

void SoftDb::RecordImpact(const DmlImpact& impact) {
  ++impact_stats_.statements;
  impact_stats_.candidate_scs += impact.candidates;
  impact_stats_.impacted_scs += impact.impacted.size();
  if (impact.Narrowed()) ++impact_stats_.narrowed;
}

Status SoftDb::ExecuteInsert(const InsertStmt& stmt) {
  // Static impact analysis (pre-mutation): synchronous SC maintenance only
  // needs to consider the statically impacted subset. An analysis failure
  // just falls back to the unscoped full re-check, which is always sound.
  std::set<std::string> scope_storage;
  const std::set<std::string>* scope = nullptr;
  if (options_.enable_impact_analysis) {
    ImpactAnalyzer analyzer(&catalog_, &ics_, &scs_);
    Result<DmlImpact> impact = analyzer.AnalyzeInsert(stmt);
    if (impact.ok()) {
      RecordImpact(*impact);
      scope_storage = impact->ImpactSet();
      scope = &scope_storage;
    }
  }
  for (const std::vector<ExprPtr>& row_exprs : stmt.rows) {
    std::vector<Value> row;
    row.reserve(row_exprs.size());
    for (const ExprPtr& e : row_exprs) {
      SOFTDB_ASSIGN_OR_RETURN(Value v, e->Eval({}));
      row.push_back(std::move(v));
    }
    SOFTDB_RETURN_IF_ERROR(InsertRow(stmt.table, row, scope));
  }
  return Status::OK();
}

Result<std::uint64_t> SoftDb::ExecuteUpdate(const UpdateStmt& stmt) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  const Schema& schema = table->schema();

  std::set<std::string> scope_storage;
  const std::set<std::string>* scope = nullptr;
  if (options_.enable_impact_analysis) {
    ImpactAnalyzer analyzer(&catalog_, &ics_, &scs_);
    Result<DmlImpact> impact = analyzer.AnalyzeUpdate(stmt);
    if (impact.ok()) {
      RecordImpact(*impact);
      scope_storage = impact->ImpactSet();
      scope = &scope_storage;
    }
  }

  ExprPtr where;
  if (stmt.where) {
    where = stmt.where->Clone();
    SOFTDB_RETURN_IF_ERROR(where->Bind(schema));
  }
  std::vector<std::pair<ColumnIdx, ExprPtr>> assignments;
  for (const auto& [col_name, expr] : stmt.assignments) {
    SOFTDB_ASSIGN_OR_RETURN(ColumnIdx col, schema.Resolve(col_name));
    ExprPtr bound = expr->Clone();
    SOFTDB_RETURN_IF_ERROR(bound->Bind(schema));
    assignments.emplace_back(col, std::move(bound));
  }

  std::vector<RowId> matches;
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r)) continue;
    if (where) {
      SOFTDB_ASSIGN_OR_RETURN(Value v, where->Eval(table->GetRow(r)));
      if (v.is_null() || !v.AsBool()) continue;
    }
    matches.push_back(r);
  }

  for (RowId r : matches) {
    std::vector<Value> old_row = table->GetRow(r);
    std::vector<Value> new_row = old_row;
    for (const auto& [col, expr] : assignments) {
      SOFTDB_ASSIGN_OR_RETURN(Value v, expr->Eval(old_row));
      if (!v.is_null() && v.type() != schema.Column(col).type &&
          v.type() != TypeId::kString &&
          schema.Column(col).type != TypeId::kString) {
        SOFTDB_ASSIGN_OR_RETURN(v, v.CastTo(schema.Column(col).type));
      }
      new_row[col] = std::move(v);
    }
    SOFTDB_RETURN_IF_ERROR(ApplyUpdateRow(table, r, old_row, new_row, scope));
  }
  return static_cast<std::uint64_t>(matches.size());
}

Status SoftDb::ApplyUpdateRow(Table* table, RowId rid,
                              const std::vector<Value>& old_row,
                              const std::vector<Value>& new_row,
                              const std::set<std::string>* sc_scope) {
  // Re-check ICs as delete + insert so unique keys do not self-conflict.
  ics_.AfterDelete(table->name(), old_row);
  Status check = ics_.CheckInsert(catalog_, table->name(), new_row);
  if (!check.ok()) {
    ics_.AfterInsert(table->name(), old_row);
    return check;
  }
  // Zone maps fold the update BEFORE the cells mutate (they read the old
  // value) and bump their epoch when the envelope widens, degrading any
  // in-flight query that consumed a now-stale skip set.
  SOFTDB_RETURN_IF_ERROR(scs_.OnRowUpdated(catalog_, table->name(), rid,
                                           new_row));
  const Schema& schema = table->schema();
  for (std::size_t c = 0; c < schema.NumColumns(); ++c) {
    const ColumnIdx col = static_cast<ColumnIdx>(c);
    catalog_.NotifyUpdate(table, rid, col, old_row[col], new_row[col]);
    SOFTDB_RETURN_IF_ERROR(table->Set(rid, col, new_row[col]));
  }
  ics_.AfterInsert(table->name(), new_row);
  SOFTDB_RETURN_IF_ERROR(scs_.OnInsert(catalog_, table->name(), new_row,
                                       sc_scope));
  SOFTDB_RETURN_IF_ERROR(mvs_.OnBaseDelete(table->name(), old_row));
  SOFTDB_RETURN_IF_ERROR(mvs_.OnBaseInsert(table->name(), new_row));
  if (wal_ != nullptr && !recovering_) {
    SOFTDB_RETURN_IF_ERROR(wal_->LogUpdate(table->name(), rid, new_row));
  }
  return Status::OK();
}

Result<std::uint64_t> SoftDb::ExecuteDelete(const DeleteStmt& stmt) {
  SOFTDB_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  ExprPtr where;
  if (stmt.where) {
    where = stmt.where->Clone();
    SOFTDB_RETURN_IF_ERROR(where->Bind(table->schema()));
  }
  std::vector<RowId> matches;
  for (RowId r = 0; r < table->NumSlots(); ++r) {
    if (!table->IsLive(r)) continue;
    if (where) {
      SOFTDB_ASSIGN_OR_RETURN(Value v, where->Eval(table->GetRow(r)));
      if (v.is_null() || !v.AsBool()) continue;
    }
    matches.push_back(r);
  }
  for (RowId r : matches) {
    SOFTDB_RETURN_IF_ERROR(ApplyDeleteRow(table, r, table->GetRow(r)));
  }
  return static_cast<std::uint64_t>(matches.size());
}

Status SoftDb::ApplyDeleteRow(Table* table, RowId rid,
                              const std::vector<Value>& old_row) {
  SOFTDB_RETURN_IF_ERROR(table->Delete(rid));
  catalog_.NotifyDelete(table, rid, old_row);
  ics_.AfterDelete(table->name(), old_row);
  SOFTDB_RETURN_IF_ERROR(mvs_.OnBaseDelete(table->name(), old_row));
  if (wal_ != nullptr && !recovering_) {
    SOFTDB_RETURN_IF_ERROR(wal_->LogDelete(table->name(), rid));
  }
  return Status::OK();
}

Status SoftDb::ExecuteCreateTable(const CreateTableStmt& stmt) {
  Schema schema;
  for (const ColumnSpec& col : stmt.columns) {
    ColumnDef def;
    def.name = col.name;
    def.type = col.type;
    def.nullable = !col.not_null;
    schema.AddColumn(std::move(def));
  }
  // PK columns become non-nullable.
  for (const ConstraintSpec& spec : stmt.constraints) {
    if (spec.kind != ConstraintSpec::Kind::kPrimaryKey) continue;
    std::vector<ColumnDef> cols = schema.columns();
    for (ColumnDef& def : cols) {
      for (const std::string& pk_col : spec.columns) {
        if (ToLower(def.name) == ToLower(pk_col)) def.nullable = false;
      }
    }
    schema = Schema(std::move(cols));
  }
  SOFTDB_ASSIGN_OR_RETURN(Table * table,
                          catalog_.CreateTable(stmt.table, std::move(schema)));

  for (const ConstraintSpec& spec : stmt.constraints) {
    std::string name = spec.name.empty()
                           ? StrFormat("ic_%s_%llu", table->name().c_str(),
                                       static_cast<unsigned long long>(
                                           ++ic_name_counter_))
                           : spec.name;
    auto resolve_cols =
        [&](const std::vector<std::string>& names,
            const Schema& s) -> Result<std::vector<ColumnIdx>> {
      std::vector<ColumnIdx> out;
      for (const std::string& n : names) {
        SOFTDB_ASSIGN_OR_RETURN(ColumnIdx idx, s.Resolve(n));
        out.push_back(idx);
      }
      return out;
    };
    const ConstraintMode mode = spec.informational
                                    ? ConstraintMode::kInformational
                                    : ConstraintMode::kEnforced;
    switch (spec.kind) {
      case ConstraintSpec::Kind::kPrimaryKey:
      case ConstraintSpec::Kind::kUnique: {
        SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> cols,
                                resolve_cols(spec.columns, table->schema()));
        SOFTDB_RETURN_IF_ERROR(ics_.Add(
            std::make_unique<UniqueConstraint>(
                name, table->name(), std::move(cols),
                spec.kind == ConstraintSpec::Kind::kPrimaryKey, mode),
            catalog_));
        break;
      }
      case ConstraintSpec::Kind::kCheck: {
        ExprPtr expr = spec.check->Clone();
        SOFTDB_RETURN_IF_ERROR(expr->Bind(table->schema()));
        SOFTDB_RETURN_IF_ERROR(
            ics_.Add(std::make_unique<CheckConstraint>(
                         name, table->name(), std::move(expr), mode),
                     catalog_));
        break;
      }
      case ConstraintSpec::Kind::kForeignKey: {
        SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> cols,
                                resolve_cols(spec.columns, table->schema()));
        SOFTDB_ASSIGN_OR_RETURN(Table * parent,
                                catalog_.GetTable(spec.ref_table));
        SOFTDB_ASSIGN_OR_RETURN(
            std::vector<ColumnIdx> parent_cols,
            resolve_cols(spec.ref_columns, parent->schema()));
        SOFTDB_RETURN_IF_ERROR(ics_.Add(
            std::make_unique<ForeignKeyConstraint>(
                name, table->name(), std::move(cols), parent->name(),
                std::move(parent_cols), mode),
            catalog_));
        break;
      }
    }
  }
  return Status::OK();
}

Result<QueryResult> SoftDb::Execute(const std::string& sql) {
  if (options_.default_deadline_ms > 0) {
    QueryContext deadline_ctx;
    deadline_ctx.SetDeadlineAfter(
        std::chrono::milliseconds(options_.default_deadline_ms));
    return Execute(sql, &deadline_ctx);
  }
  return Execute(sql, nullptr);
}

Result<QueryResult> SoftDb::Execute(const std::string& sql,
                                    const QueryContext* query) {
  // A deadline that is unsatisfiable on arrival never dispatches: the
  // statement would only burn parse/plan work (and could reach the WAL
  // gate) before the first cooperative check caught it.
  if (options_.reject_expired_deadlines && query != nullptr &&
      query->has_deadline) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= query->deadline) {
      const auto lag = std::chrono::duration_cast<std::chrono::milliseconds>(
          now - query->deadline);
      return WithStatusDetail(
          Status::DeadlineExceeded("deadline unsatisfiable on arrival"),
          "deadline_lag_ms", lag.count());
    }
  }
  SOFTDB_RETURN_IF_ERROR(WalReady());
  if (wal_ == nullptr || recovering_) return Dispatch(sql, query);
  // Attribute WAL activity to this statement: the writer's counters are
  // engine-cumulative, so the statement's share is the delta around
  // dispatch.
  const WalStats before = wal_->stats();
  SOFTDB_ASSIGN_OR_RETURN(QueryResult result, Dispatch(sql, query));
  const WalStats after = wal_->stats();
  result.exec_stats.wal_records +=
      after.records_appended - before.records_appended;
  result.exec_stats.wal_bytes += after.bytes_appended - before.bytes_appended;
  result.exec_stats.wal_fsyncs += after.fsyncs - before.fsyncs;
  return result;
}

Result<QueryResult> SoftDb::Dispatch(const std::string& sql,
                                     const QueryContext* query) {
  if (query != nullptr) SOFTDB_RETURN_IF_ERROR(query->Check());
  SOFTDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  // DDL is logged as raw SQL after it succeeds (apply-first); DML is not —
  // each affected row logs its own image from the row pipeline.
  const auto log_ddl = [&]() -> Status {
    if (wal_ != nullptr && !recovering_) return wal_->LogDdl(sql);
    return Status::OK();
  };
  QueryResult result;
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(sql, *stmt.select, /*explain_only=*/false, query);
    case Statement::Kind::kExplain:
      return ExecuteSelect(sql, *stmt.select, /*explain_only=*/true, query);
    case Statement::Kind::kInsert:
      SOFTDB_RETURN_IF_ERROR(ExecuteInsert(*stmt.insert));
      return result;
    case Statement::Kind::kUpdate: {
      SOFTDB_ASSIGN_OR_RETURN(std::uint64_t n, ExecuteUpdate(*stmt.update));
      result.estimated_rows = static_cast<double>(n);
      return result;
    }
    case Statement::Kind::kDelete: {
      SOFTDB_ASSIGN_OR_RETURN(std::uint64_t n, ExecuteDelete(*stmt.del));
      result.estimated_rows = static_cast<double>(n);
      return result;
    }
    case Statement::Kind::kCreateTable:
      SOFTDB_RETURN_IF_ERROR(ExecuteCreateTable(*stmt.create_table));
      SOFTDB_RETURN_IF_ERROR(log_ddl());
      return result;
    case Statement::Kind::kCreateIndex:
      SOFTDB_RETURN_IF_ERROR(catalog_
                                 .CreateIndex(stmt.create_index->index,
                                              stmt.create_index->table,
                                              stmt.create_index->column)
                                 .status());
      SOFTDB_RETURN_IF_ERROR(log_ddl());
      return result;
    case Statement::Kind::kAnalyze:
      SOFTDB_RETURN_IF_ERROR(Analyze(stmt.analyze->table));
      SOFTDB_RETURN_IF_ERROR(log_ddl());
      return result;
    case Statement::Kind::kDropTable:
      SOFTDB_RETURN_IF_ERROR(catalog_.DropTable(stmt.drop_table->table));
      // Scoped invalidation: only packages reading the dropped table go;
      // plans over other tables stay warm.
      plan_cache_.OnTableDropped(stmt.drop_table->table);
      SOFTDB_RETURN_IF_ERROR(log_ddl());
      return result;
  }
  return Status::Internal("unhandled statement kind");
}

Result<std::string> SoftDb::Explain(const std::string& sql) {
  SOFTDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != Statement::Kind::kSelect &&
      stmt.kind != Statement::Kind::kExplain) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  SOFTDB_ASSIGN_OR_RETURN(QueryResult result,
                          ExecuteSelect(sql, *stmt.select,
                                        /*explain_only=*/true,
                                        /*query=*/nullptr));
  std::string out = result.plan_text;
  out += StrFormat("estimated rows: %.1f, estimated cost: %.1f pages\n",
                   result.estimated_rows, result.estimated_cost);
  if (options_.use_vectorized) {
    out += "execution: vectorized (batch engine where supported, row "
           "fallback otherwise)\n";
  }
  for (const std::string& rule : result.applied_rules) {
    out += "rule: " + rule + "\n";
  }
  if (wal_ != nullptr) {
    const WalStats ws = wal_->stats();
    out += StrFormat(
        "wal: records=%llu bytes=%llu fsyncs=%llu checkpoints=%llu\n",
        static_cast<unsigned long long>(ws.records_appended),
        static_cast<unsigned long long>(ws.bytes_appended),
        static_cast<unsigned long long>(ws.fsyncs),
        static_cast<unsigned long long>(ws.checkpoints));
  }
  return out;
}

}  // namespace softdb
