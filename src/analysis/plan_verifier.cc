#include "analysis/plan_verifier.h"

#include <string>

#include "exec/batch_operators.h"
#include "exec/operators.h"
#include "exec/parallel_operators.h"
#include "plan/predicate.h"

namespace softdb {

namespace {

/// Accumulator threaded through the tree walks.
struct Walk {
  const PlanVerifierContext* ctx;
  const std::string* phase;
  std::vector<PlanViolation>* out;

  void Add(Invariant invariant, const std::string& path, std::string message) {
    out->push_back(
        PlanViolation{invariant, *phase, path, std::move(message)});
  }
};

/// SQL comparability: numeric family (int/double/date/bool share a total
/// order here) or string-with-string.
bool TypesComparable(TypeId a, TypeId b) {
  if (IsNumericType(a) && IsNumericType(b)) return true;
  return a == TypeId::kString && b == TypeId::kString;
}

bool IsNullLiteral(const Expr& e) {
  return e.kind() == ExprKind::kLiteral &&
         static_cast<const LiteralExpr&>(e).value().is_null();
}

/// Recursive expression type-check against the (actual) input schema.
void CheckExpr(const Expr& e, const Schema& input, const std::string& path,
               Walk& w) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      if (!ref.bound()) {
        w.Add(Invariant::kExprTypes, path,
              "unbound column reference '" + ref.name() + "'");
        return;
      }
      if (ref.index() >= input.NumColumns()) {
        w.Add(Invariant::kExprTypes, path,
              "column ref '" + ref.name() + "' index " +
                  std::to_string(ref.index()) + " out of bounds for " +
                  std::to_string(input.NumColumns()) + "-column input");
        return;
      }
      const TypeId actual = input.Column(ref.index()).type;
      if (ref.result_type() != actual) {
        w.Add(Invariant::kExprTypes, path,
              "column ref '" + ref.name() + "' bound as " +
                  TypeName(ref.result_type()) + " but input column " +
                  std::to_string(ref.index()) + " is " + TypeName(actual));
      }
      return;
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(e);
      CheckExpr(*cmp.left(), input, path, w);
      CheckExpr(*cmp.right(), input, path, w);
      if (!IsNullLiteral(*cmp.left()) && !IsNullLiteral(*cmp.right()) &&
          !TypesComparable(cmp.left()->result_type(),
                           cmp.right()->result_type())) {
        w.Add(Invariant::kExprTypes, path,
              "comparison over incomparable types " +
                  std::string(TypeName(cmp.left()->result_type())) + " and " +
                  TypeName(cmp.right()->result_type()) + " in '" +
                  e.ToString() + "'");
      }
      return;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const auto& logical = static_cast<const LogicalExpr&>(e);
      for (const ExprPtr& c : logical.children()) {
        CheckExpr(*c, input, path, w);
        if (c->result_type() != TypeId::kBool) {
          w.Add(Invariant::kExprTypes, path,
                "logical connective over non-boolean operand '" +
                    c->ToString() + "' (" + TypeName(c->result_type()) + ")");
        }
      }
      return;
    }
    case ExprKind::kNot: {
      const auto& n = static_cast<const NotExpr&>(e);
      CheckExpr(*n.child(), input, path, w);
      if (n.child()->result_type() != TypeId::kBool) {
        w.Add(Invariant::kExprTypes, path,
              "NOT over non-boolean operand '" + n.child()->ToString() + "'");
      }
      return;
    }
    case ExprKind::kArithmetic: {
      const auto& a = static_cast<const ArithmeticExpr&>(e);
      CheckExpr(*a.left(), input, path, w);
      CheckExpr(*a.right(), input, path, w);
      for (const Expr* side : {a.left(), a.right()}) {
        if (!IsNullLiteral(*side) && !IsNumericType(side->result_type())) {
          w.Add(Invariant::kExprTypes, path,
                "arithmetic over non-numeric operand '" + side->ToString() +
                    "' (" + TypeName(side->result_type()) + ")");
        }
      }
      return;
    }
    case ExprKind::kBetween: {
      const auto& b = static_cast<const BetweenExpr&>(e);
      CheckExpr(*b.input(), input, path, w);
      CheckExpr(*b.lo(), input, path, w);
      CheckExpr(*b.hi(), input, path, w);
      for (const Expr* bound : {b.lo(), b.hi()}) {
        if (!IsNullLiteral(*bound) &&
            !TypesComparable(b.input()->result_type(),
                             bound->result_type())) {
          w.Add(Invariant::kExprTypes, path,
                "BETWEEN bound '" + bound->ToString() +
                    "' incomparable with input '" + b.input()->ToString() +
                    "'");
        }
      }
      return;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      CheckExpr(*in.input(), input, path, w);
      for (const ExprPtr& item : in.list()) {
        CheckExpr(*item, input, path, w);
        if (!IsNullLiteral(*item) &&
            !TypesComparable(in.input()->result_type(),
                             item->result_type())) {
          w.Add(Invariant::kExprTypes, path,
                "IN list item '" + item->ToString() +
                    "' incomparable with input");
        }
      }
      return;
    }
    case ExprKind::kIsNull: {
      const auto& isn = static_cast<const IsNullExpr&>(e);
      CheckExpr(*isn.input(), input, path, w);
      return;
    }
  }
}

/// Checks one predicate list. `allow_twins` is true only for logical scan
/// nodes — the single place twinned SSC predicates may live (§5.1).
void CheckPredicates(const std::vector<Predicate>& predicates,
                     const Schema& input, bool allow_twins,
                     const std::string& path, Walk& w) {
  for (const Predicate& p : predicates) {
    if (p.expr == nullptr) {
      w.Add(Invariant::kPlanShape, path, "predicate with null expression");
      continue;
    }
    CheckExpr(*p.expr, input, path, w);
    if (p.expr->result_type() != TypeId::kBool) {
      w.Add(Invariant::kExprTypes, path,
            "predicate '" + p.expr->ToString() + "' is not boolean (" +
                TypeName(p.expr->result_type()) + ")");
    }
    if (p.estimation_only) {
      if (!allow_twins) {
        w.Add(Invariant::kTwinConfinement, path,
              "estimation-only twin '" + p.expr->ToString() + "' (origin " +
                  p.origin + ") outside scan costing annotations");
      }
      if (p.confidence < 0.0 || p.confidence > 1.0) {
        w.Add(Invariant::kTwinConfinement, path,
              "twin confidence " + std::to_string(p.confidence) +
                  " outside [0, 1]");
      }
      if (p.origin == "user") {
        w.Add(Invariant::kTwinConfinement, path,
              "estimation-only twin with origin 'user' (twins must be "
              "SC-derived)");
      }
    } else if (p.confidence != 1.0) {
      w.Add(Invariant::kTwinConfinement, path,
            "executable predicate '" + p.expr->ToString() +
                "' with confidence " + std::to_string(p.confidence) +
                " != 1.0");
    }
  }
}

std::string LogicalLabel(const PlanNode& node) {
  std::string label = PlanKindName(node.kind());
  if (node.kind() == PlanKind::kScan) {
    label += "(" + static_cast<const ScanNode&>(node).table_name() + ")";
  }
  return label;
}

/// True when `prefix`'s columns are a type-compatible prefix of `schema`.
/// Join elimination may narrow a subtree without rebuilding ancestor
/// schemas, so parents legitimately record a wider schema than their
/// (current) child produces — never an incompatible one.
bool IsTypePrefix(const Schema& prefix, const Schema& schema) {
  if (prefix.NumColumns() > schema.NumColumns()) return false;
  for (ColumnIdx i = 0; i < prefix.NumColumns(); ++i) {
    if (prefix.Column(i).type != schema.Column(i).type) return false;
  }
  return true;
}

bool SchemasTypeEqual(const Schema& a, const Schema& b) {
  return a.NumColumns() == b.NumColumns() && IsTypePrefix(a, b);
}

void CheckLogicalNode(const PlanNode& node, const std::string& path, Walk& w);

void CheckChildren(const PlanNode& node, std::size_t expected,
                   const std::string& path, Walk& w) {
  if (node.children().size() != expected) {
    w.Add(Invariant::kPlanShape, path,
          "expected " + std::to_string(expected) + " children, found " +
              std::to_string(node.children().size()));
  }
}

void RecurseChildren(const PlanNode& node, const std::string& path, Walk& w) {
  for (std::size_t i = 0; i < node.children().size(); ++i) {
    const PlanNode& child = *node.children()[i];
    CheckLogicalNode(child, path + "/" + std::to_string(i) + ":" +
                                LogicalLabel(child),
                     w);
  }
}

void CheckScan(const ScanNode& scan, const std::string& path, Walk& w) {
  CheckChildren(scan, 0, path, w);
  const Schema& schema = scan.output_schema();
  if (scan.external_table() != nullptr) {
    // §4.4 exception-AST branch: must be a registered materialized view,
    // resolved by name through the MV registry to the same table object.
    if (w.ctx->mvs != nullptr) {
      const MaterializedView* view = w.ctx->mvs->Find(scan.table_name());
      if (view == nullptr) {
        w.Add(Invariant::kExceptionAstRegistry, path,
              "external-table scan '" + scan.table_name() +
                  "' does not name a registered materialized view");
      } else if (view->table() != scan.external_table()) {
        w.Add(Invariant::kExceptionAstRegistry, path,
              "external-table scan '" + scan.table_name() +
                  "' points at a different table object than the "
                  "registered view");
      }
    }
    if (!SchemasTypeEqual(schema, scan.external_table()->schema())) {
      w.Add(Invariant::kSchemaConsistency, path,
            "scan schema does not match external table schema");
    }
  } else if (w.ctx->catalog != nullptr) {
    auto table = w.ctx->catalog->GetTable(scan.table_name());
    if (!table.ok()) {
      w.Add(Invariant::kPlanShape, path,
            "scan of unknown table '" + scan.table_name() + "'");
    } else if (!SchemasTypeEqual(schema, (*table)->schema())) {
      w.Add(Invariant::kSchemaConsistency, path,
            "scan schema does not match catalog schema of '" +
                scan.table_name() + "'");
    }
  }
  CheckPredicates(scan.predicates(), schema, /*allow_twins=*/true, path, w);
  for (const Predicate& p : scan.predicates()) {
    if (p.origin.rfind("ast:", 0) == 0 && w.ctx->exception_asts != nullptr) {
      const std::string sc_name = p.origin.substr(4);
      if (w.ctx->exception_asts->find(sc_name) ==
          w.ctx->exception_asts->end()) {
        w.Add(Invariant::kExceptionAstRegistry, path,
              "predicate origin '" + p.origin +
                  "' names an unregistered exception AST");
      }
    }
  }
}

void CheckLogicalNode(const PlanNode& node, const std::string& path, Walk& w) {
  switch (node.kind()) {
    case PlanKind::kScan:
      CheckScan(static_cast<const ScanNode&>(node), path, w);
      return;
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      CheckChildren(node, 1, path, w);
      if (node.children().size() != 1) return;
      const Schema& input = node.children()[0]->output_schema();
      if (!IsTypePrefix(input, node.output_schema())) {
        w.Add(Invariant::kSchemaConsistency, path,
              "filter schema incompatible with child schema");
      }
      CheckPredicates(filter.predicates(), input, /*allow_twins=*/false,
                      path, w);
      break;
    }
    case PlanKind::kProject: {
      const auto& proj = static_cast<const ProjectNode&>(node);
      CheckChildren(node, 1, path, w);
      if (node.children().size() != 1) return;
      const Schema& input = node.children()[0]->output_schema();
      if (proj.exprs().size() != node.output_schema().NumColumns()) {
        w.Add(Invariant::kSchemaConsistency, path,
              "projection emits " + std::to_string(proj.exprs().size()) +
                  " expressions but schema has " +
                  std::to_string(node.output_schema().NumColumns()) +
                  " columns");
      } else {
        for (std::size_t i = 0; i < proj.exprs().size(); ++i) {
          if (proj.exprs()[i]->result_type() !=
              node.output_schema().Column(i).type) {
            w.Add(Invariant::kSchemaConsistency, path,
                  "projection column " + std::to_string(i) +
                      " type mismatch with expression result type");
          }
        }
      }
      for (const ExprPtr& e : proj.exprs()) CheckExpr(*e, input, path, w);
      break;
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      CheckChildren(node, 2, path, w);
      if (node.children().size() != 2) return;
      const Schema& left = node.children()[0]->output_schema();
      const Schema& right = node.children()[1]->output_schema();
      const Schema& out = node.output_schema();
      // Recorded schema is Concat(left, right) as of construction. A later
      // elimination may have narrowed the left side; the right columns
      // always form the tail of the recorded schema.
      if (out.NumColumns() < left.NumColumns() + right.NumColumns() ||
          !IsTypePrefix(left, out)) {
        w.Add(Invariant::kSchemaConsistency, path,
              "join schema incompatible with child schemas");
      } else {
        const ColumnIdx tail =
            static_cast<ColumnIdx>(out.NumColumns() - right.NumColumns());
        for (ColumnIdx i = 0; i < right.NumColumns(); ++i) {
          if (out.Column(tail + i).type != right.Column(i).type) {
            w.Add(Invariant::kSchemaConsistency, path,
                  "join schema tail incompatible with right child schema");
            break;
          }
        }
      }
      for (const JoinNode::EquiKey& key : join.equi_keys()) {
        if (key.left >= left.NumColumns() || key.right >= right.NumColumns()) {
          w.Add(Invariant::kPlanShape, path,
                "equi key (" + std::to_string(key.left) + ", " +
                    std::to_string(key.right) + ") out of bounds");
        } else if (!TypesComparable(left.Column(key.left).type,
                                    right.Column(key.right).type)) {
          w.Add(Invariant::kExprTypes, path,
                "equi key joins incomparable types " +
                    std::string(TypeName(left.Column(key.left).type)) +
                    " and " + TypeName(right.Column(key.right).type));
        }
      }
      // Conditions bind over the concatenation of the children's schemas.
      CheckPredicates(join.conditions(), Schema::Concat(left, right),
                      /*allow_twins=*/false, path, w);
      break;
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      CheckChildren(node, 1, path, w);
      if (node.children().size() != 1) return;
      const Schema& input = node.children()[0]->output_schema();
      if (agg.key_flags().size() != agg.group_by().size()) {
        w.Add(Invariant::kPlanShape, path,
              "key_flags size " + std::to_string(agg.key_flags().size()) +
                  " != group_by size " +
                  std::to_string(agg.group_by().size()));
      }
      const std::size_t expected =
          agg.group_by().size() + agg.aggregates().size();
      if (node.output_schema().NumColumns() != expected) {
        w.Add(Invariant::kSchemaConsistency, path,
              "aggregate schema has " +
                  std::to_string(node.output_schema().NumColumns()) +
                  " columns, expected " + std::to_string(expected));
        return;
      }
      for (std::size_t i = 0; i < agg.group_by().size(); ++i) {
        CheckExpr(*agg.group_by()[i], input, path, w);
        if (agg.group_by()[i]->result_type() !=
            node.output_schema().Column(i).type) {
          w.Add(Invariant::kSchemaConsistency, path,
                "group column " + std::to_string(i) +
                    " type mismatch with schema");
        }
      }
      for (std::size_t i = 0; i < agg.aggregates().size(); ++i) {
        const AggregateItem& a = agg.aggregates()[i];
        if (a.arg != nullptr) CheckExpr(*a.arg, input, path, w);
        TypeId expected_type;
        switch (a.fn) {
          case AggFn::kCountStar:
          case AggFn::kCount:
            expected_type = TypeId::kInt64;
            break;
          case AggFn::kAvg:
            expected_type = TypeId::kDouble;
            break;
          default:
            expected_type = a.arg ? a.arg->result_type() : TypeId::kInt64;
        }
        const TypeId actual =
            node.output_schema().Column(agg.group_by().size() + i).type;
        if (actual != expected_type) {
          w.Add(Invariant::kSchemaConsistency, path,
                std::string("aggregate '") + AggFnName(a.fn) +
                    "' column type " + TypeName(actual) + ", expected " +
                    TypeName(expected_type));
        }
      }
      break;
    }
    case PlanKind::kSort: {
      const auto& sort = static_cast<const SortNode&>(node);
      CheckChildren(node, 1, path, w);
      if (node.children().size() != 1) return;
      const Schema& input = node.children()[0]->output_schema();
      if (!IsTypePrefix(input, node.output_schema())) {
        w.Add(Invariant::kSchemaConsistency, path,
              "sort schema incompatible with child schema");
      }
      for (const SortKey& k : sort.keys()) {
        if (k.expr == nullptr) {
          w.Add(Invariant::kPlanShape, path, "sort key with null expression");
          continue;
        }
        CheckExpr(*k.expr, input, path, w);
      }
      break;
    }
    case PlanKind::kUnionAll: {
      const auto& u = static_cast<const UnionAllNode&>(node);
      if (node.children().empty()) {
        w.Add(Invariant::kPlanShape, path, "UNION ALL with no branches");
        return;
      }
      if (u.branch_constraints().size() != node.children().size()) {
        w.Add(Invariant::kPlanShape, path,
              "branch constraint count " +
                  std::to_string(u.branch_constraints().size()) +
                  " != branch count " +
                  std::to_string(node.children().size()));
      }
      for (std::size_t i = 0; i < node.children().size(); ++i) {
        if (!SchemasTypeEqual(node.children()[i]->output_schema(),
                              node.output_schema())) {
          w.Add(Invariant::kSchemaConsistency, path,
                "UNION ALL branch " + std::to_string(i) +
                    " schema incompatible with union schema");
        }
      }
      for (const std::optional<Predicate>& bc : u.branch_constraints()) {
        if (!bc.has_value()) continue;
        std::vector<Predicate> one;
        one.push_back(bc->Clone());
        CheckPredicates(one, node.output_schema(), /*allow_twins=*/false,
                        path, w);
      }
      break;
    }
    case PlanKind::kLimit: {
      CheckChildren(node, 1, path, w);
      if (node.children().size() != 1) return;
      if (!IsTypePrefix(node.children()[0]->output_schema(),
                        node.output_schema())) {
        w.Add(Invariant::kSchemaConsistency, path,
              "limit schema incompatible with child schema");
      }
      break;
    }
  }
  RecurseChildren(node, path, w);
}

// ------------------------------------------------------------------ physical

void CheckRuntimeParams(const std::vector<ScanRuntimeParameter>& params,
                        const std::vector<Predicate>& predicates,
                        const std::string& path, Walk& w) {
  for (const ScanRuntimeParameter& param : params) {
    if (param.predicate_index >= predicates.size()) {
      w.Add(Invariant::kRuntimeParams, path,
            "runtime param predicate index " +
                std::to_string(param.predicate_index) +
                " out of bounds for " + std::to_string(predicates.size()) +
                " predicates");
      continue;
    }
    const Predicate& target = predicates[param.predicate_index];
    if (target.estimation_only) {
      w.Add(Invariant::kRuntimeParams, path,
            "runtime param targets an estimation-only twin");
      continue;
    }
    SimplePredicate sp;
    if (!MatchSimplePredicate(*target.expr, &sp)) {
      w.Add(Invariant::kRuntimeParams, path,
            "runtime param targets a non-simple predicate '" +
                target.expr->ToString() + "'");
      continue;
    }
    if (sp.column != param.simple.column) {
      w.Add(Invariant::kRuntimeParams, path,
            "runtime param column " + std::to_string(param.simple.column) +
                " disagrees with target predicate column " +
                std::to_string(sp.column));
    }
    if (param.index == nullptr) {
      w.Add(Invariant::kRuntimeParams, path, "runtime param without index");
    } else if (param.index->column() != param.simple.column) {
      w.Add(Invariant::kRuntimeParams, path,
            "runtime param index column " +
                std::to_string(param.index->column()) +
                " disagrees with predicate column " +
                std::to_string(param.simple.column));
    }
  }
}

/// Executable predicate lists in physical operators must be twin-free; the
/// physical planner strips estimation-only predicates when lowering.
void CheckExecutablePredicates(const std::vector<Predicate>& predicates,
                               const std::string& path, Walk& w) {
  for (const Predicate& p : predicates) {
    if (p.estimation_only) {
      w.Add(Invariant::kTwinConfinement, path,
            "estimation-only twin '" + p.expr->ToString() +
                "' in an executable predicate list");
    }
  }
}

void CheckBatchOp(const BatchOperator& op, const std::string& path,
                  Walk& w);

/// Checks one morsel pipeline spec: twin-free executable predicates, sound
/// §4.2 runtime params, and a well-formed stage chain (filters in any
/// number, at most one project, and nothing after the project — the
/// pipeline's output schema is the last stage's).
void CheckPipelineSpec(const PipelineSpec& spec, const std::string& path,
                       Walk& w) {
  if (spec.table == nullptr) {
    w.Add(Invariant::kParallelSafety, path, "pipeline spec without a table");
    return;
  }
  CheckExecutablePredicates(spec.scan_predicates, path, w);
  CheckRuntimeParams(spec.runtime_params, spec.scan_predicates, path, w);
  bool saw_project = false;
  for (const PipelineStage& stage : spec.stages) {
    if (saw_project) {
      w.Add(Invariant::kParallelSafety, path,
            "pipeline stage after the projection stage");
      break;
    }
    switch (stage.kind) {
      case PipelineStage::Kind::kFilter:
        CheckExecutablePredicates(stage.predicates, path, w);
        break;
      case PipelineStage::Kind::kProject:
        saw_project = true;
        break;
    }
  }
}

void CheckRowOp(const Operator& op, bool under_limit, const std::string& path,
                Walk& w) {
  if (const auto* pipe = dynamic_cast<const ParallelPipelineOp*>(&op)) {
    if (under_limit) {
      w.Add(Invariant::kParallelSafety, path,
            "parallel pipeline under a LIMIT (LIMIT subtrees must stay on "
            "the serial row engine)");
    }
    if (pipe->morsel_rows() == 0) {
      w.Add(Invariant::kParallelSafety, path, "morsel size 0");
    }
    CheckPipelineSpec(pipe->spec(), path, w);
    return;
  }
  if (const auto* pj = dynamic_cast<const ParallelHashJoinOp*>(&op)) {
    if (under_limit) {
      w.Add(Invariant::kParallelSafety, path,
            "parallel hash join under a LIMIT (LIMIT subtrees must stay on "
            "the serial row engine)");
    }
    if (pj->morsel_rows() == 0) {
      w.Add(Invariant::kParallelSafety, path, "morsel size 0");
    }
    CheckPipelineSpec(pj->probe_spec(), path + "/probe", w);
    CheckPipelineSpec(pj->build_spec(), path + "/build", w);
    CheckExecutablePredicates(pj->residual(), path, w);
    return;
  }
  if (const auto* adapter = dynamic_cast<const BatchAdapterOp*>(&op)) {
    if (under_limit) {
      w.Add(Invariant::kLimitRowEngineOnly, path,
            "vectorized subtree under a LIMIT (batch read-ahead would skew "
            "early-exit ExecStats)");
    }
    const BatchOperator& child = adapter->batch_child();
    CheckBatchOp(child, path + "/0:" + child.name(), w);
    return;
  }
  if (const auto* scan = dynamic_cast<const SeqScanOp*>(&op)) {
    CheckExecutablePredicates(scan->predicates(), path, w);
    CheckRuntimeParams(scan->runtime_params(), scan->predicates(), path, w);
  } else if (const auto* iscan = dynamic_cast<const IndexRangeScanOp*>(&op)) {
    CheckExecutablePredicates(iscan->residual(), path, w);
  } else if (const auto* filter = dynamic_cast<const FilterOp*>(&op)) {
    CheckExecutablePredicates(filter->predicates(), path, w);
  } else if (const auto* hj = dynamic_cast<const HashJoinOp*>(&op)) {
    CheckExecutablePredicates(hj->residual(), path, w);
  } else if (const auto* smj = dynamic_cast<const SortMergeJoinOp*>(&op)) {
    CheckExecutablePredicates(smj->residual(), path, w);
  } else if (const auto* nlj = dynamic_cast<const NestedLoopJoinOp*>(&op)) {
    CheckExecutablePredicates(nlj->conditions(), path, w);
  }
  const bool is_limit = dynamic_cast<const LimitOp*>(&op) != nullptr;
  std::vector<const Operator*> children;
  op.AppendChildren(&children);
  for (std::size_t i = 0; i < children.size(); ++i) {
    CheckRowOp(*children[i], under_limit || is_limit,
               path + "/" + std::to_string(i) + ":" + children[i]->name(), w);
  }
}

void CheckBatchOp(const BatchOperator& op, const std::string& path,
                  Walk& w) {
  if (const auto* scan = dynamic_cast<const BatchSeqScanOp*>(&op)) {
    CheckExecutablePredicates(scan->predicates(), path, w);
    CheckRuntimeParams(scan->runtime_params(), scan->predicates(), path, w);
  } else if (const auto* iscan =
                 dynamic_cast<const BatchIndexRangeScanOp*>(&op)) {
    CheckExecutablePredicates(iscan->residual(), path, w);
  } else if (const auto* filter = dynamic_cast<const BatchFilterOp*>(&op)) {
    CheckExecutablePredicates(filter->predicates(), path, w);
  } else if (const auto* hj = dynamic_cast<const BatchHashJoinOp*>(&op)) {
    CheckExecutablePredicates(hj->residual(), path, w);
  }
  std::vector<const BatchOperator*> children;
  op.AppendChildren(&children);
  for (std::size_t i = 0; i < children.size(); ++i) {
    CheckBatchOp(*children[i],
                 path + "/" + std::to_string(i) + ":" + children[i]->name(),
                 w);
  }
}

}  // namespace

std::vector<PlanViolation> PlanVerifier::CheckLogical(
    const PlanNode& root, const std::string& phase) const {
  std::vector<PlanViolation> out;
  Walk w{&ctx_, &phase, &out};
  CheckLogicalNode(root, LogicalLabel(root), w);
  return out;
}

std::vector<PlanViolation> PlanVerifier::CheckPhysical(
    const Operator& root, const std::string& phase) const {
  std::vector<PlanViolation> out;
  Walk w{&ctx_, &phase, &out};
  CheckRowOp(root, /*under_limit=*/false, root.name(), w);
  return out;
}

std::vector<PlanViolation> PlanVerifier::CheckBatch(
    const ColumnBatch& batch, const std::string& phase) const {
  std::vector<PlanViolation> out;
  Walk w{&ctx_, &phase, &out};
  if (batch.sel_size() > batch.size()) {
    w.Add(Invariant::kSelectionVector, "batch",
          "selection size " + std::to_string(batch.sel_size()) +
              " exceeds batch size " + std::to_string(batch.size()));
    return out;
  }
  for (std::size_t i = 0; i < batch.sel_size(); ++i) {
    if (batch.sel()[i] >= batch.size()) {
      w.Add(Invariant::kSelectionVector, "batch",
            "selection entry " + std::to_string(i) + " = " +
                std::to_string(batch.sel()[i]) + " out of bounds for size " +
                std::to_string(batch.size()));
      return out;
    }
    if (i > 0 && batch.sel()[i] <= batch.sel()[i - 1]) {
      w.Add(Invariant::kSelectionVector, "batch",
            "selection vector not strictly ascending at entry " +
                std::to_string(i) + " (" + std::to_string(batch.sel()[i - 1]) +
                " then " + std::to_string(batch.sel()[i]) + ")");
      return out;
    }
  }
  return out;
}

Status PlanVerifier::VerifyLogical(const PlanNode& root,
                                   const std::string& phase) const {
  return ViolationsToStatus(CheckLogical(root, phase));
}

Status PlanVerifier::VerifyPhysical(const Operator& root,
                                    const std::string& phase) const {
  return ViolationsToStatus(CheckPhysical(root, phase));
}

}  // namespace softdb
