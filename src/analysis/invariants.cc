#include "analysis/invariants.h"

namespace softdb {

const char* InvariantName(Invariant invariant) {
  switch (invariant) {
    case Invariant::kExprTypes:
      return "expr-types";
    case Invariant::kSchemaConsistency:
      return "schema-consistency";
    case Invariant::kTwinConfinement:
      return "twin-confinement";
    case Invariant::kExceptionAstRegistry:
      return "exception-ast-registry";
    case Invariant::kSelectionVector:
      return "selection-vector";
    case Invariant::kLimitRowEngineOnly:
      return "limit-row-engine-only";
    case Invariant::kRuntimeParams:
      return "runtime-params";
    case Invariant::kParallelSafety:
      return "parallel-safety";
    case Invariant::kPlanShape:
      return "plan-shape";
  }
  return "unknown";
}

std::string PlanViolation::ToString() const {
  return "[" + phase + "] " + InvariantName(invariant) + " at " + node_path +
         ": " + message;
}

Status ViolationsToStatus(const std::vector<PlanViolation>& violations) {
  if (violations.empty()) return Status::OK();
  std::string msg = "plan verification failed:";
  for (const PlanViolation& v : violations) {
    msg += "\n  " + v.ToString();
  }
  return Status::Internal(std::move(msg));
}

}  // namespace softdb
