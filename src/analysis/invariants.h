#ifndef SOFTDB_ANALYSIS_INVARIANTS_H_
#define SOFTDB_ANALYSIS_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace softdb {

/// The invariants PlanVerifier enforces over logical and physical plans.
/// Each one backs a semantics-preservation claim of the paper: rewrites
/// (§3, §4.4, §5) must keep plans well-typed and structurally sound, and
/// twinned SSC predicates (§5.1) must stay visible to costing only.
enum class Invariant : std::uint8_t {
  /// Every expression tree type-checks against its input schema: column
  /// refs are bound and in bounds, comparisons compare comparable types,
  /// logical connectives take booleans, predicates are boolean.
  kExprTypes,
  /// Output schemas are consistent across operator boundaries (a child
  /// schema may be a prefix of the recorded schema after join elimination
  /// narrowed the subtree, never incompatible).
  kSchemaConsistency,
  /// Twinned (estimation-only) SSC predicates appear only in scan-node
  /// costing annotations: never in filters, join conditions, union branch
  /// constraints, or any executable predicate list of a physical operator.
  /// Executable predicates carry confidence 1.0; twins carry (0, 1].
  kTwinConfinement,
  /// Scans reading an external table (a §4.4 exception-AST branch) must
  /// reference a registered materialized view, and "ast:" predicate
  /// origins must name a wired exception AST.
  kExceptionAstRegistry,
  /// Batch selection vectors are strictly ascending, duplicate-free and in
  /// bounds.
  kSelectionVector,
  /// LIMIT subtrees never contain a vectorized subtree (the PR 1 fallback
  /// rule: batch read-ahead would skew early-exit ExecStats).
  kLimitRowEngineOnly,
  /// §4.2 runtime plan parameters are self-consistent and identical in
  /// contract between the row and batch scan variants: in-bounds predicate
  /// index, non-twin target, and matching predicate/index columns.
  kRuntimeParams,
  /// Parallel (morsel-driven) operators appear only where the planner may
  /// place them: never under a LIMIT (which forces the row engine), with a
  /// positive morsel size, and with pipeline specs whose stage chain is
  /// well-formed (scan → filters → at most one project).
  kParallelSafety,
  /// Structural soundness: child arity per node kind, equi-key bounds,
  /// key-flag sizes, branch-constraint arity.
  kPlanShape,
};

const char* InvariantName(Invariant invariant);

/// One structural diagnostic: which invariant broke, in which optimizer
/// phase, at which node of the plan tree.
struct PlanViolation {
  Invariant invariant = Invariant::kPlanShape;
  std::string phase;      // "bind", "rewrite", "join-elimination", ...
  std::string node_path;  // e.g. "Sort/0:Join/1:Scan(orders)"
  std::string message;

  /// "[phase] invariant-name at node-path: message".
  std::string ToString() const;
};

/// OK when empty; otherwise an internal-error Status listing every
/// violation (plans that fail verification are engine bugs, not user
/// errors).
Status ViolationsToStatus(const std::vector<PlanViolation>& violations);

/// Debug builds verify every plan unconditionally; release builds honor
/// the EngineOptions::verify_plans switch.
inline bool ShouldVerifyPlans(bool option_enabled) {
#ifndef NDEBUG
  (void)option_enabled;
  return true;
#else
  return option_enabled;
#endif
}

}  // namespace softdb

#endif  // SOFTDB_ANALYSIS_INVARIANTS_H_
