#ifndef SOFTDB_ANALYSIS_WORKLOAD_ANALYZER_H_
#define SOFTDB_ANALYSIS_WORKLOAD_ANALYZER_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/sc_lint.h"
#include "common/result.h"
#include "mining/selection.h"
#include "plan/logical_plan.h"

namespace softdb {

class SoftDb;
class SoftConstraint;

/// What one bound statement reveals about how base tables are used — the
/// shared vocabulary of the linter's dead-entry check and the analyzer's
/// coverage and harvesting passes. Everything here comes from walking a
/// *bound* logical plan; no table data is touched.
struct StatementFacts {
  /// A simple `col op constant` the statement applies to a base table,
  /// with the constant preserved for range harvesting.
  struct PredRecord {
    ColumnIdx column = 0;
    CompareOp op = CompareOp::kEq;
    Value constant;
  };

  struct TableUse {
    bool scanned = false;
    std::set<ColumnIdx> pred_columns;        // Simple-predicate columns.
    std::vector<PredRecord> simple_preds;    // With constants.
    std::set<std::pair<ColumnIdx, ColumnIdx>> diff_columns;  // (minuend,sub).
    std::set<ColumnIdx> group_order_columns;
    /// Ordered multi-column GROUP BY lists whose every column resolved to
    /// this base table (FD-candidate channel: first determines the rest).
    std::vector<std::vector<ColumnIdx>> grouping_lists;
    /// Columns the statement filters with `IS NOT NULL`.
    std::set<ColumnIdx> not_null_pred_columns;
  };

  /// One equi-join edge between base-table columns, direction as written.
  struct JoinEdge {
    std::string left_table;
    ColumnIdx left_column = 0;
    std::string right_table;
    ColumnIdx right_column = 0;
  };

  std::map<std::string, TableUse> tables;
  std::vector<JoinEdge> joins;
  /// Normalized (lexicographically ordered) joined-table pairs.
  std::set<std::pair<std::string, std::string>> join_pairs;
};

/// Walks a bound plan and folds its shape into `facts`.
void CollectStatementFacts(const PlanNode& plan, StatementFacts* facts);

/// Can a statement of this shape statically consume `sc`? Per-kind rules:
/// domains/zone maps want predicates on their column, linear/offset SCs a
/// predicate on either column (or the matching column-difference), FDs a
/// grouped/sorted dependent, inclusions the matching join pair, predicate
/// SCs any scan of their table, join holes any join touching it.
bool ScExploitableBy(const SoftConstraint& sc, const StatementFacts& facts);

/// The optimizer channel through which an SC of this kind is consumed
/// (display name for coverage reports).
const char* ScExploitChannel(ScKind kind);

/// Knobs for the whole-workload analyzer.
struct AnalyzerOptions {
  /// A recurring pattern needs at least this many distinct supporting
  /// statements before it becomes a harvest candidate. DDL-derived
  /// candidates (informational CHECKs) are exempt.
  std::size_t min_support = 2;
  /// Selection budget for harvested candidates (top-N by utility).
  std::size_t harvest_budget = 16;
  /// Master switch for the harvesting pass.
  bool harvest = true;
  /// Certificate audit (DESIGN.md §13): replan every bound SELECT through
  /// the rewriter + physical planner and re-validate each emitted rewrite
  /// certificate with the independent checker. Invalid certificates become
  /// `certificate-failed` errors. Still static — plans are built, never
  /// executed.
  bool certify = false;
};

/// Which statements can consume one SC, and through which channel.
struct ScCoverageRow {
  std::string sc;
  std::string kind;                     // ScKindName.
  std::string channel;                  // ScExploitChannel.
  std::vector<std::size_t> statements;  // 0-based workload indices.
};

/// Static maintenance footprint of one DML statement.
struct DmlImpactRow {
  std::size_t statement = 0;  // 0-based workload index.
  std::string kind;           // "insert" | "update" | "delete"
  std::string table;
  std::vector<std::string> impacted;  // SC names needing maintenance.
  std::size_t candidates = 0;         // Catalog size at analysis time.
  bool narrowed = false;              // impacted < candidates.
  bool where_unsatisfiable = false;   // WHERE provably matches no row.
};

/// One re-validated rewrite certificate from the `--certify` audit: which
/// statement's plan depended on it, the transformation it justifies, the
/// SC epochs it rests on, and the independent checker's verdict.
struct CertificateAuditRow {
  std::size_t statement = 0;           // 0-based workload index.
  std::string rule;                    // Applied-rule string (audit key).
  std::string kind;                    // CertificateKindName.
  std::vector<std::string> sc_epochs;  // "<name>@<epoch>" dependencies.
  std::string verdict;                 // CertificateVerdictName.
  std::string message;                 // Checker diagnostic; empty on ok.
};

/// Everything one analyzer run produced. `lint` carries the findings
/// (tool id "softdb_analyze"); the matrices feed the text/JSON reports.
struct AnalyzerReport {
  LintReport lint;
  std::size_t statements = 0;     // Workload statements examined.
  std::size_t queries_bound = 0;  // SELECTs that parsed and bound.
  std::vector<ScCoverageRow> coverage;
  std::vector<DmlImpactRow> impact;
  std::vector<HarvestedCandidate> candidates;
  /// `--certify` audit rows (empty unless AnalyzerOptions::certify).
  std::vector<CertificateAuditRow> certificates;
  std::size_t certificates_checked = 0;
  std::size_t certificates_failed = 0;  // kInvalid verdicts.

  std::size_t errors() const { return lint.errors(); }
  std::size_t warnings() const { return lint.warnings(); }

  /// Findings plus coverage / impact / candidate sections.
  std::string ToText() const;
  /// One JSON object: tool, counts, findings[], coverage[], impact[],
  /// candidates[].
  std::string ToJson() const;
  /// SARIF 2.1.0 (findings only — SARIF has no natural home for the
  /// matrices), rule table from the shared registry.
  std::string ToSarif(const std::string& artifact_uri) const;
};

/// Statically analyzes `workload_sqls` against an already-loaded engine.
/// Purely static: statements are parsed and bound (schema-only), never
/// executed, and no table rows are read. Four passes:
///
///   1. per-query diagnostics through the implication engine —
///      contradictory predicates (`query-contradiction`), predicates the
///      armed SC/CHECK facts imply (`query-redundant-predicate`), and
///      range/IN-list parts outside the domain/zone-map envelope
///      (`query-dead-range`);
///   2. SC exploitation-coverage — which statements can consume each SC
///      (`never-exploitable-sc`, `uncovered-statement`);
///   3. application-constraint harvesting per Liu et al. — recurring
///      predicate ranges → domain candidates, equi-join pairs → inclusion
///      candidates, multi-column GROUP BYs → FD candidates, informational
///      CHECKs and recurring IS NOT NULL filters → predicate candidates,
///      scored by support and deduped against armed SCs/FKs
///      (`harvest-candidate` notes);
///   4. a static DML impact matrix via analysis/impact
///      (`dml-wholesale-revalidation`, plus `query-contradiction` for
///      provably-empty WHERE clauses).
///
/// Unparseable/unbindable statements become `workload-unparseable-
/// statement` warnings and are excluded from the other passes.
Result<AnalyzerReport> AnalyzeWorkloadAgainstDb(
    SoftDb* db, const std::vector<std::string>& workload_sqls,
    const AnalyzerOptions& options = {});

/// Convenience entry point: loads `catalog_script` (same `.sdl` dialect as
/// LintCatalog — DDL/DML plus SOFT CONSTRAINT directives) into a fresh
/// engine, then runs AnalyzeWorkloadAgainstDb.
Result<AnalyzerReport> AnalyzeWorkloadStatic(
    const std::string& catalog_script,
    const std::vector<std::string>& workload_sqls,
    const AnalyzerOptions& options = {});

}  // namespace softdb

#endif  // SOFTDB_ANALYSIS_WORKLOAD_ANALYZER_H_
