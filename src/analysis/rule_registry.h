#ifndef SOFTDB_ANALYSIS_RULE_REGISTRY_H_
#define SOFTDB_ANALYSIS_RULE_REGISTRY_H_

#include <string>
#include <vector>

namespace softdb {

/// One static-analysis rule shared by softdb_lint and softdb_analyze. The
/// registry is the single source of truth for SARIF rule identities: each
/// tool emits its *full* rule table (not just the rules that happened to
/// fire), so code-scanning uploads never churn rule ids between runs or
/// releases.
struct RuleSpec {
  const char* id;           // Stable kebab-case id ("query-contradiction").
  const char* tool;         // "softdb_lint" | "softdb_analyze" | "both".
  const char* severity;     // Default severity: "error"|"warning"|"note".
  const char* description;  // One-line human description.
};

/// Every registered rule, in fixed append-only order. New rules go at the
/// end of their tool's block; ids are never renamed or reused.
const std::vector<RuleSpec>& AllRules();

/// Lookup by id; null when unknown.
const RuleSpec* FindRule(const std::string& id);

/// Rules `tool` emits (its own plus the shared "both" rules), in registry
/// order. This is exactly the rule table that tool's SARIF driver carries.
std::vector<const RuleSpec*> RulesForTool(const std::string& tool);

}  // namespace softdb

#endif  // SOFTDB_ANALYSIS_RULE_REGISTRY_H_
