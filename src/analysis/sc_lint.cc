#include "analysis/sc_lint.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/implication.h"
#include "analysis/rule_registry.h"
#include "analysis/workload_analyzer.h"
#include "common/str_util.h"
#include "constraints/column_offset_sc.h"
#include "constraints/domain_sc.h"
#include "constraints/fd_sc.h"
#include "constraints/inclusion_sc.h"
#include "constraints/linear_correlation_sc.h"
#include "constraints/predicate_sc.h"
#include "constraints/zone_map_sc.h"
#include "engine/softdb.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "storage/wal.h"

namespace softdb {

namespace {

// ------------------------------------------------------------- script input

std::string StripComments(const std::string& script) {
  std::string out;
  out.reserve(script.size());
  bool in_string = false;
  for (std::size_t i = 0; i < script.size(); ++i) {
    const char c = script[i];
    if (!in_string && c == '-' && i + 1 < script.size() &&
        script[i + 1] == '-') {
      while (i < script.size() && script[i] != '\n') ++i;
      out.push_back('\n');
      continue;
    }
    if (c == '\'') in_string = !in_string;
    out.push_back(c);
  }
  return out;
}

bool IsBlank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c) != 0; });
}

// --------------------------------------------------------- directive parser

/// Cursor over a tokenized SOFT CONSTRAINT directive. Keywords and
/// identifiers are matched by uppercased text, so directive words need not
/// be SQL keywords.
class DirectiveCursor {
 public:
  explicit DirectiveCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool ConsumeWord(const char* word) {
    const Token& t = Peek();
    if ((t.type == TokenType::kIdentifier || t.type == TokenType::kKeyword) &&
        ToUpper(t.text) == word) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> TakeIdentifier(const char* what) {
    const Token& t = Peek();
    if (t.type != TokenType::kIdentifier && t.type != TokenType::kKeyword) {
      return Status::InvalidArgument(std::string("expected ") + what);
    }
    ++pos_;
    return t.text;
  }

  Status ExpectOp(const char* op) {
    if (!Peek().IsOp(op)) {
      return Status::InvalidArgument(std::string("expected '") + op + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Result<Value> TakeValue() {
    bool negative = false;
    if (Peek().IsOp("-")) {
      negative = true;
      ++pos_;
    }
    const Token& t = Peek();
    ++pos_;
    switch (t.type) {
      case TokenType::kIntLiteral:
        return Value::Int64((negative ? -1 : 1) * std::stoll(t.text));
      case TokenType::kFloatLiteral:
        return Value::Double((negative ? -1.0 : 1.0) * std::stod(t.text));
      case TokenType::kStringLiteral:
        if (negative) {
          return Status::InvalidArgument("negated string literal");
        }
        return Value::String(t.text);
      default:
        return Status::InvalidArgument("expected a literal value");
    }
  }

  Result<double> TakeNumber() {
    SOFTDB_ASSIGN_OR_RETURN(Value v, TakeValue());
    if (v.is_null() || !IsNumericType(v.type())) {
      return Status::InvalidArgument("expected a numeric value");
    }
    return v.NumericValue();
  }

  /// Parses "( name [, name]* )".
  Result<std::vector<std::string>> TakeColumnList() {
    SOFTDB_RETURN_IF_ERROR(ExpectOp("("));
    std::vector<std::string> names;
    while (true) {
      SOFTDB_ASSIGN_OR_RETURN(std::string name, TakeIdentifier("column name"));
      names.push_back(std::move(name));
      if (Peek().IsOp(",")) {
        ++pos_;
        continue;
      }
      break;
    }
    SOFTDB_RETURN_IF_ERROR(ExpectOp(")"));
    return names;
  }

 private:
  const Token& Peek() const {
    static const Token kEndToken{};
    return pos_ < tokens_.size() ? tokens_[pos_] : kEndToken;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

/// Maps a STATE directive word onto the SC lifecycle.
Result<ScState> ParseScStateWord(const std::string& word) {
  if (word == "ACTIVE") return ScState::kActive;
  if (word == "VIOLATED") return ScState::kViolated;
  if (word == "REPAIR_QUEUED") return ScState::kRepairQueued;
  if (word == "QUARANTINED") return ScState::kQuarantined;
  if (word == "DROPPED") return ScState::kDropped;
  return Status::InvalidArgument("unknown SC state '" + word + "'");
}

Result<std::vector<ColumnIdx>> ResolveColumns(
    const Schema& schema, const std::vector<std::string>& names) {
  std::vector<ColumnIdx> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    SOFTDB_ASSIGN_OR_RETURN(ColumnIdx idx, schema.Resolve(n));
    out.push_back(idx);
  }
  return out;
}

/// Parses one `SOFT CONSTRAINT ...` directive (sans the leading SOFT
/// CONSTRAINT words, already consumed) and registers the SC.
Status ParseDirective(SoftDb* db, const std::string& statement) {
  SOFTDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(statement));
  DirectiveCursor cur(std::move(tokens));
  if (!cur.ConsumeWord("SOFT") || !cur.ConsumeWord("CONSTRAINT")) {
    return Status::InvalidArgument("not a SOFT CONSTRAINT directive");
  }
  SOFTDB_ASSIGN_OR_RETURN(std::string name, cur.TakeIdentifier("SC name"));
  SOFTDB_ASSIGN_OR_RETURN(std::string kind_word,
                          cur.TakeIdentifier("SC kind"));
  const std::string kind = ToUpper(kind_word);

  ScPtr sc;
  if (kind == "DOMAIN") {
    if (!cur.ConsumeWord("ON")) return Status::InvalidArgument("expected ON");
    SOFTDB_ASSIGN_OR_RETURN(std::string table, cur.TakeIdentifier("table"));
    SOFTDB_ASSIGN_OR_RETURN(Table * t, db->catalog().GetTable(table));
    SOFTDB_ASSIGN_OR_RETURN(std::vector<std::string> cols,
                            cur.TakeColumnList());
    if (cols.size() != 1) {
      return Status::InvalidArgument("DOMAIN takes exactly one column");
    }
    SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> idx,
                            ResolveColumns(t->schema(), cols));
    if (!cur.ConsumeWord("MIN")) return Status::InvalidArgument("expected MIN");
    SOFTDB_ASSIGN_OR_RETURN(Value min, cur.TakeValue());
    if (!cur.ConsumeWord("MAX")) return Status::InvalidArgument("expected MAX");
    SOFTDB_ASSIGN_OR_RETURN(Value max, cur.TakeValue());
    sc = std::make_unique<DomainSc>(name, table, idx[0], std::move(min),
                                    std::move(max));
  } else if (kind == "OFFSET") {
    if (!cur.ConsumeWord("ON")) return Status::InvalidArgument("expected ON");
    SOFTDB_ASSIGN_OR_RETURN(std::string table, cur.TakeIdentifier("table"));
    SOFTDB_ASSIGN_OR_RETURN(Table * t, db->catalog().GetTable(table));
    SOFTDB_ASSIGN_OR_RETURN(std::vector<std::string> cols,
                            cur.TakeColumnList());
    if (cols.size() != 2) {
      return Status::InvalidArgument("OFFSET takes exactly two columns");
    }
    SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> idx,
                            ResolveColumns(t->schema(), cols));
    if (!cur.ConsumeWord("MIN")) return Status::InvalidArgument("expected MIN");
    SOFTDB_ASSIGN_OR_RETURN(double lo, cur.TakeNumber());
    if (!cur.ConsumeWord("MAX")) return Status::InvalidArgument("expected MAX");
    SOFTDB_ASSIGN_OR_RETURN(double hi, cur.TakeNumber());
    sc = std::make_unique<ColumnOffsetSc>(name, table, idx[0], idx[1],
                                          static_cast<std::int64_t>(lo),
                                          static_cast<std::int64_t>(hi));
  } else if (kind == "LINEAR") {
    if (!cur.ConsumeWord("ON")) return Status::InvalidArgument("expected ON");
    SOFTDB_ASSIGN_OR_RETURN(std::string table, cur.TakeIdentifier("table"));
    SOFTDB_ASSIGN_OR_RETURN(Table * t, db->catalog().GetTable(table));
    SOFTDB_ASSIGN_OR_RETURN(std::vector<std::string> cols,
                            cur.TakeColumnList());
    if (cols.size() != 2) {
      return Status::InvalidArgument("LINEAR takes exactly two columns");
    }
    SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> idx,
                            ResolveColumns(t->schema(), cols));
    if (!cur.ConsumeWord("K")) return Status::InvalidArgument("expected K");
    SOFTDB_ASSIGN_OR_RETURN(double k, cur.TakeNumber());
    if (!cur.ConsumeWord("C")) return Status::InvalidArgument("expected C");
    SOFTDB_ASSIGN_OR_RETURN(double c, cur.TakeNumber());
    if (!cur.ConsumeWord("EPSILON")) {
      return Status::InvalidArgument("expected EPSILON");
    }
    SOFTDB_ASSIGN_OR_RETURN(double eps, cur.TakeNumber());
    sc = std::make_unique<LinearCorrelationSc>(name, table, idx[0], idx[1], k,
                                               c, eps);
  } else if (kind == "INCLUSION") {
    if (!cur.ConsumeWord("ON")) return Status::InvalidArgument("expected ON");
    SOFTDB_ASSIGN_OR_RETURN(std::string child, cur.TakeIdentifier("table"));
    SOFTDB_ASSIGN_OR_RETURN(Table * ct, db->catalog().GetTable(child));
    SOFTDB_ASSIGN_OR_RETURN(std::vector<std::string> ccols,
                            cur.TakeColumnList());
    if (!cur.ConsumeWord("REFERENCES")) {
      return Status::InvalidArgument("expected REFERENCES");
    }
    SOFTDB_ASSIGN_OR_RETURN(std::string parent, cur.TakeIdentifier("table"));
    SOFTDB_ASSIGN_OR_RETURN(Table * pt, db->catalog().GetTable(parent));
    SOFTDB_ASSIGN_OR_RETURN(std::vector<std::string> pcols,
                            cur.TakeColumnList());
    if (ccols.size() != pcols.size() || ccols.empty()) {
      return Status::InvalidArgument(
          "INCLUSION column lists must be non-empty and equal length");
    }
    SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> cidx,
                            ResolveColumns(ct->schema(), ccols));
    SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> pidx,
                            ResolveColumns(pt->schema(), pcols));
    sc = std::make_unique<InclusionSc>(name, child, std::move(cidx), parent,
                                       std::move(pidx));
  } else if (kind == "FD") {
    if (!cur.ConsumeWord("ON")) return Status::InvalidArgument("expected ON");
    SOFTDB_ASSIGN_OR_RETURN(std::string table, cur.TakeIdentifier("table"));
    SOFTDB_ASSIGN_OR_RETURN(Table * t, db->catalog().GetTable(table));
    SOFTDB_ASSIGN_OR_RETURN(std::vector<std::string> dets,
                            cur.TakeColumnList());
    if (!cur.ConsumeWord("DETERMINES")) {
      return Status::InvalidArgument("expected DETERMINES");
    }
    SOFTDB_ASSIGN_OR_RETURN(std::vector<std::string> deps,
                            cur.TakeColumnList());
    SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> didx,
                            ResolveColumns(t->schema(), dets));
    SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> eidx,
                            ResolveColumns(t->schema(), deps));
    sc = std::make_unique<FunctionalDependencySc>(name, table, std::move(didx),
                                                  std::move(eidx));
  } else if (kind == "ZONEMAP") {
    // Catalog-dump form of a block zone map: the per-block SMAs are
    // re-stated verbatim so the linter can cross-check the envelopes
    // without the table data. Grammar, one clause per block:
    //   BLOCK <idx> MIN <v> MAX <v> [NULLS <n>]   value-bearing block
    //   BLOCK <idx> EMPTY [NULLS <n>]             no live non-NULL rows
    if (!cur.ConsumeWord("ON")) return Status::InvalidArgument("expected ON");
    SOFTDB_ASSIGN_OR_RETURN(std::string table, cur.TakeIdentifier("table"));
    SOFTDB_ASSIGN_OR_RETURN(Table * t, db->catalog().GetTable(table));
    SOFTDB_ASSIGN_OR_RETURN(std::vector<std::string> cols,
                            cur.TakeColumnList());
    if (cols.size() != 1) {
      return Status::InvalidArgument("ZONEMAP takes exactly one column");
    }
    SOFTDB_ASSIGN_OR_RETURN(std::vector<ColumnIdx> idx,
                            ResolveColumns(t->schema(), cols));
    auto zm = std::make_unique<ZoneMapSc>(name, table, idx[0]);
    bool any_block = false;
    while (cur.ConsumeWord("BLOCK")) {
      SOFTDB_ASSIGN_OR_RETURN(double blk, cur.TakeNumber());
      if (blk < 0 || blk != static_cast<double>(
                                static_cast<std::uint64_t>(blk))) {
        return Status::InvalidArgument("BLOCK index must be a non-negative "
                                       "integer");
      }
      ZoneMapSc::BlockSma sma;
      if (!cur.ConsumeWord("EMPTY")) {
        if (!cur.ConsumeWord("MIN")) {
          return Status::InvalidArgument("expected MIN or EMPTY after BLOCK");
        }
        SOFTDB_ASSIGN_OR_RETURN(sma.min, cur.TakeNumber());
        if (!cur.ConsumeWord("MAX")) {
          return Status::InvalidArgument("expected MAX");
        }
        SOFTDB_ASSIGN_OR_RETURN(sma.max, cur.TakeNumber());
        sma.has_value = true;
      }
      if (cur.ConsumeWord("NULLS")) {
        SOFTDB_ASSIGN_OR_RETURN(double nulls, cur.TakeNumber());
        if (nulls < 0) {
          return Status::InvalidArgument("NULLS must be non-negative");
        }
        sma.null_count = static_cast<std::uint64_t>(nulls);
      }
      zm->DeclareBlock(static_cast<std::size_t>(blk), sma);
      any_block = true;
    }
    if (!any_block) {
      return Status::InvalidArgument("ZONEMAP needs at least one BLOCK "
                                     "clause");
    }
    sc = std::move(zm);
  } else if (kind == "PREDICATE") {
    if (!cur.ConsumeWord("ON")) return Status::InvalidArgument("expected ON");
    SOFTDB_ASSIGN_OR_RETURN(std::string table, cur.TakeIdentifier("table"));
    SOFTDB_ASSIGN_OR_RETURN(Table * t, db->catalog().GetTable(table));
    // The predicate body is everything after CHECK up to an optional
    // CONFIDENCE / STATE suffix; hand it to the SQL expression parser
    // rather than re-implementing it on tokens.
    const std::string upper = ToUpper(statement);
    const std::size_t check_pos = upper.find(" CHECK ");
    std::size_t body_start;
    if (check_pos != std::string::npos) {
      body_start = check_pos + 7;
    } else {
      const std::size_t paren = statement.find("CHECK(");
      if (paren == std::string::npos) {
        return Status::InvalidArgument("expected CHECK (<expr>)");
      }
      body_start = paren + 5;
    }
    // CONFIDENCE / STATE sit at the tail of the raw text; the cursor is
    // not positioned past the expression, so scan the suffix.
    const std::size_t conf_pos = upper.rfind(" CONFIDENCE ");
    const std::size_t state_pos = upper.rfind(" STATE ");
    std::size_t body_end = statement.size();
    if (conf_pos != std::string::npos && conf_pos > body_start) {
      body_end = std::min(body_end, conf_pos);
    }
    if (state_pos != std::string::npos && state_pos > body_start) {
      body_end = std::min(body_end, state_pos);
    }
    std::string body = Trim(statement.substr(body_start,
                                             body_end - body_start));
    if (body.size() >= 2 && body.front() == '(' && body.back() == ')') {
      body = body.substr(1, body.size() - 2);
    }
    SOFTDB_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpression(body));
    SOFTDB_RETURN_IF_ERROR(expr->Bind(t->schema()));
    sc = std::make_unique<PredicateSc>(name, table, std::move(expr));
    if (conf_pos != std::string::npos && conf_pos > body_start) {
      sc->set_confidence(std::stod(Trim(statement.substr(conf_pos + 12))));
    }
    ScState declared_state = ScState::kActive;
    if (state_pos != std::string::npos && state_pos > body_start) {
      std::string tail = Trim(statement.substr(state_pos + 7));
      const std::size_t word_end = tail.find_first_of(" \t\r\n");
      SOFTDB_ASSIGN_OR_RETURN(
          declared_state, ParseScStateWord(ToUpper(tail.substr(0, word_end))));
    }
    SOFTDB_RETURN_IF_ERROR(
        db->scs().Add(std::move(sc), db->catalog(), /*verify_now=*/false));
    if (declared_state != ScState::kActive) {
      if (SoftConstraint* added = db->scs().Find(name)) {
        added->set_state(declared_state);
      }
    }
    return Status::OK();
  } else {
    return Status::InvalidArgument("unknown SC kind '" + kind_word + "'");
  }

  if (cur.ConsumeWord("CONFIDENCE")) {
    SOFTDB_ASSIGN_OR_RETURN(double conf, cur.TakeNumber());
    sc->set_confidence(conf);
  }
  // STATE declares where the SC sits in its lifecycle (catalog dumps carry
  // it so the linter can flag entries wedged in repair or quarantine).
  ScState declared_state = ScState::kActive;
  if (cur.ConsumeWord("STATE")) {
    SOFTDB_ASSIGN_OR_RETURN(std::string state_word,
                            cur.TakeIdentifier("SC state"));
    SOFTDB_ASSIGN_OR_RETURN(declared_state,
                            ParseScStateWord(ToUpper(state_word)));
  }
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing tokens in SOFT CONSTRAINT '" +
                                   name + "'");
  }
  SOFTDB_RETURN_IF_ERROR(
      db->scs().Add(std::move(sc), db->catalog(), /*verify_now=*/false));
  if (declared_state != ScState::kActive) {
    if (SoftConstraint* added = db->scs().Find(name)) {
      added->set_state(declared_state);
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------------ checks

void Report(LintReport* report, std::string check, std::string severity,
            std::string subject, std::string message) {
  report->findings.push_back(LintFinding{std::move(check), std::move(severity),
                                         std::move(subject),
                                         std::move(message)});
}

bool IsNumericValue(const Value& v) {
  return !v.is_null() && IsNumericType(v.type());
}

/// All contradiction checks route through the shared implication engine
/// (lint mode: reason about non-NULL rows, declared parameters regardless
/// of confidence). Tables that fire a pairwise check are recorded in
/// `flagged_tables` so the transitive-chain check does not re-report them.
void CheckContradictions(SoftDb& db, LintReport* report,
                         std::set<std::string>* flagged_tables) {
  ImplicationOptions lint_mode;
  lint_mode.assume_non_null = true;
  std::vector<SoftConstraint*> domains = db.scs().ByKind(ScKind::kDomain);

  // Domain SC vs CHECK constraint: an enforced CHECK that no in-domain
  // value can satisfy means every stored row violates the SC. The engine
  // also covers half-open domains (one non-numeric bound) and degenerate
  // string domains, which the old numeric-range check skipped entirely.
  for (SoftConstraint* base : domains) {
    auto* dom = static_cast<DomainSc*>(base);
    std::optional<ImplicationFacts::IntervalFact> fact =
        DomainIntervalFact(*dom);
    if (!fact.has_value()) continue;
    auto table = db.catalog().GetTable(dom->table());
    if (!table.ok()) continue;
    ImplicationFacts facts;
    facts.intervals.push_back(*fact);
    const ImplicationEngine engine(&(*table)->schema(), std::move(facts),
                                   lint_mode);
    for (const CheckConstraint* check : db.ics().ChecksOn(dom->table())) {
      std::vector<const Expr*> conjuncts;
      ImplicationEngine::CollectConjuncts(check->expr(), &conjuncts);
      std::set<std::string> used;
      if (engine.Unsatisfiable(conjuncts, &used) &&
          used.count("sc:" + dom->name()) > 0) {
        Report(report, "domain-check-contradiction", "error", dom->name(),
               "domain [" + dom->min_value().ToString() + ", " +
                   dom->max_value().ToString() +
                   "] excludes every value CHECK constraint '" +
                   check->name() + "' allows on " + dom->table());
        flagged_tables->insert(dom->table());
      }
    }
  }

  // Disjoint domain pairs on the same column.
  for (std::size_t i = 0; i < domains.size(); ++i) {
    auto* a = static_cast<DomainSc*>(domains[i]);
    for (std::size_t j = i + 1; j < domains.size(); ++j) {
      auto* b = static_cast<DomainSc*>(domains[j]);
      if (a->table() != b->table() || a->column() != b->column()) continue;
      std::optional<ImplicationFacts::IntervalFact> fa =
          DomainIntervalFact(*a);
      std::optional<ImplicationFacts::IntervalFact> fb =
          DomainIntervalFact(*b);
      if (!fa.has_value() || !fb.has_value()) continue;
      auto table = db.catalog().GetTable(a->table());
      if (!table.ok()) continue;
      ImplicationFacts facts;
      facts.intervals.push_back(*fa);
      facts.intervals.push_back(*fb);
      const ImplicationEngine engine(&(*table)->schema(), std::move(facts),
                                     lint_mode);
      if (engine.FactsUnsatisfiable()) {
        Report(report, "domain-domain-contradiction", "error",
               a->name() + "+" + b->name(),
               "disjoint domains declared for the same column on " +
                   a->table());
        flagged_tables->insert(a->table());
      }
    }
  }

  // Predicate SC vs every other characterization of its table: open
  // intervals included (e.g. CHECK (x > 100) against domain [0, 100]).
  for (SoftConstraint* sc : db.scs().ByKind(ScKind::kPredicate)) {
    auto* pred = static_cast<PredicateSc*>(sc);
    auto table = db.catalog().GetTable(pred->table());
    if (!table.ok()) continue;
    ImplicationFactsOptions opts;
    opts.absolute_only = false;  // Lint reasons about declared parameters.
    opts.import_inclusion_parents = false;
    ImplicationFacts facts = BuildImplicationFacts(
        pred->table(), db.catalog(), &db.ics(), &db.scs(), nullptr, opts);
    const ImplicationEngine engine(&(*table)->schema(), std::move(facts),
                                   lint_mode);
    std::vector<const Expr*> conjuncts;
    ImplicationEngine::CollectConjuncts(pred->expr(), &conjuncts);
    std::set<std::string> used;
    if (engine.Unsatisfiable(conjuncts, &used)) {
      // Require an implicated source other than the SC's own facts, so a
      // merely self-contradictory predicate is not blamed on the catalog.
      used.erase("sc:" + pred->name());
      if (!used.empty()) {
        Report(report, "predicate-domain-contradiction", "error",
               pred->name(),
               "no row satisfying " +
                   Join(std::vector<std::string>(used.begin(), used.end()),
                        " + ") +
                   " can satisfy the predicate SC on " + pred->table());
        flagged_tables->insert(pred->table());
      }
    }
  }
}

/// Transitive-chain contradictions the pairwise checks cannot see: e.g.
/// domain(x) + offset(x, y) + domain(y) that jointly admit no compliant
/// row. Runs the engine's closure over the full fact base per table.
void CheckChainContradictions(SoftDb& db,
                              const std::set<std::string>& flagged_tables,
                              LintReport* report) {
  ImplicationOptions lint_mode;
  lint_mode.assume_non_null = true;
  for (const std::string& table_name : db.catalog().TableNames()) {
    if (flagged_tables.count(table_name) > 0) continue;  // Pairwise hit.
    auto table = db.catalog().GetTable(table_name);
    if (!table.ok()) continue;
    ImplicationFactsOptions opts;
    opts.absolute_only = false;
    opts.import_inclusion_parents = false;
    ImplicationFacts facts = BuildImplicationFacts(
        table_name, db.catalog(), &db.ics(), &db.scs(), nullptr, opts);
    if (facts.Empty()) continue;
    const ImplicationEngine engine(&(*table)->schema(), std::move(facts),
                                   lint_mode);
    std::set<std::string> used;
    if (engine.FactsUnsatisfiable(&used)) {
      Report(report, "sc-chain-contradiction", "error", table_name,
             "constraint characterizations on " + table_name +
                 " admit no compliant row (chain: " +
                 Join(std::vector<std::string>(used.begin(), used.end()),
                      " + ") +
                 ")");
    }
  }
}

void CheckInclusionCycles(SoftDb& db, LintReport* report) {
  // Directed reference graph: inclusion-SC edges (soft) plus FK edges
  // (hard). A cycle through >= 1 soft edge makes that SC unrepairable by
  // deletion cascades and is almost always a catalog mistake.
  struct Edge {
    std::string to;
    const SoftConstraint* sc;  // Null for FK edges.
  };
  std::map<std::string, std::vector<Edge>> graph;
  for (SoftConstraint* sc : db.scs().ByKind(ScKind::kInclusion)) {
    auto* inc = static_cast<InclusionSc*>(sc);
    graph[inc->child_table()].push_back({inc->parent_table(), inc});
  }
  for (const std::string& table : db.catalog().TableNames()) {
    for (const ForeignKeyConstraint* fk : db.ics().ForeignKeysFrom(table)) {
      graph[table].push_back({fk->parent_table(), nullptr});
    }
  }
  // For each soft edge child->parent, any path parent ->* child closes a
  // cycle through it.
  for (const auto& [from, edges] : graph) {
    for (const Edge& e : edges) {
      if (e.sc == nullptr) continue;
      std::set<std::string> seen;
      std::vector<std::string> stack{e.to};
      bool cyclic = false;
      while (!stack.empty() && !cyclic) {
        const std::string at = stack.back();
        stack.pop_back();
        if (at == from) {
          cyclic = true;
          break;
        }
        if (!seen.insert(at).second) continue;
        auto it = graph.find(at);
        if (it == graph.end()) continue;
        for (const Edge& next : it->second) stack.push_back(next.to);
      }
      if (cyclic) {
        Report(report, "inclusion-cycle", "error", e.sc->name(),
               "inclusion SC " + from + " -> " + e.to +
                   " closes a reference cycle with the catalog's "
                   "referential constraints");
      }
    }
  }
}

void CheckLinearEpsilons(SoftDb& db, LintReport* report) {
  for (SoftConstraint* sc : db.scs().ByKind(ScKind::kLinearCorrelation)) {
    auto* lin = static_cast<LinearCorrelationSc*>(sc);
    if (lin->epsilon() < 0.0) {
      Report(report, "linear-negative-epsilon", "error", lin->name(),
             "epsilon " + std::to_string(lin->epsilon()) +
                 " is negative: no row can ever satisfy the band");
      continue;
    }
    if (lin->k() == 0.0) {
      std::string col = "#" + std::to_string(lin->col_a());
      if (auto table = db.catalog().GetTable(lin->table()); table.ok()) {
        if (lin->col_a() < (*table)->schema().NumColumns()) {
          col = (*table)->schema().Column(lin->col_a()).name;
        }
      }
      Report(report, "linear-degenerate", "warning", lin->name(),
             "k = 0 degenerates the correlation to a domain constraint on "
             "column " +
                 col);
    }
    // Vacuous band: when the +/- epsilon band already spans col_a's whole
    // declared domain, the SC can never narrow an estimate or a predicate.
    for (SoftConstraint* other : db.scs().ByKind(ScKind::kDomain)) {
      auto* dom = static_cast<DomainSc*>(other);
      if (dom->table() != lin->table() || dom->column() != lin->col_a()) {
        continue;
      }
      if (!IsNumericValue(dom->min_value()) ||
          !IsNumericValue(dom->max_value())) {
        continue;
      }
      const double width =
          dom->max_value().NumericValue() - dom->min_value().NumericValue();
      if (width >= 0.0 && 2.0 * lin->epsilon() >= width) {
        Report(report, "linear-vacuous-epsilon", "warning", lin->name(),
               "band width " + std::to_string(2.0 * lin->epsilon()) +
                   " covers the whole declared domain of width " +
                   std::to_string(width) + " (SC '" + dom->name() + "')");
      }
    }
  }
}

/// Zone-map sanity. Two degeneracies the engine itself never diagnoses:
///
///  - An inverted envelope (min > max on a block declared to hold values)
///    admits no value at all, so every scan skips the block and silently
///    drops whatever rows actually live there — an error, since a mined or
///    repaired map can never produce it; only a corrupted dump can.
///  - A map whose every value-bearing block spans a domain SC's whole
///    interval can never prune: a query range that misses such a block
///    also misses the domain, so the optimizer already rejected the whole
///    scan. The map is pure maintenance overhead — a warning.
void CheckZoneMaps(SoftDb& db, LintReport* report) {
  for (SoftConstraint* sc : db.scs().ByKind(ScKind::kBlockZoneMap)) {
    auto* zm = static_cast<ZoneMapSc*>(sc);
    const std::vector<ZoneMapSc::BlockSma> blocks = zm->SnapshotBlocks();
    bool degenerate = false;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      if (blocks[b].has_value && blocks[b].min > blocks[b].max) {
        Report(report, "zonemap-degenerate-block", "error", zm->name(),
               StrFormat("block %zu declares inverted envelope [%g, %g]: no "
                         "value satisfies it, so every scan skips the block "
                         "and silently drops its rows",
                         b, blocks[b].min, blocks[b].max));
        degenerate = true;
      }
    }
    // A degenerate map's envelopes are meaningless; comparing them against
    // domains would only pile secondary findings onto the same root cause.
    if (degenerate) continue;
    for (SoftConstraint* other : db.scs().ByKind(ScKind::kDomain)) {
      auto* dom = static_cast<DomainSc*>(other);
      if (dom->table() != zm->table() || dom->column() != zm->column()) {
        continue;
      }
      if (!IsNumericValue(dom->min_value()) ||
          !IsNumericValue(dom->max_value())) {
        continue;
      }
      const double dmin = dom->min_value().NumericValue();
      const double dmax = dom->max_value().NumericValue();
      bool any_value_block = false;
      bool every_block_spans_domain = true;
      for (const ZoneMapSc::BlockSma& b : blocks) {
        if (!b.has_value) continue;
        any_value_block = true;
        if (b.min > dmin || b.max < dmax) {
          every_block_spans_domain = false;
          break;
        }
      }
      if (any_value_block && every_block_spans_domain) {
        Report(report, "zonemap-redundant-with-domain", "warning", zm->name(),
               StrFormat("every block envelope spans domain SC '%s' [%g, %g] "
                         "on %s: any range that would skip a block already "
                         "rejects the whole scan via the domain, so the map "
                         "prunes nothing",
                         dom->name().c_str(), dmin, dmax,
                         zm->table().c_str()));
      }
    }
  }
}

/// Lifecycle hygiene: an SC sitting in the repair queue at catalog-dump
/// time means maintenance is not being run (or the repair keeps losing);
/// a quarantined SC means the self-healing worker gave up on it — the
/// optimizer will never exploit either until an operator intervenes.
void CheckStuckRepairs(SoftDb& db, LintReport* report) {
  for (SoftConstraint* sc : db.scs().All()) {
    switch (sc->state()) {
      case ScState::kRepairQueued:
        Report(report, "stuck-repair", "warning", sc->name(),
               std::string(ScKindName(sc->kind())) + " SC on " + sc->table() +
                   " is parked in the repair queue; run maintenance or the "
                   "repair worker, or drop it");
        break;
      case ScState::kQuarantined:
        Report(report, "quarantined-sc", "error", sc->name(),
               std::string(ScKindName(sc->kind())) + " SC on " + sc->table() +
                   " exhausted its repair-attempt budget and was "
                   "quarantined; fix the underlying data or drop it");
        break;
      default:
        break;
    }
  }
}

void CheckStaleness(SoftDb& db, const LintOptions& options,
                    LintReport* report) {
  for (SoftConstraint* sc : db.scs().All()) {
    if (sc->confidence() < options.currency_threshold) {
      Report(report, "stale-ssc", "warning", sc->name(),
             "confidence " + std::to_string(sc->confidence()) +
                 " below currency threshold " +
                 std::to_string(options.currency_threshold));
    }
  }
}

/// Parses and binds each workload statement through the real SQL stack
/// (schema-only, never executed). A statement that fails to parse or bind
/// becomes a `workload-unparseable-statement` warning and is excluded from
/// the dead-entry check rather than failing the whole lint.
std::vector<StatementFacts> AnalyzeWorkload(
    SoftDb* db, const std::vector<std::string>& workload_sqls,
    LintReport* report) {
  std::vector<StatementFacts> all;
  Binder binder(&db->catalog());
  for (std::size_t i = 0; i < workload_sqls.size(); ++i) {
    const std::string subject = StrFormat("stmt#%zu", i + 1);
    auto stmt = ParseStatement(workload_sqls[i]);
    if (!stmt.ok()) {
      Report(report, "workload-unparseable-statement", "warning", subject,
             "cannot parse workload statement: " + stmt.status().message() +
                 "; excluded from the dead-entry check");
      continue;
    }
    if (stmt->kind != Statement::Kind::kSelect &&
        stmt->kind != Statement::Kind::kExplain) {
      continue;  // Only queries can exploit SCs.
    }
    auto bound = binder.BindSelect(*stmt->select);
    if (!bound.ok()) {
      Report(report, "workload-unparseable-statement", "warning", subject,
             "cannot bind workload statement against the catalog schema: " +
                 bound.status().message() +
                 "; excluded from the dead-entry check");
      continue;
    }
    StatementFacts facts;
    CollectStatementFacts(**bound, &facts);
    all.push_back(std::move(facts));
  }
  return all;
}

void CheckDeadEntries(SoftDb& db,
                      const std::vector<StatementFacts>& statements,
                      LintReport* report) {
  for (SoftConstraint* sc : db.scs().All()) {
    const bool exploitable = std::any_of(
        statements.begin(), statements.end(),
        [&](const StatementFacts& f) { return ScExploitableBy(*sc, f); });
    if (!exploitable) {
      Report(report, "dead-sc", "warning", sc->name(),
             std::string(ScKindName(sc->kind())) + " SC on " + sc->table() +
                 " is not exploitable by any workload query");
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

const char* SarifLevel(const std::string& severity) {
  if (severity == "error") return "error";
  if (severity == "note") return "note";
  return "warning";
}

}  // namespace

std::vector<std::string> SplitStatements(const std::string& script) {
  const std::string clean = StripComments(script);
  std::vector<std::string> statements;
  std::string current;
  bool in_string = false;
  for (char c : clean) {
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      if (!IsBlank(current)) statements.push_back(Trim(current));
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (!IsBlank(current)) statements.push_back(Trim(current));
  return statements;
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

Result<std::vector<std::string>> LoadWorkloadFiles(
    const std::vector<std::string>& paths) {
  std::vector<std::string> statements;
  for (const std::string& path : paths) {
    std::string script;
    if (!ReadFileToString(path, &script)) {
      return Status::InvalidArgument("cannot read workload file: " + path);
    }
    for (std::string& stmt : SplitStatements(script)) {
      statements.push_back(std::move(stmt));
    }
  }
  return statements;
}

bool ParseFailOn(const std::string& text, FailOn* out) {
  if (text == "warning") {
    *out = FailOn::kWarning;
    return true;
  }
  if (text == "error") {
    *out = FailOn::kError;
    return true;
  }
  return false;
}

int ReportExitCode(std::size_t errors, std::size_t warnings,
                   std::size_t notes, FailOn policy) {
  switch (policy) {
    case FailOn::kAny:
      return errors + warnings + notes > 0 ? 1 : 0;
    case FailOn::kWarning:
      return errors + warnings > 0 ? 1 : 0;
    case FailOn::kError:
      return errors > 0 ? 1 : 0;
  }
  return 1;  // Unreachable.
}

std::size_t LintReport::errors() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [](const LintFinding& f) { return f.severity == "error"; }));
}

std::size_t LintReport::warnings() const {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(),
      [](const LintFinding& f) { return f.severity == "warning"; }));
}

std::size_t LintReport::notes() const {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(),
      [](const LintFinding& f) { return f.severity == "note"; }));
}

std::string LintReport::ToText() const {
  std::string out;
  for (const LintFinding& f : findings) {
    out += f.ToString();
    out += '\n';
  }
  out += StrFormat("%zu error(s), %zu warning(s)", errors(), warnings());
  if (notes() > 0) out += StrFormat(", %zu note(s)", notes());
  out += '\n';
  return out;
}

std::string LintReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"tool\": \"" + JsonEscape(tool) + "\",\n";
  out += StrFormat("  \"errors\": %zu,\n", errors());
  out += StrFormat("  \"warnings\": %zu,\n", warnings());
  out += StrFormat("  \"notes\": %zu,\n", notes());
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"check\": \"" + JsonEscape(f.check) + "\", \"severity\": \"" +
           JsonEscape(f.severity) + "\", \"subject\": \"" +
           JsonEscape(f.subject) + "\", \"message\": \"" +
           JsonEscape(f.message) + "\"}";
  }
  out += findings.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string LintReport::ToSarif(const std::string& artifact_uri) const {
  // SARIF 2.1.0 document, enough for GitHub code scanning: one run whose
  // driver carries the tool's full registered rule table (stable ids and
  // default severities from analysis/rule_registry.h — the table never
  // shrinks, so rule identity is stable across report contents), and one
  // result per finding anchored at the catalog file.
  const std::vector<const RuleSpec*> rules = RulesForTool(tool);

  std::string out = "{\n";
  out += "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n    {\n";
  out += "      \"tool\": {\n        \"driver\": {\n";
  out += "          \"name\": \"" + JsonEscape(tool) + "\",\n";
  out += "          \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "            {\"id\": \"" + JsonEscape(rules[i]->id) +
           "\", \"shortDescription\": {\"text\": \"" +
           JsonEscape(rules[i]->description) +
           "\"}, \"defaultConfiguration\": {\"level\": \"" +
           SarifLevel(rules[i]->severity) + "\"}}";
  }
  out += rules.empty() ? "]\n" : "\n          ]\n";
  out += "        }\n      },\n";
  out += "      \"results\": [";
  for (std::size_t j = 0; j < findings.size(); ++j) {
    const LintFinding& f = findings[j];
    out += j == 0 ? "\n" : ",\n";
    out += "        {\n";
    out += "          \"ruleId\": \"" + JsonEscape(f.check) + "\",\n";
    out += std::string("          \"level\": \"") + SarifLevel(f.severity) +
           "\",\n";
    out += "          \"message\": {\"text\": \"" +
           JsonEscape(f.subject + ": " + f.message) + "\"},\n";
    out += "          \"locations\": [\n";
    out += "            {\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": \"" +
           JsonEscape(artifact_uri) +
           "\"}, \"region\": {\"startLine\": 1}}}\n";
    out += "          ]\n        }";
  }
  out += findings.empty() ? "]\n" : "\n      ]\n";
  out += "    }\n  ]\n}\n";
  return out;
}

Status LoadCatalogScript(SoftDb* db, const std::string& catalog_script) {
  for (const std::string& statement : SplitStatements(catalog_script)) {
    const std::string upper = ToUpper(statement);
    if (upper.rfind("SOFT", 0) == 0) {
      SOFTDB_RETURN_IF_ERROR(ParseDirective(db, statement));
    } else {
      SOFTDB_RETURN_IF_ERROR(db->Execute(statement).status());
    }
  }
  return Status::OK();
}

Result<LintReport> LintCatalog(const std::string& catalog_script,
                               const std::vector<std::string>& workload_sqls,
                               const LintOptions& options) {
  SoftDb db;
  SOFTDB_RETURN_IF_ERROR(LoadCatalogScript(&db, catalog_script));

  LintReport report;
  std::set<std::string> flagged_tables;
  CheckContradictions(db, &report, &flagged_tables);
  CheckChainContradictions(db, flagged_tables, &report);
  CheckInclusionCycles(db, &report);
  CheckLinearEpsilons(db, &report);
  CheckZoneMaps(db, &report);
  CheckStuckRepairs(db, &report);
  CheckStaleness(db, options, &report);
  if (!workload_sqls.empty()) {
    const std::vector<StatementFacts> statements =
        AnalyzeWorkload(&db, workload_sqls, &report);
    CheckDeadEntries(db, statements, &report);
  }
  return report;
}

Result<LintReport> LintWal(const std::string& wal_dir) {
  SOFTDB_ASSIGN_OR_RETURN(std::vector<std::uint64_t> seqs,
                          ListWalSegments(wal_dir));
  if (seqs.empty()) {
    return Status::NotFound("no WAL segments in '" + wal_dir + "'");
  }

  // Mirror recovery's pending-arm bookkeeping exactly (SoftDb::Recover):
  // every transition record overwrites the SC's pending slot, a commit or
  // a drop clears it, and whatever is left armed-but-uncommitted at end of
  // log is what recovery would disarm.
  struct PendingArm {
    ScState from;
    ScState to;
    std::uint64_t epoch;
    ScArmMode mode;
    std::uint64_t seq;  // Segment the transition was logged in.
  };
  std::map<std::string, PendingArm> pending;

  LintReport report;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    const bool is_last = i + 1 == seqs.size();
    SOFTDB_ASSIGN_OR_RETURN(
        WalSegment segment,
        ReadWalSegment(WalSegmentPath(wal_dir, seqs[i]), is_last));
    for (const WalRecord& record : segment.records) {
      switch (record.kind) {
        case WalRecordKind::kScTransition: {
          BinReader r(record.payload);
          SOFTDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
          SOFTDB_ASSIGN_OR_RETURN(std::uint8_t from, r.GetU8());
          SOFTDB_ASSIGN_OR_RETURN(std::uint8_t to, r.GetU8());
          SOFTDB_ASSIGN_OR_RETURN(std::uint64_t epoch, r.GetU64());
          SOFTDB_ASSIGN_OR_RETURN(std::uint8_t mode, r.GetU8());
          if (to > static_cast<std::uint8_t>(ScState::kDropped) ||
              from > static_cast<std::uint8_t>(ScState::kDropped) ||
              mode > static_cast<std::uint8_t>(ScArmMode::kVerify)) {
            return Status::DataLoss("WAL transition record for '" + name +
                                    "' carries out-of-range enum values");
          }
          pending[name] =
              PendingArm{static_cast<ScState>(from), static_cast<ScState>(to),
                         epoch, static_cast<ScArmMode>(mode), seqs[i]};
          break;
        }
        case WalRecordKind::kScArmCommit: {
          BinReader r(record.payload);
          SOFTDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
          pending.erase(name);
          break;
        }
        case WalRecordKind::kScDrop: {
          BinReader r(record.payload);
          SOFTDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
          pending.erase(name);
          break;
        }
        default:
          break;
      }
    }
  }

  for (const auto& [name, arm] : pending) {
    if (arm.to != ScState::kActive) continue;
    const char* mode = arm.mode == ScArmMode::kRepairFull ? "repair-full"
                       : arm.mode == ScArmMode::kVerify   ? "verify"
                                                          : "none";
    Report(&report, "wal-dangling-transition", "error", name,
           StrFormat("arm %s -> %s at epoch %llu (mode %s, segment %llu) "
                     "has no commit record; recovery will disarm this SC "
                     "into the repair queue",
                     ScStateName(arm.from), ScStateName(arm.to),
                     static_cast<unsigned long long>(arm.epoch), mode,
                     static_cast<unsigned long long>(arm.seq)));
  }
  return report;
}

}  // namespace softdb
